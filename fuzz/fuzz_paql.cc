// libFuzzer harness for the PaQL parser: arbitrary bytes in, a Result out,
// never a crash, hang, or sanitizer report. The parser is the server's
// first contact with untrusted input (every "query" request body funnels
// through it), so it must be total over byte garbage.
//
// Build: cmake -DPB_BUILD_FUZZERS=ON -DPB_SANITIZE=ON (Clang), then
//   ./build/fuzz_paql fuzz/corpus/paql -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "paql/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto query = pb::paql::Parse(text);
  if (query.ok()) {
    // Accepted input must round-trip: the canonical rendering of a parsed
    // query is itself a valid query. Catches printers that emit text the
    // parser rejects and parsers that accept what they cannot represent.
    auto again = pb::paql::Parse(query->ToPaql());
    if (!again.ok()) __builtin_trap();
  } else {
    (void)query.status().message().size();
  }
  // The standalone sub-grammar entry points share the lexer but have their
  // own recursive-descent roots; fuzz them on the same bytes.
  (void)pb::paql::ParseScalarExpr(text);
  (void)pb::paql::ParseGlobalExpr(text);
  (void)pb::paql::ParseAggregateExpr(text);
  return 0;
}
