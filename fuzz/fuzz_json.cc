// libFuzzer harness for the JSON parser: every byte of every pbserve
// request line goes through json::Parse before any other code sees it, so
// this is the server's outermost attack surface. Arbitrary bytes in, a
// Result out, never a crash or sanitizer report; accepted documents must
// survive a Dump/re-Parse round trip.
//
// Build: cmake -DPB_BUILD_FUZZERS=ON -DPB_SANITIZE=ON (Clang), then
//   ./build/fuzz_json fuzz/corpus/json -max_total_time=60

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "common/json.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  auto value = pb::json::Parse(text);
  if (!value.ok()) {
    (void)value.status().message().size();
    return 0;
  }
  // Round trip: Dump of a parsed value re-parses. (Dump-for-Dump equality
  // is deliberately not asserted — number formatting may legally differ
  // from the source text.)
  auto again = pb::json::Parse(value->Dump());
  if (!again.ok()) __builtin_trap();
  return 0;
}
