// libFuzzer harness for the segment-file reader: treats the fuzz input as
// the entire on-disk segment (file header + one block record) and asserts
// the reader answers with a Status — never a crash, overflow, or oversized
// allocation — no matter how the length fields, counts, and checksums are
// mangled. Spill files are regenerable caches, but a corrupt or truncated
// one (crash mid-spill, disk trouble) must fail a query cleanly, not take
// the engine down.
//
// Build: cmake -DPB_BUILD_FUZZERS=ON -DPB_SANITIZE=ON (Clang), then
//   ./build/fuzz_segment fuzz/corpus/segment -max_total_time=60

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "storage/segment_file.h"

namespace {

constexpr size_t kFileHeaderBytes = 16;
// ReadBlock allocates loc.length up front, so cap harness inputs well
// below anything that would stress the fuzzer's own rss limit.
constexpr size_t kMaxInputBytes = 1 << 16;

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInputBytes) return 0;

  char path[] = "/tmp/pb_fuzz_segment_XXXXXX";
  const int fd = ::mkstemp(path);
  if (fd < 0) return 0;
  bool wrote = true;
  for (size_t done = 0; done < size;) {
    const ssize_t w = ::write(fd, data + done, size - done);
    if (w <= 0) {
      wrote = false;
      break;
    }
    done += static_cast<size_t>(w);
  }
  ::close(fd);

  if (wrote) {
    auto file = pb::storage::SegmentFile::OpenForRead(path);
    if (file.ok() && size > kFileHeaderBytes) {
      // One block record spanning everything after the file header — the
      // locator an index would hand back for a single-block segment.
      auto block = (*file)->ReadBlock(
          {kFileHeaderBytes, size - kFileHeaderBytes});
      if (block.ok()) {
        (void)block->count;
      } else {
        (void)block.status().message().size();
      }
    }
  }
  ::unlink(path);
  return 0;
}
