// Meal planner: the paper's demo scenario (§7) end to end — the package
// template (§3.1), constraint suggestions on a highlighted column, adaptive
// exploration with locked tuples (§3.3), and the package-space visual
// summary (§3.2), all on the athlete's meal-plan query.

#include <cstdio>

#include "core/enumerator.h"
#include "core/evaluator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "ui/explore.h"
#include "ui/suggest.h"
#include "ui/summary.h"
#include "ui/template.h"

namespace {

void Fail(const pb::Status& s) {
  std::printf("error: %s\n", s.ToString().c_str());
  std::exit(1);
}

}  // namespace

int main() {
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(800, /*seed=*/7));

  auto aq = pb::paql::ParseAndAnalyze(R"(
      SELECT PACKAGE(R) AS P
      FROM Recipes R
      WHERE R.gluten = 'free'
      SUCH THAT COUNT(*) = 3 AND
                SUM(P.calories) BETWEEN 2000 AND 2500
      MAXIMIZE SUM(P.protein)
  )",
                                      catalog);
  if (!aq.ok()) Fail(aq.status());

  // ---- The package template with an initial sample (§3.1).
  pb::core::QueryEvaluator evaluator(&catalog);
  auto initial = evaluator.Evaluate(*aq);
  if (!initial.ok()) Fail(initial.status());
  auto screen = pb::ui::RenderPackageTemplate(*aq, initial->package);
  if (!screen.ok()) Fail(screen.status());
  std::printf("%s\n", screen->c_str());

  // ---- Highlighting the "fat" column produces suggestions (§3.1 / Fig 1).
  pb::ui::Highlight h;
  h.kind = pb::ui::Highlight::Kind::kCell;
  h.package_position = 0;
  h.column = "fat";
  auto suggestions =
      pb::ui::SuggestConstraints(*aq->table, initial->package, h);
  if (!suggestions.ok()) Fail(suggestions.status());
  std::printf("-- Suggestions after highlighting a 'fat' cell --\n");
  for (const auto& s : *suggestions) {
    std::printf("  [%s] %s\n       \"%s\"\n",
                s.kind == pb::ui::Suggestion::Kind::kBaseConstraint
                    ? "base"
                    : (s.kind == pb::ui::Suggestion::Kind::kGlobalConstraint
                           ? "global"
                           : "objective"),
                s.paql.c_str(), s.description.c_str());
  }

  // ---- Adaptive exploration (§3.3): keep the best tuple, resample twice.
  std::printf("\n-- Adaptive exploration --\n");
  pb::ui::ExplorationSession session(&*aq, {});
  if (auto s = session.Start(); !s.ok()) Fail(s);
  size_t keeper = session.sample().rows[0];
  std::printf("locking recipe row %zu and resampling...\n", keeper);
  if (auto s = session.Lock(keeper); !s.ok()) Fail(s);
  for (int round = 0; round < 2; ++round) {
    if (auto s = session.Resample(); !s.ok()) {
      std::printf("  no further alternatives: %s\n", s.ToString().c_str());
      break;
    }
    std::printf("  round %zu sample: %s\n", session.rounds(),
                session.sample().Fingerprint().c_str());
  }
  auto inferred = session.InferConstraints();
  if (inferred.ok() && !inferred->empty()) {
    std::printf("inferred from your selection: %s\n",
                (*inferred)[0].description.c_str());
  }

  // ---- The package-space summary (§3.2) over enumerated packages.
  std::printf("\n-- Package space (found so far) --\n");
  auto packages = pb::core::EnumerateViaSolver(*aq, [&] {
    pb::core::EnumerateOptions o;
    o.max_packages = 30;
    return o;
  }());
  if (!packages.ok()) Fail(packages.status());
  auto summary = pb::ui::SummarizePackageSpace(*aq, *packages);
  if (!summary.ok()) Fail(summary.status());
  int highlight = summary->NearestPackage(
      summary->points.empty() ? 0 : summary->points[0].first,
      summary->points.empty() ? 0 : summary->points[0].second);
  std::printf("%zu packages enumerated; '@' marks the current one\n%s\n",
              packages->size(), summary->Render(highlight).c_str());
  return 0;
}
