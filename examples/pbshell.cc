// pbshell — an interactive PaQL shell over the PackageBuilder engine.
//
// The closest console equivalent of the demo's web interface: load CSVs or
// synthetic datasets into the catalog, type PaQL queries (possibly across
// several lines, ';'-terminated), EXPLAIN them, enumerate alternatives, and
// export the winning package.
//
//   ./build/examples/pbshell               # starts with synthetic recipes
//   pb> \help
//   pb> SELECT PACKAGE(R) FROM recipes R
//       SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 2000 AND 2500
//       MAXIMIZE SUM(protein);
//
// Also usable non-interactively:  echo '...' | pbshell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "core/enumerator.h"
#include "core/evaluator.h"
#include "core/explain.h"
#include "db/catalog.h"
#include "db/csv.h"
#include "datagen/lineitem.h"
#include "datagen/recipes.h"
#include "datagen/stocks.h"
#include "datagen/travel.h"
#include "paql/analyzer.h"
#include "ui/template.h"

namespace {

using pb::core::EvaluationOptions;
using pb::core::QueryEvaluator;

struct Shell {
  pb::db::Catalog catalog;
  EvaluationOptions options;
  pb::core::Package last_package;
  std::string last_query;

  void Help() {
    std::printf(R"(commands:
  \help                      this text
  \tables                    list catalog tables
  \load <path> <name>        load a CSV file as table <name>
  \gen <kind> <n> [seed]     generate a dataset: recipes|travel|stocks|lineitem
  \show <table> [rows]       print a table (default 10 rows)
  \explain <query>;          plan a query without running it
  \all <k> <query>;          enumerate up to k packages (best first)
  \diverse <k> <query>;      enumerate k diverse packages
  \save <path>               write the last result package as CSV
  \quit                      exit
anything else ending in ';' is evaluated as a PaQL query.
)");
  }

  void Tables() {
    for (const auto& name : catalog.TableNames()) {
      auto t = catalog.Get(name);
      std::printf("  %-20s %zu rows, %zu columns\n", name.c_str(),
                  (*t)->num_rows(), (*t)->schema().num_columns());
    }
  }

  void Generate(std::istringstream& args) {
    std::string kind;
    size_t n = 1000;
    uint64_t seed = 42;
    args >> kind >> n >> seed;
    if (kind == "recipes") {
      catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, seed));
    } else if (kind == "travel") {
      catalog.RegisterOrReplace(pb::datagen::GenerateTravelItems(n, seed));
    } else if (kind == "stocks") {
      catalog.RegisterOrReplace(pb::datagen::GenerateStocks(n, seed));
    } else if (kind == "lineitem") {
      catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(n, seed));
    } else {
      std::printf("unknown dataset kind '%s'\n", kind.c_str());
      return;
    }
    std::printf("generated %zu rows of %s (seed %llu)\n", n, kind.c_str(),
                static_cast<unsigned long long>(seed));
  }

  void Load(std::istringstream& args) {
    std::string path, name;
    args >> path >> name;
    if (name.empty()) {
      std::printf("usage: \\load <path> <name>\n");
      return;
    }
    auto t = pb::db::ReadCsvFile(path, name);
    if (!t.ok()) {
      std::printf("%s\n", t.status().ToString().c_str());
      return;
    }
    std::printf("loaded %zu rows into '%s'\n", t->num_rows(), name.c_str());
    catalog.RegisterOrReplace(std::move(t).value());
  }

  void Show(std::istringstream& args) {
    std::string name;
    size_t rows = 10;
    args >> name >> rows;
    auto t = catalog.Get(name);
    if (!t.ok()) {
      std::printf("%s\n", t.status().ToString().c_str());
      return;
    }
    std::printf("%s", (*t)->ToString(rows).c_str());
  }

  void Explain(const std::string& query) {
    auto plan = pb::core::ExplainQuery(query, catalog, options);
    if (!plan.ok()) {
      std::printf("%s\n", plan.status().ToString().c_str());
      return;
    }
    std::printf("%s", plan->ToString().c_str());
  }

  void Evaluate(const std::string& query) {
    auto aq = pb::paql::ParseAndAnalyze(query, catalog);
    if (!aq.ok()) {
      std::printf("%s\n", aq.status().ToString().c_str());
      return;
    }
    QueryEvaluator evaluator(&catalog);
    auto r = evaluator.Evaluate(*aq, options);
    if (!r.ok()) {
      std::printf("%s\n", r.status().ToString().c_str());
      return;
    }
    last_package = r->package;
    last_query = query;
    auto screen = pb::ui::RenderPackageTemplate(*aq, r->package,
                                                {.show_paql = false});
    if (screen.ok()) std::printf("%s", screen->c_str());
    std::printf("[%s, %.2f ms%s%s]\n",
                pb::core::StrategyToString(r->strategy_used),
                r->seconds * 1e3,
                aq->has_objective
                    ? (", objective " + pb::FormatDouble(r->objective, 6))
                          .c_str()
                    : "",
                r->proven_optimal ? ", proven optimal" : "");
  }

  void EvaluateMany(const std::string& query, size_t k, bool diverse) {
    auto aq = pb::paql::ParseAndAnalyze(query, catalog);
    if (!aq.ok()) {
      std::printf("%s\n", aq.status().ToString().c_str());
      return;
    }
    auto packages = diverse ? pb::core::EnumerateDiverse(*aq, k)
                            : pb::core::EnumerateViaSolver(*aq, [&] {
                                pb::core::EnumerateOptions o;
                                o.max_packages = k;
                                return o;
                              }());
    if (!packages.ok()) {
      std::printf("%s\n", packages.status().ToString().c_str());
      return;
    }
    std::printf("%zu package(s):\n", packages->size());
    for (size_t i = 0; i < packages->size(); ++i) {
      auto obj = pb::core::PackageObjective(*aq, (*packages)[i]);
      std::printf("  #%zu  {%s}", i + 1, (*packages)[i].Fingerprint().c_str());
      if (aq->has_objective && obj.ok()) {
        std::printf("  objective %s", pb::FormatDouble(*obj, 6).c_str());
      }
      std::printf("\n");
    }
    if (!packages->empty()) {
      last_package = (*packages)[0];
      last_query = query;
    }
  }

  void Save(std::istringstream& args) {
    std::string path;
    args >> path;
    if (path.empty() || last_query.empty()) {
      std::printf("nothing to save (run a query first)\n");
      return;
    }
    auto aq = pb::paql::ParseAndAnalyze(last_query, catalog);
    if (!aq.ok()) {
      std::printf("%s\n", aq.status().ToString().c_str());
      return;
    }
    pb::db::Table t =
        pb::core::MaterializePackage(*aq->table, last_package, "package");
    auto s = pb::db::WriteCsvFile(t, path);
    std::printf("%s\n", s.ok() ? ("wrote " + path).c_str()
                               : s.ToString().c_str());
  }

  /// Dispatches one complete input (a '\' command line or a ';' query).
  /// Returns false on \quit.
  bool Dispatch(const std::string& input) {
    std::string text(pb::StripAsciiWhitespace(input));
    if (text.empty()) return true;
    if (text[0] == '\\') {
      std::istringstream args(text.substr(1));
      std::string cmd;
      args >> cmd;
      if (cmd == "quit" || cmd == "q") return false;
      if (cmd == "help") Help();
      else if (cmd == "tables") Tables();
      else if (cmd == "gen") Generate(args);
      else if (cmd == "load") Load(args);
      else if (cmd == "show") Show(args);
      else if (cmd == "save") Save(args);
      else if (cmd == "explain" || cmd == "all" || cmd == "diverse") {
        size_t k = 5;
        if (cmd != "explain") args >> k;
        std::string rest;
        std::getline(args, rest);
        while (!rest.empty() && rest.back() == ';') rest.pop_back();
        if (cmd == "explain") Explain(rest);
        else EvaluateMany(rest, k, cmd == "diverse");
      } else {
        std::printf("unknown command '\\%s' (try \\help)\n", cmd.c_str());
      }
      return true;
    }
    std::string query = text;
    while (!query.empty() && query.back() == ';') query.pop_back();
    Evaluate(query);
    return true;
  }
};

}  // namespace

int main() {
  Shell shell;
  shell.catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(500, 42));
  std::printf("PackageBuilder shell -- 'recipes' (500 rows) is preloaded; "
              "\\help for commands\n");
  std::string buffer;
  std::string line;
  bool interactive = true;
  while (true) {
    std::printf(buffer.empty() ? "pb> " : "  > ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string stripped(pb::StripAsciiWhitespace(line));
    if (buffer.empty() && (stripped.empty() || stripped[0] == '\\')) {
      if (!shell.Dispatch(stripped)) break;
      continue;
    }
    buffer += line + "\n";
    if (!stripped.empty() && stripped.back() == ';') {
      bool keep_going = shell.Dispatch(buffer);
      buffer.clear();
      if (!keep_going) break;
    }
  }
  (void)interactive;
  return 0;
}
