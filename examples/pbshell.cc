// pbshell — an interactive PaQL shell over the PackageBuilder engine.
//
// The closest console equivalent of the demo's web interface: load CSVs or
// synthetic datasets into the catalog, type PaQL queries (possibly across
// several lines, ';'-terminated), EXPLAIN them, enumerate alternatives, and
// export the winning package. Since the Engine facade landed, the shell is
// a thin client of pb::engine::Engine — the same API pbserve exposes over
// TCP — rather than wiring Catalog + QueryEvaluator by hand.
//
//   ./build/examples/pbshell               # starts with synthetic recipes
//   pb> \help
//   pb> SELECT PACKAGE(R) FROM recipes R
//       SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 2000 AND 2500
//       MAXIMIZE SUM(protein);
//
// Also usable non-interactively:  echo '...' | pbshell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/json.h"
#include "common/strings.h"
#include "engine/engine.h"

namespace {

struct Shell {
  pb::engine::Engine engine;
  uint64_t session = 0;
  pb::core::Package last_package;
  std::string last_table;
  std::string last_query;

  Shell()
      : engine([] {
          pb::engine::EngineOptions options;
          options.render_packages = true;  // the template screen
          return options;
        }()) {
    session = engine.OpenSession();
  }

  void Help() {
    std::printf(R"(commands:
  \help                      this text
  \tables                    list catalog tables
  \load <path> <name>        load a CSV file as table <name>
  \gen <kind> <n> [seed]     generate a dataset: recipes|travel|stocks|lineitem
  \show <table> [rows]       print a table (default 10 rows)
  \explain <query>;          plan a query without running it
  \all <k> <query>;          enumerate up to k packages (best first)
  \diverse <k> <query>;      enumerate k diverse packages
  \save <path>               write the last result package as CSV
  \spill <table> [blocksize] move a table's columns to disk-backed blocks
  \append <table> <rows>     append JSON rows, e.g. \append t [[1,2.5,"x"]]
  \stats                     engine counters (cache hits, queries, ...)
  \quit                      exit
anything else ending in ';' is evaluated as a PaQL query.
)");
  }

  void Tables() {
    for (const auto& info : engine.Tables()) {
      std::printf("  %-20s %zu rows, %zu columns\n", info.name.c_str(),
                  info.rows, info.columns);
    }
  }

  void Generate(std::istringstream& args) {
    std::string kind;
    size_t n = 1000;
    uint64_t seed = 42;
    args >> kind >> n >> seed;
    auto rows = engine.GenerateDataset(kind, n, seed);
    if (!rows.ok()) {
      std::printf("%s\n", rows.status().ToString().c_str());
      return;
    }
    std::printf("generated %zu rows of %s (seed %llu)\n", *rows,
                kind.c_str(), static_cast<unsigned long long>(seed));
  }

  void Load(std::istringstream& args) {
    std::string path, name;
    args >> path >> name;
    if (name.empty()) {
      std::printf("usage: \\load <path> <name>\n");
      return;
    }
    auto rows = engine.LoadCsv(path, name);
    if (!rows.ok()) {
      std::printf("%s\n", rows.status().ToString().c_str());
      return;
    }
    std::printf("loaded %zu rows into '%s'\n", *rows, name.c_str());
  }

  void Show(std::istringstream& args) {
    std::string name;
    size_t rows = 10;
    args >> name >> rows;
    auto rendered = engine.RenderTable(name, rows);
    if (!rendered.ok()) {
      std::printf("%s\n", rendered.status().ToString().c_str());
      return;
    }
    std::printf("%s", rendered->c_str());
  }

  void Explain(const std::string& query) {
    auto plan = engine.Explain(query);
    if (!plan.ok()) {
      std::printf("%s\n", plan.status().ToString().c_str());
      return;
    }
    std::printf("%s", plan->ToString().c_str());
  }

  void Evaluate(const std::string& query) {
    pb::engine::QueryResponse r = engine.ExecuteQuery(session, query);
    if (!r.ok()) {
      std::printf("%s\n", r.status.ToString().c_str());
      return;
    }
    last_package = r.package;
    last_table = r.table;
    last_query = query;
    if (!r.rendered.empty()) std::printf("%s", r.rendered.c_str());
    std::string objective;
    if (r.has_objective) {
      objective = ", objective " + pb::FormatDouble(r.objective, 6);
    }
    std::printf("[%s, %.2f ms%s%s%s]\n", r.strategy.c_str(),
                r.total_seconds * 1e3, objective.c_str(),
                r.proven_optimal ? ", proven optimal" : "",
                r.result_cache_hit ? ", cached" : "");
  }

  void EvaluateMany(const std::string& query, size_t k, bool diverse) {
    auto packages = engine.Enumerate(query, k, diverse);
    if (!packages.ok()) {
      std::printf("%s\n", packages.status().ToString().c_str());
      return;
    }
    std::printf("%zu package(s):\n", packages->size());
    for (size_t i = 0; i < packages->size(); ++i) {
      auto obj = engine.EvaluateObjective(query, (*packages)[i]);
      std::printf("  #%zu  {%s}", i + 1, (*packages)[i].Fingerprint().c_str());
      if (obj.ok() && *obj != 0.0) {
        std::printf("  objective %s", pb::FormatDouble(*obj, 6).c_str());
      }
      std::printf("\n");
    }
    if (!packages->empty()) {
      last_package = (*packages)[0];
      last_query = query;
      auto table = engine.BaseTable(query);
      last_table = table.ok() ? *table : "";
    }
  }

  void Save(std::istringstream& args) {
    std::string path;
    args >> path;
    if (path.empty() || last_table.empty()) {
      std::printf("nothing to save (run a query first)\n");
      return;
    }
    pb::Status s = engine.WritePackageCsv(last_table, last_package, path);
    std::printf("%s\n",
                s.ok() ? ("wrote " + path).c_str() : s.ToString().c_str());
  }

  void Spill(std::istringstream& args) {
    std::string name;
    size_t block_size = pb::storage::kDefaultBlockSize;
    args >> name >> block_size;
    if (name.empty()) {
      std::printf("usage: \\spill <table> [blocksize]\n");
      return;
    }
    pb::Status s = engine.SpillTable(name, "", block_size);
    if (!s.ok()) {
      std::printf("%s\n", s.ToString().c_str());
      return;
    }
    std::printf("spilled '%s' to zone-mapped segment blocks (%zu values "
                "per block); queries now read through the block cache\n",
                name.c_str(), block_size);
  }

  void Append(std::istringstream& args) {
    std::string name;
    args >> name;
    std::string rows_json;
    std::getline(args, rows_json);
    if (name.empty() || rows_json.empty()) {
      std::printf("usage: \\append <table> <json array of row arrays>\n");
      return;
    }
    auto parsed = pb::json::Parse(rows_json);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().ToString().c_str());
      return;
    }
    if (!parsed->is_array()) {
      std::printf("rows must be a JSON array of row arrays\n");
      return;
    }
    std::vector<pb::db::Tuple> tuples;
    for (const pb::json::Value& row : parsed->items()) {
      if (!row.is_array()) {
        std::printf("each row must be an array of cells\n");
        return;
      }
      pb::db::Tuple tuple;
      for (const pb::json::Value& cell : row.items()) {
        if (cell.is_null()) {
          tuple.push_back(pb::db::Value::Null());
        } else if (cell.is_bool()) {
          tuple.push_back(pb::db::Value::Bool(cell.as_bool()));
        } else if (cell.is_number()) {
          // Whole numbers travel as Int (widened into DOUBLE columns).
          const double d = cell.as_number();
          tuple.push_back(d == static_cast<double>(cell.as_int())
                              ? pb::db::Value::Int(cell.as_int())
                              : pb::db::Value::Double(d));
        } else if (cell.is_string()) {
          tuple.push_back(pb::db::Value::String(cell.as_string()));
        } else {
          std::printf("cells must be scalars (null, bool, number, "
                      "string)\n");
          return;
        }
      }
      tuples.push_back(std::move(tuple));
    }
    auto outcome = engine.AppendRows(name, std::move(tuples));
    if (!outcome.ok()) {
      std::printf("%s\n", outcome.status().ToString().c_str());
      return;
    }
    std::printf("appended %zu row(s) to '%s' (%zu rows total)%s\n",
                outcome->rows, name.c_str(), outcome->table_rows,
                outcome->full_invalidation
                    ? "; table was spilled — caches fully invalidated"
                    : "");
  }

  void Stats() {
    const pb::engine::EngineStats s = engine.stats();
    std::printf("  queries %lld (errors %lld, cancelled %lld)\n",
                static_cast<long long>(s.queries),
                static_cast<long long>(s.errors),
                static_cast<long long>(s.cancelled));
    std::printf("  result cache hits %lld; warm starts %lld hit / %lld "
                "cold\n",
                static_cast<long long>(s.result_cache_hits),
                static_cast<long long>(s.warm_cache_hits),
                static_cast<long long>(s.warm_cache_misses));
    std::printf("  appends %lld (%lld rows): %lld revalidations, %lld full "
                "invalidations\n",
                static_cast<long long>(s.appends),
                static_cast<long long>(s.rows_appended),
                static_cast<long long>(s.revalidations),
                static_cast<long long>(s.maintenance_full_invalidations));
    std::printf("  block cache: %lld hits / %lld misses, %lld evictions\n",
                static_cast<long long>(s.block_cache_hits),
                static_cast<long long>(s.block_cache_misses),
                static_cast<long long>(s.block_cache_evictions));
    std::printf("  block bytes: %lld cached, %lld pinned (peak %lld)\n",
                static_cast<long long>(s.block_cache_bytes),
                static_cast<long long>(s.block_bytes_pinned),
                static_cast<long long>(s.block_peak_bytes_pinned));
  }

  /// Dispatches one complete input (a '\' command line or a ';' query).
  /// Returns false on \quit.
  bool Dispatch(const std::string& input) {
    std::string text(pb::StripAsciiWhitespace(input));
    if (text.empty()) return true;
    if (text[0] == '\\') {
      std::istringstream args(text.substr(1));
      std::string cmd;
      args >> cmd;
      if (cmd == "quit" || cmd == "q") return false;
      if (cmd == "help") Help();
      else if (cmd == "tables") Tables();
      else if (cmd == "gen") Generate(args);
      else if (cmd == "load") Load(args);
      else if (cmd == "show") Show(args);
      else if (cmd == "save") Save(args);
      else if (cmd == "spill") Spill(args);
      else if (cmd == "append") Append(args);
      else if (cmd == "stats") Stats();
      else if (cmd == "explain" || cmd == "all" || cmd == "diverse") {
        size_t k = 5;
        if (cmd != "explain") args >> k;
        std::string rest;
        std::getline(args, rest);
        while (!rest.empty() && rest.back() == ';') rest.pop_back();
        if (cmd == "explain") Explain(rest);
        else EvaluateMany(rest, k, cmd == "diverse");
      } else {
        std::printf("unknown command '\\%s' (try \\help)\n", cmd.c_str());
      }
      return true;
    }
    std::string query = text;
    while (!query.empty() && query.back() == ';') query.pop_back();
    Evaluate(query);
    return true;
  }
};

}  // namespace

int main() {
  Shell shell;
  auto preload = shell.engine.GenerateDataset("recipes", 500, 42);
  if (!preload.ok()) {
    std::fprintf(stderr, "failed to preload 'recipes': %s\n",
                 preload.status().ToString().c_str());
    return 1;
  }
  std::printf("PackageBuilder shell -- 'recipes' (500 rows) is preloaded; "
              "\\help for commands\n");
  std::string buffer;
  std::string line;
  while (true) {
    std::printf(buffer.empty() ? "pb> " : "  > ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string stripped(pb::StripAsciiWhitespace(line));
    if (buffer.empty() && (stripped.empty() || stripped[0] == '\\')) {
      if (!shell.Dispatch(stripped)) break;
      continue;
    }
    buffer += line + "\n";
    if (!stripped.empty() && stripped.back() == ';') {
      bool keep_going = shell.Dispatch(buffer);
      buffer.clear();
      if (!keep_going) break;
    }
  }
  return 0;
}
