// Investment portfolio: the paper's third motivating scenario. "The client
// has a budget of $50K, wants to invest at least 30% of the assets in
// technology, and wants a balance of short-term and long-term options. The
// broker ... needs to find a stock package that satisfies all these
// constraints collectively."
//
// Also demonstrates REPEAT (buying several lots of the same stock) and the
// LP-format dump of the translated model.

#include <cstdio>

#include "core/evaluator.h"
#include "core/translator.h"
#include "datagen/stocks.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

int main() {
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateStocks(600, /*seed=*/99));

  // 30% of the $50K budget in tech = $15K of tech lot value; short/long
  // balance within +/- 2 positions; up to 3 lots of the same stock.
  const std::string query = R"(
      SELECT PACKAGE(S) AS F
      FROM stocks S REPEAT 3
      WHERE S.risk <= 0.5
      SUCH THAT SUM(S.price) <= 50000 AND
                SUM(S.tech_value) >= 15000 AND
                SUM(S.is_short) - SUM(S.is_long) BETWEEN -2 AND 2 AND
                COUNT(*) BETWEEN 5 AND 15
      MAXIMIZE SUM(S.expected_gain)
  )";

  auto aq = pb::paql::ParseAndAnalyze(query, catalog);
  if (!aq.ok()) {
    std::printf("error: %s\n", aq.status().ToString().c_str());
    return 1;
  }

  // Peek at the constraint-optimization translation (§7 of the paper shows
  // exactly this to demo attendees).
  auto translation = pb::core::TranslateToIlp(*aq);
  if (translation.ok()) {
    std::printf("translated to a MILP with %d variables, %d constraints\n",
                translation->model.num_variables(),
                translation->model.num_constraints());
    // Print only the header of the LP dump; the full text is long.
    std::string lp = translation->model.ToLpFormat();
    std::printf("%s...\n\n", lp.substr(0, 300).c_str());
  }

  pb::core::QueryEvaluator evaluator(&catalog);
  auto r = evaluator.Evaluate(*aq);
  if (!r.ok()) {
    std::printf("no portfolio found: %s\n", r.status().ToString().c_str());
    return 1;
  }
  const auto& table = **catalog.Get("stocks");
  std::printf("expected annual gain: $%.2f  (proven optimal: %s)\n\n",
              r->objective, r->proven_optimal ? "yes" : "no");
  std::printf("%s\n", pb::core::MaterializePackage(table, r->package,
                                                   "portfolio")
                          .ToString(20)
                          .c_str());

  // Report the budget/constraint usage.
  auto report = [&](const char* label, const char* col) {
    pb::paql::AggCall agg{pb::db::AggFunc::kSum, pb::db::Col(col)};
    auto v = pb::core::EvalPackageAgg(agg, table, r->package);
    if (v.ok()) std::printf("%-18s %s\n", label, v->ToString().c_str());
  };
  report("total invested:", "price");
  report("tech exposure:", "tech_value");
  report("short positions:", "is_short");
  report("long positions:", "is_long");
  return 0;
}
