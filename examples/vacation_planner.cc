// Vacation planner: the paper's second motivating scenario. "They do not
// want to spend more than $2,000 on flights and hotels combined. They also
// want to be in walking distance from the beach, unless their budget can
// fit a rental car."
//
// The beach-unless-car condition is a genuinely disjunctive global
// constraint — it cannot go to the ILP solver, so this example exercises
// the engine's search fallback (the paper §5: "solvers cannot usually
// handle non-linear global constraints; hence evaluating such queries
// requires different methods").

#include <cstdio>

#include "core/evaluator.h"
#include "core/package.h"
#include "datagen/travel.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

int main() {
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(
      pb::datagen::GenerateTravelItems(400, /*seed=*/2026));

  // Two flights (outbound + return), one hotel bundle, at most one rental
  // car; under $2000 total; on the beach (<= 1.5 km) OR with a car.
  const std::string query = R"(
      SELECT PACKAGE(T) AS V
      FROM travel_items T
      WHERE T.dest = 'maui'
      SUCH THAT SUM(T.is_flight) = 2 AND
                SUM(T.is_hotel) = 1 AND
                SUM(T.is_car) <= 1 AND
                SUM(T.price) <= 2000 AND
                (SUM(T.beach_km) <= 1.5 OR SUM(T.is_car) = 1)
      MAXIMIZE SUM(T.comfort)
  )";

  auto aq = pb::paql::ParseAndAnalyze(query, catalog);
  if (!aq.ok()) {
    std::printf("error: %s\n", aq.status().ToString().c_str());
    return 1;
  }
  std::printf("ILP-translatable: %s (%s)\n",
              aq->ilp_translatable ? "yes" : "no",
              aq->not_translatable_reason.c_str());

  pb::core::QueryEvaluator evaluator(&catalog);
  pb::core::EvaluationOptions opts;
  opts.local_search.max_restarts = 24;
  opts.local_search.time_limit_s = 20.0;
  opts.brute_force.time_limit_s = 30.0;
  auto r = evaluator.Evaluate(*aq, opts);
  if (!r.ok()) {
    std::printf("no vacation package found: %s\n",
                r.status().ToString().c_str());
    return 1;
  }
  const auto& table = **catalog.Get("travel_items");
  std::printf("strategy: %s   comfort score: %.1f\n\n",
              pb::core::StrategyToString(r->strategy_used), r->objective);
  std::printf("%s\n",
              pb::core::MaterializePackage(table, r->package, "vacation")
                  .ToString()
                  .c_str());

  // Show the disjunction's resolution.
  pb::paql::AggCall beach{pb::db::AggFunc::kSum, pb::db::Col("beach_km")};
  pb::paql::AggCall car{pb::db::AggFunc::kSum, pb::db::Col("is_car")};
  auto beach_v = pb::core::EvalPackageAgg(beach, table, r->package);
  auto car_v = pb::core::EvalPackageAgg(car, table, r->package);
  if (beach_v.ok() && car_v.ok()) {
    std::printf("beach distance total: %s km, rental cars: %s -> %s\n",
                beach_v->ToString().c_str(), car_v->ToString().c_str(),
                car_v->is_numeric() &&
                        car_v->Compare(pb::db::Value::Int(1)) >= 0
                    ? "farther stay is fine (car included)"
                    : "walking distance to the beach");
  }
  return 0;
}
