// Quickstart: the smallest complete PackageBuilder program.
//
// Loads a synthetic recipe table, runs the paper's §2 meal-plan query, and
// prints the resulting package. Build and run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/evaluator.h"
#include "core/package.h"
#include "datagen/recipes.h"
#include "db/catalog.h"

int main() {
  // 1. A catalog with one relation (normally you would ReadCsvFile here).
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(500, /*seed=*/42));

  // 2. The paper's example query, verbatim PaQL.
  const std::string query = R"(
      SELECT PACKAGE(R) AS P
      FROM Recipes R
      WHERE R.gluten = 'free'
      SUCH THAT COUNT(*) = 3 AND
                SUM(P.calories) BETWEEN 2000 AND 2500
      MAXIMIZE SUM(P.protein)
  )";

  // 3. Evaluate (the Auto strategy picks pruning + ILP here).
  pb::core::QueryEvaluator evaluator(&catalog);
  auto result = evaluator.Evaluate(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the answer.
  const auto& table = **catalog.Get("recipes");
  std::printf("strategy: %s   optimal: %s   %.2f ms\n",
              pb::core::StrategyToString(result->strategy_used),
              result->proven_optimal ? "yes" : "no",
              result->seconds * 1e3);
  std::printf("cardinality bounds from pruning: %s\n",
              result->bounds.ToString().c_str());
  std::printf("total protein: %.1f g\n\n", result->objective);
  std::printf("%s\n",
              pb::core::MaterializePackage(table, result->package, "meal_plan")
                  .ToString()
                  .c_str());
  return 0;
}
