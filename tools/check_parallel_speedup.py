#!/usr/bin/env python3
"""Report (and optionally assert) the parallel tree-search speedup from a
bench_solver JSON run.

Usage:
    tools/check_parallel_speedup.py BENCH.json [--min-speedup 2.0]
                                               [--min-cores 4]

Reads the BM_MilpParallelTree arms' nodes_per_sec counters and prints the
per-arm throughput and the speedup of every threaded arm over the 1-thread
arm. Exits 1 when the highest-thread arm is below --min-speedup — unless
the host has fewer than --min-cores CPUs, where the bar is unreachable by
construction (speculation shares the committing thread's core) and the
check reports and skips. The deterministic counters are gated separately
by check_bench_regression.py; this script is the wall-clock side.
"""

import argparse
import json
import os
import re
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="required highest-arm speedup over 1 thread")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="skip the assertion below this CPU count")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        data = json.load(f)
    arms = {}
    for bench in data.get("benchmarks", []):
        # Skip mean/median/stddev aggregate rows from --benchmark_repetitions
        # runs; only per-run entries carry a meaningful nodes_per_sec.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        m = re.match(r"BM_MilpParallelTree/(\d+)", bench.get("name", ""))
        if m and "nodes_per_sec" in bench:
            arms[int(m.group(1))] = float(bench["nodes_per_sec"])
    if 1 not in arms or len(arms) < 2:
        print("FAIL: BM_MilpParallelTree arms not found in "
              f"{args.bench_json} — run bench_solver with a filter that "
              "includes them")
        return 1

    base = arms[1]
    top = max(arms)
    for threads in sorted(arms):
        print(f"  {threads:2d} thread(s): {arms[threads]:12.0f} nodes/sec "
              f"({arms[threads] / base:.2f}x vs 1 thread)")
    speedup = arms[top] / base
    cores = os.cpu_count() or 1
    if cores < args.min_cores:
        print(f"SKIP: host has {cores} CPU(s) < {args.min_cores} — the "
              f"{args.min_speedup:.1f}x bar needs real cores (speculation "
              "shares the committing thread's core here)")
        return 0
    if speedup < args.min_speedup:
        print(f"FAIL: {top}-thread arm is {speedup:.2f}x vs the required "
              f"{args.min_speedup:.1f}x on a {cores}-core host")
        return 1
    print(f"OK: {top}-thread arm is {speedup:.2f}x "
          f">= {args.min_speedup:.1f}x on a {cores}-core host")
    return 0


if __name__ == "__main__":
    sys.exit(main())
