#!/usr/bin/env python3
"""Per-directory line-coverage gate for the tier-1 test suite.

CI builds with -DPB_COVERAGE=ON (Clang: source-based instrumentation),
runs ctest, exports one llvm-cov JSON summary over every test binary, and
gates it against the checked-in floors:

    llvm-cov export -summary-only -format=json \
        -instr-profile merged.profdata ./test_foo -object ./test_bar ... \
        > coverage.json
    python3 tools/check_coverage.py coverage.json

Floors live in tools/coverage_floors.json, keyed by source directory
("src/core", "src/db", ...) with a minimum line-coverage percentage each.
A directory dropping below its floor fails the gate; directories without a
floor are reported but never fail (new code earns a floor when it is
seeded). Floors are deliberately a few points below measured coverage so
the gate catches "forgot to test the new subsystem", not formatting churn.

Seeding / refreshing floors (works with a GCC --coverage build too, via
gcov's JSON output — handy where only GCC is installed):

    cmake -B build-cov -S . -DPB_COVERAGE=ON && cmake --build build-cov
    (cd build-cov && ctest && gcov --json-format -r \
        $(find . -name '*.gcno') >/dev/null)
    python3 tools/check_coverage.py --gcov-dir build-cov \
        --write-floors --margin 10

Exit codes: 0 = every floored directory at or above its floor,
1 = a floor violated (or the report was empty), 2 = usage error.
"""

import argparse
import glob
import gzip
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FLOORS_PATH = os.path.join(REPO_ROOT, "tools", "coverage_floors.json")


def source_dir(path):
    """Maps an absolute/relative source path to its floor key ("src/core"),
    or None for files outside src/ (tests, examples, system headers)."""
    path = os.path.normpath(path)
    if path.startswith(REPO_ROOT):
        path = os.path.relpath(path, REPO_ROOT)
    parts = path.split(os.sep)
    if "src" in parts:
        i = parts.index("src")
        if i + 1 < len(parts) - 1:  # src/<dir>/<file...>
            return os.path.join("src", parts[i + 1])
    return None


def load_llvm_export(path):
    """Per-file (lines_total, lines_covered) from `llvm-cov export
    -summary-only -format=json`."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for export in data.get("data", []):
        for entry in export.get("files", []):
            lines = entry.get("summary", {}).get("lines", {})
            out[entry["filename"]] = (int(lines.get("count", 0)),
                                      int(lines.get("covered", 0)))
    return out


def load_gcov_dir(build_dir):
    """Per-file (lines_total, lines_covered) from gcov --json-format output
    (*.gcov.json.gz files under build_dir)."""
    out = {}
    for path in glob.glob(os.path.join(build_dir, "**", "*.gcov.json.gz"),
                          recursive=True):
        with gzip.open(path, "rt") as f:
            data = json.load(f)
        for entry in data.get("files", []):
            lines = [l for l in entry.get("lines", [])]
            if not lines:
                continue
            total = len(lines)
            covered = sum(1 for l in lines if l.get("count", 0) > 0)
            # The same source file appears once per including translation
            # unit; keep the best observation (a line is covered if any
            # test binary executed it — mirrors llvm-cov's merged view
            # closely enough for a floor gate).
            prev = out.get(entry["file"])
            if prev is None or covered * max(prev[0], 1) > prev[1] * total:
                out[entry["file"]] = (total, covered)
    return out


def aggregate(per_file):
    """Collapses per-file line counts into {floor_key: percent}."""
    totals = {}
    for path, (count, covered) in per_file.items():
        key = source_dir(path)
        if key is None or count == 0:
            continue
        t, c = totals.get(key, (0, 0))
        totals[key] = (t + count, c + covered)
    return {key: 100.0 * c / t for key, (t, c) in totals.items() if t > 0}


def main():
    parser = argparse.ArgumentParser(
        description="Per-directory line-coverage floor gate")
    parser.add_argument("report", nargs="?",
                        help="llvm-cov export JSON (CI mode)")
    parser.add_argument("--gcov-dir",
                        help="build dir with gcov --json-format output "
                             "(GCC mode)")
    parser.add_argument("--floors", default=FLOORS_PATH,
                        help="floors file (default tools/coverage_floors."
                             "json)")
    parser.add_argument("--write-floors", action="store_true",
                        help="write measured coverage minus --margin as "
                             "the new floors instead of gating")
    parser.add_argument("--margin", type=float, default=10.0,
                        help="points subtracted from measured coverage "
                             "when seeding floors (default 10)")
    args = parser.parse_args()

    if bool(args.report) == bool(args.gcov_dir):
        parser.error("pass exactly one of <report> or --gcov-dir")
    try:
        per_file = (load_llvm_export(args.report) if args.report
                    else load_gcov_dir(args.gcov_dir))
    except (OSError, ValueError, KeyError) as e:
        print(f"FAIL: cannot load coverage report: {e}")
        return 1
    measured = aggregate(per_file)
    if not measured:
        print("FAIL: the coverage report contains no src/ files — "
              "empty or mis-pathed report (a gate that measures nothing "
              "must not pass)")
        return 1

    if args.write_floors:
        floors = {key: round(max(pct - args.margin, 1.0), 1)
                  for key, pct in sorted(measured.items())}
        with open(args.floors, "w") as f:
            json.dump(floors, f, indent=2, sort_keys=True)
            f.write("\n")
        for key, pct in sorted(measured.items()):
            print(f"{key}: measured {pct:.1f}% -> floor {floors[key]}%")
        print(f"wrote {args.floors}")
        return 0

    try:
        with open(args.floors) as f:
            floors = json.load(f)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot load floors file {args.floors}: {e}")
        return 1
    failures = []
    for key in sorted(set(floors) | set(measured)):
        floor = floors.get(key)
        pct = measured.get(key)
        if floor is None:
            print(f"[note] {key}: {pct:.1f}% (no floor yet — seed one "
                  "with --write-floors)")
        elif pct is None:
            failures.append(f"{key}: floored at {floor}% but absent from "
                            "the report — coverage collection lost it")
        elif pct < float(floor):
            failures.append(f"{key}: {pct:.1f}% < floor {floor}%")
        else:
            print(f"[ok] {key}: {pct:.1f}% (floor {floor}%)")
    if failures:
        print(f"\n{len(failures)} coverage floor violation(s):")
        for failure in failures:
            print(f"  FAIL {failure}")
        return 1
    print("OK: every floored directory at or above its floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
