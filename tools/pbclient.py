#!/usr/bin/env python3
"""pbclient — command-line client for the pbserve package-query server.

Speaks the newline-framed JSON protocol (src/server/protocol.h): one JSON
request per line, one envelope per line back:

    {"ok": true,  "result": {...}}
    {"ok": false, "error": {"code": "<StatusCode>", "message": "..."}}

Usage:
    pbclient.py --port 7781 hello
    pbclient.py --port 7781 tables
    pbclient.py --port 7781 gen recipes 500 42
    pbclient.py --port 7781 append recipes '[[1, 2.5, "x"], [2, 3.0, "y"]]'
    pbclient.py --port 7781 query 'SELECT PACKAGE(R) FROM recipes R ...' \
        [--session N] [--time-limit S] [--max-nodes N] [--threads T]
    pbclient.py --port 7781 cancel --session N
    pbclient.py --port 7781 stats
    pbclient.py --port 7781 raw '{"op":"query","paql":"..."}'

For CI assertions, --expect checks the envelope and sets the exit code:
    --expect ok                      envelope must have ok == true
    --expect error:ResourceExhausted envelope must be that error code

Exit codes: 0 = expectation met (or no --expect and envelope ok),
1 = envelope mismatch / error, 2 = transport or usage error.

Standard library only; no third-party dependencies.
"""

import argparse
import json
import socket
import sys


class Client:
    """One connection; request() sends a line and reads one envelope."""

    def __init__(self, host, port, timeout):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.file = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def request(self, obj):
        self.file.write(json.dumps(obj) + "\n")
        self.file.flush()
        line = self.file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def close(self):
        try:
            self.file.close()
        finally:
            self.sock.close()


def build_request(args):
    if args.command == "hello":
        return {"op": "hello"}
    if args.command == "tables":
        return {"op": "tables"}
    if args.command == "stats":
        return {"op": "stats"}
    if args.command == "cancel":
        return {"op": "cancel", "session": args.session}
    if args.command == "gen":
        if len(args.args) < 1:
            sys.exit("usage: gen <kind> [n] [seed]")
        req = {"op": "gen", "kind": args.args[0]}
        if len(args.args) > 1:
            req["n"] = int(args.args[1])
        if len(args.args) > 2:
            req["seed"] = int(args.args[2])
        return req
    if args.command == "append":
        if len(args.args) != 2:
            sys.exit("usage: append <table> '<json array of row arrays>'")
        try:
            rows = json.loads(args.args[1])
        except ValueError as e:
            sys.exit(f"append: rows must be valid JSON: {e}")
        if not isinstance(rows, list):
            sys.exit("append: rows must be a JSON array of row arrays")
        return {"op": "append", "table": args.args[0], "rows": rows}
    if args.command == "query":
        if len(args.args) != 1:
            sys.exit("usage: query '<paql text>'")
        req = {"op": "query", "paql": args.args[0]}
        if args.session:
            req["session"] = args.session
        budget = {}
        if args.time_limit is not None:
            budget["time_limit_s"] = args.time_limit
        if args.max_nodes is not None:
            budget["max_nodes"] = args.max_nodes
        if args.threads is not None:
            budget["threads"] = args.threads
        if budget:
            req["budget"] = budget
        return req
    if args.command == "raw":
        if len(args.args) != 1:
            sys.exit("usage: raw '<json request>'")
        return json.loads(args.args[0])
    sys.exit(f"unknown command '{args.command}'")


def check_expectation(envelope, expect):
    """Returns (met, explanation)."""
    if expect == "ok":
        return bool(envelope.get("ok")), "expected ok envelope"
    if expect.startswith("error:"):
        want = expect.split(":", 1)[1]
        if envelope.get("ok"):
            return False, f"expected error code {want}, got ok envelope"
        code = envelope.get("error", {}).get("code", "")
        return code == want, f"expected error code {want}, got {code!r}"
    sys.exit(f"bad --expect value {expect!r} (use ok or error:<Code>)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--session", type=int, default=0)
    parser.add_argument("--time-limit", type=float, dest="time_limit")
    parser.add_argument("--max-nodes", type=int, dest="max_nodes")
    parser.add_argument("--threads", type=int)
    parser.add_argument("--expect",
                        help="assert the envelope: ok | error:<Code>")
    parser.add_argument("command",
                        choices=["hello", "tables", "stats", "cancel",
                                 "gen", "append", "query", "raw"])
    parser.add_argument("args", nargs="*")
    args = parser.parse_args()

    try:
        client = Client(args.host, args.port, args.timeout)
    except OSError as e:
        sys.exit(f"pbclient: cannot connect to "
                 f"{args.host}:{args.port}: {e}")

    try:
        envelope = client.request(build_request(args))
    except (OSError, ValueError, ConnectionError) as e:
        sys.exit(f"pbclient: transport error: {e}")
    finally:
        client.close()

    print(json.dumps(envelope, indent=2))
    if args.expect:
        met, why = check_expectation(envelope, args.expect)
        if not met:
            print(f"pbclient: FAILED: {why}", file=sys.stderr)
            return 1
        return 0
    return 0 if envelope.get("ok") else 1


if __name__ == "__main__":
    sys.exit(main())
