// pbserve — the PackageBuilder package-query server.
//
// Serves PaQL over newline-framed JSON on TCP (see src/server/protocol.h
// for the wire protocol and docs/adr/0001-error-envelopes.md for the
// envelope contract). Drive it with tools/pbclient.py:
//
//   ./build/pbserve --port 7781 --preload recipes:500:42 &
//   tools/pbclient.py --port 7781 query \
//     'SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3
//      MAXIMIZE SUM(protein)'
//
// Flags:
//   --port N               listen port (default 7781; 0 = ephemeral)
//   --host A               bind address (default 127.0.0.1)
//   --threads N            engine worker threads (default: hardware)
//   --max-pending N        query admission-queue bound (default 32)
//   --max-connections N    concurrent-connection cap (default 32)
//   --time-limit S         default per-query wall-clock budget (seconds)
//   --preload kind:n:seed  generate a dataset at startup (repeatable);
//                          kind in recipes|travel|stocks|lineitem
//   --load path:name       load a CSV at startup (repeatable)
//
// Prints "pbserve listening on HOST:PORT" on stdout when ready, then
// serves until SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void OnSignal(int) { g_stop = 1; }

/// Splits "a:b:c" on ':'.
std::vector<std::string> SplitColon(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == ':') {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

bool Preload(pb::engine::Engine* engine, const std::string& spec) {
  std::vector<std::string> parts = SplitColon(spec);
  const std::string kind = parts.empty() ? "" : parts[0];
  const size_t n = parts.size() > 1 ? std::strtoull(parts[1].c_str(),
                                                    nullptr, 10)
                                    : 1000;
  const uint64_t seed = parts.size() > 2
                            ? std::strtoull(parts[2].c_str(), nullptr, 10)
                            : 42;
  auto rows = engine->GenerateDataset(kind, n, seed);
  if (!rows.ok()) {
    std::fprintf(stderr, "pbserve: --preload %s: %s\n", spec.c_str(),
                 rows.status().ToString().c_str());
    return false;
  }
  std::printf("pbserve: preloaded %s (%zu rows, seed %llu)\n", kind.c_str(),
              *rows, static_cast<unsigned long long>(seed));
  return true;
}

bool LoadCsv(pb::engine::Engine* engine, const std::string& spec) {
  std::vector<std::string> parts = SplitColon(spec);
  if (parts.size() != 2) {
    std::fprintf(stderr, "pbserve: --load wants path:name, got '%s'\n",
                 spec.c_str());
    return false;
  }
  auto rows = engine->LoadCsv(parts[0], parts[1]);
  if (!rows.ok()) {
    std::fprintf(stderr, "pbserve: --load %s: %s\n", spec.c_str(),
                 rows.status().ToString().c_str());
    return false;
  }
  std::printf("pbserve: loaded %s as '%s' (%zu rows)\n", parts[0].c_str(),
              parts[1].c_str(), *rows);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pb::engine::EngineOptions engine_options;
  pb::server::ServerOptions server_options;
  server_options.port = 7781;
  std::vector<std::string> preloads;
  std::vector<std::string> loads;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--port") {
      server_options.port = std::atoi(next());
    } else if (arg == "--host") {
      server_options.host = next();
    } else if (arg == "--threads") {
      engine_options.num_threads = std::atoi(next());
    } else if (arg == "--max-pending") {
      engine_options.max_pending_queries =
          static_cast<size_t>(std::atoi(next()));
    } else if (arg == "--max-connections") {
      server_options.max_connections = std::atoi(next());
    } else if (arg == "--time-limit") {
      engine_options.defaults.milp.time_limit_s = std::atof(next());
    } else if (arg == "--preload") {
      preloads.push_back(next());
    } else if (arg == "--load") {
      loads.push_back(next());
    } else {
      std::fprintf(stderr, "pbserve: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  pb::engine::Engine engine(engine_options);
  for (const std::string& spec : preloads) {
    if (!Preload(&engine, spec)) return 1;
  }
  for (const std::string& spec : loads) {
    if (!LoadCsv(&engine, spec)) return 1;
  }

  pb::server::Server server(&engine, server_options);
  pb::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "pbserve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("pbserve listening on %s:%d\n", server_options.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  sigset_t mask;
  sigemptyset(&mask);
  while (g_stop == 0) {
    sigsuspend(&mask);  // sleep until a signal arrives
  }
  std::printf("pbserve: shutting down\n");
  server.Stop();
  return 0;
}
