#!/usr/bin/env python3
"""Unit tests for tools/check_bench_regression.py.

The gate runs unattended in CI, so every malformed input must come back as
a contextual FAIL (exit 1 with an explanation), never a traceback — a
crashing gate reads as infrastructure flake and gets retried instead of
investigated. Run directly or via ctest (registered as
test_check_bench_regression):

    python3 tools/test_check_bench_regression.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "check_bench_regression.py")


def bench_file(benchmarks):
    """A minimal Google Benchmark JSON document."""
    return {"context": {"executable": "./bench_solver"},
            "benchmarks": benchmarks}


def entry(name, **counters):
    e = {"name": name, "run_type": "iteration", "iterations": 1,
         "real_time": 1.0, "cpu_time": 1.0, "time_unit": "ms"}
    e.update(counters)
    return e


class CheckerTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, leaf, payload):
        p = os.path.join(self.dir.name, leaf)
        with open(p, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return p

    def run_checker(self, baseline, new, *extra):
        proc = subprocess.run(
            [sys.executable, CHECKER, baseline, new, *extra],
            capture_output=True, text=True)
        return proc

    def assert_fails_cleanly(self, proc, *fragments):
        """Exit 1, a FAIL line mentioning every fragment, and no traceback."""
        self.assertEqual(proc.returncode, 1,
                         f"stdout={proc.stdout!r} stderr={proc.stderr!r}")
        self.assertNotIn("Traceback", proc.stderr)
        self.assertNotIn("Traceback", proc.stdout)
        self.assertIn("FAIL", proc.stdout)
        for fragment in fragments:
            self.assertIn(fragment, proc.stdout)

    # ----- happy paths -----------------------------------------------------

    def test_identical_counters_pass(self):
        doc = bench_file([entry("BM_X/0", lp_iterations=100, objective=5.0)])
        proc = self.run_checker(self.path("base.json", doc),
                                self.path("new.json", doc))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("OK", proc.stdout)

    def test_improvement_is_a_note_not_a_failure(self):
        base = bench_file([entry("BM_X/0", lp_iterations=1000)])
        new = bench_file([entry("BM_X/0", lp_iterations=100)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assertEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("improvement", proc.stdout)

    # ----- genuine regressions ---------------------------------------------

    def test_work_counter_regression_fails(self):
        base = bench_file([entry("BM_X/0", lp_iterations=100)])
        new = bench_file([entry("BM_X/0", lp_iterations=200)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "BM_X/0", "lp_iterations",
                                  "REGRESSION")

    def test_maintenance_canary_drift_fails_both_ways(self):
        # groups_reused is a determinism canary: reuse INCREASING without a
        # conscious baseline refresh is as suspect as it decreasing.
        for drifted in (0, 9):
            base = bench_file([entry("BM_Incr/1", groups_reused=4)])
            new = bench_file([entry("BM_Incr/1", groups_reused=drifted)])
            proc = self.run_checker(self.path("base.json", base),
                                    self.path("new.json", new))
            self.assert_fails_cleanly(proc, "BM_Incr/1", "groups_reused",
                                      "canary")

    def test_objective_drift_fails(self):
        base = bench_file([entry("BM_X/0", objective=100.0)])
        new = bench_file([entry("BM_X/0", objective=100.1)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "BM_X/0", "different optimum")

    def test_empty_overlap_fails(self):
        base = bench_file([entry("BM_Old/0", lp_iterations=1)])
        new = bench_file([entry("BM_New/0", lp_iterations=1)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "compared", "nothing")

    # ----- malformed inputs: contextual failures, never tracebacks ---------

    def test_counter_in_baseline_missing_from_new_run_fails_with_context(self):
        # The baseline names a counter the fresh run no longer exports — the
        # gate must report lost coverage (with benchmark and counter named),
        # not crash or silently shrink.
        base = bench_file([entry("BM_X/0", lp_iterations=100)])
        new = bench_file([entry("BM_X/0")])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "BM_X/0", "lp_iterations",
                                  "coverage lost")

    def test_nameless_benchmark_entry_fails_with_context(self):
        nameless = {"run_type": "iteration", "lp_iterations": 5}
        base = bench_file([entry("BM_X/0", lp_iterations=5), nameless])
        new = bench_file([entry("BM_X/0", lp_iterations=5)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "base.json", "no 'name'")

    def test_missing_file_fails_with_context(self):
        doc = bench_file([entry("BM_X/0", lp_iterations=5)])
        proc = self.run_checker(os.path.join(self.dir.name, "absent.json"),
                                self.path("new.json", doc))
        self.assert_fails_cleanly(proc, "absent.json", "cannot read")

    def test_malformed_json_fails_with_context(self):
        doc = bench_file([entry("BM_X/0", lp_iterations=5)])
        proc = self.run_checker(self.path("base.json", doc),
                                self.path("new.json", "{truncated"))
        self.assert_fails_cleanly(proc, "new.json", "malformed")

    def test_wrong_shape_fails_with_context(self):
        doc = bench_file([entry("BM_X/0", lp_iterations=5)])
        proc = self.run_checker(self.path("base.json", doc),
                                self.path("new.json", [1, 2, 3]))
        self.assert_fails_cleanly(proc, "new.json",
                                  "not a Google Benchmark JSON")

    def test_non_numeric_counter_fails_with_context(self):
        base = bench_file([entry("BM_X/0", lp_iterations=100)])
        new = bench_file([entry("BM_X/0", lp_iterations="lots")])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "BM_X/0", "lp_iterations",
                                  "not numeric")

    def test_non_numeric_objective_fails_with_context(self):
        base = bench_file([entry("BM_X/0", objective=1.0)])
        new = bench_file([entry("BM_X/0", objective=None)])
        proc = self.run_checker(self.path("base.json", base),
                                self.path("new.json", new))
        self.assert_fails_cleanly(proc, "BM_X/0", "objective", "not numeric")


if __name__ == "__main__":
    unittest.main()
