#!/usr/bin/env python3
"""Lint: raw standard-library synchronization primitives are banned.

Every mutex, shared_mutex, and condition variable in this codebase must be
one of the annotated wrappers from src/common/annotations.h (pb::Mutex,
pb::SharedMutex, pb::CondVar, and the scoped lockers). A raw std primitive
is invisible to Clang's thread-safety analysis, so a single stray
std::mutex member silently exempts its guarded state from the
-Wthread-safety CI lane. This script fails the build when one appears.

Scanned: src/ (recursively) and tools/*.cc. The wrapper header itself
(src/common/annotations.h) is the one place allowed to name std types.
Tests, benchmarks, and fuzzers are exempt: they may exercise raw
primitives deliberately (e.g. hammering a wrapper from std::threads).

Usage: python3 tools/check_annotations.py [repo_root]
Exit status: 0 clean, 1 violations found.
"""

import pathlib
import re
import sys

BANNED = re.compile(
    r"\bstd\s*::\s*("
    r"mutex|shared_mutex|timed_mutex|recursive_mutex|shared_timed_mutex|"
    r"condition_variable|condition_variable_any|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock"
    r")\b"
)

BANNED_INCLUDE = re.compile(r'#\s*include\s*[<"](mutex|shared_mutex|condition_variable)[>"]')

ALLOWED = {pathlib.PurePosixPath("src/common/annotations.h")}


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            end = n if j < 0 else j + 2
            out.append("".join("\n" if ch == "\n" else " " for ch in text[i:end]))
            i = end
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            i = min(j + 1, n)
            out.append(" " * 2)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_file(root: pathlib.Path, rel: pathlib.PurePosixPath) -> list:
    text = (root / rel).read_text(encoding="utf-8", errors="replace")
    # Includes are checked on raw text (strings would not hide them anyway);
    # identifier uses on comment/string-stripped text to avoid false hits in
    # documentation prose.
    violations = []
    stripped = strip_comments_and_strings(text)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        m = BANNED.search(line)
        if m:
            violations.append((rel, lineno, f"raw std::{m.group(1)}"))
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = BANNED_INCLUDE.search(line)
        if m:
            violations.append((rel, lineno, f"#include <{m.group(1)}>"))
    return violations


def main() -> int:
    root = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(
        __file__).resolve().parent.parent
    files = sorted(
        p for p in (root / "src").rglob("*")
        if p.suffix in (".h", ".cc") and p.is_file())
    files += sorted((root / "tools").glob("*.cc"))
    violations = []
    for path in files:
        rel = pathlib.PurePosixPath(path.relative_to(root).as_posix())
        if rel in ALLOWED:
            continue
        violations.extend(check_file(root, rel))
    if violations:
        print("check_annotations: raw synchronization primitives found.")
        print("Use pb::Mutex / pb::SharedMutex / pb::CondVar / pb::MutexLock")
        print("from src/common/annotations.h so the thread-safety analysis")
        print("can see them:\n")
        for rel, lineno, what in violations:
            print(f"  {rel}:{lineno}: {what}")
        return 1
    print(f"check_annotations: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
