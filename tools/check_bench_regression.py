#!/usr/bin/env python3
"""Compare deterministic solver counters between two Google Benchmark JSON
files and fail on regressions.

Usage:
    tools/check_bench_regression.py BASELINE.json NEW.json [--threshold 0.10]

Run it locally exactly as CI does:
    ./build/bench_solver --benchmark_format=json \
        --benchmark_out=/tmp/bench_solver.json --benchmark_min_time=0.05
    python3 tools/check_bench_regression.py BENCH_solver.json \
        /tmp/bench_solver.json

Only counters that are deterministic functions of the model and options are
compared — simplex iteration counts, branch-and-bound node counts, presolve
tallies, objectives. Wall-clock fields (real_time, cpu_time, the adaptive
repetition count) and timing-dependent diagnostics (speculative_lps) are
never compared: CI runners are noisy, counters are not.

Verdicts per benchmark present in both files:
  * work counters (lp_iterations, lp_dual_iterations, bnb_nodes) higher
    than baseline by more than the threshold  -> FAIL (a regression);
    lower by more than the threshold          -> note ("improvement —
    refresh the baseline"), not a failure.
  * presolve counters drifting more than the threshold either way -> FAIL
    (they are determinism canaries: any drift means the search changed and
    the checked-in baseline must be refreshed consciously).
  * objective drifting beyond 1e-6 relative -> FAIL (a different optimum
    is a correctness signal, not a perf one).
Benchmarks present in only one file are reported but never fail the gate
(CI runs a filtered subset of the full checked-in baseline) — except when
NOTHING overlaps, which fails: a gate that compared zero benchmarks is a
filter/baseline mismatch, not a pass.
"""

import argparse
import json
import sys


class BenchFileError(Exception):
    """A benchmark JSON file that cannot be gated: missing, malformed, or
    structurally broken (e.g. a nameless entry). Reported as a failure with
    context instead of a traceback — a gate that crashes reads as CI flake,
    a gate that explains itself reads as what it is."""

# Higher-is-worse effort counters: only increases beyond the threshold fail.
# refactorizations/basis_updates are the factorization layer's work metric
# (deterministic, like the iteration counts — see LpSolution).
# block_reads is the storage layer's: segment-file block fetches (cache
# misses) during a cold solve, deterministic for a fixed table + block
# size + cache budget under a single-threaded solve.
WORK_COUNTERS = ("lp_iterations", "lp_dual_iterations", "bnb_nodes",
                 "refactorizations", "basis_updates", "block_reads")
# Symmetric determinism canaries: any drift beyond the threshold fails.
# zone_map_skipped_blocks is layout-independent (resident columns carry
# the same zone maps as spilled ones), so any drift means the pruner's
# zone path changed, not that the data moved.
CANARY_COUNTERS = ("presolve_fixed_bounds", "presolve_infeasible_children",
                   "zone_map_skipped_blocks",
                   # Incremental-maintenance partition counters: reuse and
                   # dirtiness are deterministic functions of the append
                   # sequence, so any drift means the maintenance path
                   # changed behaviour, not that the machine got slower.
                   "groups_reused", "dirty_groups")
OBJECTIVE_REL_TOL = 1e-6


def load_benchmarks(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise BenchFileError(f"{path}: cannot read benchmark JSON: {e}")
    except ValueError as e:
        raise BenchFileError(f"{path}: malformed benchmark JSON: {e}")
    if not isinstance(data, dict) or not isinstance(
            data.get("benchmarks", []), list):
        raise BenchFileError(
            f"{path}: not a Google Benchmark JSON file "
            "(expected an object with a 'benchmarks' array)")
    out = {}
    for i, bench in enumerate(data.get("benchmarks", [])):
        if not isinstance(bench, dict):
            raise BenchFileError(
                f"{path}: benchmarks[{i}] is not an object")
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        if not isinstance(name, str) or not name:
            raise BenchFileError(
                f"{path}: benchmarks[{i}] has no 'name' — cannot be "
                "matched against the baseline (truncated or hand-edited "
                "file?)")
        out[name] = bench
    return out


def as_number(path, name, counter, value):
    """A counter that is not a number cannot be gated; fail with context."""
    try:
        return float(value)
    except (TypeError, ValueError):
        raise BenchFileError(
            f"{path}: {name}: counter {counter} is not numeric "
            f"({value!r}) — cannot compare against the baseline")


def main():
    parser = argparse.ArgumentParser(
        description="Deterministic-counter benchmark regression gate")
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative drift allowed on counters "
                             "(default 0.10 = 10%%)")
    args = parser.parse_args()

    try:
        base = load_benchmarks(args.baseline)
        new = load_benchmarks(args.new)
    except BenchFileError as e:
        print(f"FAIL: {e}")
        return 1
    failures = []
    notes = []

    for name in sorted(set(base) | set(new)):
        if name not in new:
            notes.append(f"{name}: only in baseline (not run here)")
            continue
        if name not in base:
            notes.append(f"{name}: new benchmark with no baseline yet")
            continue
        b, n = base[name], new[name]
        for counter in WORK_COUNTERS + CANARY_COUNTERS:
            if counter not in b:
                continue  # baseline never tracked it for this benchmark
            if counter not in n:
                # A tracked counter vanishing (rename, dropped export) must
                # not silently shrink the gate's coverage.
                failures.append(
                    f"{name}: counter {counter} present in baseline but "
                    "missing from the new run — gate coverage lost")
                continue
            try:
                bv = as_number(args.baseline, name, counter, b[counter])
                nv = as_number(args.new, name, counter, n[counter])
            except BenchFileError as e:
                failures.append(str(e))
                continue
            scale = max(abs(bv), 1.0)
            drift = (nv - bv) / scale
            what = f"{name}: {counter} {bv:g} -> {nv:g} ({drift:+.1%})"
            if counter in WORK_COUNTERS:
                if drift > args.threshold:
                    failures.append(what + " REGRESSION")
                elif drift < -args.threshold:
                    notes.append(what + " improvement — refresh the baseline")
            elif abs(drift) > args.threshold:
                failures.append(what + " drift (determinism canary)")
        if "objective" in b:
            if "objective" not in n:
                failures.append(
                    f"{name}: counter objective present in baseline but "
                    "missing from the new run — gate coverage lost")
            else:
                try:
                    bv = as_number(args.baseline, name, "objective",
                                   b["objective"])
                    nv = as_number(args.new, name, "objective",
                                   n["objective"])
                except BenchFileError as e:
                    failures.append(str(e))
                else:
                    if abs(nv - bv) > OBJECTIVE_REL_TOL * max(abs(bv), 1.0):
                        failures.append(
                            f"{name}: objective {bv!r} -> {nv!r} — "
                            "different optimum")

    for note in notes:
        print(f"[note] {note}")
    compared = set(base) & set(new)
    if not compared:
        # A gate that compares nothing must not pass: an empty overlap
        # means the CI filter and the checked-in baseline have drifted
        # apart (rename, filter typo, name-suffix change) and every run
        # would be vacuously green.
        print("FAIL: no benchmark names in common between "
              f"{args.baseline} and {args.new} — the gate compared "
              "nothing; realign the benchmark filter with the baseline.")
        return 1
    if failures:
        print(f"\n{len(failures)} counter regression(s) vs {args.baseline}:")
        for failure in failures:
            print(f"  FAIL {failure}")
        print("\nIf the change is intentional, refresh the checked-in "
              "baseline with the command in this script's docstring.")
        return 1
    print(f"OK: deterministic counters within {args.threshold:.0%} of "
          f"{args.baseline} ({len(compared)} benchmarks compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
