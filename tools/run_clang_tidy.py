#!/usr/bin/env python3
"""Parallel clang-tidy driver for the CI gate.

Runs the checked-in .clang-tidy configuration over every git-tracked
translation unit under src/, using the compile_commands.json of an
existing build directory. Diagnostics from the correctness families
(WarningsAsErrors in .clang-tidy) fail the run; the rest are printed as
advice. One failing file does not stop the others — the gate reports
everything at once.

Usage:
  python3 tools/run_clang_tidy.py --build-dir build-tsa [-j N] [files...]

With no explicit files, all tracked src/**/*.cc are checked (headers ride
along via HeaderFilterRegex). Pass changed files for a quicker local loop.
"""

import argparse
import concurrent.futures
import os
import pathlib
import shutil
import subprocess
import sys

TIDY_CANDIDATES = ("clang-tidy-18", "clang-tidy")


def find_tidy() -> str:
    for candidate in TIDY_CANDIDATES:
        if shutil.which(candidate):
            return candidate
    sys.exit("run_clang_tidy: no clang-tidy on PATH (want clang-tidy-18); "
             "on CI this is a broken toolchain install, locally install it "
             "or rely on the CI gate")


def tracked_sources(root: pathlib.Path) -> list:
    out = subprocess.run(
        ["git", "ls-files", "src/**/*.cc", "src/*.cc"],
        cwd=root, stdout=subprocess.PIPE, text=True, check=True)
    return sorted(set(out.stdout.split()))


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", required=True,
                        help="build tree containing compile_commands.json")
    parser.add_argument("-j", type=int, default=os.cpu_count() or 2)
    parser.add_argument("files", nargs="*",
                        help="specific sources (default: all tracked src/*.cc)")
    args = parser.parse_args()

    root = pathlib.Path(__file__).resolve().parent.parent
    build_dir = pathlib.Path(args.build_dir)
    if not (build_dir / "compile_commands.json").exists():
        sys.exit(f"run_clang_tidy: {build_dir}/compile_commands.json not "
                 "found; configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON")

    tidy = find_tidy()
    files = args.files or tracked_sources(root)
    if not files:
        sys.exit("run_clang_tidy: no source files to check")

    version = subprocess.run([tidy, "--version"], stdout=subprocess.PIPE,
                             text=True, check=True).stdout.strip()
    print(f"{version}\nchecking {len(files)} files with -j{args.j}",
          flush=True)

    def run_one(path: str):
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", path],
            cwd=root, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        return path, proc.returncode, proc.stdout

    failed = []
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.j) as pool:
        for path, code, output in pool.map(run_one, files):
            text = output.strip()
            if code != 0:
                failed.append(path)
                print(f"--- FAIL {path}\n{text}", flush=True)
            elif "warning:" in text:
                print(f"--- advice {path}\n{text}", flush=True)

    if failed:
        print(f"\nrun_clang_tidy: {len(failed)}/{len(files)} files failed:")
        for path in failed:
            print(f"  {path}")
        return 1
    print(f"run_clang_tidy: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
