// E1 — Cardinality-based pruning (§4.1).
//
// Regenerates the paper's headline claim: pruning shrinks the candidate
// space from 2^n to sum_{k=l..u} C(n,k). Reported per n:
//   log2_unpruned, log2_pruned, saved_bits (the log2 reduction factor),
//   plus the time to derive the bounds (which is what makes pruning free:
//   it is O(n) from column statistics).
// A second suite measures the bounds' effect where it matters: brute-force
// node counts with pruning on vs off on a fixed small workload.

#include <benchmark/benchmark.h>

#include <optional>

#include "core/brute_force.h"
#include "core/pruning.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "db/ops.h"
#include "paql/analyzer.h"

namespace {

using pb::core::BruteForceOptions;
using pb::core::BruteForceSearch;
using pb::core::CardinalityBounds;
using pb::core::DeriveCardinalityBounds;

constexpr const char* kQuery =
    "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
    "SUCH THAT COUNT(*) <= 12 AND SUM(calories) BETWEEN 2000 AND 2500";

void BM_DeriveBounds(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 7));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  auto candidates = pb::db::FilterIndices(*aq->table, aq->query.where);
  CardinalityBounds bounds;
  for (auto _ : state) {
    auto b = DeriveCardinalityBounds(*aq, *candidates);
    bounds = *b;
    benchmark::DoNotOptimize(bounds);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["card_lo"] = static_cast<double>(bounds.lo);
  state.counters["card_hi"] = static_cast<double>(bounds.hi);
  state.counters["log2_unpruned"] = bounds.log2_unpruned;
  state.counters["log2_pruned"] = bounds.log2_pruned;
  state.counters["saved_bits"] = bounds.log2_unpruned - bounds.log2_pruned;
}
BENCHMARK(BM_DeriveBounds)->Arg(20)->Arg(100)->Arg(1000)->Arg(10000);

/// Row-store vs columnar derivation of the per-tuple aggregate weights that
/// feed the §4.1 bounds (the O(n) part of pruning). The row-store baseline
/// evaluates each aggregate argument over pre-materialized tuples; the
/// columnar case is ComputeAggWeights' contiguous-span path.
void BM_BoundsWeights(benchmark::State& state) {
  const bool columnar = state.range(0) != 0;
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 7));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  auto candidates = pb::db::FilterIndices(*aq->table, aq->query.where);
  if (!candidates.ok()) {
    state.SkipWithError(candidates.status().ToString().c_str());
    return;
  }

  if (columnar) {
    for (auto _ : state) {
      for (const auto& agg : aq->aggs) {
        auto w = pb::core::ComputeAggWeights(agg, *aq->table, *candidates);
        if (!w.ok()) {
          state.SkipWithError(w.status().ToString().c_str());
          return;
        }
        benchmark::DoNotOptimize(w->data());
      }
    }
  } else {
    std::vector<pb::db::Tuple> tuples;
    tuples.reserve(aq->table->num_rows());
    for (size_t i = 0; i < aq->table->num_rows(); ++i) {
      tuples.push_back(aq->table->row(i));
    }
    for (auto _ : state) {
      for (const auto& agg : aq->aggs) {
        std::vector<double> w(candidates->size(), 1.0);
        if (agg.arg) {
          pb::db::ExprPtr bound = agg.arg->Clone();
          if (!bound->Bind(aq->table->schema()).ok()) {
            state.SkipWithError("bind failed");
            return;
          }
          for (size_t i = 0; i < candidates->size(); ++i) {
            auto v = bound->Eval(tuples[(*candidates)[i]]);
            if (!v.ok()) {
              state.SkipWithError(v.status().ToString().c_str());
              return;
            }
            w[i] = v->is_null() ? 0.0 : *v->ToDouble();
          }
        }
        benchmark::DoNotOptimize(w.data());
      }
    }
  }
  state.SetLabel(columnar ? "columnar" : "rowstore");
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_BoundsWeights)
    ->Args({0, 1000})->Args({1, 1000})
    ->Args({0, 10000})->Args({1, 10000})
    ->Unit(benchmark::kMicrosecond);

/// Ablation: exhaustive search node counts with / without the §4.1 bounds.
void BM_BruteForceNodes(benchmark::State& state) {
  const bool use_pruning = state.range(0) != 0;
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 3));
  auto aq = pb::paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1200 AND 1500 "
      "MAXIMIZE SUM(protein)",
      catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  BruteForceOptions opts;
  opts.use_cardinality_pruning = use_pruning;
  opts.use_linear_bounding = use_pruning;
  uint64_t nodes = 0;
  for (auto _ : state) {
    auto r = BruteForceSearch(*aq, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    nodes = r->nodes;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["pruning"] = use_pruning ? 1 : 0;
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_BruteForceNodes)
    ->Args({0, 14})
    ->Args({1, 14})
    ->Args({0, 18})
    ->Args({1, 18})
    ->Args({0, 22})
    ->Args({1, 22})
    ->Unit(benchmark::kMillisecond);

}  // namespace
