// E2 — Heuristic local search and the k-replacement join blow-up (§4.2).
//
// The paper claims the single-tuple replacement scan is one cheap SQL query
// over P0 x R, while k simultaneous replacements need a 2k-way join that
// "quickly becomes intractable". Reported:
//   - the literal join-based 1-replacement query cost as |R| grows;
//   - the k-replacement combination counts for k = 1, 2, 3 at fixed size
//     (the budget-truncated probe shows the exponent directly);
//   - end-to-end local-search time to a valid package as |R| grows.

#include <benchmark/benchmark.h>

#include "core/local_search.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace {

using pb::core::CountKReplacements;
using pb::core::FindSingleTupleReplacementsViaJoin;
using pb::core::LocalSearch;
using pb::core::LocalSearchOptions;
using pb::core::Package;

pb::paql::AnalyzedQuery MakeQuery(pb::db::Catalog& catalog, size_t n,
                                  benchmark::State& state) {
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 11));
  auto aq = pb::paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT SUM(calories) <= 2500 AND COUNT(*) = 5",
      catalog);
  if (!aq.ok()) state.SkipWithError(aq.status().ToString().c_str());
  return std::move(aq).value();
}

Package FirstFive() {
  Package p;
  for (size_t i = 0; i < 5; ++i) p.Add(i);
  return p;
}

void BM_SingleReplacementJoin(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  auto aq = MakeQuery(catalog, n, state);
  Package p0 = FirstFive();
  size_t found = 0;
  for (auto _ : state) {
    auto joined = FindSingleTupleReplacementsViaJoin(aq, p0);
    if (!joined.ok()) {
      state.SkipWithError(joined.status().ToString().c_str());
      return;
    }
    found = joined->num_rows();
    benchmark::DoNotOptimize(found);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["valid_swaps"] = static_cast<double>(found);
}
BENCHMARK(BM_SingleReplacementJoin)
    ->Arg(100)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Unit(benchmark::kMillisecond);

void BM_KReplacementProbe(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  pb::db::Catalog catalog;
  auto aq = MakeQuery(catalog, 200, state);
  Package p0 = FirstFive();
  pb::core::KReplacementProbe probe;
  for (auto _ : state) {
    auto r = CountKReplacements(aq, p0, k, /*budget=*/2'000'000);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    probe = *r;
  }
  state.counters["k"] = k;
  state.counters["combinations"] =
      static_cast<double>(probe.combinations_examined);
  state.counters["valid"] = static_cast<double>(probe.valid_replacements);
  state.counters["truncated"] = probe.truncated ? 1 : 0;
}
BENCHMARK(BM_KReplacementProbe)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

void BM_LocalSearchEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 23));
  auto aq = pb::paql::ParseAndAnalyze(
      "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
      "SUCH THAT COUNT(*) = 5 AND SUM(calories) BETWEEN 2200 AND 2800 "
      "MAXIMIZE SUM(protein)",
      catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  int64_t moves = 0;
  int found = 0, runs = 0;
  uint64_t seed = 1;
  for (auto _ : state) {
    LocalSearchOptions opts;
    opts.seed = seed++;
    opts.max_restarts = 4;
    auto r = LocalSearch(*aq, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    moves += r->moves_evaluated;
    found += r->found ? 1 : 0;
    ++runs;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["success_rate"] =
      runs ? static_cast<double>(found) / runs : 0;
  state.counters["moves_per_run"] =
      runs ? static_cast<double>(moves) / runs : 0;
}
BENCHMARK(BM_LocalSearchEndToEnd)
    ->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
