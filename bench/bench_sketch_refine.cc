// E6 — SketchRefine vs Direct ILP (the §5 scalability direction; the
// follow-up PaQL paper's headline experiment, on the TPC-H-style lineitem
// workload).
//
// Reported per n: Direct solve time vs SketchRefine time, plus the
// approximation ratio (SketchRefine objective / Direct objective — 1.0 is
// exact). The partition-size sweep is the design-choice ablation from
// DESIGN.md: smaller tau means finer groups, better quality, bigger sketch.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace {

using pb::core::EvaluationOptions;
using pb::core::QueryEvaluator;
using pb::core::SketchRefine;
using pb::core::SketchRefineOptions;
using pb::core::Strategy;

constexpr const char* kQuery =
    "SELECT PACKAGE(L) FROM lineitem L "
    "SUCH THAT COUNT(*) = 10 AND SUM(quantity) <= 250 AND "
    "SUM(extendedprice) BETWEEN 2000 AND 60000 "
    "MAXIMIZE SUM(revenue)";

void BM_Direct(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(n, 5));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  QueryEvaluator evaluator(&catalog);
  EvaluationOptions opts;
  opts.strategy = Strategy::kIlpSolver;
  opts.milp.time_limit_s = 60.0;  // honest budget: Direct degrades with n
  double objective = 0, proven = 0;
  for (auto _ : state) {
    auto r = evaluator.Evaluate(*aq, opts);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    objective = r->objective;
    proven = r->proven_optimal ? 1 : 0;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["objective"] = objective;
  state.counters["proven_optimal"] = proven;
}
// Large sizes are omitted for Direct: branch-and-bound over the full
// relation already exceeds the interactive budget — which is the
// experiment's point; SketchRefine below runs the same sizes and beyond.
BENCHMARK(BM_Direct)->Arg(1000)->Arg(5000)->Arg(20000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_SketchRefine(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(n, 5));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  SketchRefineOptions opts;
  opts.partition_size = 64;
  opts.milp.time_limit_s = 30.0;
  double objective = 0, partitions = 0, sketch_s = 0, refine_s = 0;
  int found = 0, runs = 0;
  for (auto _ : state) {
    auto r = SketchRefine(*aq, opts);
    ++runs;
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    if (r->found) {
      ++found;
      objective = r->objective;
    }
    partitions = static_cast<double>(r->num_partitions);
    sketch_s = r->sketch_seconds;
    refine_s = r->refine_seconds;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["objective"] = objective;
  state.counters["partitions"] = partitions;
  state.counters["sketch_s"] = sketch_s;
  state.counters["refine_s"] = refine_s;
  state.counters["success"] = runs ? static_cast<double>(found) / runs : 0;
}
BENCHMARK(BM_SketchRefine)->Arg(1000)->Arg(5000)->Arg(20000)->Arg(100000)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Refine-phase thread scaling: identical objectives at every thread count
// (the refine merge is deterministic); only refine_s wall-clock moves.
// The query's tight two-sided windows defeat the solver's dive heuristic,
// so each group's sub-ILP does real branch-and-bound work — the regime
// where fanning the independent solves across cores pays. Budgets are in
// nodes, not seconds, so the work is identical on any machine. Speedup is
// bounded by the number of groups the sketch selects and the core count.
constexpr const char* kTightQuery =
    "SELECT PACKAGE(L) FROM lineitem L "
    "SUCH THAT COUNT(*) = 24 AND SUM(quantity) = 600 AND "
    "SUM(extendedprice) BETWEEN 50000 AND 51000 "
    "MAXIMIZE SUM(revenue)";

void BM_RefineThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(50000, 5));
  auto aq = pb::paql::ParseAndAnalyze(kTightQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  SketchRefineOptions opts;
  opts.partition_size = 512;
  opts.num_threads = threads;
  opts.milp.max_nodes = 3000;
  opts.milp.time_limit_s = 1e9;  // node budget is the deterministic limit
  double objective = 0, refine_s = 0, refine_ilps = 0, repairs = 0;
  for (auto _ : state) {
    auto r = SketchRefine(*aq, opts);
    if (!r.ok() || !r->found) {
      state.SkipWithError("sketch-refine failed");
      return;
    }
    objective = r->objective;
    refine_s = r->refine_seconds;
    refine_ilps = static_cast<double>(r->refine_ilps_solved);
    repairs = static_cast<double>(r->repair_passes);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["objective"] = objective;
  state.counters["refine_s"] = refine_s;
  state.counters["refine_ilps"] = refine_ilps;
  state.counters["repair_passes"] = repairs;
}
BENCHMARK(BM_RefineThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Warm-vs-cold solver ablation on a BM_RefineThreads-class workload: cold
// re-solves every branch-and-bound node's LP from the slack basis; warm
// inherits the parent basis at each node, chains bases through the dive
// heuristic, and reuses per-group root bases + pseudocost history across
// the refine/repair sub-ILP sequence. Every sub-ILP runs to proven
// optimality (no node budget), so both variants solve the identical model
// sequence and produce bit-identical packages — lp_iterations is a clean
// substrate-cost comparison (the ISSUE's >=2x acceptance bar).
void BM_RefineWarmStart(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(20000, 5));
  auto aq = pb::paql::ParseAndAnalyze(kTightQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  SketchRefineOptions opts;
  opts.partition_size = 256;
  opts.milp.time_limit_s = 120.0;
  opts.milp.warm_start_lps = warm;
  double objective = 0, lp_iters = 0, ilps = 0;
  for (auto _ : state) {
    auto r = SketchRefine(*aq, opts);
    if (!r.ok() || !r->found) {
      state.SkipWithError("sketch-refine failed");
      return;
    }
    objective = r->objective;
    lp_iters = static_cast<double>(r->lp_iterations);
    ilps = static_cast<double>(r->refine_ilps_solved);
  }
  state.SetLabel(warm ? "warm" : "cold");
  state.counters["objective"] = objective;
  state.counters["lp_iterations"] = lp_iters;
  state.counters["refine_ilps"] = ilps;
}
BENCHMARK(BM_RefineWarmStart)->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_PartitionSizeSweep(benchmark::State& state) {
  const size_t tau = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(10000, 5));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  SketchRefineOptions opts;
  opts.partition_size = tau;
  opts.milp.time_limit_s = 30.0;
  double objective = 0, sketch_vars = 0;
  for (auto _ : state) {
    auto r = SketchRefine(*aq, opts);
    if (!r.ok() || !r->found) {
      state.SkipWithError("sketch-refine failed");
      return;
    }
    objective = r->objective;
    sketch_vars = static_cast<double>(r->sketch_variables);
  }
  state.counters["tau"] = static_cast<double>(tau);
  state.counters["objective"] = objective;
  state.counters["sketch_vars"] = sketch_vars;
}
BENCHMARK(BM_PartitionSizeSweep)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
