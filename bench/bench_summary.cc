// E8 — Package-space summary (§3.2).
//
// The visual summary must lay out "the packages found so far" responsively
// while the solver keeps enumerating in the background. Reported: time to
// enumerate a batch of packages via no-good cuts, and time to select the
// two layout dimensions + bucket the glyph grid as the package count grows.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "core/enumerator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "ui/summary.h"

namespace {

constexpr const char* kQuery =
    "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
    "SUCH THAT COUNT(*) = 3 AND SUM(calories) BETWEEN 1200 AND 2400 "
    "MAXIMIZE SUM(protein)";

void BM_EnumerateViaNoGoodCuts(benchmark::State& state) {
  const size_t how_many = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(300, 29));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  size_t got = 0;
  for (auto _ : state) {
    pb::core::EnumerateOptions opts;
    opts.max_packages = how_many;
    auto packages = pb::core::EnumerateViaSolver(*aq, opts);
    if (!packages.ok()) {
      state.SkipWithError(packages.status().ToString().c_str());
      return;
    }
    got = packages->size();
  }
  state.counters["requested"] = static_cast<double>(how_many);
  state.counters["enumerated"] = static_cast<double>(got);
}
BENCHMARK(BM_EnumerateViaNoGoodCuts)->Arg(5)->Arg(20)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_SummarizeLayout(benchmark::State& state) {
  const size_t package_count = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(2000, 31));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  // Synthesize a large package population (enumerating 10^4+ via cuts would
  // measure the solver, not the layout).
  pb::Rng rng(7);
  auto candidates = pb::db::FilterIndices(*aq->table, aq->query.where);
  std::vector<pb::core::Package> packages;
  packages.reserve(package_count);
  for (size_t i = 0; i < package_count; ++i) {
    pb::core::Package p;
    auto pick = rng.SampleIndices(candidates->size(), 3);
    for (size_t k : pick) p.Add((*candidates)[k]);
    packages.push_back(std::move(p));
  }
  double dims = 0;
  for (auto _ : state) {
    auto summary = pb::ui::SummarizePackageSpace(*aq, packages);
    if (!summary.ok()) {
      state.SkipWithError(summary.status().ToString().c_str());
      return;
    }
    dims = static_cast<double>(summary->points.size());
    benchmark::DoNotOptimize(summary);
  }
  state.counters["packages"] = dims;
}
BENCHMARK(BM_SummarizeLayout)->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
