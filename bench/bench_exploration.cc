// E5 — Adaptive exploration (§3.3).
//
// "Users can then select good tuples within the sample, and request a new
// sample that replaces the unselected tuples. Users can repeat this process
// until they reach the ideal package." The interactive loop is only usable
// if each resample is fast; this bench measures session rounds as the data
// grows and as the user locks progressively more tuples.

#include <benchmark/benchmark.h>

#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "ui/explore.h"

namespace {

constexpr const char* kQuery =
    "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
    "SUCH THAT COUNT(*) = 5 AND SUM(calories) BETWEEN 2000 AND 3000";

void BM_SessionRound(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 19));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  size_t rounds_done = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pb::ui::ExplorationSession session(&*aq, {});
    if (!session.Start().ok()) {
      state.SkipWithError("start failed");
      return;
    }
    // Lock the first tuple of the sample (a typical interaction).
    if (!session.Lock(session.sample().rows[0]).ok()) {
      state.SkipWithError("lock failed");
      return;
    }
    state.ResumeTiming();
    pb::Status s = session.Resample();
    if (s.ok()) ++rounds_done;
    benchmark::DoNotOptimize(s);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["resamples_ok"] = static_cast<double>(rounds_done);
}
BENCHMARK(BM_SessionRound)->Arg(200)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_ConvergenceByLockedCount(benchmark::State& state) {
  // Rounds of lock-one-more-then-resample until the whole package is
  // locked: the paper's trial-and-error refinement loop.
  const int locks = static_cast<int>(state.range(0));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(1000, 19));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  size_t completed = 0;
  for (auto _ : state) {
    pb::ui::ExplorationSession session(&*aq, {});
    if (!session.Start().ok()) {
      state.SkipWithError("start failed");
      return;
    }
    bool ok = true;
    for (int round = 0; round < locks && ok; ++round) {
      // Lock the first not-yet-locked tuple, then resample the rest.
      for (size_t row : session.sample().rows) {
        if (!session.locked_rows().count(row)) {
          ok = session.Lock(row).ok();
          break;
        }
      }
      ok = ok && session.Resample().ok();
    }
    if (ok) ++completed;
  }
  state.counters["locked_rounds"] = locks;
  state.counters["sessions_completed"] = static_cast<double>(completed);
}
BENCHMARK(BM_ConvergenceByLockedCount)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
