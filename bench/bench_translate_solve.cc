// E4 — PaQL -> ILP translation + solve (§2 / §7).
//
// The demo's tutorial path: "we will show how a PaQL query is translated
// into a linear program and then solved using existing constraint solvers."
// One benchmark per motivating scenario from the paper's introduction
// (meal planner / vacation planner / investment portfolio), each reporting
// parse+analyze time, translation time, and solve time separately, plus
// model dimensions.

#include <benchmark/benchmark.h>

#include <numeric>

#include "core/evaluator.h"
#include "core/translator.h"
#include "datagen/recipes.h"
#include "datagen/stocks.h"
#include "datagen/travel.h"
#include "db/catalog.h"
#include "db/ops.h"
#include "paql/analyzer.h"
#include "solver/milp.h"

namespace {

struct Scenario {
  const char* name;
  std::string query;
  pb::db::Table (*generate)(size_t, uint64_t);
};

pb::db::Table GenRecipes(size_t n, uint64_t seed) {
  return pb::datagen::GenerateRecipes(n, seed);
}
pb::db::Table GenStocks(size_t n, uint64_t seed) {
  return pb::datagen::GenerateStocks(n, seed);
}
pb::db::Table GenTravel(size_t n, uint64_t seed) {
  return pb::datagen::GenerateTravelItems(n, seed);
}

const Scenario kScenarios[] = {
    {"meals",
     "SELECT PACKAGE(R) FROM recipes R WHERE R.gluten = 'free' "
     "SUCH THAT COUNT(*) = 3 AND SUM(R.calories) BETWEEN 2000 AND 2500 "
     "MAXIMIZE SUM(R.protein)",
     &GenRecipes},
    {"portfolio",
     "SELECT PACKAGE(S) FROM stocks S REPEAT 3 WHERE S.risk <= 0.5 "
     "SUCH THAT SUM(S.price) <= 50000 AND SUM(S.tech_value) >= 15000 AND "
     "SUM(S.is_short) - SUM(S.is_long) BETWEEN -2 AND 2 AND "
     "COUNT(*) BETWEEN 5 AND 15 MAXIMIZE SUM(S.expected_gain)",
     &GenStocks},
    {"vacation_linear",  // the conjunctive core of the vacation scenario
     "SELECT PACKAGE(T) FROM travel_items T WHERE T.dest = 'maui' "
     "SUCH THAT SUM(T.is_flight) = 2 AND SUM(T.is_hotel) = 1 AND "
     "SUM(T.is_car) <= 1 AND SUM(T.price) <= 2000 "
     "MAXIMIZE SUM(T.comfort)",
     &GenTravel},
};

// Row-store vs columnar ILP coefficient extraction. The row-store baseline
// evaluates the aggregate argument per pre-materialized tuple — exactly the
// per-cell variant dispatch the old std::vector<Tuple> storage paid. The
// columnar case gathers the same coefficients from the contiguous column
// span (db::GatherNumeric's fast path). Same expression, same candidates,
// same output vector; the delta is pure storage-layout win.
void BM_CoefficientExtraction(benchmark::State& state) {
  const bool columnar = state.range(0) != 0;
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Table table = pb::datagen::GenerateRecipes(n, 5);
  std::vector<size_t> candidates(n);
  std::iota(candidates.begin(), candidates.end(), 0);
  pb::db::ExprPtr arg = pb::db::Col("calories");

  if (columnar) {
    // Bind once outside the timing loop, exactly like the rowstore
    // baseline: both sides time only the per-candidate extraction.
    pb::db::ExprPtr bound = arg->Clone();
    if (!bound->Bind(table.schema()).ok()) {
      state.SkipWithError("bind failed");
      return;
    }
    for (auto _ : state) {
      auto vals = pb::db::GatherNumericBound(table, *bound, candidates);
      if (!vals.ok()) {
        state.SkipWithError(vals.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(vals->data());
    }
  } else {
    // Simulated row-store: tuples materialized once, outside the timing
    // loop, then coefficients extracted cell by cell.
    std::vector<pb::db::Tuple> tuples;
    tuples.reserve(n);
    for (size_t i = 0; i < n; ++i) tuples.push_back(table.row(i));
    pb::db::ExprPtr bound = arg->Clone();
    if (!bound->Bind(table.schema()).ok()) {
      state.SkipWithError("bind failed");
      return;
    }
    for (auto _ : state) {
      std::vector<std::optional<double>> vals(n);
      for (size_t i = 0; i < n; ++i) {
        auto v = bound->Eval(tuples[candidates[i]]);
        if (!v.ok()) {
          state.SkipWithError(v.status().ToString().c_str());
          return;
        }
        if (!v->is_null()) vals[i] = *v->ToDouble();
      }
      benchmark::DoNotOptimize(vals.data());
    }
  }
  state.SetLabel(columnar ? "columnar" : "rowstore");
  state.counters["n"] = static_cast<double>(n);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_CoefficientExtraction)
    ->Args({0, 1000})->Args({1, 1000})
    ->Args({0, 10000})->Args({1, 10000})
    ->Args({0, 100000})->Args({1, 100000})
    ->Unit(benchmark::kMicrosecond);

void BM_ParseAnalyze(benchmark::State& state) {
  const Scenario& s = kScenarios[state.range(0)];
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(s.generate(1000, 5));
  for (auto _ : state) {
    auto aq = pb::paql::ParseAndAnalyze(s.query, catalog);
    if (!aq.ok()) {
      state.SkipWithError(aq.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(aq);
  }
  state.SetLabel(s.name);
}
BENCHMARK(BM_ParseAnalyze)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMicrosecond);

void BM_Translate(benchmark::State& state) {
  const Scenario& s = kScenarios[state.range(0)];
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(s.generate(n, 5));
  auto aq = pb::paql::ParseAndAnalyze(s.query, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  int vars = 0, rows = 0;
  for (auto _ : state) {
    auto t = pb::core::TranslateToIlp(*aq);
    if (!t.ok()) {
      state.SkipWithError(t.status().ToString().c_str());
      return;
    }
    vars = t->model.num_variables();
    rows = t->model.num_constraints();
  }
  state.SetLabel(s.name);
  state.counters["n"] = static_cast<double>(n);
  state.counters["vars"] = vars;
  state.counters["rows"] = rows;
}
BENCHMARK(BM_Translate)
    ->Args({0, 1000})->Args({0, 10000})
    ->Args({1, 1000})->Args({1, 10000})
    ->Args({2, 1000})->Args({2, 10000})
    ->Unit(benchmark::kMillisecond);

void BM_TranslateAndSolve(benchmark::State& state) {
  const Scenario& s = kScenarios[state.range(0)];
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(s.generate(n, 5));
  auto aq = pb::paql::ParseAndAnalyze(s.query, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  double objective = 0;
  double nodes = 0, lp_iters = 0;
  for (auto _ : state) {
    auto t = pb::core::TranslateToIlp(*aq);
    if (!t.ok()) {
      state.SkipWithError(t.status().ToString().c_str());
      return;
    }
    auto r = pb::solver::SolveMilp(t->model);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("solve failed");
      return;
    }
    objective = r->objective;
    nodes = static_cast<double>(r->nodes);
    lp_iters = static_cast<double>(r->lp_iterations);
  }
  state.SetLabel(s.name);
  state.counters["n"] = static_cast<double>(n);
  state.counters["objective"] = objective;
  state.counters["bnb_nodes"] = nodes;
  state.counters["lp_iterations"] = lp_iters;
}
BENCHMARK(BM_TranslateAndSolve)
    ->Args({0, 200})->Args({0, 1000})->Args({0, 5000})
    ->Args({1, 200})->Args({1, 1000})->Args({1, 5000})
    ->Args({2, 200})->Args({2, 1000})->Args({2, 5000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
