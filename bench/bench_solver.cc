// E7 — Solver substrate microbenchmarks.
//
// The engine's "state-of-the-art constraint solver" stand-in must be fast
// enough that the strategy comparison (E3) measures the algorithms, not the
// substrate. Reported: simplex time/iterations vs variable count on
// package-shaped LPs (few rows, many columns), branch-and-bound node counts
// on knapsack-style ILPs, and the Dantzig-vs-Bland pricing ablation.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace {

using pb::solver::kInfinity;
using pb::solver::LinearTerm;
using pb::solver::LpModel;
using pb::solver::MilpOptions;
using pb::solver::ObjectiveSense;
using pb::solver::SimplexOptions;

/// A package-shaped LP: n binary-relaxed columns, a handful of rows.
LpModel PackageShapedLp(int n, uint64_t seed) {
  pb::Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight, cost;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), false);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    cost.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.AddConstraint("cost", cost, -kInfinity, 120);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

void BM_SimplexPackageShaped(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpModel m = PackageShapedLp(n, 3);
  int64_t iters = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = r->iterations;
  }
  state.counters["n"] = n;
  state.counters["iterations"] = static_cast<double>(iters);
}
BENCHMARK(BM_SimplexPackageShaped)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SimplexPricingAblation(benchmark::State& state) {
  const bool bland = state.range(0) != 0;
  LpModel m = PackageShapedLp(2000, 7);
  SimplexOptions opts;
  opts.always_bland = bland;
  int64_t iters = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m, opts);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = r->iterations;
  }
  state.SetLabel(bland ? "bland" : "dantzig");
  state.counters["iterations"] = static_cast<double>(iters);
}
BENCHMARK(BM_SimplexPricingAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  pb::Rng rng(11);
  LpModel m;
  std::vector<LinearTerm> cap;
  double total_w = 0;
  for (int j = 0; j < n; ++j) {
    double w = rng.UniformReal(1.0, 30.0);
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  w * rng.UniformReal(0.8, 1.2), true);  // correlated: hard
    cap.push_back({j, w});
    total_w += w;
  }
  m.AddConstraint("cap", cap, -kInfinity, total_w / 2);
  m.SetSense(ObjectiveSense::kMaximize);
  double nodes = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.time_limit_s = 30.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    nodes = static_cast<double>(r->nodes);
  }
  state.counters["n"] = n;
  state.counters["bnb_nodes"] = nodes;
}
BENCHMARK(BM_MilpKnapsack)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_MilpRoundingHeuristicAblation(benchmark::State& state) {
  const bool rounding = state.range(0) != 0;
  pb::Rng rng(13);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 500; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.SetSense(ObjectiveSense::kMaximize);
  double nodes = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.rounding_heuristic = rounding;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    nodes = static_cast<double>(r->nodes);
  }
  state.SetLabel(rounding ? "rounding_on" : "rounding_off");
  state.counters["bnb_nodes"] = nodes;
}
BENCHMARK(BM_MilpRoundingHeuristicAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
