// E7 — Solver substrate microbenchmarks.
//
// The engine's "state-of-the-art constraint solver" stand-in must be fast
// enough that the strategy comparison (E3) measures the algorithms, not the
// substrate. Reported: simplex time/iterations vs variable count on
// package-shaped LPs (few rows, many columns), branch-and-bound node counts
// on knapsack-style ILPs, and the engine ablations (factorization backend,
// pricing rule, anti-cycling fallback).

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "common/random.h"
#include "core/sketch_refine.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "engine/engine.h"
#include "paql/analyzer.h"
#include "solver/milp.h"
#include "solver/simplex.h"

namespace {

using pb::solver::kInfinity;
using pb::solver::LinearTerm;
using pb::solver::LpModel;
using pb::solver::MilpOptions;
using pb::solver::ObjectiveSense;
using pb::solver::SimplexOptions;

/// A package-shaped LP/ILP: n binary(-relaxed) columns, a handful of rows.
/// `shift` drifts the constraint ranges without changing the structure —
/// the SketchRefine-repair re-solve pattern the cross-solve bench uses.
LpModel PackageShapedLp(int n, uint64_t seed, bool integer = false,
                        double shift = 0.0) {
  pb::Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count, weight, cost;
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), integer);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    cost.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000 + shift, 2600 + shift);
  m.AddConstraint("cost", cost, -kInfinity, 120 + shift / 100.0);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

void BM_SimplexPackageShaped(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  LpModel m = PackageShapedLp(n, 3);
  int64_t iters = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = r->iterations;
  }
  state.counters["n"] = n;
  // Named lp_iterations (not "iterations") so it neither collides with
  // Google Benchmark's builtin JSON field nor escapes the regression gate.
  state.counters["lp_iterations"] = static_cast<double>(iters);
}
BENCHMARK(BM_SimplexPackageShaped)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_SimplexPricingAblation(benchmark::State& state) {
  const bool bland = state.range(0) != 0;
  LpModel m = PackageShapedLp(2000, 7);
  SimplexOptions opts;
  opts.always_bland = bland;
  int64_t iters = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m, opts);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = r->iterations;
  }
  state.SetLabel(bland ? "bland"
                       : pb::solver::PricingRuleToString(opts.pricing));
  state.counters["lp_iterations"] = static_cast<double>(iters);
}
BENCHMARK(BM_SimplexPricingAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Engine ablation: factorization backend x pricing rule on one mid-size
// package LP. All four arms land on the same vertex (same objective
// counter); lp_iterations shows devex vs Dantzig path lengths and
// refactorizations/basis_updates show the factorization-layer work the
// regression gate tracks.
void BM_SimplexEngineAblation(benchmark::State& state) {
  const bool sparse = state.range(0) != 0;
  const bool devex = state.range(1) != 0;
  LpModel m = PackageShapedLp(5000, 7);
  SimplexOptions opts;
  opts.factorization = sparse ? pb::solver::FactorizationKind::kSparseLu
                              : pb::solver::FactorizationKind::kDense;
  opts.pricing = devex ? pb::solver::PricingRule::kDevex
                       : pb::solver::PricingRule::kDantzig;
  double iters = 0, refactors = 0, updates = 0, objective = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m, opts);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = static_cast<double>(r->iterations);
    refactors = static_cast<double>(r->refactorizations);
    updates = static_cast<double>(r->basis_updates);
    objective = r->objective;
  }
  state.SetLabel(std::string(sparse ? "sparse_lu" : "dense") + "/" +
                 (devex ? "devex" : "dantzig"));
  state.counters["lp_iterations"] = iters;
  state.counters["refactorizations"] = refactors;
  state.counters["basis_updates"] = updates;
  state.counters["objective"] = objective;
}
BENCHMARK(BM_SimplexEngineAblation)
    ->Args({0, 0})->Args({0, 1})->Args({1, 0})->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

/// The scale workload (mirrored by tests/slow/test_sparse_scale.cc): n
/// candidates in n/256 groups, a global COUNT row plus one cardinality row
/// per group — 2n nonzeros, n/256 + 1 rows. Row counts in the thousands
/// are exactly where the dense inverse's O(m^2)-per-solve /
/// O(m^3)-per-refactorization wall sits; the sparse LU keeps this matrix
/// fill-free and solves the million-variable relaxation in seconds.
LpModel ScaleLp(int n, uint64_t seed) {
  const int groups = n / 256;
  pb::Rng rng(seed);
  LpModel m;
  std::vector<LinearTerm> count;
  std::vector<std::vector<LinearTerm>> group_rows(groups);
  for (int j = 0; j < n; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), false);
    count.push_back({j, 1.0});
    group_rows[j % groups].push_back({j, 1.0});
  }
  const double k = groups / 4.0;
  m.AddConstraint("count", std::move(count), k, k);
  for (int g = 0; g < groups; ++g) {
    m.AddConstraint("group" + std::to_string(g), std::move(group_rows[g]),
                    -kInfinity, 1.0);
  }
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

// Scale headline: the sparse backend walks up to a million variables
// (4097 rows); the dense arm runs only at the smallest size, as the
// ablation reference point this family grows away from.
void BM_SparseSimplexScale(benchmark::State& state) {
  const bool sparse = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  LpModel m = ScaleLp(n, 42);
  SimplexOptions opts;
  opts.factorization = sparse ? pb::solver::FactorizationKind::kSparseLu
                              : pb::solver::FactorizationKind::kDense;
  double iters = 0, refactors = 0, objective = 0;
  for (auto _ : state) {
    auto r = pb::solver::SolveLp(m, opts);
    if (!r.ok() || r->status != pb::solver::LpStatus::kOptimal) {
      state.SkipWithError("LP not optimal");
      return;
    }
    iters = static_cast<double>(r->iterations);
    refactors = static_cast<double>(r->refactorizations);
    objective = r->objective;
  }
  state.SetLabel(sparse ? "sparse_lu" : "dense");
  state.counters["n"] = n;
  state.counters["lp_iterations"] = iters;
  state.counters["refactorizations"] = refactors;
  state.counters["objective"] = objective;
}
BENCHMARK(BM_SparseSimplexScale)
    ->Args({0, 65536})
    ->Args({1, 65536})
    ->Args({1, 262144})
    ->Args({1, 1048576})
    ->Unit(benchmark::kMillisecond);

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  pb::Rng rng(11);
  LpModel m;
  std::vector<LinearTerm> cap;
  double total_w = 0;
  for (int j = 0; j < n; ++j) {
    double w = rng.UniformReal(1.0, 30.0);
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  w * rng.UniformReal(0.8, 1.2), true);  // correlated: hard
    cap.push_back({j, w});
    total_w += w;
  }
  m.AddConstraint("cap", cap, -kInfinity, total_w / 2);
  m.SetSense(ObjectiveSense::kMaximize);
  double nodes = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.time_limit_s = 30.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    nodes = static_cast<double>(r->nodes);
  }
  state.counters["n"] = n;
  state.counters["bnb_nodes"] = nodes;
}
BENCHMARK(BM_MilpKnapsack)->Arg(20)->Arg(50)->Arg(100)
    ->Unit(benchmark::kMillisecond);

/// The tight-window package ILP the warm-start and child-resolve
/// ablations share (two-sided ranges: real branch-and-bound work).
LpModel TightWindowPackageIlp() {
  pb::Rng rng(17);
  LpModel m;
  std::vector<LinearTerm> count, weight, price;
  for (int j = 0; j < 400; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
    price.push_back({j, rng.UniformReal(1.0, 50.0)});
  }
  m.AddConstraint("count", count, 8, 8);
  m.AddConstraint("weight", weight, 3600, 3700);
  m.AddConstraint("price", price, 120, 160);
  m.SetSense(ObjectiveSense::kMaximize);
  return m;
}

// Warm-vs-cold ablation on a package-shaped ILP. Warm is the full default
// path (basis inheritance, pseudocost branching, dual child re-solves,
// node presolve); cold pins every knob off — the faithful pre-warm-start
// solver, kept bit-comparable with the PR 3 baseline JSON. Same model,
// same optimum (asserted); the iterations counter is the comparison.
void BM_MilpWarmStartAblation(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  LpModel m = TightWindowPackageIlp();
  double iters = 0, nodes = 0, objective = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.warm_start_lps = warm;
    if (!warm) {
      // The faithful old cold path: no propagation either.
      opts.use_dual_simplex = false;
      opts.node_presolve = false;
    }
    opts.max_nodes = 20000;
    opts.time_limit_s = 60.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    iters = static_cast<double>(r->lp_iterations);
    nodes = static_cast<double>(r->nodes);
    objective = r->objective;
  }
  state.SetLabel(warm ? "warm" : "cold");
  state.counters["lp_iterations"] = iters;
  state.counters["bnb_nodes"] = nodes;
  state.counters["objective"] = objective;
}
BENCHMARK(BM_MilpWarmStartAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Child re-solve engine ablation, all arms warm-started: warm_primal is
// the PR 3 baseline (every child repaired by the composite phase 1),
// warm_dual re-optimizes children with the dual simplex, and
// warm_dual_presolve adds bound propagation before each child LP (the
// default path). Optima are bit-identical across arms; lp_iterations /
// lp_dual_iterations and the presolve counters are the comparison — the
// acceptance bar is >= 2x fewer simplex iterations than warm_primal.
void BM_MilpChildResolveAblation(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  LpModel m = TightWindowPackageIlp();
  double iters = 0, dual_iters = 0, nodes = 0, objective = 0;
  double fixed = 0, pruned = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.use_dual_simplex = mode >= 1;
    opts.node_presolve = mode >= 2;
    opts.max_nodes = 20000;
    opts.time_limit_s = 60.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    iters = static_cast<double>(r->lp_iterations);
    dual_iters = static_cast<double>(r->lp_dual_iterations);
    nodes = static_cast<double>(r->nodes);
    objective = r->objective;
    fixed = static_cast<double>(r->presolve_fixed_bounds);
    pruned = static_cast<double>(r->presolve_infeasible_children);
  }
  state.SetLabel(mode == 0   ? "warm_primal"
                 : mode == 1 ? "warm_dual"
                             : "warm_dual_presolve");
  state.counters["lp_iterations"] = iters;
  state.counters["lp_dual_iterations"] = dual_iters;
  state.counters["bnb_nodes"] = nodes;
  state.counters["objective"] = objective;
  state.counters["presolve_fixed_bounds"] = fixed;
  state.counters["presolve_infeasible_children"] = pruned;
}
BENCHMARK(BM_MilpChildResolveAblation)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

// Node-presolve ablation on a propagation-heavy shape: small COUNT = k
// over integer weights with a half-open SUM window, so branched children
// frequently become infeasible by bound propagation alone and COUNT
// saturation fixes implied binaries. Same optimum both ways (asserted);
// presolve cuts both the node count and the LP iterations.
void BM_MilpNodePresolveAblation(benchmark::State& state) {
  const bool presolve = state.range(0) != 0;
  pb::Rng rng(21);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 60; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, std::floor(rng.UniformReal(100.0, 900.0))});
  }
  m.AddConstraint("count", count, 3, 3);
  m.AddConstraint("weight", weight, 800.5, 801.0);
  m.SetSense(ObjectiveSense::kMaximize);
  double iters = 0, nodes = 0, fixed = 0, pruned = 0, objective = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.node_presolve = presolve;
    opts.time_limit_s = 60.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    iters = static_cast<double>(r->lp_iterations);
    nodes = static_cast<double>(r->nodes);
    fixed = static_cast<double>(r->presolve_fixed_bounds);
    pruned = static_cast<double>(r->presolve_infeasible_children);
    objective = r->objective;
  }
  state.SetLabel(presolve ? "presolve_on" : "presolve_off");
  state.counters["lp_iterations"] = iters;
  state.counters["bnb_nodes"] = nodes;
  state.counters["presolve_fixed_bounds"] = fixed;
  state.counters["presolve_infeasible_children"] = pruned;
  state.counters["objective"] = objective;
}
BENCHMARK(BM_MilpNodePresolveAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Cross-solve reuse: one MilpWarmStart threaded through a sequence of
// structurally identical solves whose constraint ranges drift (the
// SketchRefine repair pattern). The second and later solves start from the
// first solve's root basis and branching history.
void BM_MilpCrossSolveReuse(benchmark::State& state) {
  const bool reuse = state.range(0) != 0;
  double iters = 0;
  for (auto _ : state) {
    pb::solver::MilpWarmStart warm;
    int64_t total = 0;
    // Same structure each solve, drifting ranges — exactly what the
    // SketchRefine repair pass re-solves after residual drift.
    for (int shift = 0; shift < 8; ++shift) {
      LpModel m =
          PackageShapedLp(1000, 29, /*integer=*/true, /*shift=*/10.0 * shift);
      MilpOptions opts;
      opts.warm = reuse ? &warm : nullptr;
      opts.max_nodes = 4000;
      auto r = pb::solver::SolveMilp(m, opts);
      if (!r.ok()) {
        state.SkipWithError("MILP failed");
        return;
      }
      total += r->lp_iterations;
    }
    iters = static_cast<double>(total);
  }
  state.SetLabel(reuse ? "reuse" : "independent");
  state.counters["lp_iterations"] = iters;
}
BENCHMARK(BM_MilpCrossSolveReuse)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Parallel tree search on the branchy COUNT-window family (the node-
// presolve ablation's shape scaled up to ~1.7k nodes): helper threads
// speculatively solve frontier LPs while the main thread commits in serial
// order. The deterministic counters (bnb_nodes, lp_iterations, objective)
// are bit-identical across thread counts BY CONSTRUCTION — the regression
// gate compares them against the checked-in baseline — while nodes_per_sec
// is the throughput headline: on a multi-core host the 8-thread arm's
// node throughput is the acceptance bar (>= 2x the 1-thread arm).
// speculative_lps is diagnostic and timing-dependent (excluded from the
// gate), and on a single-core host the threaded arms are expectedly
// SLOWER: speculation burns the one core the committing thread needs.
void BM_MilpParallelTree(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  pb::Rng rng(33);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 120; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, std::floor(rng.UniformReal(100.0, 900.0))});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 1500.5, 1501.0);
  m.SetSense(ObjectiveSense::kMaximize);
  double nodes = 0, iters = 0, objective = 0, spec = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.num_threads = threads;
    opts.max_nodes = 200000;
    opts.time_limit_s = 60.0;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || r->status != pb::solver::MilpStatus::kOptimal) {
      state.SkipWithError("MILP not optimal");
      return;
    }
    nodes = static_cast<double>(r->nodes);
    iters = static_cast<double>(r->lp_iterations);
    objective = r->objective;
    spec = static_cast<double>(r->speculative_lps);
  }
  // (No "threads" counter: the benchmark name carries the arg, and the
  // counter name would collide with Google Benchmark's builtin JSON field.)
  state.counters["bnb_nodes"] = nodes;
  state.counters["lp_iterations"] = iters;
  state.counters["objective"] = objective;
  state.counters["speculative_lps"] = spec;
  state.counters["nodes_per_sec"] =
      benchmark::Counter(nodes, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MilpParallelTree)->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_MilpRoundingHeuristicAblation(benchmark::State& state) {
  const bool rounding = state.range(0) != 0;
  pb::Rng rng(13);
  LpModel m;
  std::vector<LinearTerm> count, weight;
  for (int j = 0; j < 500; ++j) {
    m.AddVariable("x" + std::to_string(j), 0, 1,
                  rng.UniformReal(1.0, 100.0), true);
    count.push_back({j, 1.0});
    weight.push_back({j, rng.UniformReal(100.0, 900.0)});
  }
  m.AddConstraint("count", count, 5, 5);
  m.AddConstraint("weight", weight, 2000, 2600);
  m.SetSense(ObjectiveSense::kMaximize);
  double nodes = 0;
  for (auto _ : state) {
    MilpOptions opts;
    opts.rounding_heuristic = rounding;
    auto r = pb::solver::SolveMilp(m, opts);
    if (!r.ok() || !r->has_solution()) {
      state.SkipWithError("MILP failed");
      return;
    }
    nodes = static_cast<double>(r->nodes);
  }
  state.SetLabel(rounding ? "rounding_on" : "rounding_off");
  state.counters["bnb_nodes"] = nodes;
}
BENCHMARK(BM_MilpRoundingHeuristicAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Facade-level: one PaQL query through pb::Engine, cold (fresh engine,
// full parse + translate + solve every iteration) vs warm (result cache
// primed — repeats are answered bit-identically with zero solver work).
// Counters are deterministic: single-threaded, fixed dataset seed.
void BM_EngineQueryCache(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  constexpr char kQuery[] =
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 AND "
      "SUM(calories) BETWEEN 2000 AND 2500 MAXIMIZE SUM(protein)";
  pb::engine::EngineOptions options;
  options.num_threads = 1;
  double nodes = 0, objective = 0, hits = 0;
  if (warm) {
    pb::engine::Engine engine(options);
    if (!engine.GenerateDataset("recipes", 300, 42).ok()) {
      state.SkipWithError("dataset generation failed");
      return;
    }
    auto prime = engine.ExecuteQuery(0, kQuery);  // prime the result cache
    if (!prime.ok()) {
      state.SkipWithError("cache-priming solve failed");
      return;
    }
    for (auto _ : state) {
      auto r = engine.ExecuteQuery(0, kQuery);
      if (!r.ok() || !r.result_cache_hit) {
        state.SkipWithError("expected a result-cache hit");
        return;
      }
      hits += 1;
      objective = r.objective;
    }
  } else {
    for (auto _ : state) {
      state.PauseTiming();
      pb::engine::Engine engine(options);
      if (!engine.GenerateDataset("recipes", 300, 42).ok()) {
        state.SkipWithError("dataset generation failed");
        return;
      }
      state.ResumeTiming();
      auto r = engine.ExecuteQuery(0, kQuery);
      if (!r.ok() || !r.proven_optimal) {
        state.SkipWithError("query failed");
        return;
      }
      nodes = static_cast<double>(r.nodes);
      objective = r.objective;
    }
  }
  state.SetLabel(warm ? "warm_cache" : "cold");
  state.counters["bnb_nodes"] = nodes;
  state.counters["objective"] = objective;
  state.counters["cache_hits"] = hits;
}
BENCHMARK(BM_EngineQueryCache)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// HTAP incremental maintenance: a maintained SketchRefine partition over
// lineitem absorbs a 1% append (200 rows routed into a handful of groups),
// then re-answers the query. Arg 1 = incremental (dirty groups re-solved
// from their saved warm starts, clean groups answered from cached
// sub-solutions); Arg 0 = the cold baseline (the SAME maintained partition
// with every cached solution and warm start dropped, every group re-solved
// — what a from-scratch re-solve of this partition costs). Both arms are
// bit-identical by construction (the objective counter is the gate's
// witness); lp_iterations is the work separation the baseline encodes —
// the incremental arm must stay >= 5x below cold, so any reuse breakage
// shows up as a gated lp_iterations regression on Arg 1.
void BM_IncrementalAppend(benchmark::State& state) {
  const bool incremental = state.range(0) != 0;
  constexpr char kQuery[] =
      "SELECT PACKAGE(L) FROM lineitem L "
      "SUCH THAT COUNT(*) = 24 AND SUM(quantity) = 600 AND "
      "SUM(extendedprice) BETWEEN 50000 AND 51000 "
      "MAXIMIZE SUM(revenue)";
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateLineitems(20000, 5));
  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  pb::core::SketchRefineOptions opts;
  opts.partition_size = 256;
  opts.milp.time_limit_s = 120.0;
  pb::core::SketchRefineState built;
  opts.state = &built;
  auto prime = pb::core::SketchRefine(*aq, opts);  // build + solve, untimed
  if (!prime.ok() || !prime->found) {
    state.SkipWithError("priming sketch-refine solve failed");
    return;
  }
  // The append: 200 rows (1%), duplicates of four existing tuples so they
  // route into at most a handful of groups — the workload the maintenance
  // path exists for (hot appends clustered in feature space).
  {
    auto table = catalog.GetMutable("lineitem");
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    std::vector<pb::db::Tuple> rows;
    for (size_t i = 0; i < 200; ++i) rows.push_back((*table)->row(i % 4));
    if (!(*table)->AppendRows(std::move(rows)).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  double lp_iters = 0, objective = 0, reused = 0, dirty = 0;
  for (auto _ : state) {
    state.PauseTiming();
    pb::core::SketchRefineState maintained = built;
    if (!incremental) maintained.InvalidateSolutions();
    pb::core::SketchRefineOptions run = opts;
    run.state = &maintained;
    run.reuse_group_solutions = incremental;
    state.ResumeTiming();
    auto r = pb::core::SketchRefine(*aq, run);
    if (!r.ok() || !r->found) {
      state.SkipWithError("maintained sketch-refine solve failed");
      return;
    }
    lp_iters = static_cast<double>(r->lp_iterations);
    objective = r->objective;
    reused = static_cast<double>(r->groups_reused);
    dirty = static_cast<double>(r->dirty_groups);
  }
  state.SetLabel(incremental ? "incremental" : "cold");
  state.counters["lp_iterations"] = lp_iters;
  state.counters["objective"] = objective;
  state.counters["groups_reused"] = reused;
  state.counters["dirty_groups"] = dirty;
}
BENCHMARK(BM_IncrementalAppend)->Arg(0)->Arg(1)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
