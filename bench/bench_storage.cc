// E8 — Out-of-core storage: zone-map pruning and block-cache behavior.
//
// BM_ZoneMapScan measures the §4.1 bounds derivation over lineitem at a
// fixed zone granularity, resident vs spilled. With a dense candidate list
// every block is fully covered, so the pruner bounds SUM(quantity) from
// zone metadata alone: the spilled case performs zero block reads, and
// zone_map_skipped_blocks is identical in both layouts (the counter is a
// function of table + query + granularity, never of where the bytes live).
//
// BM_OutOfCoreSolve measures one cold end-to-end solve over a spilled
// lineitem table, with the cache either unbounded (every block faults once)
// or sized to ~2 blocks (the data does not fit; the LRU thrashes). The
// package and objective are bit-identical either way; only block_reads —
// segment-file fetches, i.e. cache misses — moves with the budget. All
// three reported counters are deterministic under the single-threaded
// solve and are gated by tools/check_bench_regression.py: block_reads as a
// work counter (more IO fails), zone_map_skipped_blocks as a determinism
// canary (any drift fails), objective at 1e-6.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <utility>

#include "core/pruning.h"
#include "datagen/lineitem.h"
#include "db/catalog.h"
#include "db/ops.h"
#include "engine/engine.h"
#include "paql/analyzer.h"
#include "storage/block_cache.h"

namespace {

constexpr const char* kQuery =
    "SELECT PACKAGE(L) FROM lineitem L SUCH THAT COUNT(*) = 8 AND "
    "SUM(quantity) <= 200 MAXIMIZE SUM(revenue)";

std::string BenchSegmentPath(const std::string& name) {
  std::error_code ec;
  std::string dir = std::filesystem::temp_directory_path(ec).string();
  if (ec) dir = ".";
  return dir + "/pb_bench_" + name + ".seg";
}

void BM_ZoneMapScan(benchmark::State& state) {
  const bool spilled = state.range(0) != 0;
  const size_t n = 16384;      // 16 full blocks per numeric column
  const size_t block_size = 1024;

  pb::storage::BlockCache cache(/*budget_bytes=*/0);  // declared before the
  pb::db::Catalog catalog;  // catalog: spilled columns hold cache pointers
  pb::db::Table table = pb::datagen::GenerateLineitems(n, 7);
  if (spilled) {
    auto s = table.SpillToDisk(BenchSegmentPath("zonescan"), block_size,
                               &cache);
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
  } else {
    table.SetBlockSize(block_size);
  }
  catalog.RegisterOrReplace(std::move(table));

  auto aq = pb::paql::ParseAndAnalyze(kQuery, catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  auto candidates = pb::db::FilterIndices(*aq->table, aq->query.where);
  if (!candidates.ok()) {
    state.SkipWithError(candidates.status().ToString().c_str());
    return;
  }

  pb::core::CardinalityBounds bounds;
  for (auto _ : state) {
    auto b = pb::core::DeriveCardinalityBounds(*aq, *candidates);
    if (!b.ok()) {
      state.SkipWithError(b.status().ToString().c_str());
      return;
    }
    bounds = *b;
    benchmark::DoNotOptimize(bounds);
  }
  state.SetLabel(spilled ? "spilled" : "resident");
  state.counters["n"] = static_cast<double>(n);
  state.counters["zone_map_skipped_blocks"] =
      static_cast<double>(bounds.zone_map_skipped_blocks);
  // Zero for both layouts: full-coverage blocks never fault value data.
  state.counters["block_reads"] =
      static_cast<double>(cache.stats().misses);
}
BENCHMARK(BM_ZoneMapScan)->Arg(0)->Arg(1);

void BM_OutOfCoreSolve(benchmark::State& state) {
  const bool tiny_cache = state.range(0) != 0;
  const size_t n = 600;
  const size_t block_size = 64;  // 10 blocks per numeric column
  // ~2 data blocks plus slack, the same shape as the acceptance test: the
  // working set (quantity + revenue gathers) cannot fit.
  const int64_t budget =
      tiny_cache ? static_cast<int64_t>(2 * block_size * 8 + 64) : 0;

  double reads = 0.0, skips = 0.0, objective = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh cache + engine per iteration: every solve is cold (no result
    // cache, no warm blocks), so the miss count is the cost of ONE solve.
    auto cache = std::make_unique<pb::storage::BlockCache>(budget);
    auto engine = std::make_unique<pb::engine::Engine>();
    pb::db::Table table = pb::datagen::GenerateLineitems(n, 7);
    auto s = table.SpillToDisk(BenchSegmentPath("oocsolve"), block_size,
                               cache.get());
    if (s.ok()) s = engine->RegisterTable(std::move(table));
    if (!s.ok()) {
      state.SkipWithError(s.ToString().c_str());
      return;
    }
    state.ResumeTiming();

    pb::engine::QueryResponse resp = engine->ExecuteQuery(0, kQuery);

    state.PauseTiming();
    if (!resp.ok() || !resp.proven_optimal) {
      state.SkipWithError("out-of-core solve not optimal");
      return;
    }
    reads = static_cast<double>(cache->stats().misses);
    skips = static_cast<double>(resp.zone_map_skipped_blocks);
    objective = resp.objective;
    engine.reset();  // engine holds spilled columns; destroy before cache
    cache.reset();
    state.ResumeTiming();
  }
  state.SetLabel(tiny_cache ? "cache=2blocks" : "cache=unbounded");
  state.counters["n"] = static_cast<double>(n);
  state.counters["block_reads"] = reads;
  state.counters["zone_map_skipped_blocks"] = skips;
  state.counters["objective"] = objective;
}
BENCHMARK(BM_OutOfCoreSolve)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
