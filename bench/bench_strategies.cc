// E3 — Evaluation-strategy comparison (§4).
//
// The paper positions brute force as "impractical", the constraint solver
// as the exact workhorse, and heuristics as fast-but-incomplete. This bench
// regenerates that comparison on the meal-planner query family across
// candidate-set sizes. Reported per (strategy, n): wall time, objective
// achieved (quality), and success. Brute force is only run at sizes where
// it terminates within the budget — its absence from larger rows IS the
// paper's claim.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"

namespace {

using pb::core::EvaluationOptions;
using pb::core::QueryEvaluator;
using pb::core::Strategy;

std::string QueryFor(size_t n) {
  (void)n;  // one query family across sizes
  // The calories window scales with n so the instance stays feasible and
  // non-trivial at every size.
  return "SELECT PACKAGE(R) FROM recipes R WHERE gluten = 'free' "
         "SUCH THAT COUNT(*) = 5 AND SUM(calories) BETWEEN 2000 AND 2600 "
         "MAXIMIZE SUM(protein)";
}

void RunStrategy(benchmark::State& state, Strategy strategy, size_t n) {
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 7));
  auto aq = pb::paql::ParseAndAnalyze(QueryFor(n), catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  QueryEvaluator evaluator(&catalog);
  EvaluationOptions opts;
  opts.strategy = strategy;
  opts.brute_force.time_limit_s = 5.0;
  opts.brute_force.max_nodes = 40'000'000;
  opts.local_search.time_limit_s = 5.0;
  double objective = 0.0;
  int success = 0, proven = 0, runs = 0;
  for (auto _ : state) {
    auto r = evaluator.Evaluate(*aq, opts);
    ++runs;
    if (r.ok()) {
      ++success;
      proven += r->proven_optimal ? 1 : 0;
      objective = r->objective;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["objective"] = objective;
  state.counters["success"] = runs ? static_cast<double>(success) / runs : 0;
  state.counters["proven_optimal"] =
      runs ? static_cast<double>(proven) / runs : 0;
}

void BM_Ilp(benchmark::State& state) {
  RunStrategy(state, Strategy::kIlpSolver,
              static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Ilp)->Arg(10)->Arg(30)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_BruteForce(benchmark::State& state) {
  RunStrategy(state, Strategy::kBruteForce,
              static_cast<size_t>(state.range(0)));
}
// Brute force stops at 30: the 2^n wall (the paper's "impractical").
BENCHMARK(BM_BruteForce)->Arg(10)->Arg(20)->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_LocalSearch(benchmark::State& state) {
  RunStrategy(state, Strategy::kLocalSearch,
              static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_LocalSearch)->Arg(10)->Arg(30)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

void BM_Hybrid(benchmark::State& state) {
  RunStrategy(state, Strategy::kAuto, static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_Hybrid)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond);

/// Ablation: the solver path with and without the §4.1 cardinality row.
void BM_IlpPruningAblation(benchmark::State& state) {
  const bool use_pruning = state.range(0) != 0;
  const size_t n = static_cast<size_t>(state.range(1));
  pb::db::Catalog catalog;
  catalog.RegisterOrReplace(pb::datagen::GenerateRecipes(n, 7));
  auto aq = pb::paql::ParseAndAnalyze(QueryFor(n), catalog);
  if (!aq.ok()) {
    state.SkipWithError(aq.status().ToString().c_str());
    return;
  }
  QueryEvaluator evaluator(&catalog);
  EvaluationOptions opts;
  opts.strategy = Strategy::kIlpSolver;
  opts.use_pruning = use_pruning;
  double nodes = 0;
  for (auto _ : state) {
    auto r = evaluator.Evaluate(*aq, opts);
    if (r.ok() && r->milp) nodes = static_cast<double>(r->milp->nodes);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["pruning"] = use_pruning ? 1 : 0;
  state.counters["bnb_nodes"] = nodes;
}
BENCHMARK(BM_IlpPruningAblation)
    ->Args({0, 1000})->Args({1, 1000})->Args({0, 5000})->Args({1, 5000})
    ->Unit(benchmark::kMillisecond);

}  // namespace
