#include "ui/template.h"

#include "common/strings.h"

namespace pb::ui {

namespace {

/// Flattens the SUCH THAT conjunction into displayable constraints.
void CollectConjuncts(const paql::GExpr& e,
                      std::vector<const paql::GExpr*>* out) {
  if (e.kind == paql::GExprKind::kBool && e.op == db::BinaryOp::kAnd) {
    CollectConjuncts(*e.children[0], out);
    CollectConjuncts(*e.children[1], out);
    return;
  }
  out->push_back(&e);
}

}  // namespace

Result<std::string> RenderPackageTemplate(const paql::AnalyzedQuery& aq,
                                          const core::Package& sample,
                                          const TemplateOptions& options) {
  std::string out;
  out += "== Package template: " + aq.query.package_alias + " over " +
         aq.query.relation + " ==\n\n";

  if (options.show_paql) {
    out += aq.query.ToPaql() + "\n\n";
  }

  if (aq.query.where) {
    out += "Base constraints (each tuple):\n";
    out += "  - " + aq.query.where->ToString() + "\n";
  }
  if (aq.query.such_that) {
    out += "Global constraints (the whole package):\n";
    std::vector<const paql::GExpr*> conjuncts;
    CollectConjuncts(*aq.query.such_that, &conjuncts);
    for (const paql::GExpr* c : conjuncts) {
      out += "  - " + c->ToString() + "\n";
      out += "      (" + paql::DescribeGlobalConstraint(*c) + ")\n";
    }
  }
  if (aq.query.objective) {
    out += "Objective:\n  - " + aq.query.objective->ToString() + "\n";
    out += "      (" + paql::DescribeObjective(*aq.query.objective) + ")\n";
  }

  out += "\nSample package (" + std::to_string(sample.TotalCount()) +
         " tuples):\n";
  db::Table materialized =
      core::MaterializePackage(*aq.table, sample, "sample");
  out += materialized.ToString(options.max_sample_rows);

  // Live aggregate readout for every aggregate the query mentions.
  if (!aq.aggs.empty()) {
    out += "\nCurrent package aggregates:\n";
    for (const paql::AggCall& agg : aq.aggs) {
      PB_ASSIGN_OR_RETURN(db::Value v,
                          core::EvalPackageAgg(agg, *aq.table, sample));
      out += "  " + agg.ToString() + " = " + v.ToString() + "\n";
    }
  }
  return out;
}

}  // namespace pb::ui
