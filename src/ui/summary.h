// Package-space visual summary (paper §3.2): "The system analyzes the
// current query specification and selects two dimensions to visually layout
// the valid packages along. Users can use the visual summary to navigate
// through the available packages by selecting glyphs that represent them."
//
// The backend work is (a) scoring candidate dimensions — one per aggregate
// the query mentions, plus the objective — and picking the most informative
// uncorrelated pair, and (b) producing the 2-D layout plus a glyph grid.

#ifndef PB_UI_SUMMARY_H_
#define PB_UI_SUMMARY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/package.h"

namespace pb::ui {

/// One candidate layout dimension: an aggregate evaluated per package.
struct SummaryDimension {
  std::string label;   ///< "SUM(calories)", "COUNT(*)", "objective"
  paql::AggCall agg;
};

struct SummaryOptions {
  size_t grid_width = 24;
  size_t grid_height = 12;
};

/// The computed layout.
struct PackageSpaceSummary {
  SummaryDimension x_dim, y_dim;
  /// Per-package coordinates in (x_dim, y_dim) space, parallel to the input
  /// package list.
  std::vector<std::pair<double, double>> points;
  /// Glyph counts bucketed on a grid (row-major, grid_height rows).
  std::vector<int> grid;
  size_t grid_width = 0, grid_height = 0;
  double x_min = 0, x_max = 0, y_min = 0, y_max = 0;

  /// Index of the package whose point is nearest to (x, y) — the backend of
  /// "selecting glyphs". Returns -1 when empty.
  int NearestPackage(double x, double y) const;

  /// ASCII rendering of the grid (digit = package count, '*' for >9), with
  /// the highlighted package marked '@'.
  std::string Render(int highlight_package = -1) const;
};

/// Builds the summary for a set of valid packages found so far. Dimensions
/// are taken from the query's aggregates; the best-spread, least-correlated
/// pair is chosen. Requires at least one numeric dimension; with only one,
/// the y axis falls back to COUNT(*).
Result<PackageSpaceSummary> SummarizePackageSpace(
    const paql::AnalyzedQuery& aq, const std::vector<core::Package>& packages,
    const SummaryOptions& options = {});

}  // namespace pb::ui

#endif  // PB_UI_SUMMARY_H_
