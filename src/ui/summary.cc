#include "ui/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace pb::ui {

namespace {

/// Mean/variance/correlation helpers over per-package dimension values.
double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v), s = 0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  double ma = Mean(a), mb = Mean(b), cov = 0, va = 0, vb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0 || vb <= 0) return 0.0;
  return cov / std::sqrt(va * vb);
}

}  // namespace

int PackageSpaceSummary::NearestPackage(double x, double y) const {
  if (points.empty()) return -1;
  // Normalize by the axis spans so both dimensions weigh equally.
  double xs = x_max > x_min ? x_max - x_min : 1.0;
  double ys = y_max > y_min ? y_max - y_min : 1.0;
  int best = -1;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < points.size(); ++i) {
    double dx = (points[i].first - x) / xs;
    double dy = (points[i].second - y) / ys;
    double d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

std::string PackageSpaceSummary::Render(int highlight_package) const {
  std::string out;
  out += y_dim.label + " ^\n";
  std::pair<size_t, size_t> mark{SIZE_MAX, SIZE_MAX};
  auto cell_of = [&](size_t i) -> std::pair<size_t, size_t> {
    double xs = x_max > x_min ? x_max - x_min : 1.0;
    double ys = y_max > y_min ? y_max - y_min : 1.0;
    size_t cx = std::min(grid_width - 1,
                         static_cast<size_t>((points[i].first - x_min) / xs *
                                             static_cast<double>(grid_width)));
    size_t cy = std::min(grid_height - 1,
                         static_cast<size_t>((points[i].second - y_min) / ys *
                                             static_cast<double>(grid_height)));
    return {cx, cy};
  };
  if (highlight_package >= 0 &&
      static_cast<size_t>(highlight_package) < points.size()) {
    mark = cell_of(static_cast<size_t>(highlight_package));
  }
  for (size_t gy = grid_height; gy-- > 0;) {
    out += "  |";
    for (size_t gx = 0; gx < grid_width; ++gx) {
      if (mark.first == gx && mark.second == gy) {
        out += '@';
        continue;
      }
      int c = grid[gy * grid_width + gx];
      if (c == 0) out += '.';
      else if (c <= 9) out += static_cast<char>('0' + c);
      else out += '*';
    }
    out += "\n";
  }
  out += "  +" + std::string(grid_width, '-') + "> " + x_dim.label + "\n";
  return out;
}

Result<PackageSpaceSummary> SummarizePackageSpace(
    const paql::AnalyzedQuery& aq, const std::vector<core::Package>& packages,
    const SummaryOptions& options) {
  // Candidate dimensions: every canonical aggregate of the query; COUNT(*)
  // is always available as a fallback axis.
  std::vector<SummaryDimension> dims;
  for (const paql::AggCall& agg : aq.aggs) {
    SummaryDimension d;
    d.label = agg.ToString();
    d.agg.func = agg.func;
    d.agg.arg = agg.arg ? agg.arg->Clone() : nullptr;
    dims.push_back(std::move(d));
  }
  bool have_count = false;
  for (const auto& d : dims) {
    if (d.agg.func == db::AggFunc::kCount && !d.agg.arg) have_count = true;
  }
  if (!have_count) {
    SummaryDimension d;
    d.label = "COUNT(*)";
    d.agg.func = db::AggFunc::kCount;
    dims.push_back(std::move(d));
  }

  // Evaluate every dimension for every package.
  std::vector<std::vector<double>> values(dims.size());
  for (size_t d = 0; d < dims.size(); ++d) {
    values[d].reserve(packages.size());
    for (const core::Package& pkg : packages) {
      PB_ASSIGN_OR_RETURN(db::Value v,
                          core::EvalPackageAgg(dims[d].agg, *aq.table, pkg));
      double x = 0.0;
      if (v.is_numeric()) {
        PB_ASSIGN_OR_RETURN(x, v.ToDouble());
      }
      values[d].push_back(x);
    }
  }

  // Normalized variance score; pick the top axis, then the axis with the
  // best spread x (1 - |correlation|) tradeoff.
  auto norm_var = [&](size_t d) {
    double m = Mean(values[d]);
    double scale = std::max(1.0, std::abs(m));
    return Variance(values[d]) / (scale * scale);
  };
  size_t x_dim = 0;
  double best = -1.0;
  for (size_t d = 0; d < dims.size(); ++d) {
    if (norm_var(d) > best) {
      best = norm_var(d);
      x_dim = d;
    }
  }
  size_t y_dim = x_dim == 0 && dims.size() > 1 ? 1 : 0;
  best = -1.0;
  for (size_t d = 0; d < dims.size(); ++d) {
    if (d == x_dim) continue;
    double score =
        norm_var(d) * (1.0 - std::abs(Correlation(values[x_dim], values[d])));
    if (score > best) {
      best = score;
      y_dim = d;
    }
  }
  if (dims.size() == 1) y_dim = x_dim;

  PackageSpaceSummary out;
  out.x_dim.label = dims[x_dim].label;
  out.x_dim.agg.func = dims[x_dim].agg.func;
  out.x_dim.agg.arg =
      dims[x_dim].agg.arg ? dims[x_dim].agg.arg->Clone() : nullptr;
  out.y_dim.label = dims[y_dim].label;
  out.y_dim.agg.func = dims[y_dim].agg.func;
  out.y_dim.agg.arg =
      dims[y_dim].agg.arg ? dims[y_dim].agg.arg->Clone() : nullptr;
  out.grid_width = options.grid_width;
  out.grid_height = options.grid_height;
  out.grid.assign(options.grid_width * options.grid_height, 0);

  out.points.reserve(packages.size());
  for (size_t i = 0; i < packages.size(); ++i) {
    out.points.emplace_back(values[x_dim][i], values[y_dim][i]);
  }
  if (!out.points.empty()) {
    out.x_min = out.x_max = out.points[0].first;
    out.y_min = out.y_max = out.points[0].second;
    for (auto& [x, y] : out.points) {
      out.x_min = std::min(out.x_min, x);
      out.x_max = std::max(out.x_max, x);
      out.y_min = std::min(out.y_min, y);
      out.y_max = std::max(out.y_max, y);
    }
    double xs = out.x_max > out.x_min ? out.x_max - out.x_min : 1.0;
    double ys = out.y_max > out.y_min ? out.y_max - out.y_min : 1.0;
    for (auto& [x, y] : out.points) {
      size_t gx = std::min(
          out.grid_width - 1,
          static_cast<size_t>((x - out.x_min) / xs *
                              static_cast<double>(out.grid_width)));
      size_t gy = std::min(
          out.grid_height - 1,
          static_cast<size_t>((y - out.y_min) / ys *
                              static_cast<double>(out.grid_height)));
      ++out.grid[gy * out.grid_width + gx];
    }
  }
  return out;
}

}  // namespace pb::ui
