// Constraint suggestion (paper §3.1): "As a user interacts with the
// template by highlighting elements in the sample package, PACKAGEBUILDER
// suggests constraints. For example, when the user selects a cell within
// the 'fats' column, the system proposes several constraints that would
// restrict the amount of fat in each meal, and objectives that would
// minimize the total amount of fat."
//
// This module is the backend of that interaction: given a highlight target
// (cell / column / row) over the current sample package, it produces ranked
// suggestions — base constraints, global constraints, and objectives — each
// carrying both its PaQL spelling and a natural-language description.

#ifndef PB_UI_SUGGEST_H_
#define PB_UI_SUGGEST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/package.h"
#include "paql/ast.h"

namespace pb::ui {

/// What the user highlighted in the sample-package table.
struct Highlight {
  enum class Kind { kCell, kColumn, kRow };
  Kind kind = Kind::kCell;
  /// Position within the *sample package* (not the base table).
  size_t package_position = 0;  // for kCell / kRow
  std::string column;           // for kCell / kColumn
};

/// One proposed refinement of the query.
struct Suggestion {
  enum class Kind { kBaseConstraint, kGlobalConstraint, kObjective };
  Kind kind = Kind::kBaseConstraint;
  /// PaQL fragment ("R.fat <= 30", "SUM(P.fat) <= 120", "MINIMIZE SUM(P.fat)").
  std::string paql;
  /// English rendering shown next to the control (Figure 1's natural
  /// language descriptions).
  std::string description;
  /// Parsed forms, ready to merge into a Query (exactly one is set,
  /// matching `kind`).
  db::ExprPtr base;
  paql::GExprPtr global;
  std::optional<paql::Objective> objective;
};

struct SuggestOptions {
  /// Slack applied around observed values when proposing ranges (0.2 = the
  /// BETWEEN suggestion spans value +/- 20%).
  double range_slack = 0.2;
  size_t max_suggestions = 12;
};

/// Produces suggestions for a highlight over `sample` (a package against
/// `table`). Fails only on unknown columns / invalid positions.
Result<std::vector<Suggestion>> SuggestConstraints(
    const db::Table& table, const core::Package& sample,
    const Highlight& highlight, const SuggestOptions& options = {});

/// Merges a suggestion into a query: base constraints AND-extend WHERE,
/// global constraints AND-extend SUCH THAT, objectives replace the
/// objective.
void ApplySuggestion(const Suggestion& suggestion, paql::Query* query);

}  // namespace pb::ui

#endif  // PB_UI_SUGGEST_H_
