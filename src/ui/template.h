// Package template (paper §3.1): "Our package template abstraction encodes
// package specifications in a familiar tabular format. The central
// component of the template is a sample package, presented as a scrollable
// table. Additional components include representations of base and global
// constraints, optimization objectives, and suggestions for additional
// package refinements."
//
// RenderPackageTemplate produces the text equivalent of that screen: the
// sample package as a table, each constraint with its natural-language
// description, and the objective.

#ifndef PB_UI_TEMPLATE_H_
#define PB_UI_TEMPLATE_H_

#include <string>

#include "common/status.h"
#include "core/package.h"

namespace pb::ui {

struct TemplateOptions {
  size_t max_sample_rows = 12;
  bool show_paql = true;
};

/// Renders the package-template view for a query and its current sample.
Result<std::string> RenderPackageTemplate(const paql::AnalyzedQuery& aq,
                                          const core::Package& sample,
                                          const TemplateOptions& options = {});

}  // namespace pb::ui

#endif  // PB_UI_TEMPLATE_H_
