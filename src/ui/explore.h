// Adaptive exploration (paper §3.3): "PACKAGEBUILDER initially presents a
// sample package that satisfies a few basic constraints. Users can then
// select good tuples within the sample, and request a new sample that
// replaces the unselected tuples. Users can repeat this process until they
// reach the ideal package. PACKAGEBUILDER uses these selections to narrow
// the search space as well as to identify additional package constraints."
//
// The session keeps the current sample and the set of locked (user-
// selected) tuples. Resample() finds a fresh valid package that (a) keeps
// every locked tuple and (b) differs from the current sample — implemented
// with lower-bound fixings plus a no-good cut on the solver path, and with
// a locked-core local search otherwise. InferConstraints() turns the locked
// tuples into suggested base constraints (the "identify additional package
// constraints" half).

#ifndef PB_UI_EXPLORE_H_
#define PB_UI_EXPLORE_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/package.h"
#include "ui/suggest.h"

namespace pb::ui {

struct ExploreOptions {
  uint64_t seed = 42;
  core::EvaluationOptions evaluation;
  /// Resample() rejects packages identical to any previous sample.
  size_t history_window = 16;
};

/// One trial-and-error query-building session.
class ExplorationSession {
 public:
  /// Binds the session to an analyzed query. `aq` must outlive the session.
  ExplorationSession(const paql::AnalyzedQuery* aq, ExploreOptions options);

  /// Finds the initial sample package.
  Status Start();

  const core::Package& sample() const { return sample_; }
  const std::set<size_t>& locked_rows() const { return locked_; }
  size_t rounds() const { return rounds_; }

  /// Locks/unlocks a base-table row of the current sample.
  Status Lock(size_t base_row);
  Status Unlock(size_t base_row);

  /// Replaces the unselected tuples: finds a valid package containing all
  /// locked tuples and differing from every recent sample. Returns
  /// kInfeasible when no such package exists.
  Status Resample();

  /// Suggested base constraints generalizing the locked tuples: numeric
  /// attributes become BETWEEN [min, max] over the locked rows; categorical
  /// attributes shared by all locked rows become equality predicates.
  Result<std::vector<Suggestion>> InferConstraints() const;

 private:
  Result<core::Package> SolveWithLocks();

  const paql::AnalyzedQuery* aq_;
  ExploreOptions options_;
  core::Package sample_;
  std::set<size_t> locked_;
  std::vector<std::string> history_;  // fingerprints of past samples
  size_t rounds_ = 0;
  uint64_t next_seed_;
};

}  // namespace pb::ui

#endif  // PB_UI_EXPLORE_H_
