#include "ui/explore.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "core/local_search.h"
#include "core/translator.h"
#include "db/ops.h"

namespace pb::ui {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

ExplorationSession::ExplorationSession(const paql::AnalyzedQuery* aq,
                                       ExploreOptions options)
    : aq_(aq), options_(options), next_seed_(options.seed) {}

Status ExplorationSession::Start() {
  core::QueryEvaluator evaluator(nullptr);  // catalog not needed: aq is bound
  PB_ASSIGN_OR_RETURN(core::EvaluationResult r,
                      evaluator.Evaluate(*aq_, options_.evaluation));
  sample_ = std::move(r.package);
  history_.push_back(sample_.Fingerprint());
  rounds_ = 1;
  return Status::OK();
}

Status ExplorationSession::Lock(size_t base_row) {
  if (sample_.MultiplicityOf(base_row) == 0) {
    return Status::InvalidArgument(
        "row " + std::to_string(base_row) + " is not in the current sample");
  }
  locked_.insert(base_row);
  return Status::OK();
}

Status ExplorationSession::Unlock(size_t base_row) {
  if (locked_.erase(base_row) == 0) {
    return Status::NotFound("row " + std::to_string(base_row) +
                            " is not locked");
  }
  return Status::OK();
}

Result<core::Package> ExplorationSession::SolveWithLocks() {
  const paql::AnalyzedQuery& aq = *aq_;
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);

  if (translatable) {
    PB_ASSIGN_OR_RETURN(core::IlpTranslation translation,
                        core::TranslateToIlp(aq));
    // Lock: x_i >= multiplicity the user kept (capped by REPEAT).
    for (size_t locked_row : locked_) {
      bool found = false;
      for (size_t j = 0; j < translation.candidates.size(); ++j) {
        if (translation.candidates[j] == locked_row) {
          int64_t keep =
              std::min(sample_.MultiplicityOf(locked_row),
                       aq.max_multiplicity);
          translation.model.mutable_variable(static_cast<int>(j)).lb =
              static_cast<double>(std::max<int64_t>(keep, 1));
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "locked row no longer satisfies the base constraints");
      }
    }
    // No-good cuts: exclude recent samples (binary case only; with REPEAT
    // the solver may legitimately return a multiplicity variant).
    if (aq.max_multiplicity == 1) {
      // Cut the current sample directly (the requirement is "replace the
      // unselected tuples with something new").
      std::vector<solver::LinearTerm> terms;
      double rhs = -1.0;
      for (size_t j = 0; j < translation.candidates.size(); ++j) {
        bool in_pkg = sample_.MultiplicityOf(translation.candidates[j]) > 0;
        terms.push_back({static_cast<int>(j), in_pkg ? 1.0 : -1.0});
        if (in_pkg) rhs += 1.0;
      }
      translation.model.AddConstraint("exclude_current", std::move(terms),
                                      -kInf, rhs);
    }
    PB_ASSIGN_OR_RETURN(
        solver::MilpResult r,
        solver::SolveMilp(translation.model, options_.evaluation.milp));
    if (!r.has_solution()) {
      return Status::Infeasible(
          "no alternative package keeps all locked tuples");
    }
    return core::DecodeSolution(translation, r.x);
  }

  // Heuristic path: restart local search until a package contains the
  // locked tuples and differs from the current sample.
  core::LocalSearchOptions ls = options_.evaluation.local_search;
  for (int attempt = 0; attempt < 8; ++attempt) {
    ls.seed = next_seed_++;
    PB_ASSIGN_OR_RETURN(core::LocalSearchResult r, core::LocalSearch(aq, ls));
    if (!r.found) continue;
    bool keeps_locked = true;
    for (size_t row : locked_) {
      if (r.package.MultiplicityOf(row) == 0) {
        keeps_locked = false;
        break;
      }
    }
    if (keeps_locked && r.package.Fingerprint() != sample_.Fingerprint()) {
      return r.package;
    }
  }
  return Status::Infeasible(
      "local search found no alternative package keeping the locked tuples");
}

Status ExplorationSession::Resample() {
  PB_ASSIGN_OR_RETURN(core::Package pkg, SolveWithLocks());
  sample_ = std::move(pkg);
  history_.push_back(sample_.Fingerprint());
  if (history_.size() > options_.history_window * 2) {
    history_.erase(history_.begin(),
                   history_.end() - options_.history_window);
  }
  ++rounds_;
  return Status::OK();
}

Result<std::vector<Suggestion>> ExplorationSession::InferConstraints() const {
  std::vector<Suggestion> out;
  if (locked_.empty()) return out;
  const db::Table& table = *aq_->table;

  for (size_t c = 0; c < table.schema().num_columns(); ++c) {
    const std::string& col = table.schema().column(c).name;
    // Numeric columns: BETWEEN [min, max] of the locked rows.
    double mn = kInf, mx = -kInf;
    bool numeric = true;
    bool string_common = true;
    // at() returns a materialized Value, so the common string is kept by
    // value rather than by pointer into the table.
    std::optional<db::Value> common;
    for (size_t row : locked_) {
      const db::Value v = table.at(row, c);
      if (v.is_numeric()) {
        double d = v.is_int() ? static_cast<double>(v.AsInt())
                              : v.AsDoubleExact();
        mn = std::min(mn, d);
        mx = std::max(mx, d);
        string_common = false;
      } else if (v.is_string()) {
        numeric = false;
        if (!common) {
          common = v;
        } else if (common->Compare(v) != 0) {
          string_common = false;
        }
      } else {
        numeric = false;
        string_common = false;
      }
    }
    if (numeric && mn <= mx) {
      Suggestion s;
      s.kind = Suggestion::Kind::kBaseConstraint;
      s.base = db::Between(db::Col(col), db::LitDouble(mn), db::LitDouble(mx));
      s.paql = s.base->ToString();
      s.description = "each tuple's " + col + " should stay between " +
                      db::Value::Double(mn).ToString() + " and " +
                      db::Value::Double(mx).ToString() +
                      " (the range of your selected tuples)";
      out.push_back(std::move(s));
    } else if (string_common && common) {
      Suggestion s;
      s.kind = Suggestion::Kind::kBaseConstraint;
      s.base = db::Binary(db::BinaryOp::kEq, db::Col(col),
                          db::LitString(common->AsString()));
      s.paql = s.base->ToString();
      s.description = "every selected tuple has " + col + " = '" +
                      common->AsString() + "'; keep only such tuples";
      out.push_back(std::move(s));
    }
  }
  return out;
}

}  // namespace pb::ui
