#include "ui/suggest.h"

#include <cmath>

#include "common/strings.h"
#include "db/ops.h"

namespace pb::ui {

namespace {

using core::EvalPackageAgg;
using core::Package;

Suggestion MakeBase(db::ExprPtr expr, std::string description) {
  Suggestion s;
  s.kind = Suggestion::Kind::kBaseConstraint;
  s.paql = expr->ToString();
  s.description = std::move(description);
  s.base = std::move(expr);
  return s;
}

Suggestion MakeGlobal(paql::GExprPtr expr) {
  Suggestion s;
  s.kind = Suggestion::Kind::kGlobalConstraint;
  s.paql = expr->ToString();
  s.description = paql::DescribeGlobalConstraint(*expr);
  s.global = std::move(expr);
  return s;
}

Suggestion MakeObjective(paql::Objective obj) {
  Suggestion s;
  s.kind = Suggestion::Kind::kObjective;
  s.paql = obj.ToString();
  s.description = paql::DescribeObjective(obj);
  s.objective = std::move(obj);
  return s;
}

double RoundNice(double v) {
  if (v == 0.0) return 0.0;
  double mag = std::pow(10.0, std::floor(std::log10(std::abs(v))) - 1);
  return std::round(v / mag) * mag;
}

/// Suggestions for a numeric cell value v in column `col`: per-tuple caps
/// and floors around v, plus a range (the paper's "restrict the amount of
/// fat in each meal").
void SuggestForNumericCell(const std::string& col, double v, double slack,
                           std::vector<Suggestion>* out) {
  out->push_back(MakeBase(
      db::Binary(db::BinaryOp::kLe, db::Col(col), db::LitDouble(RoundNice(v))),
      "each tuple's " + col + " must be at most " +
          FormatDouble(RoundNice(v))));
  out->push_back(MakeBase(
      db::Binary(db::BinaryOp::kGe, db::Col(col), db::LitDouble(RoundNice(v))),
      "each tuple's " + col + " must be at least " +
          FormatDouble(RoundNice(v))));
  double lo = RoundNice(v * (1 - slack)), hi = RoundNice(v * (1 + slack));
  if (lo > hi) std::swap(lo, hi);
  out->push_back(MakeBase(
      db::Between(db::Col(col), db::LitDouble(lo), db::LitDouble(hi)),
      "each tuple's " + col + " must stay between " + FormatDouble(lo) +
          " and " + FormatDouble(hi)));
}

/// Global suggestions around the sample package's current aggregates.
Status SuggestForColumn(const db::Table& table, const Package& sample,
                        const std::string& col, double slack,
                        std::vector<Suggestion>* out) {
  paql::AggCall sum_call{db::AggFunc::kSum, db::Col(col)};
  PB_RETURN_IF_ERROR(sum_call.arg->Bind(table.schema()));
  PB_ASSIGN_OR_RETURN(db::Value sum_v, EvalPackageAgg(sum_call, table, sample));
  if (sum_v.is_numeric()) {
    PB_ASSIGN_OR_RETURN(double sum, sum_v.ToDouble());
    auto sum_agg = [&] {
      return paql::GAgg(db::AggFunc::kSum, db::Col(col));
    };
    out->push_back(MakeGlobal(paql::GCompare(
        db::BinaryOp::kLe, sum_agg(),
        paql::GLit(db::Value::Double(RoundNice(sum))))));
    out->push_back(MakeGlobal(paql::GCompare(
        db::BinaryOp::kGe, sum_agg(),
        paql::GLit(db::Value::Double(RoundNice(sum))))));
    double lo = RoundNice(sum * (1 - slack)), hi = RoundNice(sum * (1 + slack));
    if (lo > hi) std::swap(lo, hi);
    out->push_back(MakeGlobal(paql::GBetween(
        sum_agg(), paql::GLit(db::Value::Double(lo)),
        paql::GLit(db::Value::Double(hi)))));
    // Objectives: the Figure-1 interaction ("minimize the total amount of
    // fat").
    out->push_back(MakeObjective(
        {paql::ObjectiveSense::kMinimize, sum_agg()}));
    out->push_back(MakeObjective(
        {paql::ObjectiveSense::kMaximize, sum_agg()}));
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Suggestion>> SuggestConstraints(
    const db::Table& table, const core::Package& sample,
    const Highlight& highlight, const SuggestOptions& options) {
  std::vector<Suggestion> out;

  // Resolve the package position to a base-table row when needed.
  auto resolve_row = [&]() -> Result<size_t> {
    if (highlight.package_position >= sample.rows.size()) {
      return Status::OutOfRange("highlight position " +
                                std::to_string(highlight.package_position) +
                                " exceeds the sample package size");
    }
    return sample.rows[highlight.package_position];
  };

  switch (highlight.kind) {
    case Highlight::Kind::kCell: {
      PB_ASSIGN_OR_RETURN(size_t row, resolve_row());
      PB_ASSIGN_OR_RETURN(size_t col_idx,
                          table.schema().IndexOf(highlight.column));
      const db::Value& v = table.at(row, col_idx);
      if (v.is_numeric()) {
        PB_ASSIGN_OR_RETURN(double d, v.ToDouble());
        SuggestForNumericCell(highlight.column, d, options.range_slack, &out);
        PB_RETURN_IF_ERROR(SuggestForColumn(table, sample, highlight.column,
                                            options.range_slack, &out));
      } else if (v.is_string()) {
        out.push_back(MakeBase(
            db::Binary(db::BinaryOp::kEq, db::Col(highlight.column),
                       db::LitString(v.AsString())),
            "keep only tuples whose " + highlight.column + " is '" +
                v.AsString() + "'"));
        out.push_back(MakeBase(
            db::Binary(db::BinaryOp::kNe, db::Col(highlight.column),
                       db::LitString(v.AsString())),
            "exclude tuples whose " + highlight.column + " is '" +
                v.AsString() + "'"));
      }
      break;
    }
    case Highlight::Kind::kColumn: {
      PB_ASSIGN_OR_RETURN(size_t col_idx,
                          table.schema().IndexOf(highlight.column));
      (void)col_idx;
      PB_RETURN_IF_ERROR(SuggestForColumn(table, sample, highlight.column,
                                          options.range_slack, &out));
      // Cardinality suggestions always make sense on a whole-column select.
      int64_t count = sample.TotalCount();
      out.push_back(MakeGlobal(paql::GCompare(
          db::BinaryOp::kEq, paql::GAgg(db::AggFunc::kCount, nullptr),
          paql::GLit(db::Value::Int(count)))));
      break;
    }
    case Highlight::Kind::kRow: {
      PB_ASSIGN_OR_RETURN(size_t row, resolve_row());
      // "More like this": equality on categorical attributes of the row.
      for (size_t c = 0; c < table.schema().num_columns(); ++c) {
        const db::Value& v = table.at(row, c);
        if (v.is_string()) {
          const std::string& col = table.schema().column(c).name;
          out.push_back(MakeBase(
              db::Binary(db::BinaryOp::kEq, db::Col(col),
                         db::LitString(v.AsString())),
              "keep only tuples whose " + col + " is '" + v.AsString() +
                  "' (like the highlighted one)"));
        }
      }
      break;
    }
  }

  if (out.size() > options.max_suggestions) {
    out.resize(options.max_suggestions);
  }
  return out;
}

void ApplySuggestion(const Suggestion& suggestion, paql::Query* query) {
  switch (suggestion.kind) {
    case Suggestion::Kind::kBaseConstraint:
      query->where = db::AndMaybe(query->where, suggestion.base->Clone());
      break;
    case Suggestion::Kind::kGlobalConstraint:
      query->such_that =
          paql::GAndMaybe(query->such_that, suggestion.global->Clone());
      break;
    case Suggestion::Kind::kObjective:
      query->objective = suggestion.objective;
      break;
  }
}

}  // namespace pb::ui
