// The pbserve wire protocol: newline-framed JSON over a byte stream.
//
// Each request is one JSON object on one line; each response is one JSON
// envelope on one line. The envelope shape is fixed:
//
//   {"ok":true,"result":{...}}
//   {"ok":false,"error":{"code":"<StatusCode name>","message":"..."}}
//
// Error codes map 1:1 onto the engine's StatusCode taxonomy via
// StatusCodeToString, so a client can switch on "code" without parsing
// messages (see docs/adr/0001-error-envelopes.md).
//
// Requests ("op" selects the operation):
//   {"op":"hello"}                        -> {"session":N,"server":...}
//   {"op":"query","paql":"...",
//    "session":N,                          (optional; 0 = anonymous)
//    "budget":{"time_limit_s":S,          (optional, all fields optional)
//              "max_nodes":N,"threads":T}}
//   {"op":"cancel","session":N}           -> cancels N's in-flight query
//   {"op":"tables"}                       -> catalog listing
//   {"op":"gen","kind":"recipes",
//    "n":500,"seed":42}                   -> generates a dataset
//   {"op":"spill","table":"lineitem",
//    "block_size":65536}                  -> move a table to disk blocks
//   {"op":"append","table":"lineitem",
//    "rows":[[1,2.5,"air"],...]}          -> append rows (incremental
//                                            maintenance; spilled tables
//                                            fall back to full
//                                            invalidation)
//   {"op":"stats"}                        -> engine counters
//   {"op":"close","session":N}            -> closes a session
//
// This layer is transport-independent: the Server owns sockets and calls
// HandleRequestLine once per received line.

#ifndef PB_SERVER_PROTOCOL_H_
#define PB_SERVER_PROTOCOL_H_

#include <string>

#include "common/json.h"
#include "common/status.h"
#include "engine/engine.h"

namespace pb::server {

/// Per-connection protocol state: sessions opened by "hello" on this
/// connection, so the transport can close them when the peer disconnects.
struct ConnectionContext {
  std::vector<uint64_t> sessions;
};

/// Wraps a success payload in the wire envelope.
json::Value OkEnvelope(json::Value result);

/// Builds the error envelope for a status (status must not be OK).
json::Value ErrorEnvelope(const Status& status);
json::Value ErrorEnvelope(StatusCode code, const std::string& message);

/// Serializes a QueryResponse into the "query" result payload: package
/// rows + multiplicities, objective, strategy, counters, and timings.
json::Value QueryResponseToJson(const engine::QueryResponse& resp);

/// Dispatches one parsed request against the engine. Never fails: protocol
/// and engine errors come back as error envelopes. `ctx` (optional) tracks
/// sessions opened/closed by this request stream.
json::Value HandleRequest(engine::Engine* engine, const json::Value& request,
                          ConnectionContext* ctx = nullptr);

/// Parses one request line and dispatches it; returns the serialized
/// envelope (no trailing newline). Malformed JSON yields a ParseError
/// envelope.
std::string HandleRequestLine(engine::Engine* engine, const std::string& line,
                              ConnectionContext* ctx = nullptr);

}  // namespace pb::server

#endif  // PB_SERVER_PROTOCOL_H_
