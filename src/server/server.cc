#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "server/protocol.h"

namespace pb::server {

namespace {

/// Writes the whole buffer, absorbing partial sends. MSG_NOSIGNAL keeps a
/// dead peer from killing the process with SIGPIPE.
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool SendLine(int fd, std::string line) {
  line.push_back('\n');
  return SendAll(fd, line);
}

}  // namespace

Server::Server(engine::Engine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" + options_.host +
                                   "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status s =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    // A second caller still needs to wait for the first teardown, which
    // holds mu_ while joining.
    MutexLock lock(&mu_);
    return;
  }
  if (listen_fd_ >= 0) {
    // Kick the accept thread out of ::accept. The fd value itself is not
    // overwritten until after the join: AcceptLoop still reads it.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  MutexLock lock(&mu_);
  for (auto& conn : connections_) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();
}

void Server::ReapFinishedLocked() {
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& c) {
    if (!c->finished.load(std::memory_order_acquire)) return false;
    if (c->thread.joinable()) c->thread.join();
    ::close(c->fd);
    return true;
  });
}

void Server::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    MutexLock lock(&mu_);
    ReapFinishedLocked();
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    if (connections_.size() >=
        static_cast<size_t>(options_.max_connections)) {
      SendLine(fd, ErrorEnvelope(StatusCode::kResourceExhausted,
                                 "server overloaded: connection limit "
                                 "reached")
                       .Dump());
      ::close(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { ServeConnection(raw); });
    connections_.push_back(std::move(conn));
  }
}

void Server::ServeConnection(Connection* conn) {
  ConnectionContext ctx;
  std::string pending;
  char buf[4096];
  bool poisoned = false;
  while (!poisoned) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed or Stop() shut the socket down
    pending.append(buf, static_cast<size_t>(n));
    if (pending.size() > options_.max_line_bytes &&
        pending.find('\n') == std::string::npos) {
      SendLine(conn->fd, ErrorEnvelope(StatusCode::kInvalidArgument,
                                       "request line exceeds the size limit")
                             .Dump());
      break;
    }
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.size() > options_.max_line_bytes) {
        SendLine(conn->fd, ErrorEnvelope(StatusCode::kInvalidArgument,
                                         "request line exceeds the size "
                                         "limit")
                               .Dump());
        poisoned = true;
        break;
      }
      if (!SendLine(conn->fd, HandleRequestLine(engine_, line, &ctx))) {
        poisoned = true;
        break;
      }
    }
    pending.erase(0, start);
  }
  // Disconnect hygiene: a dropped client must not keep queries running or
  // sessions registered.
  for (const uint64_t session : ctx.sessions) {
    const Status close_status = engine_->CloseSession(session);
    if (!close_status.ok()) {
      PB_LOG(Warning) << "session " << session
                      << " did not close cleanly on disconnect: "
                      << close_status.ToString();
    }
  }
  conn->finished.store(true, std::memory_order_release);
}

}  // namespace pb::server
