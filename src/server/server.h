// Framed-TCP front end for pb::Engine (the pbserve transport).
//
// One accept thread plus one thread per connection; each connection reads
// newline-framed JSON requests, dispatches them through the protocol layer
// (which applies the engine's bounded admission queue), and writes back
// one envelope per line. Connections beyond max_connections receive an
// overload envelope and are closed instead of queued — the transport-level
// half of the server's backpressure, mirroring the engine's
// max_pending_queries on the query level.
//
// Sessions opened on a connection (op "hello") are closed — cancelling any
// in-flight query — when the peer disconnects.

#ifndef PB_SERVER_SERVER_H_
#define PB_SERVER_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"
#include "engine/engine.h"

namespace pb::server {

struct ServerOptions {
  /// Bind address. Loopback by default: pbserve is a local/trusted-network
  /// service with no authentication layer.
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks an ephemeral port (read it back via port()).
  int port = 0;
  /// Concurrent-connection cap; excess connections get an overload
  /// envelope and an immediate close.
  int max_connections = 32;
  /// Per-request size cap; longer lines poison the connection (one error
  /// envelope, then close).
  size_t max_line_bytes = 1 << 20;
};

class Server {
 public:
  /// The engine must outlive the server.
  Server(engine::Engine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the accept thread.
  Status Start();

  /// Stops accepting, shuts down every live connection, joins all threads.
  /// Idempotent; also called by the destructor.
  void Stop();

  /// The bound port (valid after Start()).
  int port() const { return port_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };

  void AcceptLoop();
  void ServeConnection(Connection* conn);
  /// Joins connections whose handler has returned.
  void ReapFinishedLocked() PB_REQUIRES(mu_);

  engine::Engine* engine_;
  ServerOptions options_;
  // listen_fd_ / port_ / accept_thread_ are written by Start() and Stop()
  // only, serialized through the stopping_ exchange (AcceptLoop reads the
  // fd that Start() published before spawning it).
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  Mutex mu_;
  std::vector<std::unique_ptr<Connection>> connections_ PB_GUARDED_BY(mu_);
};

}  // namespace pb::server

#endif  // PB_SERVER_SERVER_H_
