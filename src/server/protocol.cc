#include "server/protocol.h"

#include <utility>

#include "common/annotations.h"

namespace pb::server {

json::Value OkEnvelope(json::Value result) {
  json::Value envelope = json::Value::Object();
  envelope.Set("ok", json::Value::Bool(true));
  envelope.Set("result", std::move(result));
  return envelope;
}

json::Value ErrorEnvelope(StatusCode code, const std::string& message) {
  json::Value error = json::Value::Object();
  error.Set("code", json::Value::Str(StatusCodeToString(code)));
  error.Set("message", json::Value::Str(message));
  json::Value envelope = json::Value::Object();
  envelope.Set("ok", json::Value::Bool(false));
  envelope.Set("error", std::move(error));
  return envelope;
}

json::Value ErrorEnvelope(const Status& status) {
  return ErrorEnvelope(status.code(), status.message());
}

json::Value QueryResponseToJson(const engine::QueryResponse& resp) {
  json::Value pkg = json::Value::Object();
  json::Value rows = json::Value::Array();
  json::Value mult = json::Value::Array();
  for (size_t i = 0; i < resp.package.rows.size(); ++i) {
    rows.Push(json::Value::Int(static_cast<int64_t>(resp.package.rows[i])));
    mult.Push(json::Value::Int(resp.package.multiplicity[i]));
  }
  pkg.Set("rows", std::move(rows));
  pkg.Set("multiplicity", std::move(mult));
  pkg.Set("count", json::Value::Int(resp.package.TotalCount()));

  json::Value out = json::Value::Object();
  out.Set("table", json::Value::Str(resp.table));
  out.Set("package", std::move(pkg));
  out.Set("objective", json::Value::Number(resp.objective));
  out.Set("proven_optimal", json::Value::Bool(resp.proven_optimal));
  out.Set("strategy", json::Value::Str(resp.strategy));
  out.Set("cancelled", json::Value::Bool(resp.cancelled));

  json::Value counters = json::Value::Object();
  counters.Set("result_cache_hit", json::Value::Bool(resp.result_cache_hit));
  counters.Set("warm_start_hit", json::Value::Bool(resp.warm_start_hit));
  counters.Set("model_signature",
               json::Value::Str(std::to_string(resp.model_signature)));
  counters.Set("nodes", json::Value::Int(resp.nodes));
  counters.Set("lp_iterations", json::Value::Int(resp.lp_iterations));
  counters.Set("num_candidates",
               json::Value::Int(static_cast<int64_t>(resp.num_candidates)));
  counters.Set("zone_map_skipped_blocks",
               json::Value::Int(resp.zone_map_skipped_blocks));
  counters.Set("storage_peak_pinned_bytes",
               json::Value::Int(resp.storage_peak_pinned_bytes));
  counters.Set("revalidated", json::Value::Bool(resp.revalidated));
  counters.Set("dirty_groups", json::Value::Int(resp.dirty_groups));
  counters.Set("groups_reused", json::Value::Int(resp.groups_reused));
  counters.Set("maintenance_ms", json::Value::Number(resp.maintenance_ms));
  counters.Set("table_rows",
               json::Value::Int(static_cast<int64_t>(resp.table_rows)));
  out.Set("counters", std::move(counters));

  json::Value timings = json::Value::Object();
  timings.Set("parse_seconds", json::Value::Number(resp.parse_seconds));
  timings.Set("solve_seconds", json::Value::Number(resp.solve_seconds));
  timings.Set("total_seconds", json::Value::Number(resp.total_seconds));
  out.Set("timings", std::move(timings));
  return out;
}

namespace {

engine::QueryBudget ParseBudget(const json::Value& request) {
  engine::QueryBudget budget;
  const json::Value* b = request.Find("budget");
  if (b == nullptr || !b->is_object()) return budget;
  budget.time_limit_s = b->GetNumber("time_limit_s", 0.0);
  budget.max_nodes = b->GetInt("max_nodes", 0);
  budget.compute.threads =
      static_cast<int>(b->GetInt("threads", 1));
  budget.max_pinned_bytes = b->GetInt("max_pinned_bytes", 0);
  return budget;
}

json::Value HandleQuery(engine::Engine* engine, const json::Value& request) {
  const std::string paql = request.GetString("paql");
  if (paql.empty()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "query request needs a non-empty 'paql' field");
  }
  const uint64_t session =
      static_cast<uint64_t>(request.GetInt("session", 0));
  const engine::QueryBudget budget = ParseBudget(request);

  // Bounded admission: SubmitQuery refuses when the engine's pending limit
  // is reached; otherwise this connection thread waits for its turn on the
  // shared pool (the admission queue).
  Mutex mu;
  CondVar done_cv;
  bool done = false;
  engine::QueryResponse resp;
  const bool admitted = engine->SubmitQuery(
      session, paql, budget, [&](engine::QueryResponse r) {
        MutexLock lock(&mu);
        resp = std::move(r);
        done = true;
        done_cv.NotifyOne();
      });
  if (!admitted) {
    return ErrorEnvelope(StatusCode::kResourceExhausted,
                         "server overloaded: admission queue is full");
  }
  MutexLock lock(&mu);
  while (!done) done_cv.Wait(&mu);

  if (!resp.status.ok()) {
    json::Value envelope = ErrorEnvelope(resp.status);
    if (resp.cancelled) {
      // Mark budget/cancel stops so clients can distinguish "no such
      // package" from "gave up early" without string matching.
      json::Value error = *envelope.Find("error");
      error.Set("cancelled", json::Value::Bool(true));
      envelope.Set("error", std::move(error));
    }
    return envelope;
  }
  return OkEnvelope(QueryResponseToJson(resp));
}

json::Value HandleTables(engine::Engine* engine) {
  json::Value tables = json::Value::Array();
  for (const std::string& name : engine->TableNames()) {
    tables.Push(json::Value::Str(name));
  }
  json::Value result = json::Value::Object();
  result.Set("tables", std::move(tables));
  return OkEnvelope(std::move(result));
}

json::Value HandleGen(engine::Engine* engine, const json::Value& request) {
  const std::string kind = request.GetString("kind");
  const int64_t n = request.GetInt("n", 1000);
  const int64_t seed = request.GetInt("seed", 42);
  if (n <= 0) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "'n' must be positive");
  }
  auto rows = engine->GenerateDataset(kind, static_cast<size_t>(n),
                                      static_cast<uint64_t>(seed));
  if (!rows.ok()) return ErrorEnvelope(rows.status());
  json::Value result = json::Value::Object();
  result.Set("table", json::Value::Str(kind));
  result.Set("rows", json::Value::Int(static_cast<int64_t>(*rows)));
  return OkEnvelope(std::move(result));
}

json::Value HandleSpill(engine::Engine* engine, const json::Value& request) {
  const std::string table = request.GetString("table");
  if (table.empty()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "spill request needs a non-empty 'table' field");
  }
  const int64_t block_size = request.GetInt(
      "block_size", static_cast<int64_t>(storage::kDefaultBlockSize));
  if (block_size <= 0) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "'block_size' must be positive");
  }
  Status s = engine->SpillTable(table, "", static_cast<size_t>(block_size));
  if (!s.ok()) return ErrorEnvelope(s);
  json::Value result = json::Value::Object();
  result.Set("table", json::Value::Str(table));
  result.Set("block_size", json::Value::Int(block_size));
  return OkEnvelope(std::move(result));
}

/// JSON cell -> db::Value. Whole numbers travel as Int (which widens into
/// DOUBLE columns, so `3` fits both INT and DOUBLE schemas); fractional
/// ones as Double. Table::AppendRows re-checks types against the schema.
Result<db::Value> JsonCellToValue(const json::Value& cell) {
  if (cell.is_null()) return db::Value::Null();
  if (cell.is_bool()) return db::Value::Bool(cell.as_bool());
  if (cell.is_number()) {
    const double d = cell.as_number();
    if (d == static_cast<double>(cell.as_int())) {
      return db::Value::Int(cell.as_int());
    }
    return db::Value::Double(d);
  }
  if (cell.is_string()) return db::Value::String(cell.as_string());
  return Status::InvalidArgument(
      "append cells must be scalars (null, bool, number, or string)");
}

json::Value HandleAppend(engine::Engine* engine, const json::Value& request) {
  const std::string table = request.GetString("table");
  if (table.empty()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "append request needs a non-empty 'table' field");
  }
  const json::Value* rows = request.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "append request needs a 'rows' array of row arrays");
  }
  std::vector<db::Tuple> tuples;
  tuples.reserve(rows->items().size());
  for (const json::Value& row : rows->items()) {
    if (!row.is_array()) {
      return ErrorEnvelope(StatusCode::kInvalidArgument,
                           "each appended row must be an array of cells");
    }
    db::Tuple tuple;
    tuple.reserve(row.items().size());
    for (const json::Value& cell : row.items()) {
      auto value = JsonCellToValue(cell);
      if (!value.ok()) return ErrorEnvelope(value.status());
      tuple.push_back(*std::move(value));
    }
    tuples.push_back(std::move(tuple));
  }
  auto outcome = engine->AppendRows(table, std::move(tuples));
  if (!outcome.ok()) return ErrorEnvelope(outcome.status());
  json::Value result = json::Value::Object();
  result.Set("table", json::Value::Str(table));
  result.Set("appended", json::Value::Int(static_cast<int64_t>(outcome->rows)));
  result.Set("table_rows",
             json::Value::Int(static_cast<int64_t>(outcome->table_rows)));
  result.Set("full_invalidation",
             json::Value::Bool(outcome->full_invalidation));
  return OkEnvelope(std::move(result));
}

json::Value HandleStats(engine::Engine* engine) {
  const engine::EngineStats s = engine->stats();
  json::Value result = json::Value::Object();
  result.Set("queries", json::Value::Int(s.queries));
  result.Set("errors", json::Value::Int(s.errors));
  result.Set("cancelled", json::Value::Int(s.cancelled));
  result.Set("result_cache_hits", json::Value::Int(s.result_cache_hits));
  result.Set("warm_cache_hits", json::Value::Int(s.warm_cache_hits));
  result.Set("warm_cache_misses", json::Value::Int(s.warm_cache_misses));
  result.Set("overload_rejections",
             json::Value::Int(s.overload_rejections));
  result.Set("appends", json::Value::Int(s.appends));
  result.Set("rows_appended", json::Value::Int(s.rows_appended));
  result.Set("revalidations", json::Value::Int(s.revalidations));
  result.Set("maintenance_full_invalidations",
             json::Value::Int(s.maintenance_full_invalidations));
  result.Set("num_threads", json::Value::Int(engine->num_threads()));
  json::Value block_cache = json::Value::Object();
  block_cache.Set("hits", json::Value::Int(s.block_cache_hits));
  block_cache.Set("misses", json::Value::Int(s.block_cache_misses));
  block_cache.Set("evictions", json::Value::Int(s.block_cache_evictions));
  block_cache.Set("bytes_cached", json::Value::Int(s.block_cache_bytes));
  block_cache.Set("bytes_pinned", json::Value::Int(s.block_bytes_pinned));
  block_cache.Set("peak_bytes_pinned",
                  json::Value::Int(s.block_peak_bytes_pinned));
  result.Set("block_cache", std::move(block_cache));
  return OkEnvelope(std::move(result));
}

}  // namespace

json::Value HandleRequest(engine::Engine* engine, const json::Value& request,
                          ConnectionContext* ctx) {
  if (!request.is_object()) {
    return ErrorEnvelope(StatusCode::kInvalidArgument,
                         "request must be a JSON object");
  }
  const std::string op = request.GetString("op");
  if (op == "hello") {
    const uint64_t session = engine->OpenSession();
    if (ctx != nullptr) ctx->sessions.push_back(session);
    json::Value result = json::Value::Object();
    result.Set("server", json::Value::Str("pbserve"));
    result.Set("session", json::Value::Int(static_cast<int64_t>(session)));
    return OkEnvelope(std::move(result));
  }
  if (op == "query") return HandleQuery(engine, request);
  if (op == "cancel") {
    const uint64_t session =
        static_cast<uint64_t>(request.GetInt("session", 0));
    Status s = engine->CancelSession(session);
    if (!s.ok()) return ErrorEnvelope(s);
    json::Value result = json::Value::Object();
    result.Set("cancelled", json::Value::Bool(true));
    return OkEnvelope(std::move(result));
  }
  if (op == "close") {
    const uint64_t session =
        static_cast<uint64_t>(request.GetInt("session", 0));
    Status s = engine->CloseSession(session);
    if (!s.ok()) return ErrorEnvelope(s);
    if (ctx != nullptr) {
      std::erase(ctx->sessions, session);
    }
    return OkEnvelope(json::Value::Object());
  }
  if (op == "tables") return HandleTables(engine);
  if (op == "gen") return HandleGen(engine, request);
  if (op == "spill") return HandleSpill(engine, request);
  if (op == "append") return HandleAppend(engine, request);
  if (op == "stats") return HandleStats(engine);
  return ErrorEnvelope(StatusCode::kInvalidArgument,
                       "unknown op '" + op + "'");
}

std::string HandleRequestLine(engine::Engine* engine, const std::string& line,
                              ConnectionContext* ctx) {
  auto request = json::Parse(line);
  if (!request.ok()) {
    return ErrorEnvelope(request.status()).Dump();
  }
  return HandleRequest(engine, *request, ctx).Dump();
}

}  // namespace pb::server
