// Recipe dataset generator — the meal-planner workload from the paper's
// introduction and demo scenario ("Meal planner has a rich recipe data set
// scrapped from online recipe and nutrition websites"; we substitute a
// seeded synthetic equivalent with realistic marginals, per DESIGN.md).
//
// Schema:
//   id INT, name STRING, cuisine STRING, gluten STRING('free'|'full'),
//   calories DOUBLE, protein DOUBLE, fat DOUBLE, carbs DOUBLE,
//   sugar DOUBLE, sodium DOUBLE, cost DOUBLE, rating DOUBLE

#ifndef PB_DATAGEN_RECIPES_H_
#define PB_DATAGEN_RECIPES_H_

#include <cstdint>

#include "db/table.h"

namespace pb::datagen {

struct RecipeOptions {
  /// Fraction of gluten-free recipes (the paper's base-constraint
  /// selectivity knob).
  double gluten_free_fraction = 0.5;
};

/// Generates `n` recipes with the given seed.
db::Table GenerateRecipes(size_t n, uint64_t seed,
                          const RecipeOptions& options = {});

}  // namespace pb::datagen

#endif  // PB_DATAGEN_RECIPES_H_
