#include "datagen/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pb::datagen {

ZipfDistribution::ZipfDistribution(size_t n, double s) {
  PB_CHECK(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 1; k <= n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), s);
    cdf_[k - 1] = total;
  }
  for (double& c : cdf_) c /= total;
}

size_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.UniformReal(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin()) + 1;
}

double ClampedNormal(Rng& rng, double mean, double stddev, double lo,
                     double hi) {
  return std::clamp(rng.Normal(mean, stddev), lo, hi);
}

double ClampedLogNormal(Rng& rng, double mu, double sigma, double lo,
                        double hi) {
  return std::clamp(rng.LogNormal(mu, sigma), lo, hi);
}

const std::string& UniformChoice(Rng& rng,
                                 const std::vector<std::string>& choices) {
  PB_CHECK(!choices.empty());
  return choices[rng.Index(choices.size())];
}

size_t WeightedChoice(Rng& rng, const std::vector<double>& weights) {
  PB_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  double u = rng.UniformReal(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u <= acc) return i;
  }
  return weights.size() - 1;
}

double RoundTo(double v, int decimals) {
  double f = std::pow(10.0, decimals);
  return std::round(v * f) / f;
}

}  // namespace pb::datagen
