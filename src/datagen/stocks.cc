#include "datagen/stocks.h"

#include "datagen/distributions.h"

namespace pb::datagen {

namespace {

const std::vector<std::string>& Sectors() {
  static const std::vector<std::string> kSectors = {
      "tech", "health", "energy", "finance", "consumer", "industrial",
  };
  return kSectors;
}

std::string MakeTicker(Rng& rng, size_t i) {
  std::string t;
  for (int c = 0; c < 3; ++c) {
    t += static_cast<char>('A' + rng.UniformInt(0, 25));
  }
  return t + std::to_string(i % 10);
}

}  // namespace

db::Table GenerateStocks(size_t n, uint64_t seed, const StockOptions& options) {
  db::Schema schema({{"id", db::ValueType::kInt},
                     {"ticker", db::ValueType::kString},
                     {"sector", db::ValueType::kString},
                     {"term", db::ValueType::kString},
                     {"price", db::ValueType::kDouble},
                     {"expected_gain", db::ValueType::kDouble},
                     {"risk", db::ValueType::kDouble},
                     {"is_tech", db::ValueType::kInt},
                     {"is_short", db::ValueType::kInt},
                     {"is_long", db::ValueType::kInt},
                     {"tech_value", db::ValueType::kDouble}});
  db::Table table("stocks", std::move(schema));
  table.Reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    bool tech = rng.Bernoulli(options.tech_fraction);
    std::string sector =
        tech ? "tech" : Sectors()[1 + rng.Index(Sectors().size() - 1)];
    bool short_term = rng.Bernoulli(options.short_fraction);
    // Lot price: a few hundred to a few thousand dollars.
    double price = RoundTo(ClampedLogNormal(rng, std::log(2200.0), 0.8,
                                            200, 20000), 2);
    // Risk in [0.05, 0.6]; expected return correlates with risk (and tech
    // skews both up) — risky lots pay more on average.
    double risk = RoundTo(rng.UniformReal(0.05, tech ? 0.6 : 0.45), 3);
    double annual_return = ClampedNormal(rng, 0.04 + 0.25 * risk,
                                         0.03, -0.05, 0.35);
    double expected_gain = RoundTo(price * annual_return, 2);
    table.StartRow()
        .Int(static_cast<int64_t>(i))
        .String(MakeTicker(rng, i))
        .String(std::move(sector))
        .String(short_term ? "short" : "long")
        .Double(price)
        .Double(expected_gain)
        .Double(risk)
        .Int(tech ? 1 : 0)
        .Int(short_term ? 1 : 0)
        .Int(short_term ? 0 : 1)
        .Double(tech ? price : 0.0)
        .Finish();
  }
  return table;
}

}  // namespace pb::datagen
