// Stock dataset generator — the investment-portfolio scenario from the
// paper's introduction: "The client has a budget of $50K, wants to invest
// at least 30% of the assets in technology, and wants a balance of
// short-term and long-term options."
//
// Schema:
//   id INT, ticker STRING, sector STRING, term STRING('short'|'long'),
//   price DOUBLE (lot price), expected_gain DOUBLE (dollar gain per lot),
//   risk DOUBLE, is_tech INT, is_short INT, is_long INT,
//   tech_value DOUBLE (== price for tech lots, 0 otherwise)
//
// The indicator/derived columns make the paper's constraints linear:
//   SUM(price) <= 50000, SUM(tech_value) >= 15000,
//   SUM(is_short) - SUM(is_long) BETWEEN -2 AND 2,
//   MAXIMIZE SUM(expected_gain).

#ifndef PB_DATAGEN_STOCKS_H_
#define PB_DATAGEN_STOCKS_H_

#include <cstdint>

#include "db/table.h"

namespace pb::datagen {

struct StockOptions {
  double tech_fraction = 0.35;
  double short_fraction = 0.5;
};

/// Generates `n` stock lots with the given seed.
db::Table GenerateStocks(size_t n, uint64_t seed,
                         const StockOptions& options = {});

}  // namespace pb::datagen

#endif  // PB_DATAGEN_STOCKS_H_
