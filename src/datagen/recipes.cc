#include "datagen/recipes.h"

#include "common/logging.h"
#include "datagen/distributions.h"

namespace pb::datagen {

namespace {

const std::vector<std::string>& Cuisines() {
  static const std::vector<std::string> kCuisines = {
      "italian", "mexican", "japanese", "indian",
      "french",  "greek",   "thai",     "american",
  };
  return kCuisines;
}

const std::vector<std::string>& Bases() {
  static const std::vector<std::string> kBases = {
      "chicken", "tofu",  "salmon", "beef",   "lentil",
      "quinoa",  "pasta", "rice",   "veggie", "egg",
  };
  return kBases;
}

const std::vector<std::string>& Styles() {
  static const std::vector<std::string> kStyles = {
      "bowl", "salad", "curry", "stew", "bake", "wrap", "soup", "stirfry",
  };
  return kStyles;
}

}  // namespace

db::Table GenerateRecipes(size_t n, uint64_t seed,
                          const RecipeOptions& options) {
  db::Schema schema({{"id", db::ValueType::kInt},
                     {"name", db::ValueType::kString},
                     {"cuisine", db::ValueType::kString},
                     {"gluten", db::ValueType::kString},
                     {"calories", db::ValueType::kDouble},
                     {"protein", db::ValueType::kDouble},
                     {"fat", db::ValueType::kDouble},
                     {"carbs", db::ValueType::kDouble},
                     {"sugar", db::ValueType::kDouble},
                     {"sodium", db::ValueType::kDouble},
                     {"cost", db::ValueType::kDouble},
                     {"rating", db::ValueType::kDouble}});
  db::Table table("recipes", std::move(schema));
  table.Reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    // Macro profile: calories are roughly log-normal around a ~550 kcal
    // meal; macros are drawn consistently with the calorie total
    // (4 kcal/g protein & carbs, 9 kcal/g fat, imprecise like real data).
    double calories = ClampedLogNormal(rng, std::log(550.0), 0.45, 90, 1600);
    double protein_share = rng.UniformReal(0.10, 0.40);
    double fat_share = rng.UniformReal(0.15, 0.45);
    double carb_share = std::max(0.05, 1.0 - protein_share - fat_share);
    double protein = RoundTo(calories * protein_share / 4.0, 1);
    double fat = RoundTo(calories * fat_share / 9.0, 1);
    double carbs = RoundTo(calories * carb_share / 4.0, 1);
    double sugar = RoundTo(carbs * rng.UniformReal(0.05, 0.5), 1);
    double sodium = RoundTo(ClampedNormal(rng, 650, 350, 10, 2400), 0);
    double cost = RoundTo(ClampedLogNormal(rng, std::log(9.0), 0.5, 2, 60), 2);
    double rating = RoundTo(ClampedNormal(rng, 3.9, 0.7, 1.0, 5.0), 1);
    std::string gluten =
        rng.Bernoulli(options.gluten_free_fraction) ? "free" : "full";
    std::string name = UniformChoice(rng, Bases()) + "_" +
                       UniformChoice(rng, Styles()) + "_" +
                       std::to_string(i);
    table.StartRow()
        .Int(static_cast<int64_t>(i))
        .String(std::move(name))
        .String(UniformChoice(rng, Cuisines()))
        .String(std::move(gluten))
        .Double(RoundTo(calories, 0))
        .Double(protein)
        .Double(fat)
        .Double(carbs)
        .Double(sugar)
        .Double(sodium)
        .Double(cost)
        .Double(rating)
        .Finish();
  }
  return table;
}

}  // namespace pb::datagen
