#include "datagen/lineitem.h"

#include "datagen/distributions.h"

namespace pb::datagen {

db::Table GenerateLineitems(size_t n, uint64_t seed) {
  db::Schema schema({{"id", db::ValueType::kInt},
                     {"partkey", db::ValueType::kInt},
                     {"quantity", db::ValueType::kDouble},
                     {"extendedprice", db::ValueType::kDouble},
                     {"discount", db::ValueType::kDouble},
                     {"tax", db::ValueType::kDouble},
                     {"revenue", db::ValueType::kDouble},
                     {"shipmode", db::ValueType::kString},
                     {"returnflag", db::ValueType::kString}});
  static const std::vector<std::string> kModes = {
      "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR",
  };
  static const std::vector<std::string> kFlags = {"A", "N", "R"};
  db::Table table("lineitem", std::move(schema));
  table.Reserve(n);
  Rng rng(seed);
  // Part popularity is Zipfian, like real order data.
  ZipfDistribution part_zipf(std::max<size_t>(n / 4, 1), 1.1);
  for (size_t i = 0; i < n; ++i) {
    double quantity = static_cast<double>(rng.UniformInt(1, 50));
    double unit_price = ClampedLogNormal(rng, std::log(1200.0), 0.6, 100,
                                         20000);
    double extendedprice = RoundTo(quantity * unit_price / 50.0, 2);
    double discount = RoundTo(rng.UniformInt(0, 10) / 100.0, 2);
    double tax = RoundTo(rng.UniformInt(0, 8) / 100.0, 2);
    table.StartRow()
        .Int(static_cast<int64_t>(i))
        .Int(static_cast<int64_t>(part_zipf.Sample(rng)))
        .Double(quantity)
        .Double(extendedprice)
        .Double(discount)
        .Double(tax)
        .Double(RoundTo(extendedprice * (1 - discount), 2))
        .String(kModes[rng.Index(kModes.size())])
        .String(kFlags[rng.Index(kFlags.size())])
        .Finish();
  }
  return table;
}

}  // namespace pb::datagen
