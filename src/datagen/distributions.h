// Distribution toolkit for the synthetic workload generators.
//
// Everything is seeded and deterministic: the same (n, seed) always
// produces the same table, so tests and benches are reproducible.

#ifndef PB_DATAGEN_DISTRIBUTIONS_H_
#define PB_DATAGEN_DISTRIBUTIONS_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace pb::datagen {

/// Zipf(s) over ranks 1..n via a precomputed CDF (exact inverse-CDF
/// sampling; n is bounded in our generators so the table stays small).
class ZipfDistribution {
 public:
  ZipfDistribution(size_t n, double s);

  /// Returns a rank in [1, n].
  size_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Normal draw clamped to [lo, hi].
double ClampedNormal(Rng& rng, double mean, double stddev, double lo,
                     double hi);

/// Log-normal draw clamped to [lo, hi].
double ClampedLogNormal(Rng& rng, double mu, double sigma, double lo,
                        double hi);

/// Picks one of `choices` uniformly.
const std::string& UniformChoice(Rng& rng,
                                 const std::vector<std::string>& choices);

/// Picks index i with probability weights[i] / sum(weights).
size_t WeightedChoice(Rng& rng, const std::vector<double>& weights);

/// Rounds to `decimals` decimal places (generators emit tidy numbers).
double RoundTo(double v, int decimals);

}  // namespace pb::datagen

#endif  // PB_DATAGEN_DISTRIBUTIONS_H_
