#include "datagen/travel.h"

#include "datagen/distributions.h"

namespace pb::datagen {

namespace {

const std::vector<std::string>& Destinations(size_t limit) {
  static const std::vector<std::string> kAll = {
      "maui",   "cancun",  "bali",     "fiji",
      "aruba",  "phuket",  "barbados", "maldives",
  };
  static std::vector<std::string> trimmed;
  trimmed.assign(kAll.begin(), kAll.begin() + std::min(limit, kAll.size()));
  return trimmed;
}

}  // namespace

db::Table GenerateTravelItems(size_t n, uint64_t seed,
                              const TravelOptions& options) {
  db::Schema schema({{"id", db::ValueType::kInt},
                     {"kind", db::ValueType::kString},
                     {"dest", db::ValueType::kString},
                     {"price", db::ValueType::kDouble},
                     {"is_flight", db::ValueType::kInt},
                     {"is_hotel", db::ValueType::kInt},
                     {"is_car", db::ValueType::kInt},
                     {"beach_km", db::ValueType::kDouble},
                     {"comfort", db::ValueType::kDouble}});
  db::Table table("travel_items", std::move(schema));
  table.Reserve(n);
  Rng rng(seed);
  const auto& dests = Destinations(options.num_destinations);
  for (size_t i = 0; i < n; ++i) {
    double pick = rng.UniformReal(0.0, 1.0);
    std::string kind;
    double price, beach_km = 0.0, comfort;
    if (pick < options.flight_fraction) {
      kind = "flight";
      price = RoundTo(ClampedLogNormal(rng, std::log(420.0), 0.5, 90, 2400), 2);
      comfort = RoundTo(ClampedNormal(rng, 3.2, 0.8, 1, 5), 1);
    } else if (pick < options.flight_fraction + options.hotel_fraction) {
      kind = "hotel";
      // Price per stay (multi-night bundle). Beach distance correlates
      // inversely with price: beachfront costs more.
      beach_km =
          RoundTo(ClampedLogNormal(rng, std::log(1.2), 1.0, 0.05, 25), 2);
      double base = 900.0 / (1.0 + beach_km);
      price = RoundTo(ClampedNormal(rng, 280 + base, 140, 60, 2600), 2);
      comfort = RoundTo(ClampedNormal(rng, 3.8, 0.7, 1, 5), 1);
    } else {
      kind = "car";
      price = RoundTo(ClampedNormal(rng, 180, 70, 40, 600), 2);
      comfort = RoundTo(ClampedNormal(rng, 3.0, 0.6, 1, 5), 1);
    }
    table.StartRow()
        .Int(static_cast<int64_t>(i))
        .String(kind)
        .String(dests[rng.Index(dests.size())])
        .Double(price)
        .Int(kind == "flight" ? 1 : 0)
        .Int(kind == "hotel" ? 1 : 0)
        .Int(kind == "car" ? 1 : 0)
        .Double(kind == "hotel" ? beach_km : 0.0)
        .Double(comfort)
        .Finish();
  }
  return table;
}

}  // namespace pb::datagen
