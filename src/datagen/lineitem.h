// TPC-H-style lineitem generator (scaled-down) for the scalability
// experiments: the follow-up PaQL evaluation uses TPC-H, so E6's
// Direct-vs-SketchRefine sweep runs over this relation.
//
// Schema:
//   id INT, partkey INT, quantity DOUBLE, extendedprice DOUBLE,
//   discount DOUBLE, tax DOUBLE, revenue DOUBLE (price*(1-discount)),
//   shipmode STRING, returnflag STRING

#ifndef PB_DATAGEN_LINEITEM_H_
#define PB_DATAGEN_LINEITEM_H_

#include <cstdint>

#include "db/table.h"

namespace pb::datagen {

/// Generates `n` lineitem rows with the given seed.
db::Table GenerateLineitems(size_t n, uint64_t seed);

}  // namespace pb::datagen

#endif  // PB_DATAGEN_LINEITEM_H_
