// Travel dataset generator — the vacation-planner scenario from the paper's
// introduction: "A couple wants to organize a relaxing vacation at a
// tropical destination. They do not want to spend more than $2,000 on
// flights and hotels combined. They also want to be in walking distance
// from the beach, unless their budget can fit a rental car."
//
// Packages are built over one denormalized `travel_items` relation with
// 0/1 indicator columns (is_flight / is_hotel / is_car) so PaQL's linear
// aggregates can express "exactly 2 flights and 1 hotel" as
// SUM(is_flight) = 2 AND SUM(is_hotel) = 1. The beach-vs-car tradeoff is a
// genuinely disjunctive global constraint — it exercises the engine's
// non-ILP fallback path.
//
// Schema:
//   id INT, kind STRING('flight'|'hotel'|'car'), dest STRING,
//   price DOUBLE, is_flight INT, is_hotel INT, is_car INT,
//   beach_km DOUBLE (hotels; 0 for others), comfort DOUBLE

#ifndef PB_DATAGEN_TRAVEL_H_
#define PB_DATAGEN_TRAVEL_H_

#include <cstdint>

#include "db/table.h"

namespace pb::datagen {

struct TravelOptions {
  /// Item mix (flights : hotels : cars).
  double flight_fraction = 0.45;
  double hotel_fraction = 0.40;
  size_t num_destinations = 6;
};

/// Generates `n` travel items with the given seed.
db::Table GenerateTravelItems(size_t n, uint64_t seed,
                              const TravelOptions& options = {});

}  // namespace pb::datagen

#endif  // PB_DATAGEN_TRAVEL_H_
