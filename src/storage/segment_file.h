// SegmentFile: the on-disk home of a table's spilled column blocks.
//
// One file per spilled table. Blocks are appended during Table::SpillToDisk
// (single writer) and read back concurrently via pread (no shared file
// offset, so concurrent queries never race on a seek). The format is
// versioned and checksummed; docs/adr/0002-segment-format.md is the
// authoritative layout description.
//
// Lifetime: spilled Columns hold shared_ptr<SegmentFile>, so column copies
// (SelectColumns, table moves) stay valid for as long as any column needs
// the file. The file is unlinked in the destructor by default — segment
// files are caches of data the engine can regenerate, not durable storage.

#ifndef PB_STORAGE_SEGMENT_FILE_H_
#define PB_STORAGE_SEGMENT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/annotations.h"
#include "common/status.h"
#include "storage/block.h"

namespace pb::storage {

/// Where a block lives inside its segment file. The locator plus the file
/// id is the block cache key; `length` covers the whole record (header +
/// payload + checksum), letting the reader validate before parsing.
struct BlockLocator {
  uint64_t offset = 0;
  uint64_t length = 0;
};

class SegmentFile {
 public:
  /// Creates (truncating) the segment file at `path` and writes the file
  /// header. When `unlink_on_close` (the default), the destructor removes
  /// the file: segments are spill space, not durable data.
  static Result<std::shared_ptr<SegmentFile>> Create(
      const std::string& path, bool unlink_on_close = true);

  /// Opens an existing segment file read-only, validating the 16-byte file
  /// header (magic, version). Blocks are then readable through ReadBlock
  /// with locators from an external index. The opener does not own the
  /// file: it is never unlinked on close, and WriteBlock fails. This is
  /// the entry point the corrupt-input fuzzer drives (fuzz/fuzz_segment.cc).
  static Result<std::shared_ptr<SegmentFile>> OpenForRead(
      const std::string& path);

  ~SegmentFile();

  SegmentFile(const SegmentFile&) = delete;
  SegmentFile& operator=(const SegmentFile&) = delete;

  /// Appends one block record; thread-safe (serialized internally).
  Result<BlockLocator> WriteBlock(const NumericBlock& block);

  /// Reads a block record back via pread. Safe to call from any number of
  /// threads concurrently. Verifies magic, bounds, and the checksum.
  Result<NumericBlock> ReadBlock(const BlockLocator& loc) const;

  const std::string& path() const { return path_; }
  /// Process-unique id, used in block-cache keys.
  uint64_t id() const { return id_; }
  uint64_t bytes_written() const;

 private:
  SegmentFile(std::string path, int fd, bool unlink_on_close);

  std::string path_;
  int fd_ = -1;
  bool unlink_on_close_ = true;
  uint64_t id_ = 0;
  mutable Mutex write_mu_;
  uint64_t next_offset_ PB_GUARDED_BY(write_mu_) = 0;
};

}  // namespace pb::storage

#endif  // PB_STORAGE_SEGMENT_FILE_H_
