// StorageBudget: a per-query cap on bytes pinned in the block cache.
//
// Mirrors CancelToken's shape (common/budget.h): a copyable handle over a
// shared atomic state, so the engine, the block cache, and any view created
// on the query thread all observe the same counters. The engine installs
// the active query's budget via a thread-local StorageBudgetScope; the
// block cache charges it on every pin and discharges on handle release.
//
// A default-constructed StorageBudget is detached (no shared state): every
// charge succeeds and nothing is tracked. Detached is the mode of all
// non-query pins (spilling, ad-hoc shell scans).

#ifndef PB_STORAGE_STORAGE_BUDGET_H_
#define PB_STORAGE_STORAGE_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <memory>

namespace pb::storage {

class StorageBudget {
 public:
  /// Detached budget: never limits, never counts.
  StorageBudget() = default;

  /// Tracking budget. `limit_bytes <= 0` means "count but never refuse" —
  /// useful for reporting peak pinned bytes without a cap.
  static StorageBudget Limited(int64_t limit_bytes) {
    StorageBudget b;
    b.state_ = std::make_shared<State>();
    b.state_->limit = limit_bytes;
    return b;
  }

  bool attached() const { return state_ != nullptr; }

  /// Attempts to account `bytes` of newly pinned data. Returns false when
  /// the charge would push pinned bytes past the limit (the caller should
  /// surface ResourceExhausted); detached budgets always succeed.
  bool TryCharge(int64_t bytes) {
    if (!state_) return true;
    int64_t cur = state_->pinned.load(std::memory_order_relaxed);
    for (;;) {
      const int64_t next = cur + bytes;
      if (state_->limit > 0 && next > state_->limit) return false;
      if (state_->pinned.compare_exchange_weak(cur, next,
                                               std::memory_order_relaxed)) {
        int64_t peak = state_->peak.load(std::memory_order_relaxed);
        while (next > peak &&
               !state_->peak.compare_exchange_weak(
                   peak, next, std::memory_order_relaxed)) {
        }
        return true;
      }
    }
  }

  /// Releases a previously successful charge. Safe from any thread.
  void Discharge(int64_t bytes) {
    if (state_) state_->pinned.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t limit() const { return state_ ? state_->limit : 0; }
  int64_t pinned_bytes() const {
    return state_ ? state_->pinned.load(std::memory_order_relaxed) : 0;
  }
  int64_t peak_pinned_bytes() const {
    return state_ ? state_->peak.load(std::memory_order_relaxed) : 0;
  }

 private:
  struct State {
    int64_t limit = 0;
    std::atomic<int64_t> pinned{0};
    std::atomic<int64_t> peak{0};
  };
  std::shared_ptr<State> state_;
};

/// Installs `budget` as the calling thread's active storage budget for the
/// scope's lifetime (restoring the previous one on exit). BlockCache::Pin
/// consults the active budget of the pinning thread, so pins made by pool
/// workers outside a scope are uncounted — the engine gathers weights on
/// the query thread before fanning out, which keeps accounting accurate
/// where it matters.
class StorageBudgetScope {
 public:
  explicit StorageBudgetScope(StorageBudget budget);
  ~StorageBudgetScope();

  StorageBudgetScope(const StorageBudgetScope&) = delete;
  StorageBudgetScope& operator=(const StorageBudgetScope&) = delete;

  /// The calling thread's active budget (detached when no scope is open).
  static StorageBudget Active();

 private:
  StorageBudget previous_;
};

}  // namespace pb::storage

#endif  // PB_STORAGE_STORAGE_BUDGET_H_
