// Numeric column blocks: the unit of out-of-core columnar storage.
//
// A column's values are sealed into fixed-capacity blocks (kDefaultBlockSize
// values each, the last block ragged). Every block carries a ZoneMap —
// min/max/sum over its non-null values plus null counts — so consumers that
// only need bounds (cardinality pruning's l/u, the partitioner's spread
// scans) can consult the metadata and skip the block's data entirely,
// whether the data is resident in RAM or spilled to a SegmentFile.
//
// Blocks store numeric data only (INT64 or FLOAT64 payloads, bit-exact):
// the engine's hot paths are numeric, and bit-exactness is what makes the
// spilled and in-RAM execution paths produce identical packages. NULL slots
// hold zero placeholders in the payload (like db::Column's vectors) and are
// marked in the block's word-packed null bitmap.

#ifndef PB_STORAGE_BLOCK_H_
#define PB_STORAGE_BLOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pb::storage {

/// Values per block. 64K doubles = 512 KiB of payload per block, large
/// enough to amortize a read, small enough that a handful of pinned blocks
/// fit any sane cache budget. Tests override it (any multiple of 1 works;
/// zone-map consumers only assume all blocks but the last are full).
inline constexpr size_t kDefaultBlockSize = 65536;

/// Per-block metadata: the zone map. min/max/sum cover non-null values
/// only and are bit-exact accumulations in append order, so bounds derived
/// from a zone map equal bounds derived from scanning the block.
struct ZoneMap {
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  int64_t null_count = 0;
  int64_t non_null_count = 0;

  /// True when min/max are meaningful (at least one non-null value).
  bool has_minmax() const { return non_null_count > 0; }
  /// True when every row of the block is NULL.
  bool all_null() const { return non_null_count == 0; }
  /// True when every non-null value equals min (single-value block).
  bool constant() const { return non_null_count > 0 && min == max; }
};

/// Payload type of a block. Matches db::Column's two numeric layouts.
enum class BlockType : uint8_t {
  kInt64 = 1,
  kFloat64 = 2,
};

/// One sealed run of a numeric column: typed values, a word-packed null
/// bitmap (bit set == NULL, bit i of null_words[i/64]), and the zone map.
struct NumericBlock {
  BlockType type = BlockType::kFloat64;
  size_t count = 0;
  std::vector<int64_t> ints;      // populated when type == kInt64
  std::vector<double> doubles;    // populated when type == kFloat64
  std::vector<uint64_t> null_words;
  ZoneMap zone;

  bool IsNull(size_t i) const {
    return (null_words[i >> 6] >> (i & 63)) & 1;
  }

  /// Value at i coerced to double; meaningful only where !IsNull(i).
  double ValueAt(size_t i) const {
    return type == BlockType::kFloat64 ? doubles[i]
                                       : static_cast<double>(ints[i]);
  }

  /// In-memory footprint of the payload (what the block cache charges).
  size_t bytes() const {
    return count * sizeof(int64_t) + null_words.size() * sizeof(uint64_t);
  }
};

/// Computes the zone map of `count` values starting at `values`, with
/// nulls read from `is_null(i)`. Accumulation is in index order, matching
/// ColumnStats, so zone sums are bit-identical to incremental append sums
/// over the same slice.
template <typename ValueFn, typename NullFn>
ZoneMap ComputeZoneMap(size_t count, ValueFn value_at, NullFn is_null) {
  ZoneMap z;
  for (size_t i = 0; i < count; ++i) {
    if (is_null(i)) {
      ++z.null_count;
      continue;
    }
    const double v = value_at(i);
    if (z.non_null_count == 0) {
      z.min = z.max = v;
    } else {
      if (v < z.min) z.min = v;
      if (v > z.max) z.max = v;
    }
    z.sum += v;
    ++z.non_null_count;
  }
  return z;
}

/// Number of 64-bit words a bitmap over `count` rows needs.
inline size_t NullWordCount(size_t count) { return (count + 63) / 64; }

}  // namespace pb::storage

#endif  // PB_STORAGE_BLOCK_H_
