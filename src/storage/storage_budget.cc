#include "storage/storage_budget.h"

namespace pb::storage {

namespace {
thread_local StorageBudget g_active_budget;
}  // namespace

StorageBudgetScope::StorageBudgetScope(StorageBudget budget)
    : previous_(g_active_budget) {
  g_active_budget = std::move(budget);
}

StorageBudgetScope::~StorageBudgetScope() { g_active_budget = previous_; }

StorageBudget StorageBudgetScope::Active() { return g_active_budget; }

}  // namespace pb::storage
