// BlockCache: the shared, byte-budgeted pool of resident spilled blocks.
//
// Pin(file, locator) returns a BlockHandle that keeps one block resident
// and un-evictable until the handle is destroyed. Eviction is LRU over
// unpinned entries; the cache may exceed its budget transiently when every
// resident block is pinned (pins are correctness, the budget is policy).
// Each pin charges the calling thread's active StorageBudget (see
// storage_budget.h); the handle remembers which budget it charged so
// destruction on another thread still discharges the right one.
//
// v1 keeps the mutex held across segment-file reads. That serializes cold
// misses, which is acceptable at the engine's current concurrency; the
// stats struct exists so a future per-shard or lock-free version can prove
// itself against the same counters.

#ifndef PB_STORAGE_BLOCK_CACHE_H_
#define PB_STORAGE_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/annotations.h"
#include "common/status.h"
#include "storage/block.h"
#include "storage/segment_file.h"
#include "storage/storage_budget.h"

namespace pb::storage {

class BlockCache;

/// A pin on one cached block. Move-only; releasing the handle (destruction
/// or reset) unpins the block and discharges the storage budget charged at
/// pin time. The pointed-to block is immutable and outlives the handle via
/// shared ownership even if the cache evicts it after unpinning.
class BlockHandle {
 public:
  BlockHandle() = default;
  ~BlockHandle() { Release(); }

  BlockHandle(BlockHandle&& other) noexcept { *this = std::move(other); }
  BlockHandle& operator=(BlockHandle&& other) noexcept {
    if (this != &other) {
      Release();
      cache_ = other.cache_;
      key_ = other.key_;
      block_ = std::move(other.block_);
      budget_ = std::move(other.budget_);
      other.cache_ = nullptr;
      other.block_.reset();
    }
    return *this;
  }

  BlockHandle(const BlockHandle&) = delete;
  BlockHandle& operator=(const BlockHandle&) = delete;

  const NumericBlock* get() const { return block_.get(); }
  const NumericBlock& operator*() const { return *block_; }
  const NumericBlock* operator->() const { return block_.get(); }
  explicit operator bool() const { return block_ != nullptr; }

  /// Unpins early (idempotent).
  void Release();

 private:
  friend class BlockCache;
  BlockHandle(BlockCache* cache, std::pair<uint64_t, uint64_t> key,
              std::shared_ptr<const NumericBlock> block, StorageBudget budget)
      : cache_(cache),
        key_(key),
        block_(std::move(block)),
        budget_(std::move(budget)) {}

  BlockCache* cache_ = nullptr;
  std::pair<uint64_t, uint64_t> key_{0, 0};
  std::shared_ptr<const NumericBlock> block_;
  StorageBudget budget_;
};

/// Monotonic cache counters, readable without stopping the world.
struct BlockCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;       ///< == segment-file block reads
  uint64_t evictions = 0;
  int64_t bytes_cached = 0;  ///< current resident payload bytes
  int64_t bytes_pinned = 0;  ///< current pinned payload bytes
  int64_t peak_bytes_pinned = 0;
};

class BlockCache {
 public:
  /// `budget_bytes <= 0` disables eviction (cache grows unboundedly —
  /// the in-RAM-equivalent configuration used by bit-identity tests).
  explicit BlockCache(int64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  /// The process-wide cache, sized by PB_BLOCK_CACHE_BYTES (bytes; default
  /// 256 MiB). Constructed on first use, never destroyed.
  static BlockCache* Default();

  /// Returns a pinned handle to the block at `loc` of `file`, reading it
  /// from disk on a miss. Fails with ResourceExhausted when the calling
  /// thread's StorageBudget refuses the pin, or with the read's error.
  Result<BlockHandle> Pin(const std::shared_ptr<SegmentFile>& file,
                          const BlockLocator& loc);

  BlockCacheStats stats() const;
  int64_t budget_bytes() const { return budget_bytes_; }

 private:
  friend class BlockHandle;

  using Key = std::pair<uint64_t, uint64_t>;  // (segment file id, offset)
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Offsets are multiples of the record size; mix the halves.
      return std::hash<uint64_t>()(k.first * 0x9E3779B97F4A7C15ull ^
                                   k.second);
    }
  };

  struct Entry {
    std::shared_ptr<const NumericBlock> block;
    int64_t bytes = 0;
    int pins = 0;
    std::list<Key>::iterator lru_it;
    bool in_lru = false;
  };

  void Unpin(const Key& key);
  /// Evicts unpinned LRU entries until resident bytes fit the budget.
  void EvictToFitLocked() PB_REQUIRES(mu_);

  const int64_t budget_bytes_;
  mutable Mutex mu_;
  std::unordered_map<Key, Entry, KeyHash> entries_ PB_GUARDED_BY(mu_);
  /// Front = most recently used, unpinned entries only.
  std::list<Key> lru_ PB_GUARDED_BY(mu_);
  BlockCacheStats stats_ PB_GUARDED_BY(mu_);
};

}  // namespace pb::storage

#endif  // PB_STORAGE_BLOCK_CACHE_H_
