#include "storage/block_cache.h"

#include "common/env.h"

namespace pb::storage {

void BlockHandle::Release() {
  if (cache_ != nullptr && block_ != nullptr) {
    cache_->Unpin(key_);
    budget_.Discharge(static_cast<int64_t>(block_->bytes()));
  }
  cache_ = nullptr;
  block_.reset();
}

BlockCache* BlockCache::Default() {
  static BlockCache* cache = new BlockCache(
      EnvInt64("PB_BLOCK_CACHE_BYTES", int64_t{256} << 20));
  return cache;
}

Result<BlockHandle> BlockCache::Pin(const std::shared_ptr<SegmentFile>& file,
                                    const BlockLocator& loc) {
  const Key key{file->id(), loc.offset};
  StorageBudget budget = StorageBudgetScope::Active();

  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Miss: read under the lock (v1 tradeoff, see header comment).
    ++stats_.misses;
    PB_ASSIGN_OR_RETURN(NumericBlock block, file->ReadBlock(loc));
    Entry entry;
    entry.bytes = static_cast<int64_t>(block.bytes());
    entry.block = std::make_shared<const NumericBlock>(std::move(block));
    stats_.bytes_cached += entry.bytes;
    it = entries_.emplace(key, std::move(entry)).first;
    EvictToFitLocked();
  } else {
    ++stats_.hits;
    if (it->second.in_lru) {
      lru_.erase(it->second.lru_it);
      it->second.in_lru = false;
    }
  }

  Entry& entry = it->second;
  if (!budget.TryCharge(entry.bytes)) {
    // The pin was refused before it happened; restore LRU standing if this
    // entry has no other pins so it stays evictable.
    if (entry.pins == 0 && !entry.in_lru) {
      lru_.push_front(key);
      entry.lru_it = lru_.begin();
      entry.in_lru = true;
    }
    return Status::ResourceExhausted(
        "storage budget exhausted: pinning " + std::to_string(entry.bytes) +
        " bytes would exceed the per-query limit of " +
        std::to_string(budget.limit()) + " bytes");
  }
  ++entry.pins;
  stats_.bytes_pinned += entry.bytes;
  if (stats_.bytes_pinned > stats_.peak_bytes_pinned) {
    stats_.peak_bytes_pinned = stats_.bytes_pinned;
  }
  return BlockHandle(this, key, entry.block, std::move(budget));
}

void BlockCache::Unpin(const Key& key) {
  MutexLock lock(&mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // entry force-dropped; nothing to do
  Entry& entry = it->second;
  stats_.bytes_pinned -= entry.bytes;
  if (--entry.pins == 0) {
    lru_.push_front(key);
    entry.lru_it = lru_.begin();
    entry.in_lru = true;
    EvictToFitLocked();
  }
}

void BlockCache::EvictToFitLocked() {
  if (budget_bytes_ <= 0) return;
  while (stats_.bytes_cached > budget_bytes_ && !lru_.empty()) {
    const Key victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    if (it == entries_.end()) continue;
    stats_.bytes_cached -= it->second.bytes;
    ++stats_.evictions;
    entries_.erase(it);
  }
}

BlockCacheStats BlockCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace pb::storage
