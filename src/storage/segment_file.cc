#include "storage/segment_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace pb::storage {

namespace {

// File header: magic + version. Little-endian throughout (the only
// platform this engine targets; the ADR records the assumption).
constexpr char kFileMagic[8] = {'P', 'B', 'S', 'E', 'G', '0', '0', '1'};
constexpr uint32_t kFormatVersion = 1;
constexpr uint32_t kBlockMagic = 0x424B4C50;  // "PLKB"

/// Fixed-size on-disk block header. Plain scalars only, packed manually
/// into a byte buffer (no struct-layout assumptions cross the file
/// boundary).
constexpr size_t kBlockHeaderBytes = 4 +  // magic
                                     1 +  // type
                                     3 +  // pad
                                     8 +  // count
                                     8 +  // null word count
                                     8 * 5 +  // zone map
                                     8;   // payload bytes
constexpr size_t kChecksumBytes = 8;

uint64_t Fnv1a(const uint8_t* data, size_t n,
               uint64_t seed = 1469598103934665603ull) {
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
void PutScalar(std::vector<uint8_t>* buf, T v) {
  const size_t at = buf->size();
  buf->resize(at + sizeof(T));
  std::memcpy(buf->data() + at, &v, sizeof(T));
}

template <typename T>
T GetScalar(const uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

Status Pwrite(int fd, const uint8_t* data, size_t n, uint64_t offset) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::pwrite(fd, data + done, n - done,
                         static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("segment pwrite failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Pread(int fd, uint8_t* data, size_t n, uint64_t offset) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, data + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("segment pread failed: ") +
                              std::strerror(errno));
    }
    if (r == 0) {
      return Status::Internal("segment pread hit EOF mid-record");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

std::atomic<uint64_t> g_next_segment_id{1};

}  // namespace

SegmentFile::SegmentFile(std::string path, int fd, bool unlink_on_close)
    : path_(std::move(path)),
      fd_(fd),
      unlink_on_close_(unlink_on_close),
      id_(g_next_segment_id.fetch_add(1, std::memory_order_relaxed)) {}

Result<std::shared_ptr<SegmentFile>> SegmentFile::Create(
    const std::string& path, bool unlink_on_close) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot create segment file '" + path +
                                   "': " + std::strerror(errno));
  }
  auto file = std::shared_ptr<SegmentFile>(
      new SegmentFile(path, fd, unlink_on_close));
  std::vector<uint8_t> header;
  header.insert(header.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));
  PutScalar<uint32_t>(&header, kFormatVersion);
  PutScalar<uint32_t>(&header, 0);  // flags, reserved
  PB_RETURN_IF_ERROR(Pwrite(fd, header.data(), header.size(), 0));
  {
    MutexLock lock(&file->write_mu_);
    file->next_offset_ = header.size();
  }
  return file;
}

Result<std::shared_ptr<SegmentFile>> SegmentFile::OpenForRead(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open segment file '" + path +
                                   "': " + std::strerror(errno));
  }
  auto file = std::shared_ptr<SegmentFile>(
      new SegmentFile(path, fd, /*unlink_on_close=*/false));
  uint8_t header[16];
  PB_RETURN_IF_ERROR(Pread(fd, header, sizeof(header), 0));
  if (std::memcmp(header, kFileMagic, sizeof(kFileMagic)) != 0) {
    return Status::ParseError("'" + path + "' is not a segment file "
                              "(bad magic)");
  }
  const uint32_t version = GetScalar<uint32_t>(header + sizeof(kFileMagic));
  if (version != kFormatVersion) {
    return Status::Unimplemented(
        "segment file '" + path + "' has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kFormatVersion));
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    return Status::Internal(std::string("segment lseek failed: ") +
                            std::strerror(errno));
  }
  MutexLock lock(&file->write_mu_);
  file->next_offset_ = static_cast<uint64_t>(end);
  return file;
}

SegmentFile::~SegmentFile() {
  if (fd_ >= 0) ::close(fd_);
  if (unlink_on_close_) ::unlink(path_.c_str());
}

Result<BlockLocator> SegmentFile::WriteBlock(const NumericBlock& block) {
  std::vector<uint8_t> buf;
  buf.reserve(kBlockHeaderBytes + block.bytes() + kChecksumBytes);
  PutScalar<uint32_t>(&buf, kBlockMagic);
  PutScalar<uint8_t>(&buf, static_cast<uint8_t>(block.type));
  PutScalar<uint8_t>(&buf, 0);
  PutScalar<uint8_t>(&buf, 0);
  PutScalar<uint8_t>(&buf, 0);
  PutScalar<uint64_t>(&buf, block.count);
  PutScalar<uint64_t>(&buf, block.null_words.size());
  PutScalar<double>(&buf, block.zone.min);
  PutScalar<double>(&buf, block.zone.max);
  PutScalar<double>(&buf, block.zone.sum);
  PutScalar<int64_t>(&buf, block.zone.null_count);
  PutScalar<int64_t>(&buf, block.zone.non_null_count);

  const size_t value_bytes = block.count * 8;
  const size_t null_bytes = block.null_words.size() * 8;
  PutScalar<uint64_t>(&buf, value_bytes + null_bytes);
  const size_t payload_at = buf.size();
  buf.resize(payload_at + value_bytes + null_bytes);
  if (block.type == BlockType::kInt64) {
    std::memcpy(buf.data() + payload_at, block.ints.data(), value_bytes);
  } else {
    std::memcpy(buf.data() + payload_at, block.doubles.data(), value_bytes);
  }
  std::memcpy(buf.data() + payload_at + value_bytes, block.null_words.data(),
              null_bytes);
  PutScalar<uint64_t>(&buf, Fnv1a(buf.data() + payload_at,
                                  value_bytes + null_bytes));

  MutexLock lock(&write_mu_);
  BlockLocator loc{next_offset_, buf.size()};
  PB_RETURN_IF_ERROR(Pwrite(fd_, buf.data(), buf.size(), loc.offset));
  next_offset_ += buf.size();
  return loc;
}

Result<NumericBlock> SegmentFile::ReadBlock(const BlockLocator& loc) const {
  if (loc.length < kBlockHeaderBytes + kChecksumBytes) {
    return Status::Internal("segment block locator shorter than a header");
  }
  std::vector<uint8_t> buf(loc.length);
  PB_RETURN_IF_ERROR(Pread(fd_, buf.data(), buf.size(), loc.offset));

  const uint8_t* p = buf.data();
  if (GetScalar<uint32_t>(p) != kBlockMagic) {
    return Status::Internal("segment block magic mismatch (corrupt file or "
                            "stale locator)");
  }
  NumericBlock block;
  const uint8_t type = GetScalar<uint8_t>(p + 4);
  if (type != static_cast<uint8_t>(BlockType::kInt64) &&
      type != static_cast<uint8_t>(BlockType::kFloat64)) {
    return Status::Internal("segment block has unknown payload type");
  }
  block.type = static_cast<BlockType>(type);
  block.count = GetScalar<uint64_t>(p + 8);
  const uint64_t null_word_count = GetScalar<uint64_t>(p + 16);
  block.zone.min = GetScalar<double>(p + 24);
  block.zone.max = GetScalar<double>(p + 32);
  block.zone.sum = GetScalar<double>(p + 40);
  block.zone.null_count = GetScalar<int64_t>(p + 48);
  block.zone.non_null_count = GetScalar<int64_t>(p + 56);
  const uint64_t payload_bytes = GetScalar<uint64_t>(p + 64);

  // All three length fields come off disk, so every comparison must be
  // overflow-proof: derive the expected payload size from loc.length
  // (already known >= header + checksum) and bound each count before the
  // multiplications, or a corrupt count near 2^61 wraps `count * 8` into
  // agreement and the resize below dies instead of returning a Status.
  const uint64_t expected_payload =
      loc.length - kBlockHeaderBytes - kChecksumBytes;
  if (payload_bytes != expected_payload ||
      block.count > expected_payload / 8 ||
      null_word_count > expected_payload / 8 ||
      block.count * 8 + null_word_count * 8 != expected_payload) {
    return Status::Internal("segment block length fields are inconsistent");
  }
  const uint8_t* payload = p + kBlockHeaderBytes;
  const uint64_t stored = GetScalar<uint64_t>(payload + payload_bytes);
  if (Fnv1a(payload, payload_bytes) != stored) {
    return Status::Internal("segment block checksum mismatch");
  }
  const size_t value_bytes = block.count * 8;
  if (block.type == BlockType::kInt64) {
    block.ints.resize(block.count);
    std::memcpy(block.ints.data(), payload, value_bytes);
  } else {
    block.doubles.resize(block.count);
    std::memcpy(block.doubles.data(), payload, value_bytes);
  }
  block.null_words.resize(null_word_count);
  std::memcpy(block.null_words.data(), payload + value_bytes,
              null_word_count * 8);
  return block;
}

uint64_t SegmentFile::bytes_written() const {
  MutexLock lock(&write_mu_);
  return next_offset_;
}

}  // namespace pb::storage
