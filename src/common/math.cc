#include "common/math.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pb {

namespace {
constexpr double kLog2E = 1.4426950408889634;  // log2(e)
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double Log2Factorial(int64_t n) {
  if (n <= 1) return 0.0;
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the global signgam — a data race under concurrent
  // queries. lgamma_r is the reentrant form.
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign) * kLog2E;
#else
  return std::lgamma(static_cast<double>(n) + 1.0) * kLog2E;
#endif
}

double Log2Binomial(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) return kNegInf;
  return Log2Factorial(n) - Log2Factorial(k) - Log2Factorial(n - k);
}

double Log2BinomialSum(int64_t n, int64_t lo, int64_t hi) {
  lo = std::max<int64_t>(lo, 0);
  hi = std::min<int64_t>(hi, n);
  if (lo > hi || n < 0) return kNegInf;
  // log-sum-exp in base 2 over the (unimodal) binomial row segment.
  double max_term = kNegInf;
  for (int64_t k = lo; k <= hi; ++k) {
    max_term = std::max(max_term, Log2Binomial(n, k));
  }
  if (max_term == kNegInf) return kNegInf;
  double sum = 0.0;
  for (int64_t k = lo; k <= hi; ++k) {
    sum += std::exp2(Log2Binomial(n, k) - max_term);
  }
  return max_term + std::log2(sum);
}

uint64_t BinomialOrSaturate(int64_t n, int64_t k) {
  if (k < 0 || k > n || n < 0) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (int64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, checking for overflow at each step.
    uint64_t numer = static_cast<uint64_t>(n - k + i);
    if (result > std::numeric_limits<uint64_t>::max() / numer) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * numer / static_cast<uint64_t>(i);
  }
  return result;
}

bool NearlyEqual(double a, double b, double tol) {
  return std::abs(a - b) <= tol;
}

}  // namespace pb
