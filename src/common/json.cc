#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pb::json {

Value Value::Bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::Number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::Int(int64_t i) { return Number(static_cast<double>(i)); }

Value Value::Str(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::Array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::Object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

const Value* Value::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::GetString(const std::string& key, std::string def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_string() ? v->as_string() : std::move(def);
}

double Value::GetNumber(const std::string& key, double def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}

int64_t Value::GetInt(const std::string& key, int64_t def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_number() ? v->as_int() : def;
}

bool Value::GetBool(const std::string& key, bool def) const {
  const Value* v = Find(key);
  return v != nullptr && v->is_bool() ? v->as_bool() : def;
}

Value& Value::Set(const std::string& key, Value v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : fields_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(v));
  return *this;
}

void Value::Push(Value v) {
  kind_ = Kind::kArray;
  items_.push_back(std::move(v));
}

namespace {

void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':  *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    *out += "null";
    return;
  }
  // Integers (counters, row indices) round-trip exactly and read cleanly.
  if (d == std::floor(d) && std::abs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(d));
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpTo(const Value& v, std::string* out);

void DumpArray(const Value& v, std::string* out) {
  out->push_back('[');
  bool first = true;
  for (const Value& item : v.items()) {
    if (!first) out->push_back(',');
    first = false;
    DumpTo(item, out);
  }
  out->push_back(']');
}

void DumpObject(const Value& v, std::string* out) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, field] : v.fields()) {
    if (!first) out->push_back(',');
    first = false;
    AppendEscaped(key, out);
    out->push_back(':');
    DumpTo(field, out);
  }
  out->push_back('}');
}

void DumpTo(const Value& v, std::string* out) {
  switch (v.kind()) {
    case Value::Kind::kNull:   *out += "null"; return;
    case Value::Kind::kBool:   *out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::kNumber: AppendNumber(v.as_number(), out); return;
    case Value::Kind::kString: AppendEscaped(v.as_string(), out); return;
    case Value::Kind::kArray:  DumpArray(v, out); return;
    case Value::Kind::kObject: DumpObject(v, out); return;
  }
}

// ------------------------------------------------------------------ parser

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> Run() {
    PB_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& what) const {
    return Status::ParseError("JSON: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      PB_ASSIGN_OR_RETURN(std::string s, ParseString());
      return Value::Str(std::move(s));
    }
    if (ConsumeWord("null")) return Value::Null();
    if (ConsumeWord("true")) return Value::Bool(true);
    if (ConsumeWord("false")) return Value::Bool(false);
    return ParseNumber();
  }

  Result<Value> ParseObject(int depth) {
    ++pos_;  // '{'
    Value obj = Value::Object();
    SkipWhitespace();
    if (Consume('}')) return obj;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      PB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Err("expected ':' after object key");
      PB_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      obj.Set(key, std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    ++pos_;  // '['
    Value arr = Value::Array();
    SkipWhitespace();
    if (Consume(']')) return arr;
    while (true) {
      PB_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      arr.Push(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']' in array");
    }
  }

  Result<int> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    int code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= c - '0';
      else if (c >= 'a' && c <= 'f') code |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') code |= c - 'A' + 10;
      else return Err("invalid \\u escape");
    }
    pos_ += 4;
    return code;
  }

  void AppendUtf8(int code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Err("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':  out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/':  out.push_back('/'); break;
        case 'b':  out.push_back('\b'); break;
        case 'f':  out.push_back('\f'); break;
        case 'n':  out.push_back('\n'); break;
        case 'r':  out.push_back('\r'); break;
        case 't':  out.push_back('\t'); break;
        case 'u': {
          PB_ASSIGN_OR_RETURN(int code, ParseHex4());
          if (code >= 0xD800 && code <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            pos_ += 2;
            PB_ASSIGN_OR_RETURN(int low, ParseHex4());
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              return Err("invalid surrogate pair");
            }
          }
          AppendUtf8(code, &out);
          break;
        }
        default:
          return Err("unknown escape");
      }
    }
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Err("malformed number");
    return Value::Number(d);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Value::Dump() const {
  std::string out;
  DumpTo(*this, &out);
  return out;
}

Result<Value> Parse(std::string_view text) { return Parser(text).Run(); }

}  // namespace pb::json
