#include "common/budget.h"

#include <cmath>
#include <limits>

namespace pb {

Deadline Deadline::AfterSeconds(double seconds) {
  Deadline d;
  if (std::isnan(seconds) ||
      seconds == std::numeric_limits<double>::infinity()) {
    return d;  // no deadline
  }
  d.has_ = true;
  if (seconds <= 0.0) {
    d.when_ = std::chrono::steady_clock::now();
    return d;
  }
  // Saturate instead of overflowing the duration representation for very
  // large finite budgets.
  constexpr double kMaxSeconds = 1e9;  // ~31 years: effectively unbounded
  if (seconds > kMaxSeconds) seconds = kMaxSeconds;
  d.when_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(seconds));
  return d;
}

double Deadline::SecondsRemaining() const {
  if (!has_) return std::numeric_limits<double>::infinity();
  double s = std::chrono::duration<double>(
                 when_ - std::chrono::steady_clock::now())
                 .count();
  return s > 0.0 ? s : 0.0;
}

}  // namespace pb
