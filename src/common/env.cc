#include "common/env.h"

#include <cstdlib>

namespace pb {

int EnvInt(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int>(v);
}

int64_t EnvInt64(const char* name, int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return static_cast<int64_t>(v);
}

}  // namespace pb
