#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace pb {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  task_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    MutexLock lock(&mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop();
  }
  task();
  {
    MutexLock lock(&mu_);
    if (--in_flight_ == 0) all_done_.NotifyAll();
  }
  return true;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) task_ready_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

void TaskGroup::Spawn(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  pool_->Submit([this, task = std::move(task)] {
    task();
    // Notify UNDER the lock: a waiter may destroy this group the moment it
    // observes pending_ == 0, which it cannot do before we release mu_ —
    // so the notify (and every other member access) happens-before the
    // destructor. Notifying after unlocking would race destruction.
    MutexLock lock(&mu_);
    --pending_;
    done_.NotifyAll();
  });
}

void TaskGroup::Wait() {
  for (;;) {
    {
      MutexLock lock(&mu_);
      if (pending_ == 0) return;
    }
    // Steal queued work (any group's) instead of idling; once the queue is
    // momentarily dry, sleep until our own tally reaches zero. Tasks still
    // executing on pool workers wake us through the completion wrapper.
    if (pool_->TryRunOne()) continue;
    MutexLock lock(&mu_);
    while (pending_ != 0) done_.Wait(&mu_);
    return;
  }
}

}  // namespace pb
