// Wall-clock stopwatch used by evaluation strategies for time budgets and by
// benches for reporting.

#ifndef PB_COMMON_STOPWATCH_H_
#define PB_COMMON_STOPWATCH_H_

#include <chrono>

namespace pb {

/// Starts on construction; Elapsed* report time since construction or the
/// last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pb

#endif  // PB_COMMON_STOPWATCH_H_
