// Minimal leveled logging and check macros.
//
// PB_CHECK fires in all builds; PB_DCHECK only when NDEBUG is not defined.
// Logging goes to stderr; the level is a process-wide setting so tests and
// benches can silence info output.

#ifndef PB_COMMON_LOGGING_H_
#define PB_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace pb {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4
};

/// Sets the process-wide minimum level that is emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with level tag) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Like LogMessage but aborts the process on destruction.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace pb

#define PB_LOG(level)                                                    \
  ::pb::internal::LogMessage(::pb::LogLevel::k##level, __FILE__, __LINE__)

#define PB_CHECK(condition)                                             \
  if (!(condition))                                                     \
  ::pb::internal::FatalMessage(__FILE__, __LINE__, #condition)

#ifdef NDEBUG
#define PB_DCHECK(condition) \
  if (false) ::pb::internal::FatalMessage(__FILE__, __LINE__, #condition)
#else
#define PB_DCHECK(condition) PB_CHECK(condition)
#endif

#endif  // PB_COMMON_LOGGING_H_
