#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace pb {

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string AsciiToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double v, int precision) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

namespace {
// Classic two-pointer LIKE matcher: remembers the last '%' position and the
// text position it matched up to, so backtracking is linear amortized.
bool LikeMatchImpl(std::string_view text, std::string_view pattern) {
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}
}  // namespace

bool LikeMatch(std::string_view text, std::string_view pattern) {
  return LikeMatchImpl(text, pattern);
}

}  // namespace pb
