// Fixed-size worker pool for fan-out of independent CPU-bound work (the
// SketchRefine Refine phase solves one small ILP per partition group; the
// MILP tree search runs speculative LP solves on helper threads).
//
// Deliberately minimal: Submit() enqueues a task, Wait() blocks until every
// submitted task has finished. Tasks must not throw (no exceptions cross
// API boundaries in this codebase); report failures through captured state.
//
// When several components share one pool, Wait()'s whole-pool semantics are
// too coarse: a TaskGroup tracks only the tasks spawned through it, so each
// component can wait on its own subset. TaskGroup::Wait() additionally
// drains queued pool tasks on the calling thread (work stealing via
// ThreadPool::TryRunOne), which keeps nested use — a pool task that spawns
// a subgroup into the same pool and waits on it — deadlock-free even on a
// single-thread pool.

#ifndef PB_COMMON_THREAD_POOL_H_
#define PB_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "common/annotations.h"

namespace pb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  /// Runs one queued (not yet started) task on the calling thread; returns
  /// false when the queue is empty. Lets waiters help drain the pool — the
  /// "stealing" side of TaskGroup::Wait().
  bool TryRunOne();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;  // written by the constructor only
  Mutex mu_;
  CondVar task_ready_;
  CondVar all_done_;
  std::queue<std::function<void()>> queue_ PB_GUARDED_BY(mu_);
  size_t in_flight_ PB_GUARDED_BY(mu_) = 0;  // queued + currently executing
  bool stop_ PB_GUARDED_BY(mu_) = false;
};

/// Handle over a subset of a pool's tasks: Spawn() submits through the
/// group, Wait() blocks only until THIS group's tasks have finished (other
/// users' tasks may still be running). The destructor waits, so a group
/// never outlives work it spawned. Not thread-safe: one thread drives a
/// given group (the tasks themselves run anywhere).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup() { Wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Submits `task` to the pool, tracked by this group.
  void Spawn(std::function<void()> task);

  /// Blocks until every task spawned so far has completed, running queued
  /// pool tasks inline while it waits (so nested groups on a shared pool
  /// cannot deadlock, and waiters contribute throughput instead of idling).
  void Wait();

 private:
  ThreadPool* pool_;
  Mutex mu_;
  CondVar done_;
  size_t pending_ PB_GUARDED_BY(mu_) = 0;
};

}  // namespace pb

#endif  // PB_COMMON_THREAD_POOL_H_
