// Fixed-size worker pool for fan-out of independent CPU-bound work (the
// SketchRefine Refine phase solves one small ILP per partition group).
//
// Deliberately minimal: Submit() enqueues a task, Wait() blocks until every
// submitted task has finished. Tasks must not throw (no exceptions cross
// API boundaries in this codebase); report failures through captured state.

#ifndef PB_COMMON_THREAD_POOL_H_
#define PB_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has completed.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool stop_ = false;
};

}  // namespace pb

#endif  // PB_COMMON_THREAD_POOL_H_
