// Seeded random-number utilities.
//
// Every randomized component in PackageBuilder (data generators, local-search
// restarts, adaptive exploration) takes an explicit Rng so that tests and
// benches are reproducible bit-for-bit.

#ifndef PB_COMMON_RANDOM_H_
#define PB_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace pb {

/// Deterministic pseudo-random source (mt19937_64 under the hood).
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    PB_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal draw parameterized by the underlying normal.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform index into a container of the given size. Requires size > 0.
  size_t Index(size_t size) {
    PB_DCHECK(size > 0);
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(size) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    PB_DCHECK(k <= n);
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    // Partial Fisher-Yates: the first k slots become the sample.
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace pb

#endif  // PB_COMMON_RANDOM_H_
