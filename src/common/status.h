// Status / Result<T>: the error model used across all PackageBuilder modules.
//
// No exceptions cross public API boundaries (Google C++ style; the idiom
// follows RocksDB's Status and Arrow's Result). Fallible functions return
// either a Status (no payload) or a Result<T> (payload or error).

#ifndef PB_COMMON_STATUS_H_
#define PB_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace pb {

/// Machine-readable error categories for Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kNotFound,          ///< Named entity (table, column, variable) absent.
  kAlreadyExists,     ///< Attempt to redefine an existing entity.
  kOutOfRange,        ///< Index or bound outside the valid domain.
  kUnimplemented,     ///< Feature recognized but not supported by this path.
  kInternal,          ///< Invariant violation inside the library.
  kParseError,        ///< PaQL / CSV / LP text could not be parsed.
  kTypeError,         ///< Expression or schema type mismatch.
  kInfeasible,        ///< No package/solution satisfies the constraints.
  kUnbounded,         ///< Objective can be improved without limit.
  kResourceExhausted, ///< Node/time/iteration budget exceeded.
};

/// Returns a short stable name for a code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error value with a message. Cheap to copy on success.
///
/// [[nodiscard]] on the class makes every discarded Status-returning call a
/// compiler warning (an error under the library's -Werror): error handling
/// is opt-out with a visible rationale, never silently forgotten.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status TypeError(std::string m) {
    return Status(StatusCode::kTypeError, std::move(m));
  }
  static Status Infeasible(std::string m) {
    return Status(StatusCode::kInfeasible, std::move(m));
  }
  static Status Unbounded(std::string m) {
    return Status(StatusCode::kUnbounded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Never holds both.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value (success).
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status. Must not be OK.
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(var_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(var_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> var_;
};

}  // namespace pb

/// Propagates a non-OK Status from `expr` out of the enclosing function.
#define PB_RETURN_IF_ERROR(expr)                   \
  do {                                             \
    ::pb::Status _pb_status = (expr);              \
    if (!_pb_status.ok()) return _pb_status;       \
  } while (0)

#define PB_STATUS_CONCAT_INNER_(x, y) x##y
#define PB_STATUS_CONCAT_(x, y) PB_STATUS_CONCAT_INNER_(x, y)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// assigns the value to `lhs` (which may be a declaration).
#define PB_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  PB_ASSIGN_OR_RETURN_IMPL_(                                         \
      PB_STATUS_CONCAT_(_pb_result_, __LINE__), lhs, rexpr)

#define PB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#endif  // PB_COMMON_STATUS_H_
