// Compute/time budgets and cooperative cancellation — the primitives the
// Engine facade uses to make every solve interruptible and bounded.
//
// ComputeBudget unifies the thread-count knobs that used to be scattered
// across MilpOptions::num_threads and SketchRefineOptions::num_threads /
// node_threads: one struct, consumed by both layers, describing how many
// threads a solve may use in total and how many of them each
// branch-and-bound tree search gets. The old per-struct fields survive as
// deprecated aliases for one release (resolution rule below).
//
// CancelToken is a copyable handle on a shared cancellation flag. The
// default-constructed token is INERT — it never reports cancellation and
// costs nothing to copy or check — so options structs can carry one by
// value without allocating. A real token (CancelToken::Create()) shares
// one atomic flag across copies: the server's session holds one side, the
// solver's hot loops poll the other. Cancellation is cooperative: loops
// check at node granularity (the branch-and-bound pop, SketchRefine's
// per-group solves), never mid-pivot, so a cancelled solve always leaves
// well-formed partial state ("iteration-limit-style", never corrupted).
//
// Deadline is a wall-clock cutoff in the same cooperative style, stored as
// seconds-from-construction so existing time_limit_s plumbing maps onto it
// directly.

#ifndef PB_COMMON_BUDGET_H_
#define PB_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <memory>

namespace pb {

/// Thread budget for a solve, shared by the MILP tree search and
/// SketchRefine's two-level fan-out.
///
/// Resolution against the deprecated per-struct aliases
/// (MilpOptions::num_threads, SketchRefineOptions::num_threads /
/// node_threads): both default to 1, and the effective value is the MAX of
/// the alias and the ComputeBudget field — so old callers that set only
/// the alias and new callers that set only the budget both get what they
/// asked for, and nothing changes for callers that set neither.
struct ComputeBudget {
  /// Total threads the solve may occupy (>= 1; values < 1 read as 1).
  int threads = 1;
  /// Threads each branch-and-bound tree search gets. Only SketchRefine
  /// distinguishes this from `threads` (group-level fan-out times
  /// node-level tree parallelism); a plain MILP solve ignores it.
  int node_threads = 1;
};

/// Resolves a deprecated thread-count alias against its ComputeBudget
/// replacement (see ComputeBudget). Never returns less than 1.
inline int ResolveThreads(int budget_field, int deprecated_alias) {
  int v = budget_field > deprecated_alias ? budget_field : deprecated_alias;
  return v < 1 ? 1 : v;
}

/// Copyable handle on a shared cancellation flag; see the file comment.
/// Thread-safe: any copy may request cancellation, any copy may poll.
class CancelToken {
 public:
  /// Inert token: cancel_requested() is always false, RequestCancel() is a
  /// no-op. The free default for options structs.
  CancelToken() = default;

  /// A live token backed by one shared flag (copies share it).
  static CancelToken Create() {
    CancelToken t;
    t.flag_ = std::make_shared<std::atomic<bool>>(false);
    return t;
  }

  /// True when this token can ever report cancellation.
  bool valid() const { return flag_ != nullptr; }

  void RequestCancel() const {
    if (flag_) flag_->store(true, std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Wall-clock cutoff. Default-constructed: no deadline (never expired).
/// Copyable; copies share the same absolute cutoff instant.
class Deadline {
 public:
  Deadline() = default;

  /// Expires `seconds` from now. Non-finite or negative values mean an
  /// already-expired deadline when <= 0, no deadline when +infinity.
  static Deadline AfterSeconds(double seconds);

  bool has_deadline() const { return has_; }
  bool expired() const {
    return has_ && std::chrono::steady_clock::now() >= when_;
  }

  /// Seconds until expiry: +infinity without a deadline, clamped at 0
  /// once expired. Feed this into per-solve time_limit_s fields so a
  /// multi-solve pipeline (SketchRefine, enumeration) shares one budget.
  double SecondsRemaining() const;

 private:
  bool has_ = false;
  std::chrono::steady_clock::time_point when_{};
};

}  // namespace pb

#endif  // PB_COMMON_BUDGET_H_
