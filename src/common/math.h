// Combinatorial helpers for the cardinality-pruning search-space math (§4.1
// of the paper): with n candidate tuples and cardinality bounds [l, u], the
// candidate-package count shrinks from 2^n to sum_{k=l..u} C(n, k). The
// counts overflow quickly, so everything is computed in log2 space.

#ifndef PB_COMMON_MATH_H_
#define PB_COMMON_MATH_H_

#include <cstdint>

namespace pb {

/// log2(n!) via lgamma. Requires n >= 0.
double Log2Factorial(int64_t n);

/// log2(C(n, k)); returns -infinity when k < 0 or k > n.
double Log2Binomial(int64_t n, int64_t k);

/// log2( sum_{k=lo..hi} C(n, k) ), clamping [lo, hi] to [0, n].
/// Returns -infinity for an empty range. This is the size of the pruned
/// search space from §4.1 of the paper.
double Log2BinomialSum(int64_t n, int64_t lo, int64_t hi);

/// Exact C(n, k) while it fits in uint64; saturates to UINT64_MAX.
uint64_t BinomialOrSaturate(int64_t n, int64_t k);

/// True if |a - b| <= tol.
bool NearlyEqual(double a, double b, double tol = 1e-9);

}  // namespace pb

#endif  // PB_COMMON_MATH_H_
