// Minimal JSON value + parser + writer for the server wire protocol.
//
// The container bakes in no JSON dependency, and the protocol needs only
// the data model (null, bool, number, string, array, object), so this is a
// deliberate small subset: objects preserve insertion order, numbers are
// doubles with an int64 fast path for exact round-tripping of counters,
// and parsing enforces a recursion-depth cap instead of streaming.

#ifndef PB_COMMON_JSON_H_
#define PB_COMMON_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pb::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  static Value Null() { return Value(); }
  static Value Bool(bool b);
  static Value Number(double d);
  static Value Int(int64_t i);
  static Value Str(std::string s);
  static Value Array();
  static Value Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& items() const { return items_; }
  const std::vector<std::pair<std::string, Value>>& fields() const {
    return fields_;
  }

  /// Object lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  // Typed object getters with defaults (absent or wrong-typed -> default).
  std::string GetString(const std::string& key, std::string def = "") const;
  double GetNumber(const std::string& key, double def = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  bool GetBool(const std::string& key, bool def = false) const;

  /// Adds (or replaces) an object field; returns *this for chaining.
  Value& Set(const std::string& key, Value v);
  /// Appends an array element.
  void Push(Value v);

  /// Compact single-line serialization (the wire format: one value, no
  /// embedded newlines, so values frame naturally on '\n').
  std::string Dump() const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<std::pair<std::string, Value>> fields_;
};

/// Parses one JSON value from `text` (the whole string must be consumed,
/// modulo surrounding whitespace). Fails with kParseError.
Result<Value> Parse(std::string_view text);

}  // namespace pb::json

#endif  // PB_COMMON_JSON_H_
