// Small environment-variable helpers.
//
// Test suites use EnvInt to pick up thread-count defaults (the CI matrix
// re-runs ctest with PB_TEST_THREADS=1 and PB_TEST_THREADS=$(nproc) so
// every thread-count-invariance guarantee is exercised on every PR without
// rebuilding).

#ifndef PB_COMMON_ENV_H_
#define PB_COMMON_ENV_H_

#include <cstdint>

namespace pb {

/// The value of environment variable `name` parsed as a base-10 integer;
/// `fallback` when the variable is unset, empty, or not a number.
int EnvInt(const char* name, int fallback);

/// Like EnvInt but 64-bit, for byte budgets (PB_BLOCK_CACHE_BYTES).
int64_t EnvInt64(const char* name, int64_t fallback);

}  // namespace pb

#endif  // PB_COMMON_ENV_H_
