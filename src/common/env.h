// Small environment-variable helpers.
//
// Test suites use EnvInt to pick up thread-count defaults (the CI matrix
// re-runs ctest with PB_TEST_THREADS=1 and PB_TEST_THREADS=$(nproc) so
// every thread-count-invariance guarantee is exercised on every PR without
// rebuilding).

#ifndef PB_COMMON_ENV_H_
#define PB_COMMON_ENV_H_

namespace pb {

/// The value of environment variable `name` parsed as a base-10 integer;
/// `fallback` when the variable is unset, empty, or not a number.
int EnvInt(const char* name, int fallback);

}  // namespace pb

#endif  // PB_COMMON_ENV_H_
