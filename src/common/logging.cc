#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace pb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level.load()) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace pb
