// Small string helpers shared across modules (no locale dependence).

#ifndef PB_COMMON_STRINGS_H_
#define PB_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pb {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lower-case copy.
std::string AsciiToLower(std::string_view s);

/// ASCII upper-case copy.
std::string AsciiToUpper(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double compactly: integral values without trailing ".0",
/// otherwise up to `precision` significant digits.
std::string FormatDouble(double v, int precision = 10);

/// SQL LIKE matching with '%' (any run) and '_' (any single char).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace pb

#endif  // PB_COMMON_STRINGS_H_
