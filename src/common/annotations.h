// Clang thread-safety annotations + the annotated lock vocabulary.
//
// Every mutex, shared mutex, and condition variable in this codebase is one
// of the pb:: wrappers below — zero-cost shims over the std:: primitives
// that carry Clang `-Wthread-safety` capability attributes, so a thread
// touching state it does not hold the right lock for is a COMPILE error on
// the Clang CI lane (and plain std types everywhere else: on GCC the
// attributes expand to nothing and the wrappers inline away).
// tools/check_annotations.py enforces that no raw std::mutex /
// std::shared_mutex / std::condition_variable (or std lock guard) appears
// outside this header.
//
// Usage pattern (see docs/adr/0003-concurrency-invariants.md for the lock
// hierarchy and the full how-to):
//
//   class Cache {
//    public:
//     void Put(Key k, Val v) {
//       pb::MutexLock lock(&mu_);
//       map_[k] = std::move(v);    // OK: mu_ held
//     }
//    private:
//     pb::Mutex mu_;
//     std::map<Key, Val> map_ PB_GUARDED_BY(mu_);
//   };
//
// The attribute spellings follow the Clang thread-safety documentation;
// the PB_ prefix keeps them grep-able and avoids colliding with other
// libraries' unprefixed macros.

#ifndef PB_COMMON_ANNOTATIONS_H_
#define PB_COMMON_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#if defined(__clang__)
#define PB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PB_THREAD_ANNOTATION_(x)  // non-Clang: attributes compile away
#endif

/// Declares a type to be a capability ("mutex", "shared_mutex", ...).
#define PB_CAPABILITY(x) PB_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose lifetime equals holding a capability.
#define PB_SCOPED_CAPABILITY PB_THREAD_ANNOTATION_(scoped_lockable)

/// Member may only be touched while holding the given capability.
#define PB_GUARDED_BY(x) PB_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose POINTEE may only be touched while holding `x`.
#define PB_PT_GUARDED_BY(x) PB_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection with -Wthread-safety-beta).
#define PB_ACQUIRED_BEFORE(...) \
  PB_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define PB_ACQUIRED_AFTER(...) \
  PB_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Caller must hold the capability (exclusively / at least shared).
#define PB_REQUIRES(...) \
  PB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PB_REQUIRES_SHARED(...) \
  PB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the capability (not already held on entry).
#define PB_ACQUIRE(...) PB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PB_ACQUIRE_SHARED(...) \
  PB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define PB_RELEASE(...) PB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PB_RELEASE_SHARED(...) \
  PB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define PB_RELEASE_GENERIC(...) \
  PB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define PB_TRY_ACQUIRE(...) \
  PB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define PB_TRY_ACQUIRE_SHARED(...) \
  PB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (non-reentrancy / deadlock guard).
#define PB_EXCLUDES(...) PB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire performed).
#define PB_ASSERT_CAPABILITY(x) PB_THREAD_ANNOTATION_(assert_capability(x))
#define PB_ASSERT_SHARED_CAPABILITY(x) \
  PB_THREAD_ANNOTATION_(assert_shared_capability(x))

/// Function returns a reference to the given capability.
#define PB_RETURN_CAPABILITY(x) PB_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch. Every use MUST carry a comment explaining the invariant
/// the analysis cannot see (e.g. acquire/release publication of an
/// immutable cache). docs/adr/0003-concurrency-invariants.md lists the
/// sanctioned patterns.
#define PB_NO_THREAD_SAFETY_ANALYSIS \
  PB_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace pb {

class CondVar;

/// Annotated exclusive mutex. Prefer pb::MutexLock over manual
/// Lock()/Unlock() pairs; the manual API exists for the rare non-scoped
/// protocol (and for the analysis to see through the RAII types).
class PB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PB_ACQUIRE() { mu_.lock(); }
  void Unlock() PB_RELEASE() { mu_.unlock(); }
  bool TryLock() PB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Annotated reader/writer mutex (the Engine's catalog lock).
class PB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() PB_ACQUIRE() { mu_.lock(); }
  void Unlock() PB_RELEASE() { mu_.unlock(); }
  bool TryLock() PB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void LockShared() PB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void UnlockShared() PB_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool TryLockShared() PB_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over pb::Mutex. Relockable: Unlock()/Lock() support
/// protocols that drop the lock mid-scope (the speculation helpers); the
/// destructor releases only if still held.
class PB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) PB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() PB_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Drops the lock early (must be held).
  void Unlock() PB_RELEASE() {
    mu_->Unlock();
    held_ = false;
  }
  /// Re-acquires after Unlock() (must not be held).
  void Lock() PB_ACQUIRE() {
    mu_->Lock();
    held_ = true;
  }

 private:
  friend class CondVar;
  Mutex* mu_;
  bool held_ = true;
};

/// RAII exclusive (writer) lock over pb::SharedMutex.
class PB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) PB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;
  ~WriterMutexLock() PB_RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* mu_;
};

/// RAII shared (reader) lock over pb::SharedMutex.
class PB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) PB_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;
  ~ReaderMutexLock() PB_RELEASE_GENERIC() { mu_->UnlockShared(); }

 private:
  SharedMutex* mu_;
};

/// Condition variable bound to pb::Mutex. Wait() atomically releases and
/// re-acquires the mutex the caller already holds — annotated REQUIRES so
/// a wait without the lock is a compile error. The wait is allowed to wake
/// spuriously; callers loop on their predicate:
///
///   pb::MutexLock lock(&mu_);
///   while (!ready_) cv_.Wait(&mu_);
///
/// (An explicit while over a guarded member keeps the predicate visible to
/// the analysis; the lambda-predicate overload below is for predicates
/// over unguarded state, since Clang analyzes lambda bodies in isolation.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) PB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the re-acquired lock
  }

  /// Waits until `pred()` holds (handles spurious wakeups internally).
  template <typename Predicate>
  void Wait(Mutex* mu, Predicate pred) PB_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Returns false on timeout (the mutex is re-held either way).
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      PB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const std::cv_status st = cv_.wait_for(lock, timeout);
    lock.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pb

#endif  // PB_COMMON_ANNOTATIONS_H_
