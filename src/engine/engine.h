// pb::Engine — the re-entrant facade over the whole PackageBuilder stack.
//
// Every front end (the pbshell REPL, the pbserve network server, tests and
// benches) talks to one Engine instance instead of wiring Catalog +
// QueryEvaluator + solver options by hand. The Engine owns:
//
//   - the loaded catalog, guarded by a reader/writer lock so any number of
//     queries run concurrently while table loads are exclusive;
//   - the shared worker ThreadPool that executes submitted queries and a
//     thread-share ledger so concurrent queries split the machine instead
//     of each assuming it owns every core;
//   - a result cache keyed on (normalized query text, catalog generation):
//     repeating a query against an unchanged catalog returns the cached
//     package bit-identically with zero solver work;
//   - a warm-start cache keyed on LpModel::StructuralSignature(): distinct
//     queries that translate to structurally identical ILPs reuse root
//     bases and pseudocost history (MilpWarmStart) across solves, each
//     entry serialized by its own mutex so concurrent queries never share
//     mutable solver state.
//
// ExecuteQuery() is safe to call from any number of threads. Budgets are
// cooperative: QueryBudget carries a wall-clock deadline, node caps, a
// thread share, and a CancelToken polled inside the branch-and-bound loop,
// so a cancelled or over-deadline query returns a structured partial
// status — never a corrupted package.

#ifndef PB_ENGINE_ENGINE_H_
#define PB_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/annotations.h"
#include "common/budget.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/evaluator.h"
#include "core/explain.h"
#include "core/package.h"
#include "core/sketch_refine.h"
#include "db/catalog.h"
#include "solver/milp.h"
#include "storage/block.h"
#include "storage/block_cache.h"

namespace pb::engine {

/// Per-query resource envelope. Zero / unset fields fall back to the
/// engine's defaults; every limit is a ceiling, never an extension.
struct QueryBudget {
  /// Wall-clock deadline for the WHOLE query (parse + solve). <= 0 means
  /// "use the engine default". The solver's own time limit is clamped to
  /// the time remaining when it starts.
  double time_limit_s = 0.0;
  /// Branch-and-bound node cap (0 = engine default).
  int64_t max_nodes = 0;
  /// Thread share requested from the engine's pool. The engine grants
  /// min(requested, threads currently unclaimed), always at least one, so
  /// concurrent queries degrade to serial solves instead of oversubscribing.
  ComputeBudget compute;
  /// Cooperative cancellation. Default-constructed tokens are inert; pass
  /// CancelToken::Create() (or use Engine::CancelSession) to make a query
  /// interruptible mid-solve.
  CancelToken cancel;
  /// Storage budget: bytes of block-cache data the query may hold pinned
  /// at once (bulk NumericColumnView pins; per-cell compatibility reads
  /// are never refused). 0 = count-only (track peak, never refuse).
  int64_t max_pinned_bytes = 0;
};

struct EngineOptions {
  /// Worker threads for the shared pool (0 = hardware concurrency).
  int num_threads = 0;
  /// Result-cache capacity in entries (LRU beyond this).
  size_t result_cache_capacity = 64;
  /// Warm-start cache capacity in entries (LRU beyond this).
  size_t warm_cache_capacity = 64;
  /// Bounded admission: SubmitQuery() rejects (returns false) when this
  /// many queries are already queued or running — the server's overload
  /// backpressure.
  size_t max_pending_queries = 32;
  /// Render the package-template screen into QueryResponse::rendered on
  /// success (the pbshell view; servers leave it off and ship rows).
  bool render_packages = false;
  /// Baseline evaluation options; per-query budgets clamp these.
  core::EvaluationOptions defaults;

  // ----- Incremental maintenance (HTAP) ------------------------------------

  /// Route eligible ILP-translatable queries through SketchRefine with a
  /// per-query maintained partition (see core::SketchRefineState). With
  /// this on, AppendRows turns repeat queries into dirty-group re-solves
  /// instead of from-scratch solves, and appended-but-compatible cached
  /// results are revalidated rather than invalidated. Off (the default) =
  /// the classic exact pipeline only.
  bool incremental_maintenance = false;
  /// Reuse cached per-group sub-solutions of clean groups (the ablation
  /// knob the incremental bench flips off for its cold baseline; results
  /// are bit-identical either way, only the solver work differs).
  bool maintenance_reuse_solutions = true;
  /// Maintained partition states kept, one per distinct query text (LRU
  /// beyond this).
  size_t maintenance_cache_capacity = 16;
  /// Partition size (tau) for the maintained SketchRefine path.
  size_t sketch_partition_size = 64;
};

/// Monotonic engine-wide counters (snapshot via Engine::stats()).
struct EngineStats {
  int64_t queries = 0;             ///< ExecuteQuery calls
  int64_t errors = 0;              ///< responses with !status.ok()
  int64_t cancelled = 0;           ///< responses with cancelled set
  int64_t result_cache_hits = 0;   ///< answered from the result cache
  int64_t warm_cache_hits = 0;     ///< solves that reused warm state
  int64_t warm_cache_misses = 0;   ///< solves that started cold
  int64_t overload_rejections = 0; ///< SubmitQuery admission failures
  // -- incremental maintenance (appends) -----------------------------------
  int64_t appends = 0;             ///< AppendRows calls that committed
  int64_t rows_appended = 0;       ///< rows committed by those calls
  /// Stale-by-append cached results re-answered through the maintained
  /// partition (dirty-group re-solve + sketch re-stitch).
  int64_t revalidations = 0;
  /// Appends that had to bump the catalog generation instead (spilled
  /// table: unspill + append + invalidate everything).
  int64_t maintenance_full_invalidations = 0;
  // -- block cache (process-wide storage::BlockCache::Default() snapshot) --
  int64_t block_cache_hits = 0;       ///< pins served from memory
  int64_t block_cache_misses = 0;     ///< pins that read the segment file
  int64_t block_cache_evictions = 0;  ///< blocks dropped to fit the budget
  int64_t block_cache_bytes = 0;      ///< bytes resident right now
  int64_t block_bytes_pinned = 0;     ///< bytes pinned right now
  int64_t block_peak_bytes_pinned = 0;  ///< high-water mark of pinned bytes
};

/// The structured answer to one ExecuteQuery call.
struct QueryResponse {
  Status status;            ///< typed error from the Status taxonomy
  /// True when the query stopped early on its CancelToken or deadline.
  /// status may still be OK (an incumbent package was already in hand,
  /// returned as-is with proven_optimal == false).
  bool cancelled = false;
  core::Package package;    ///< the answer (valid when status.ok())
  bool has_objective = false;  ///< the query has MAXIMIZE/MINIMIZE
  double objective = 0.0;   ///< objective value (0 without an objective)
  bool proven_optimal = false;
  std::string strategy;     ///< "Cache", "IlpSolver", "BruteForce", ...
  std::string table;        ///< base table the package indexes into
  std::string rendered;     ///< package-template screen (opt-in)
  // -- counters -----------------------------------------------------------
  bool result_cache_hit = false;
  bool warm_start_hit = false;      ///< solver reused prior warm state
  uint64_t model_signature = 0;     ///< LpModel::StructuralSignature()
  int64_t nodes = 0;                ///< branch-and-bound nodes solved
  int64_t lp_iterations = 0;        ///< simplex iterations
  size_t num_candidates = 0;        ///< rows surviving the WHERE clause
  /// Blocks whose pruning / partitioning bounds came from zone-map
  /// metadata instead of a value scan (deterministic per query + table).
  int64_t zone_map_skipped_blocks = 0;
  // -- incremental maintenance (populated on the SketchRefine path) -------
  /// A stale-by-append cached result was refreshed through the maintained
  /// partition instead of being recomputed from scratch.
  bool revalidated = false;
  /// Refined groups re-solved this call (membership or residual changed).
  int64_t dirty_groups = 0;
  /// Refined groups answered from cached sub-solutions, zero solver work.
  int64_t groups_reused = 0;
  /// Wall time of partition maintenance + dirty-group re-solve, when the
  /// maintained partition was reused (0 on a cold build).
  double maintenance_ms = 0.0;
  /// Rows in the base table when this response was computed — the
  /// freshness key the result cache checks at hit time (appends do not
  /// bump the catalog generation).
  size_t table_rows = 0;
  /// High-water mark of block-cache bytes this query held pinned (0 for
  /// queries over fully resident tables).
  int64_t storage_peak_pinned_bytes = 0;
  // -- timings ------------------------------------------------------------
  double parse_seconds = 0.0;
  double solve_seconds = 0.0;
  double total_seconds = 0.0;

  bool ok() const { return status.ok(); }
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // -- catalog management (exclusive; waits for in-flight queries) --------
  Status RegisterTable(db::Table table);
  void RegisterOrReplaceTable(db::Table table);
  Status DropTable(const std::string& name);
  /// Loads a CSV file into the catalog; returns the row count.
  Result<size_t> LoadCsv(const std::string& path, const std::string& name);
  /// Generates a synthetic dataset (kind: recipes|travel|stocks|lineitem)
  /// and registers it under the kind's name; returns the row count.
  Result<size_t> GenerateDataset(const std::string& kind, size_t n,
                                 uint64_t seed);
  std::vector<std::string> TableNames() const;
  struct TableInfo {
    std::string name;
    size_t rows = 0;
    size_t columns = 0;
  };
  std::vector<TableInfo> Tables() const;
  /// Human-readable preview of a table (Table::ToString).
  Result<std::string> RenderTable(const std::string& name,
                                  size_t max_rows) const;
  /// Spills a registered table's numeric columns to a zone-mapped segment
  /// file (exclusive; waits for in-flight queries). Queries afterwards read
  /// blocks through the process block cache instead of resident vectors —
  /// results are bit-identical, memory is bounded by the cache budget. The
  /// segment file lives next to `dir` (defaults to the system temp dir) and
  /// is unlinked when the table is dropped or the engine shuts down.
  Status SpillTable(const std::string& name, const std::string& dir = "",
                    size_t block_size = storage::kDefaultBlockSize);

  /// What one AppendRows call did (see below).
  struct AppendOutcome {
    size_t rows = 0;        ///< rows committed by this call
    size_t table_rows = 0;  ///< table size after the append
    /// The table was spilled: it was read back into RAM, grown, and the
    /// catalog generation bumped — every cached result and maintained
    /// partition over it starts over. False = the incremental path: no
    /// generation bump, cached results revalidate at hit time and
    /// maintained partitions absorb the new rows as dirty-group work.
    bool full_invalidation = false;
  };

  /// Appends a batch of rows to a registered table (exclusive; waits for
  /// in-flight queries). All-or-nothing: rows are validated against the
  /// schema before any is committed. Resident tables grow in place without
  /// invalidating caches; spilled tables fall back to unspill + append +
  /// full invalidation (see AppendOutcome::full_invalidation).
  Result<AppendOutcome> AppendRows(const std::string& table,
                                   std::vector<db::Tuple> rows);

  // -- sessions -----------------------------------------------------------
  /// Opens a session and returns its id (ids are never reused). Sessions
  /// exist so another connection can cancel a query in flight; passing
  /// session id 0 to ExecuteQuery runs anonymously.
  uint64_t OpenSession();
  Status CloseSession(uint64_t session);
  /// Requests cancellation of `session`'s in-flight query (no-op when the
  /// session is idle). The query observes the request at its next
  /// branch-and-bound node and returns a partial response.
  Status CancelSession(uint64_t session);

  // -- queries ------------------------------------------------------------
  /// Parses, plans, and evaluates one PaQL query under the budget.
  /// Re-entrant: any number of threads may call this concurrently.
  QueryResponse ExecuteQuery(uint64_t session, const std::string& paql,
                             const QueryBudget& budget = {});

  /// Asynchronous ExecuteQuery on the shared pool. Returns false — without
  /// enqueueing — when max_pending_queries are already queued or running;
  /// otherwise `done` is invoked (on a pool thread) with the response.
  bool SubmitQuery(uint64_t session, std::string paql, QueryBudget budget,
                   std::function<void(QueryResponse)> done);

  /// Plans a query without executing it (EXPLAIN).
  Result<core::QueryPlan> Explain(const std::string& paql) const;

  /// Enumerates up to `k` packages, best first; `diverse` trades objective
  /// quality for pairwise Jaccard distance.
  Result<std::vector<core::Package>> Enumerate(const std::string& paql,
                                               size_t k, bool diverse) const;

  /// Materializes `package` against `table` and writes it as CSV.
  Status WritePackageCsv(const std::string& table,
                         const core::Package& package,
                         const std::string& path) const;

  /// The base table a query reads from (parse + bind only).
  Result<std::string> BaseTable(const std::string& paql) const;

  /// Objective value of `package` under `paql`'s MAXIMIZE/MINIMIZE clause
  /// (0 when the query has none).
  Result<double> EvaluateObjective(const std::string& paql,
                                   const core::Package& package) const;

  // -- introspection ------------------------------------------------------
  EngineStats stats() const;
  int num_threads() const { return num_threads_; }
  ThreadPool* pool() { return pool_.get(); }

 private:
  struct Session {
    Mutex mu;
    /// Token of the in-flight query (inert when idle).
    CancelToken active PB_GUARDED_BY(mu);
  };
  /// One warm-start cache slot. The entry mutex serializes solves that
  /// share the signature — MilpWarmStart is not thread-safe.
  struct WarmEntry {
    Mutex mu;
    solver::MilpWarmStart warm PB_GUARDED_BY(mu);
    /// A solve has completed against this entry.
    bool used PB_GUARDED_BY(mu) = false;
  };
  /// One maintained-partition slot, keyed on normalized query text. The
  /// entry mutex serializes the solves that share the state
  /// (SketchRefineState, like MilpWarmStart, is not thread-safe). The
  /// state is valid only while `generation` matches the catalog: appends
  /// leave the generation alone (the state absorbs them incrementally);
  /// any other mutation bumps it and the state rebuilds on next use.
  struct MaintenanceEntry {
    Mutex mu;
    uint64_t generation PB_GUARDED_BY(mu) = 0;
    core::SketchRefineState state PB_GUARDED_BY(mu);
  };

  /// The synchronous query pipeline body (takes the catalog read lock).
  QueryResponse Run(const std::string& paql, const QueryBudget& budget,
                    const CancelToken& token) PB_EXCLUDES(catalog_mu_);
  /// ILP route with warm-start cache; `translatable` already verified.
  void RunIlpPath(const paql::AnalyzedQuery& aq,
                  const core::EvaluationOptions& eo,
                  const core::CardinalityBounds& bounds, QueryResponse* resp)
      PB_REQUIRES_SHARED(catalog_mu_);
  /// Maintained SketchRefine route (incremental_maintenance on): solves
  /// through the per-query partition state so repeat queries after appends
  /// re-solve only dirty groups. Falls back to RunIlpPath when the solve
  /// comes back empty-handed un-cancelled.
  void RunSketchRefinePath(const paql::AnalyzedQuery& aq,
                           const core::EvaluationOptions& eo,
                           const core::CardinalityBounds& bounds,
                           const std::string& query_key, QueryResponse* resp)
      PB_REQUIRES_SHARED(catalog_mu_);
  /// Fallback route through the QueryEvaluator hybrid.
  void RunEvaluatorPath(const paql::AnalyzedQuery& aq,
                        const core::EvaluationOptions& eo,
                        QueryResponse* resp) PB_REQUIRES_SHARED(catalog_mu_);

  std::shared_ptr<Session> FindSession(uint64_t id);
  std::shared_ptr<WarmEntry> GetWarmEntry(uint64_t signature);
  std::shared_ptr<MaintenanceEntry> GetMaintenanceEntry(
      const std::string& query_key);
  bool LookupResultCache(const std::string& key, QueryResponse* out);
  void StoreResultCache(const std::string& key, const QueryResponse& resp);

  /// Claims up to `requested` threads from the unclaimed pool share;
  /// returns the number actually claimed (possibly 0 — the caller still
  /// runs with one thread but must release exactly the claimed count).
  int AcquireThreads(int requested);
  void ReleaseThreads(int claimed);

  EngineOptions options_;
  int num_threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;

  // Lock hierarchy (outermost first): catalog_mu_ → {sessions_mu_,
  // result_mu_, warm_mu_, WarmEntry::mu, maint_mu_, MaintenanceEntry::mu,
  // stats_mu_}. The leaf mutexes are never held together; see
  // docs/adr/0003-concurrency-invariants.md.
  mutable SharedMutex catalog_mu_;
  db::Catalog catalog_ PB_GUARDED_BY(catalog_mu_);
  /// Bumped on every mutation.
  uint64_t catalog_generation_ PB_GUARDED_BY(catalog_mu_) = 0;

  Mutex sessions_mu_;
  uint64_t next_session_ PB_GUARDED_BY(sessions_mu_) = 1;
  std::unordered_map<uint64_t, std::shared_ptr<Session>> sessions_
      PB_GUARDED_BY(sessions_mu_);

  Mutex result_mu_;
  std::list<std::pair<std::string, QueryResponse>> result_lru_
      PB_GUARDED_BY(result_mu_);
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, QueryResponse>>::iterator>
      result_map_ PB_GUARDED_BY(result_mu_);

  Mutex warm_mu_;
  std::list<uint64_t> warm_lru_ PB_GUARDED_BY(warm_mu_);
  struct WarmSlot {
    std::list<uint64_t>::iterator lru;
    std::shared_ptr<WarmEntry> entry;
  };
  std::unordered_map<uint64_t, WarmSlot> warm_map_ PB_GUARDED_BY(warm_mu_);

  Mutex maint_mu_;
  std::list<std::string> maint_lru_ PB_GUARDED_BY(maint_mu_);
  struct MaintSlot {
    std::list<std::string>::iterator lru;
    std::shared_ptr<MaintenanceEntry> entry;
  };
  std::unordered_map<std::string, MaintSlot> maint_map_
      PB_GUARDED_BY(maint_mu_);

  std::atomic<int> unclaimed_threads_{1};
  std::atomic<int64_t> pending_{0};

  mutable Mutex stats_mu_;
  EngineStats stats_ PB_GUARDED_BY(stats_mu_);
};

}  // namespace pb::engine

#endif  // PB_ENGINE_ENGINE_H_
