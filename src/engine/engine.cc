#include "engine/engine.h"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/enumerator.h"
#include "core/translator.h"
#include "datagen/lineitem.h"
#include "datagen/recipes.h"
#include "datagen/stocks.h"
#include "datagen/travel.h"
#include "db/csv.h"
#include "db/ops.h"
#include "paql/analyzer.h"
#include "storage/storage_budget.h"
#include "ui/template.h"

namespace pb::engine {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  num_threads_ = options_.num_threads > 0
                     ? options_.num_threads
                     : std::max(1u, std::thread::hardware_concurrency());
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(num_threads_));
  unclaimed_threads_.store(num_threads_, std::memory_order_relaxed);
}

Engine::~Engine() {
  // Drain and join the pool before any member it references goes away.
  pool_.reset();
}

// ---------------------------------------------------------------- catalog

Status Engine::RegisterTable(db::Table table) {
  WriterMutexLock lock(&catalog_mu_);
  Status s = catalog_.Register(std::move(table));
  if (s.ok()) ++catalog_generation_;
  return s;
}

void Engine::RegisterOrReplaceTable(db::Table table) {
  WriterMutexLock lock(&catalog_mu_);
  catalog_.RegisterOrReplace(std::move(table));
  ++catalog_generation_;
}

Status Engine::DropTable(const std::string& name) {
  WriterMutexLock lock(&catalog_mu_);
  Status s = catalog_.Drop(name);
  if (s.ok()) ++catalog_generation_;
  return s;
}

Result<size_t> Engine::LoadCsv(const std::string& path,
                               const std::string& name) {
  // File IO happens outside the catalog lock.
  PB_ASSIGN_OR_RETURN(db::Table table, db::ReadCsvFile(path, name));
  const size_t rows = table.num_rows();
  RegisterOrReplaceTable(std::move(table));
  return rows;
}

Result<size_t> Engine::GenerateDataset(const std::string& kind, size_t n,
                                       uint64_t seed) {
  db::Table table;
  if (kind == "recipes") {
    table = datagen::GenerateRecipes(n, seed);
  } else if (kind == "travel") {
    table = datagen::GenerateTravelItems(n, seed);
  } else if (kind == "stocks") {
    table = datagen::GenerateStocks(n, seed);
  } else if (kind == "lineitem") {
    table = datagen::GenerateLineitems(n, seed);
  } else {
    return Status::InvalidArgument(
        "unknown dataset kind '" + kind +
        "' (expected recipes|travel|stocks|lineitem)");
  }
  const size_t rows = table.num_rows();
  RegisterOrReplaceTable(std::move(table));
  return rows;
}

std::vector<std::string> Engine::TableNames() const {
  ReaderMutexLock lock(&catalog_mu_);
  return catalog_.TableNames();
}

std::vector<Engine::TableInfo> Engine::Tables() const {
  ReaderMutexLock lock(&catalog_mu_);
  std::vector<TableInfo> out;
  for (const std::string& name : catalog_.TableNames()) {
    auto table = catalog_.Get(name);
    if (!table.ok()) continue;
    out.push_back(
        {name, (*table)->num_rows(), (*table)->schema().num_columns()});
  }
  return out;
}

Result<std::string> Engine::RenderTable(const std::string& name,
                                        size_t max_rows) const {
  ReaderMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(const db::Table* table, catalog_.Get(name));
  return table->ToString(max_rows);
}

Status Engine::SpillTable(const std::string& name, const std::string& dir,
                          size_t block_size) {
  WriterMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetMutable(name));
  std::error_code ec;
  std::string base = dir;
  if (base.empty()) {
    base = std::filesystem::temp_directory_path(ec).string();
    if (ec) base = ".";
  }
  // Generation in the name keeps re-spills of a reloaded table from
  // colliding; the file is created O_EXCL-free but unlinked on close.
  const std::string path = base + "/pb_" + table->name() + "_g" +
                           std::to_string(catalog_generation_) + ".seg";
  PB_RETURN_IF_ERROR(table->SpillToDisk(path, block_size));
  // Results are bit-identical, but bump the generation anyway: cached
  // responses carry timings/counters that no longer describe the layout.
  ++catalog_generation_;
  return Status::OK();
}

Result<Engine::AppendOutcome> Engine::AppendRows(const std::string& name,
                                                 std::vector<db::Tuple> rows) {
  WriterMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(db::Table * table, catalog_.GetMutable(name));
  AppendOutcome out;
  out.rows = rows.size();
  if (table->spilled()) {
    // Spilled tables are append-frozen: read the blocks back, grow the
    // resident table, and bump the generation — the full-invalidation
    // fallback. Every cached result and maintained partition over the old
    // layout starts over (the spill counters no longer describe it).
    PB_RETURN_IF_ERROR(table->Unspill());
    PB_RETURN_IF_ERROR(table->AppendRows(std::move(rows)));
    ++catalog_generation_;
    out.full_invalidation = true;
    MutexLock slock(&stats_mu_);
    ++stats_.maintenance_full_invalidations;
  } else {
    // The incremental path: no generation bump. Cached results stay
    // addressable and revalidate against the new row count at hit time;
    // maintained partitions absorb the rows as dirty-group work.
    PB_RETURN_IF_ERROR(table->AppendRows(std::move(rows)));
  }
  out.table_rows = table->num_rows();
  MutexLock slock(&stats_mu_);
  ++stats_.appends;
  stats_.rows_appended += static_cast<int64_t>(out.rows);
  return out;
}

// ---------------------------------------------------------------- sessions

uint64_t Engine::OpenSession() {
  MutexLock lock(&sessions_mu_);
  const uint64_t id = next_session_++;
  sessions_.emplace(id, std::make_shared<Session>());
  return id;
}

Status Engine::CloseSession(uint64_t session) {
  MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown session " + std::to_string(session));
  }
  // An in-flight query keeps its shared_ptr; cancel it on the way out so
  // closing a session never leaves work running on its behalf.
  {
    MutexLock slock(&it->second->mu);
    if (it->second->active.valid()) it->second->active.RequestCancel();
  }
  sessions_.erase(it);
  return Status::OK();
}

Status Engine::CancelSession(uint64_t session) {
  std::shared_ptr<Session> s = FindSession(session);
  if (!s) {
    return Status::NotFound("unknown session " + std::to_string(session));
  }
  MutexLock lock(&s->mu);
  if (s->active.valid()) s->active.RequestCancel();
  return Status::OK();
}

std::shared_ptr<Engine::Session> Engine::FindSession(uint64_t id) {
  MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

// ------------------------------------------------------------------ caches

bool Engine::LookupResultCache(const std::string& key, QueryResponse* out) {
  MutexLock lock(&result_mu_);
  auto it = result_map_.find(key);
  if (it == result_map_.end()) return false;
  result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
  *out = it->second->second;
  out->result_cache_hit = true;
  // Timings describe THIS call, not the original solve.
  out->parse_seconds = 0.0;
  out->solve_seconds = 0.0;
  out->total_seconds = 0.0;
  return true;
}

void Engine::StoreResultCache(const std::string& key,
                              const QueryResponse& resp) {
  if (options_.result_cache_capacity == 0) return;
  MutexLock lock(&result_mu_);
  auto it = result_map_.find(key);
  if (it != result_map_.end()) {
    result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
    it->second->second = resp;
    return;
  }
  result_lru_.emplace_front(key, resp);
  result_map_[key] = result_lru_.begin();
  while (result_map_.size() > options_.result_cache_capacity) {
    result_map_.erase(result_lru_.back().first);
    result_lru_.pop_back();
  }
}

std::shared_ptr<Engine::WarmEntry> Engine::GetWarmEntry(uint64_t signature) {
  MutexLock lock(&warm_mu_);
  auto it = warm_map_.find(signature);
  if (it != warm_map_.end()) {
    warm_lru_.splice(warm_lru_.begin(), warm_lru_, it->second.lru);
    return it->second.entry;
  }
  warm_lru_.push_front(signature);
  auto entry = std::make_shared<WarmEntry>();
  warm_map_[signature] = {warm_lru_.begin(), entry};
  while (warm_map_.size() > std::max<size_t>(1, options_.warm_cache_capacity)) {
    // In-flight solves keep their shared_ptr; eviction only drops the
    // cache's reference.
    warm_map_.erase(warm_lru_.back());
    warm_lru_.pop_back();
  }
  return entry;
}

std::shared_ptr<Engine::MaintenanceEntry> Engine::GetMaintenanceEntry(
    const std::string& query_key) {
  MutexLock lock(&maint_mu_);
  auto it = maint_map_.find(query_key);
  if (it != maint_map_.end()) {
    maint_lru_.splice(maint_lru_.begin(), maint_lru_, it->second.lru);
    return it->second.entry;
  }
  maint_lru_.push_front(query_key);
  auto entry = std::make_shared<MaintenanceEntry>();
  maint_map_[query_key] = {maint_lru_.begin(), entry};
  while (maint_map_.size() >
         std::max<size_t>(1, options_.maintenance_cache_capacity)) {
    // In-flight solves keep their shared_ptr; eviction only drops the
    // cache's reference.
    maint_map_.erase(maint_lru_.back());
    maint_lru_.pop_back();
  }
  return entry;
}

// ----------------------------------------------------------- thread ledger

int Engine::AcquireThreads(int requested) {
  requested = std::max(1, requested);
  int avail = unclaimed_threads_.load(std::memory_order_relaxed);
  int take = 0;
  do {
    take = std::min(requested, std::max(0, avail));
    if (take == 0) return 0;
  } while (!unclaimed_threads_.compare_exchange_weak(
      avail, avail - take, std::memory_order_relaxed));
  return take;
}

void Engine::ReleaseThreads(int claimed) {
  if (claimed > 0) {
    unclaimed_threads_.fetch_add(claimed, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------------- queries

QueryResponse Engine::ExecuteQuery(uint64_t session_id,
                                   const std::string& paql,
                                   const QueryBudget& budget) {
  Stopwatch total;
  // Every query gets a live token so CancelSession always has a target.
  CancelToken token =
      budget.cancel.valid() ? budget.cancel : CancelToken::Create();

  std::shared_ptr<Session> session;
  if (session_id != 0) {
    session = FindSession(session_id);
    if (!session) {
      QueryResponse resp;
      resp.status =
          Status::NotFound("unknown session " + std::to_string(session_id));
      resp.total_seconds = total.ElapsedSeconds();
      MutexLock lock(&stats_mu_);
      ++stats_.queries;
      ++stats_.errors;
      return resp;
    }
    MutexLock lock(&session->mu);
    session->active = token;
  }

  QueryResponse resp = Run(paql, budget, token);

  if (session) {
    MutexLock lock(&session->mu);
    session->active = CancelToken();
  }
  resp.total_seconds = total.ElapsedSeconds();

  MutexLock lock(&stats_mu_);
  ++stats_.queries;
  if (!resp.status.ok()) ++stats_.errors;
  if (resp.cancelled) ++stats_.cancelled;
  if (resp.result_cache_hit) ++stats_.result_cache_hits;
  if (resp.revalidated) ++stats_.revalidations;
  return resp;
}

bool Engine::SubmitQuery(uint64_t session, std::string paql,
                         QueryBudget budget,
                         std::function<void(QueryResponse)> done) {
  const int64_t in_flight = pending_.fetch_add(1, std::memory_order_acq_rel);
  if (in_flight >= static_cast<int64_t>(options_.max_pending_queries)) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    MutexLock lock(&stats_mu_);
    ++stats_.overload_rejections;
    return false;
  }
  pool_->Submit([this, session, paql = std::move(paql), budget,
                 done = std::move(done)]() mutable {
    QueryResponse resp = ExecuteQuery(session, paql, budget);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    done(std::move(resp));
  });
  return true;
}

QueryResponse Engine::Run(const std::string& paql, const QueryBudget& budget,
                          const CancelToken& token) {
  QueryResponse resp;
  ReaderMutexLock catalog_lock(&catalog_mu_);

  const std::string normalized = std::string(StripAsciiWhitespace(paql));
  const std::string key =
      std::to_string(catalog_generation_) + "\n" + normalized;
  // Third cache state: a hit whose base table has grown since the entry
  // was stored (same generation — appends do not bump it) is neither
  // served nor dropped. It falls through to a fresh solve, which the
  // maintained partition turns into dirty-group work, and the refreshed
  // response overwrites the entry ("revalidation").
  bool stale_by_append = false;
  if (LookupResultCache(key, &resp)) {
    bool fresh = true;
    if (!resp.table.empty()) {
      auto table_or = catalog_.Get(resp.table);
      fresh = table_or.ok() && (*table_or)->num_rows() == resp.table_rows;
    }
    if (fresh) return resp;
    stale_by_append = true;
    resp = QueryResponse();
  }

  Stopwatch parse_timer;
  auto aq_or = paql::ParseAndAnalyze(paql, catalog_);
  resp.parse_seconds = parse_timer.ElapsedSeconds();
  if (!aq_or.ok()) {
    resp.status = aq_or.status();
    return resp;
  }
  const paql::AnalyzedQuery& aq = *aq_or;
  resp.table = aq.table->name();
  resp.has_objective = aq.has_objective;
  resp.table_rows = aq.table->num_rows();

  // Budget: the deadline covers the whole call; each strategy's own limit
  // is clamped to the time remaining when it starts.
  const double limit = budget.time_limit_s > 0.0
                           ? budget.time_limit_s
                           : options_.defaults.milp.time_limit_s;
  const Deadline deadline = Deadline::AfterSeconds(limit);
  const int claimed = AcquireThreads(ResolveThreads(budget.compute.threads, 1));

  core::EvaluationOptions eo = options_.defaults;
  eo.milp.cancel = token;
  eo.milp.time_limit_s = deadline.SecondsRemaining();
  if (budget.max_nodes > 0) eo.milp.max_nodes = budget.max_nodes;
  eo.milp.compute.threads = std::max(1, claimed);
  eo.local_search.time_limit_s =
      std::min(eo.local_search.time_limit_s, deadline.SecondsRemaining());
  eo.brute_force.time_limit_s =
      std::min(eo.brute_force.time_limit_s, deadline.SecondsRemaining());

  // Storage budget: bulk block pins on this thread charge it; 0 means
  // count-only. Per-cell compatibility reads bypass it by design, so a
  // tight budget degrades to ResourceExhausted on bulk scans, never to
  // wrong answers.
  storage::StorageBudget storage_budget =
      storage::StorageBudget::Limited(budget.max_pinned_bytes);
  storage::StorageBudgetScope storage_scope(storage_budget);

  Stopwatch solve_timer;
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);
  const bool force_search = eo.strategy == core::Strategy::kBruteForce ||
                            eo.strategy == core::Strategy::kLocalSearch;
  if (force_search || !translatable) {
    RunEvaluatorPath(aq, eo, &resp);
  } else {
    auto candidates_or = db::FilterIndices(*aq.table, aq.query.where);
    if (!candidates_or.ok()) {
      resp.status = candidates_or.status();
    } else {
      resp.num_candidates = candidates_or->size();
      auto bounds_or = core::DeriveCardinalityBounds(aq, *candidates_or);
      if (!bounds_or.ok()) {
        resp.status = bounds_or.status();
      } else {
        resp.zone_map_skipped_blocks = bounds_or->zone_map_skipped_blocks;
        if (eo.use_pruning && bounds_or->infeasible) {
          resp.strategy = "Pruning";
          resp.status = Status::Infeasible(
              "cardinality pruning proves no package can satisfy the "
              "constraints");
        } else if (options_.incremental_maintenance &&
                   aq.extreme_constraints.empty() && !aq.table->spilled()) {
          // The maintained HTAP route. Extreme constraints are out of
          // SketchRefine's scope, and spilled tables are append-frozen —
          // both keep the exact path.
          RunSketchRefinePath(aq, eo, *bounds_or, normalized, &resp);
        } else {
          RunIlpPath(aq, eo, *bounds_or, &resp);
        }
      }
    }
  }
  resp.solve_seconds = solve_timer.ElapsedSeconds();
  resp.storage_peak_pinned_bytes = storage_budget.peak_pinned_bytes();
  ReleaseThreads(claimed);

  if (resp.status.ok() && options_.render_packages) {
    auto screen =
        ui::RenderPackageTemplate(aq, resp.package, {.show_paql = false});
    if (screen.ok()) resp.rendered = *std::move(screen);
  }

  if (stale_by_append && resp.status.ok()) resp.revalidated = true;

  // Cache answers that replay deterministically: optimal completions,
  // pruning-proven infeasibility, and maintained SketchRefine packages
  // (deterministic solver + maintained partition ⇒ a re-run reproduces
  // them bit-for-bit). Heuristic/limited/cancelled responses could
  // legally differ on a re-run, so they must not be replayed.
  const bool cacheable =
      (resp.status.ok() && resp.proven_optimal && !resp.cancelled) ||
      resp.strategy == "Pruning" ||
      (resp.status.ok() && !resp.cancelled &&
       resp.strategy == "SketchRefine");
  if (cacheable) StoreResultCache(key, resp);
  return resp;
}

void Engine::RunSketchRefinePath(const paql::AnalyzedQuery& aq,
                                 const core::EvaluationOptions& eo,
                                 const core::CardinalityBounds& bounds,
                                 const std::string& query_key,
                                 QueryResponse* resp) {
  std::shared_ptr<MaintenanceEntry> entry = GetMaintenanceEntry(query_key);

  core::SketchRefineOptions sro;
  sro.partition_size = options_.sketch_partition_size;
  sro.compute = eo.milp.compute;
  sro.milp = eo.milp;
  sro.reuse_group_solutions = options_.maintenance_reuse_solutions;

  Stopwatch maintenance_timer;
  const uint64_t generation = catalog_generation_;
  Result<core::SketchRefineResult> r_or =
      [&]() -> Result<core::SketchRefineResult> {
    // SketchRefineState, like MilpWarmStart, is not thread-safe; the
    // entry mutex serializes the solves that share this query's state.
    MutexLock lock(&entry->mu);
    if (entry->generation != generation) {
      // Any non-append mutation since the state was built: rebuild from
      // scratch (appends leave the generation alone on purpose).
      entry->state = core::SketchRefineState();
      entry->generation = generation;
    }
    sro.state = &entry->state;
    return core::SketchRefine(aq, sro);
  }();
  if (!r_or.ok()) {
    if (r_or.status().code() == StatusCode::kUnimplemented) {
      RunIlpPath(aq, eo, bounds, resp);
      return;
    }
    resp->strategy = "SketchRefine";
    resp->status = r_or.status();
    return;
  }
  const core::SketchRefineResult& r = *r_or;
  resp->strategy = "SketchRefine";
  resp->cancelled = r.cancelled;
  resp->lp_iterations = r.lp_iterations;
  resp->zone_map_skipped_blocks += r.zone_map_skipped_blocks;
  resp->dirty_groups = r.dirty_groups;
  resp->groups_reused = r.groups_reused;
  resp->warm_start_hit = r.state_reused;
  if (r.state_reused) {
    resp->maintenance_ms = maintenance_timer.ElapsedSeconds() * 1000.0;
  }
  if (!r.found) {
    if (r.cancelled) {
      resp->status = Status::ResourceExhausted(
          "query cancelled before a package was found");
      return;
    }
    // Approximation came back empty-handed (e.g. backtracking exhausted):
    // fall back to the exact route rather than reporting infeasible.
    RunIlpPath(aq, eo, bounds, resp);
    return;
  }
  resp->package = r.package;
  resp->objective = aq.has_objective ? r.objective : 0.0;
  resp->proven_optimal = false;
}

void Engine::RunIlpPath(const paql::AnalyzedQuery& aq,
                        const core::EvaluationOptions& eo,
                        const core::CardinalityBounds& bounds,
                        QueryResponse* resp) {
  core::TranslateOptions topts;
  if (eo.use_pruning) topts.bounds = &bounds;
  auto translation_or = core::TranslateToIlp(aq, topts);
  if (!translation_or.ok()) {
    if (translation_or.status().code() == StatusCode::kUnimplemented) {
      RunEvaluatorPath(aq, eo, resp);
      return;
    }
    resp->strategy = "IlpSolver";
    resp->status = translation_or.status();
    return;
  }
  const core::IlpTranslation& translation = *translation_or;
  resp->strategy = "IlpSolver";
  resp->num_candidates = translation.candidates.size();
  const uint64_t signature = translation.model.StructuralSignature();
  resp->model_signature = signature;

  std::shared_ptr<WarmEntry> entry = GetWarmEntry(signature);
  solver::MilpOptions milp = eo.milp;
  solver::MilpResult r;
  {
    // MilpWarmStart is not thread-safe; the entry mutex serializes the
    // solves that share this structural signature.
    MutexLock lock(&entry->mu);
    resp->warm_start_hit =
        entry->used && entry->warm.model_signature == signature;
    milp.warm = &entry->warm;
    auto result_or = solver::SolveMilp(translation.model, milp);
    if (!result_or.ok()) {
      resp->status = result_or.status();
      return;
    }
    r = *std::move(result_or);
    entry->used = true;
  }
  {
    MutexLock lock(&stats_mu_);
    ++(resp->warm_start_hit ? stats_.warm_cache_hits
                            : stats_.warm_cache_misses);
  }

  resp->cancelled = r.cancelled;
  resp->nodes = r.nodes;
  resp->lp_iterations = r.lp_iterations;
  switch (r.status) {
    case solver::MilpStatus::kOptimal:
    case solver::MilpStatus::kFeasible:
      resp->package = core::DecodeSolution(translation, r.x);
      resp->objective = aq.has_objective ? r.objective : 0.0;
      resp->proven_optimal = r.status == solver::MilpStatus::kOptimal;
      return;
    case solver::MilpStatus::kInfeasible:
      resp->status =
          Status::Infeasible("no package satisfies the constraints");
      return;
    case solver::MilpStatus::kUnbounded:
      resp->status = Status::Unbounded(
          "the objective is unbounded (add COUNT/SUM limits)");
      return;
    case solver::MilpStatus::kNoSolution:
      resp->status = Status::ResourceExhausted(
          r.cancelled ? "query cancelled before a package was found"
                      : "query budget exhausted before a package was found");
      return;
  }
  resp->status = Status::Internal("unknown solver status");
}

void Engine::RunEvaluatorPath(const paql::AnalyzedQuery& aq,
                              const core::EvaluationOptions& eo,
                              QueryResponse* resp) {
  core::QueryEvaluator evaluator(&catalog_);
  auto result_or = evaluator.Evaluate(aq, eo);
  if (!result_or.ok()) {
    resp->status = result_or.status();
    if (result_or.status().code() == StatusCode::kResourceExhausted &&
        eo.milp.cancel.cancel_requested()) {
      resp->cancelled = true;
    }
    return;
  }
  const core::EvaluationResult& r = *result_or;
  resp->strategy = core::StrategyToString(r.strategy_used);
  resp->package = r.package;
  resp->objective = r.objective;
  resp->proven_optimal = r.proven_optimal;
  resp->num_candidates = r.num_candidates;
  resp->zone_map_skipped_blocks = r.bounds.zone_map_skipped_blocks;
  if (r.milp) {
    resp->nodes = r.milp->nodes;
    resp->lp_iterations = r.milp->lp_iterations;
    resp->cancelled = r.milp->cancelled;
  }
}

// --------------------------------------------------------- facade wrappers

Result<core::QueryPlan> Engine::Explain(const std::string& paql) const {
  ReaderMutexLock lock(&catalog_mu_);
  return core::ExplainQuery(paql, catalog_, options_.defaults);
}

Result<std::vector<core::Package>> Engine::Enumerate(const std::string& paql,
                                                     size_t k,
                                                     bool diverse) const {
  ReaderMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, catalog_));
  if (diverse) return core::EnumerateDiverse(aq, k);
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);
  if (translatable && aq.max_multiplicity == 1) {
    core::EnumerateOptions opts;
    opts.max_packages = k;
    opts.milp = options_.defaults.milp;
    return core::EnumerateViaSolver(aq, opts);
  }
  return core::EnumerateExhaustively(aq, k, options_.defaults.brute_force);
}

Status Engine::WritePackageCsv(const std::string& table,
                               const core::Package& package,
                               const std::string& path) const {
  ReaderMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(const db::Table* base, catalog_.Get(table));
  db::Table materialized =
      core::MaterializePackage(*base, package, "package");
  return db::WriteCsvFile(materialized, path);
}

Result<std::string> Engine::BaseTable(const std::string& paql) const {
  ReaderMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, catalog_));
  return aq.table->name();
}

Result<double> Engine::EvaluateObjective(const std::string& paql,
                                         const core::Package& package) const {
  ReaderMutexLock lock(&catalog_mu_);
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, catalog_));
  return core::PackageObjective(aq, package);
}

EngineStats Engine::stats() const {
  EngineStats out;
  {
    MutexLock lock(&stats_mu_);
    out = stats_;
  }
  // Block-cache counters are process-wide (the cache is shared by every
  // engine in the process), snapshotted here so one stats() call tells the
  // whole storage story.
  const storage::BlockCacheStats bc = storage::BlockCache::Default()->stats();
  out.block_cache_hits = static_cast<int64_t>(bc.hits);
  out.block_cache_misses = static_cast<int64_t>(bc.misses);
  out.block_cache_evictions = static_cast<int64_t>(bc.evictions);
  out.block_cache_bytes = bc.bytes_cached;
  out.block_bytes_pinned = bc.bytes_pinned;
  out.block_peak_bytes_pinned = bc.peak_bytes_pinned;
  return out;
}

}  // namespace pb::engine
