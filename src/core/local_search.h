// Heuristic local search (paper §4.2).
//
// Starting from a (random or greedy) package P0, the engine scans k-tuple
// replacements that reduce constraint violation, then — once feasible —
// replacements that improve the objective. The paper implements the 1-tuple
// scan as a single SQL query over P0 x R; this module provides both that
// literal formulation (FindSingleTupleReplacementsViaJoin, used by the E2
// bench and by adaptive exploration) and an optimized in-memory scan with
// incremental aggregate maintenance.
//
// As the paper notes, k simultaneous replacements correspond to a 2k-way
// join and "quickly become intractable"; the neighborhood_k option and the
// CountKReplacements probe exist to reproduce that blow-up.

#ifndef PB_CORE_LOCAL_SEARCH_H_
#define PB_CORE_LOCAL_SEARCH_H_

#include <cstdint>

#include "common/status.h"
#include "core/package.h"
#include "core/pruning.h"
#include "db/table.h"

namespace pb::core {

struct LocalSearchOptions {
  uint64_t seed = 42;
  int max_restarts = 8;
  int64_t max_iterations = 5000;  ///< accepted moves per restart
  double time_limit_s = 10.0;
  /// Also try add-one-tuple / drop-one-tuple moves ("the query can be
  /// modified to explore packages of different cardinalities", §4.2).
  bool cardinality_moves = true;
  /// After reaching feasibility, hill-climb the objective.
  bool objective_phase = true;
  /// 1 = single-tuple swaps only; 2 adds sampled pair swaps.
  int neighborhood_k = 1;
  /// Pair-swap samples per iteration when neighborhood_k == 2.
  int pair_samples = 256;
};

struct LocalSearchResult {
  bool found = false;          ///< a valid package was reached
  Package package;
  double objective = 0.0;
  int restarts_used = 0;
  int64_t iterations = 0;      ///< total improvement steps across restarts
  int64_t moves_evaluated = 0; ///< candidate moves examined
  int64_t moves_accepted = 0;
  double seconds = 0.0;
};

/// Runs restart-based greedy local search. Exact for feasibility claims
/// (the returned package is re-validated) but — per the paper — incomplete:
/// !found does not prove infeasibility.
Result<LocalSearchResult> LocalSearch(const paql::AnalyzedQuery& aq,
                                      const LocalSearchOptions& options = {});

/// The paper's literal replacement finder: builds P0 and R as engine tables
/// and evaluates the single-tuple-swap validity predicate as one
/// selection over their cartesian product, returning (package_row,
/// replacement_row) pairs that lead to valid packages. Only supports
/// ILP-translatable queries (the predicate must be linear).
Result<db::Table> FindSingleTupleReplacementsViaJoin(
    const paql::AnalyzedQuery& aq, const Package& p0);

/// Cost probe for the 2k-way-join claim: counts valid k-replacements by
/// nested enumeration, stopping after `budget` combination evaluations.
/// Returns the number of combinations examined (== budget when truncated).
struct KReplacementProbe {
  uint64_t combinations_examined = 0;
  uint64_t valid_replacements = 0;
  bool truncated = false;
  double seconds = 0.0;
};
Result<KReplacementProbe> CountKReplacements(const paql::AnalyzedQuery& aq,
                                             const Package& p0, int k,
                                             uint64_t budget);

}  // namespace pb::core

#endif  // PB_CORE_LOCAL_SEARCH_H_
