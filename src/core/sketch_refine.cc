#include "core/sketch_refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/pruning.h"
#include "db/ops.h"

namespace pb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One linear requirement over candidate positions (query constraints plus
/// the synthetic non-empty row).
struct Row {
  std::vector<double> w;  // per candidate position
  double lo = -kInf;
  double hi = kInf;
  std::string name;
};

/// Zone granularity of the partitioner's spread index. Independent of the
/// table's storage block size: the index lives over candidate positions
/// (post-filter, post-normalization), not table rows.
constexpr size_t kSpreadBlock = 4096;

/// Per-block min/max over every feature column, built once per partition
/// call. Identity-ordered ranges answer their spread scans from this index
/// block-at-a-time instead of re-reading the values.
struct SpreadIndex {
  size_t n = 0;
  std::vector<std::vector<double>> mins;  // mins[d][b]
  std::vector<std::vector<double>> maxs;
  int64_t skipped_blocks = 0;

  static SpreadIndex Build(const std::vector<std::vector<double>>& cols,
                           size_t n) {
    SpreadIndex idx;
    idx.n = n;
    const size_t blocks = (n + kSpreadBlock - 1) / kSpreadBlock;
    idx.mins.resize(cols.size());
    idx.maxs.resize(cols.size());
    for (size_t d = 0; d < cols.size(); ++d) {
      idx.mins[d].resize(blocks);
      idx.maxs[d].resize(blocks);
      const double* f = cols[d].data();
      for (size_t b = 0; b < blocks; ++b) {
        const size_t lo = b * kSpreadBlock;
        const size_t hi = std::min(n, lo + kSpreadBlock);
        double mn = kInf, mx = -kInf;
        for (size_t i = lo; i < hi; ++i) {
          mn = std::min(mn, f[i]);
          mx = std::max(mx, f[i]);
        }
        idx.mins[d][b] = mn;
        idx.maxs[d][b] = mx;
      }
    }
    return idx;
  }

  /// Spread bounds of dimension d over the contiguous candidate range
  /// [begin, end): zone entries for fully covered blocks, value scans for
  /// the ragged edges.
  std::pair<double, double> MinMax(size_t d, const double* f, size_t begin,
                                   size_t end) {
    double mn = kInf, mx = -kInf;
    size_t i = begin;
    while (i < end) {
      const size_t b = i / kSpreadBlock;
      const size_t block_lo = b * kSpreadBlock;
      const size_t block_hi = std::min(n, block_lo + kSpreadBlock);
      if (i == block_lo && block_hi <= end) {
        mn = std::min(mn, mins[d][b]);
        mx = std::max(mx, maxs[d][b]);
        ++skipped_blocks;
        i = block_hi;
      } else {
        const size_t stop = std::min(end, block_hi);
        for (; i < stop; ++i) {
          mn = std::min(mn, f[i]);
          mx = std::max(mx, f[i]);
        }
      }
    }
    return {mn, mx};
  }
};

/// Recursive median split over one index range [begin, end) of `order`.
/// `feature_cols` is column-major: feature_cols[d][i] is dimension d of
/// candidate i, so each spread scan and the split comparator walk one
/// contiguous span. `aligned` records that order[i] == i throughout the
/// range (true at the top level and preserved by positional splits, lost
/// after an nth_element); aligned ranges take their spread bounds from the
/// zone index.
void SplitRange(const std::vector<std::vector<double>>& feature_cols,
                std::vector<size_t>& order, size_t begin, size_t end,
                size_t partition_size, bool aligned, SpreadIndex* index,
                std::vector<std::vector<size_t>>* groups) {
  size_t count = end - begin;
  if (count <= partition_size) {
    groups->emplace_back(order.begin() + begin, order.begin() + end);
    return;
  }
  // Pick the dimension with the largest spread inside this range.
  size_t dims = feature_cols.size();
  size_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dims; ++d) {
    const double* f = feature_cols[d].data();
    double mn = kInf, mx = -kInf;
    if (aligned) {
      std::tie(mn, mx) = index->MinMax(d, f, begin, end);
    } else {
      for (size_t i = begin; i < end; ++i) {
        double v = f[order[i]];
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = d;
    }
  }
  size_t mid = begin + count / 2;
  if (best_spread <= 0.0 || dims == 0) {
    // All-identical features: split positionally (alignment survives).
    SplitRange(feature_cols, order, begin, mid, partition_size, aligned,
               index, groups);
    SplitRange(feature_cols, order, mid, end, partition_size, aligned, index,
               groups);
    return;
  }
  const double* f = feature_cols[best_dim].data();
  std::nth_element(order.begin() + begin, order.begin() + mid,
                   order.begin() + end,
                   [f](size_t a, size_t b) { return f[a] < f[b]; });
  SplitRange(feature_cols, order, begin, mid, partition_size, /*aligned=*/false,
             index, groups);
  SplitRange(feature_cols, order, mid, end, partition_size, /*aligned=*/false,
             index, groups);
}

/// The member closest to the group's feature centroid (L2, ties to the
/// earliest member). The same rule serves the full build and the
/// per-dirty-group recompute of the maintained path, so both produce
/// identical representatives for identical memberships.
size_t ComputeRep(const std::vector<size_t>& members,
                  const std::vector<std::vector<double>>& feature_cols) {
  const size_t dims = feature_cols.size();
  std::vector<double> centroid(dims, 0.0);
  for (size_t d = 0; d < dims; ++d) {
    const double* f = feature_cols[d].data();
    for (size_t i : members) centroid[d] += f[i];
  }
  for (double& c : centroid) c /= static_cast<double>(members.size());
  size_t rep = members[0];
  double best = kInf;
  for (size_t m = 0; m < members.size(); ++m) {
    double dist = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      double delta = feature_cols[d][members[m]] - centroid[d];
      dist += delta * delta;
    }
    if (dist < best) {
      best = dist;
      rep = members[m];
    }
  }
  return rep;
}

/// Incremental partition maintenance over a compatible state: route the
/// appended candidates [state->n_candidates, n) to their nearest
/// representative, split groups past the size threshold, merge undersized
/// ones, and recompute representatives for every dirty group. Everything
/// here is single-threaded and deterministic (ties break to the lowest
/// group index), so the maintained partition — and therefore the solve —
/// is identical for any thread count.
void MaintainPartition(SketchRefineState* state,
                       const std::vector<std::vector<double>>& feature_cols,
                       size_t n, const SketchRefineOptions& options,
                       SketchRefineResult* out) {
  const size_t dims = feature_cols.size();
  auto mark_dirty = [](SketchRefineState::Group& g) {
    g.dirty = true;
    g.has_solution = false;
    g.cached_others.clear();
    g.cached_solution = solver::MilpResult();
  };

  // ---- Route appended candidates to the nearest representative.
  const double radius2 =
      options.route_max_distance > 0.0
          ? options.route_max_distance * options.route_max_distance
          : kInf;
  for (size_t p = state->n_candidates; p < n; ++p) {
    size_t best_g = 0;
    double best_d2 = kInf;
    for (size_t g = 0; g < state->groups.size(); ++g) {
      double d2 = 0.0;
      const size_t rep = state->groups[g].rep;
      for (size_t d = 0; d < dims; ++d) {
        double delta = feature_cols[d][p] - feature_cols[d][rep];
        d2 += delta * delta;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best_g = g;
      }
    }
    if (best_d2 > radius2) {
      // Too far from every group: a singleton keeps the outlier from
      // stretching a representative into meaninglessness.
      SketchRefineState::Group fresh;
      fresh.members.push_back(p);
      fresh.rep = p;
      mark_dirty(fresh);
      state->groups.push_back(std::move(fresh));
    } else {
      state->groups[best_g].members.push_back(p);
      mark_dirty(state->groups[best_g]);
    }
    ++out->appended_routed;
  }

  // ---- Split groups that drifted past the size threshold back into
  // tau-bounded parts (same recursive median split as the full build,
  // scoped to the group's members). The first part replaces the group in
  // place; the rest append, so untouched group indices never shift.
  const size_t split_threshold = options.split_threshold > 0
                                     ? options.split_threshold
                                     : 2 * options.partition_size;
  const size_t original_groups = state->groups.size();
  for (size_t gi = 0; gi < original_groups; ++gi) {
    if (state->groups[gi].members.size() <= split_threshold) continue;
    const std::vector<size_t> members = std::move(state->groups[gi].members);
    std::vector<std::vector<double>> local(
        dims, std::vector<double>(members.size()));
    for (size_t d = 0; d < dims; ++d) {
      for (size_t m = 0; m < members.size(); ++m) {
        local[d][m] = feature_cols[d][members[m]];
      }
    }
    std::vector<std::vector<size_t>> parts = PartitionCandidatesColumnar(
        local, members.size(), options.partition_size);
    for (size_t pi = 0; pi < parts.size(); ++pi) {
      std::vector<size_t> part;
      part.reserve(parts[pi].size());
      for (size_t local_idx : parts[pi]) part.push_back(members[local_idx]);
      if (pi == 0) {
        state->groups[gi].members = std::move(part);
        mark_dirty(state->groups[gi]);
      } else {
        SketchRefineState::Group fresh;
        fresh.members = std::move(part);
        mark_dirty(fresh);
        state->groups.push_back(std::move(fresh));
      }
    }
    ++out->groups_split;
  }

  // ---- Merge undersized groups into their nearest neighbour (by
  // representative distance; representatives may be stale for dirty
  // groups, which only moves WHERE a sliver lands, never correctness —
  // the target is re-solved either way).
  if (options.merge_min_size > 0) {
    for (size_t gi = 0; gi < state->groups.size();) {
      if (state->groups.size() == 1 ||
          state->groups[gi].members.size() >= options.merge_min_size) {
        ++gi;
        continue;
      }
      size_t best_g = gi == 0 ? 1 : 0;
      double best_d2 = kInf;
      for (size_t g = 0; g < state->groups.size(); ++g) {
        if (g == gi) continue;
        double d2 = 0.0;
        for (size_t d = 0; d < dims; ++d) {
          double delta = feature_cols[d][state->groups[gi].rep] -
                         feature_cols[d][state->groups[g].rep];
          d2 += delta * delta;
        }
        if (d2 < best_d2) {
          best_d2 = d2;
          best_g = g;
        }
      }
      SketchRefineState::Group& target = state->groups[best_g];
      target.members.insert(target.members.end(),
                            state->groups[gi].members.begin(),
                            state->groups[gi].members.end());
      mark_dirty(target);
      state->groups.erase(state->groups.begin() + gi);
      ++out->groups_merged;
      // Do not advance: the next group slid into slot gi.
    }
  }

  // ---- Dirty groups get fresh representatives; clean ones keep theirs
  // (same membership => ComputeRep would return the same answer anyway).
  for (SketchRefineState::Group& g : state->groups) {
    if (g.dirty) g.rep = ComputeRep(g.members, feature_cols);
  }
  state->n_candidates = n;
}

}  // namespace

std::vector<std::vector<size_t>> PartitionCandidatesColumnar(
    const std::vector<std::vector<double>>& feature_cols, size_t n,
    size_t partition_size, int64_t* zone_map_skipped_blocks) {
  std::vector<std::vector<size_t>> groups;
  if (n == 0) return groups;
  partition_size = std::max<size_t>(partition_size, 1);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  SpreadIndex index = SpreadIndex::Build(feature_cols, n);
  SplitRange(feature_cols, order, 0, order.size(), partition_size,
             /*aligned=*/true, &index, &groups);
  if (zone_map_skipped_blocks != nullptr) {
    *zone_map_skipped_blocks += index.skipped_blocks;
  }
  return groups;
}

std::vector<std::vector<size_t>> PartitionCandidates(
    const std::vector<std::vector<double>>& features, size_t partition_size) {
  if (features.empty()) return {};
  // Transpose the row-major input; the engine itself builds column-major
  // features directly and calls PartitionCandidatesColumnar.
  size_t dims = features[0].size();
  std::vector<std::vector<double>> cols(
      dims, std::vector<double>(features.size()));
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t d = 0; d < dims; ++d) cols[d][i] = features[i][d];
  }
  return PartitionCandidatesColumnar(cols, features.size(), partition_size);
}

Result<SketchRefineResult> SketchRefine(const paql::AnalyzedQuery& aq,
                                        const SketchRefineOptions& options) {
  if (!aq.ilp_translatable || (aq.has_objective && !aq.objective_linear)) {
    return Status::Unimplemented(
        "SketchRefine requires an ILP-translatable query");
  }
  if (!aq.extreme_constraints.empty()) {
    return Status::Unimplemented(
        "SketchRefine does not support MIN/MAX global constraints "
        "(representatives do not preserve extremes)");
  }

  SketchRefineResult out;
  Stopwatch phase_timer;
  // The authoritative thread budget for every solve this call runs; a
  // caller-set options.milp.num_threads is always overridden from it
  // (like options.milp.warm) so no path can oversubscribe the host.
  // Deprecated aliases resolve against the unified ComputeBudget (larger
  // wins; see common/budget.h).
  const int thread_budget =
      ResolveThreads(options.compute.threads, options.num_threads);

  // Interruption plumbing: milp.cancel is polled between phases and
  // sub-solves (each solve also polls it per node), and milp.time_limit_s
  // bounds the WHOLE call — every sub-solve's own limit is clamped to the
  // time remaining so the pipeline never overshoots by its solve count.
  const CancelToken cancel = options.milp.cancel;
  const Deadline deadline = Deadline::AfterSeconds(options.milp.time_limit_s);
  auto interrupted = [&] {
    return cancel.cancel_requested() || deadline.expired();
  };
  auto budgeted_milp = [&] {
    solver::MilpOptions m = options.milp;
    m.time_limit_s = std::min(m.time_limit_s, deadline.SecondsRemaining());
    // Thread counts are always assigned by this call's budget split (via
    // the num_threads alias at each solve site); reset the caller's
    // ComputeBudget so the max-resolution rule cannot smuggle a larger
    // count past the authoritative thread_budget.
    m.compute.threads = 1;
    return m;
  };

  // ---- Candidates, weights, rows.
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  const size_t n = candidates.size();
  if (n == 0) {
    // Only the empty package is possible.
    Package empty;
    PB_ASSIGN_OR_RETURN(bool valid, SatisfiesGlobalConstraints(aq, empty));
    out.found = valid;
    return out;
  }

  std::vector<std::vector<double>> agg_w(aq.aggs.size());
  for (size_t a = 0; a < aq.aggs.size(); ++a) {
    PB_ASSIGN_OR_RETURN(agg_w[a],
                        ComputeAggWeights(aq.aggs[a], *aq.table, candidates));
  }
  std::vector<Row> rows;
  for (const paql::LinearConstraint& lc : aq.linear_constraints) {
    Row row;
    row.w.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (const paql::LinearAggTerm& t : lc.terms) {
        row.w[i] += t.coeff * agg_w[t.agg_index][i];
      }
    }
    row.lo = lc.lo;
    row.hi = lc.hi;
    row.name = lc.source_text;
    rows.push_back(std::move(row));
  }
  if (aq.requires_nonempty) {
    Row row;
    row.w.assign(n, 1.0);
    row.lo = 1.0;
    row.name = "nonempty";
    rows.push_back(std::move(row));
  }
  std::vector<double> obj_w(n, 0.0);
  if (aq.has_objective) {
    for (const paql::LinearAggTerm& t : aq.objective_terms) {
      for (size_t i = 0; i < n; ++i) {
        obj_w[i] += t.coeff * agg_w[t.agg_index][i];
      }
    }
  }
  const auto sense = aq.has_objective && !aq.maximize
                         ? solver::ObjectiveSense::kMinimize
                         : solver::ObjectiveSense::kMaximize;

  // ---- Offline partitioning on normalized (constraint-weight, objective)
  // feature space: tuples similar on every dimension the query touches end
  // up in one group, which is what lets a representative stand in for them.
  // Features are column-major — one contiguous span per dimension — so the
  // normalization, split scans, and centroid sums are tight vector passes.
  const size_t dims = rows.size() + (aq.has_objective ? 1 : 0);
  std::vector<std::vector<double>> feature_cols(dims);
  for (size_t r = 0; r < rows.size(); ++r) feature_cols[r] = rows[r].w;
  if (aq.has_objective) feature_cols[rows.size()] = obj_w;

  // A caller-held state turns the partition into maintained structure: a
  // compatible state (same dimensionality, candidates only appended) is
  // updated in place; anything else falls back to a full build that
  // (re)populates it. The cheap checks here catch dimension drift; the
  // same-query/append-only discipline is the caller's contract (see
  // SketchRefineState).
  SketchRefineState* state = options.state;
  const bool incremental = state != nullptr && !state->groups.empty() &&
                           state->dims == dims &&
                           state->n_candidates <= n &&
                           state->feat_lo.size() == dims;
  if (incremental) {
    // Frozen normalization: routing and centroid geometry must live in
    // the space the partition was built in, so the affine map comes from
    // the state instead of a per-call min/max.
    for (size_t d = 0; d < dims; ++d) {
      const double lo = state->feat_lo[d];
      const double span = state->feat_span[d];
      std::vector<double>& col = feature_cols[d];
      if (span > 0) {
        for (double& v : col) v = (v - lo) / span;
      } else {
        std::fill(col.begin(), col.end(), 0.0);
      }
    }
  } else {
    if (state != nullptr) {
      // Incompatible (or first-use) state: rebuild it from scratch.
      *state = SketchRefineState();
      state->dims = dims;
      state->feat_lo.resize(dims);
      state->feat_span.resize(dims);
    }
    for (size_t d = 0; d < dims; ++d) {
      std::vector<double>& col = feature_cols[d];
      auto [mn, mx] = std::minmax_element(col.begin(), col.end());
      double lo = *mn, span = *mx - *mn;
      if (state != nullptr) {
        state->feat_lo[d] = lo;
        state->feat_span[d] = span;
      }
      if (span > 0) {
        for (double& v : col) v = (v - lo) / span;
      } else {
        std::fill(col.begin(), col.end(), 0.0);
      }
    }
  }

  std::vector<std::vector<size_t>> groups;
  std::vector<size_t> rep;
  if (incremental) {
    out.state_reused = true;
    MaintainPartition(state, feature_cols, n, options, &out);
    groups.reserve(state->groups.size());
    rep.reserve(state->groups.size());
    for (const SketchRefineState::Group& g : state->groups) {
      groups.push_back(g.members);
      rep.push_back(g.rep);
    }
  } else {
    groups = PartitionCandidatesColumnar(
        feature_cols, n, options.partition_size, &out.zone_map_skipped_blocks);
    rep.resize(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      rep[g] = ComputeRep(groups[g], feature_cols);
    }
    if (state != nullptr) {
      state->groups.resize(groups.size());
      for (size_t g = 0; g < groups.size(); ++g) {
        state->groups[g].members = groups[g];
        state->groups[g].rep = rep[g];
        state->groups[g].dirty = true;
      }
      state->n_candidates = n;
    }
  }
  out.num_partitions = groups.size();
  out.partition_seconds = phase_timer.ElapsedSeconds();

  // ---- Sketch (+ refine, with backtracking over excluded groups).
  std::vector<bool> excluded(groups.size(), false);
  // Sketch-phase warm state: the caller's persistent copy when a state is
  // in play (so it survives across calls), otherwise call-local — never
  // options.milp.warm, which would be consumed (and so clobbered) by
  // SketchRefine's internal solves. A backtrack rebuilds the sketch with
  // fewer variables, which the signature check detects and resets
  // automatically.
  solver::MilpWarmStart local_sketch_warm;
  solver::MilpWarmStart& sketch_warm =
      state != nullptr ? state->sketch_warm : local_sketch_warm;
  for (int attempt = 0; attempt <= options.max_backtracks; ++attempt) {
    if (interrupted()) {
      out.cancelled = true;
      return out;
    }
    // Sketch model: one integer variable per (non-excluded) group.
    phase_timer.Restart();
    solver::LpModel sketch;
    sketch.SetSense(sense);
    std::vector<int> var_of_group(groups.size(), -1);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (excluded[g]) continue;
      double cap = static_cast<double>(groups[g].size()) *
                   static_cast<double>(aq.max_multiplicity);
      var_of_group[g] =
          sketch.AddVariable("g" + std::to_string(g), 0.0, cap,
                             obj_w[rep[g]], /*is_integer=*/true);
    }
    for (const Row& row : rows) {
      std::vector<solver::LinearTerm> terms;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (var_of_group[g] >= 0 && row.w[rep[g]] != 0.0) {
          terms.push_back({var_of_group[g], row.w[rep[g]]});
        }
      }
      sketch.AddConstraint(row.name, std::move(terms), row.lo, row.hi);
    }
    if (sketch.num_variables() == 0) break;
    out.sketch_variables = sketch.num_variables();
    solver::MilpOptions sketch_milp = budgeted_milp();
    sketch_milp.warm = &sketch_warm;
    // The sketch ILP is one monolithic solve, so the whole thread budget
    // goes to its tree search (bit-identical for any count).
    sketch_milp.num_threads = thread_budget;
    PB_ASSIGN_OR_RETURN(solver::MilpResult sk,
                        solver::SolveMilp(sketch, sketch_milp));
    out.lp_iterations += sk.lp_iterations;
    out.lp_dual_iterations += sk.lp_dual_iterations;
    out.lp_refactorizations += sk.lp_refactorizations;
    out.sketch_seconds += phase_timer.ElapsedSeconds();
    if (interrupted()) {
      // A cancelled/out-of-time sketch solve surfaces kNoSolution; report
      // the interruption rather than a (misleading) plain failure.
      out.cancelled = true;
      return out;
    }
    if (!sk.has_solution()) break;  // sketch infeasible: give up

    std::vector<int64_t> group_mult(groups.size(), 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (var_of_group[g] >= 0) {
        group_mult[g] =
            static_cast<int64_t>(std::llround(sk.x[var_of_group[g]]));
      }
    }

    // Refine groups in decreasing sketch-multiplicity order (stable sort:
    // the order, and therefore the result, is fully deterministic).
    phase_timer.Restart();
    std::vector<size_t> refine_order;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (group_mult[g] > 0) refine_order.push_back(g);
    }
    std::stable_sort(
        refine_order.begin(), refine_order.end(),
        [&](size_t a, size_t b) { return group_mult[a] > group_mult[b]; });

    // Residual sub-ILP for group g: what its members must deliver given the
    // per-row contribution `others` of everyone else. Variable k is the
    // k-th member of the group (indices are dense).
    auto build_sub = [&](size_t g, const std::vector<double>& others) {
      solver::LpModel sub;
      sub.SetSense(sense);
      for (size_t k = 0; k < groups[g].size(); ++k) {
        sub.AddVariable("m" + std::to_string(k), 0.0,
                        static_cast<double>(aq.max_multiplicity),
                        obj_w[groups[g][k]], /*is_integer=*/true);
      }
      for (size_t r = 0; r < rows.size(); ++r) {
        const Row& row = rows[r];
        std::vector<solver::LinearTerm> terms;
        for (size_t k = 0; k < groups[g].size(); ++k) {
          if (row.w[groups[g][k]] != 0.0) {
            terms.push_back({static_cast<int>(k), row.w[groups[g][k]]});
          }
        }
        sub.AddConstraint(row.name, std::move(terms),
                          row.lo == -kInf ? -kInf : row.lo - others[r],
                          row.hi == kInf ? kInf : row.hi - others[r]);
      }
      return sub;
    };
    auto package_from = [&](const std::vector<int64_t>& m) {
      Package p;
      for (size_t i = 0; i < n; ++i) {
        if (m[i] > 0) p.Add(candidates[i], m[i]);
      }
      return p;
    };

    // Independent pass: each group's residual is taken against the sketch
    // state (every other group at its representative multiplicity), so the
    // sub-ILPs share nothing and fan out across the pool. Models are built
    // single-threaded in refine order; workers only solve.
    struct RefineTask {
      std::vector<double> others;  // per-row contribution of everyone else
      solver::LpModel model;
      solver::MilpResult solution;
      /// Solver warm-start state (root basis + pseudocosts) for this
      /// group's solves, re-seeded into the repair pass's re-solve of the
      /// same group — the models are structurally identical, only the
      /// residual ranges move. Points at the group's persistent slot when
      /// a SketchRefineState is in play (so it survives across calls),
      /// else at local_warm. Distinct groups own distinct slots, so the
      /// parallel fan-out never shares warm state.
      solver::MilpWarmStart* warm = nullptr;
      solver::MilpWarmStart local_warm;
      /// Answered from the state's cached sub-solution; no solver work.
      bool reused = false;
      Status status = Status::OK();
    };
    // Per-row activity of the whole sketch state; each task's residual is
    // that minus the group's own representative contribution, O(rows) per
    // group instead of a full O(rows * n) recompute.
    std::vector<double> base(rows.size(), 0.0);
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t g : refine_order) {
        base[r] += rows[r].w[rep[g]] * group_mult[g];
      }
    }
    std::vector<RefineTask> tasks(refine_order.size());
    for (size_t t = 0; t < refine_order.size(); ++t) {
      size_t g = refine_order[t];
      tasks[t].others.resize(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        tasks[t].others[r] =
            base[r] - rows[r].w[rep[g]] * static_cast<double>(group_mult[g]);
      }
      SketchRefineState::Group* sg =
          state != nullptr ? &state->groups[g] : nullptr;
      tasks[t].warm = sg != nullptr ? &sg->warm : &tasks[t].local_warm;
      if (sg != nullptr && options.reuse_group_solutions && !sg->dirty &&
          sg->has_solution && tasks[t].others == sg->cached_others) {
        // Clean group, identical residual: the cached sub-solution IS what
        // a re-solve would return (same model bit-for-bit, deterministic
        // solver), so skip the solver entirely.
        tasks[t].solution = sg->cached_solution;
        tasks[t].reused = true;
        ++out.groups_reused;
        continue;
      }
      tasks[t].model = build_sub(g, tasks[t].others);
      ++out.dirty_groups;
      ++out.refine_ilps_solved;
    }
    // Thread-budget split: group-level fan-out times node-level tree
    // parallelism stays within options.num_threads — node_threads is
    // clamped into [1, budget] so the budget is authoritative. Any split
    // yields the identical result — each MILP solve is thread-count
    // invariant — so the knob only moves where the hardware effort goes.
    const int node_threads = std::min(
        ResolveThreads(options.compute.node_threads, options.node_threads),
        thread_budget);
    auto solve_task = [&](RefineTask& task) {
      // Reused tasks carry their answer already; nothing to solve.
      if (task.reused) return;
      // A task that starts after interruption leaves its solution at the
      // kNoSolution default — the merge below then routes through repair,
      // whose own interruption check returns before any re-solve.
      if (interrupted()) return;
      // Each task owns its warm-start slot (task-local or its group's
      // persistent one — distinct either way): safe under the thread pool
      // (no sharing) and deterministic (the slot depends only on the
      // task's own solves). A caller-provided options.milp.warm would be
      // shared across concurrent tasks, so it is always overridden here.
      solver::MilpOptions task_milp = budgeted_milp();
      task_milp.warm = task.warm;
      // Like `warm`, always overridden: a caller-set milp.num_threads
      // would multiply with the group fan-out and overrun the budget.
      task_milp.num_threads = node_threads;
      Result<solver::MilpResult> sr = solver::SolveMilp(task.model, task_milp);
      if (sr.ok()) {
        task.solution = std::move(sr).value();
      } else {
        task.status = sr.status();
      }
    };
    size_t workers = std::min<size_t>(
        static_cast<size_t>(std::max(thread_budget / node_threads, 1)),
        tasks.size());
    if (workers <= 1) {
      for (RefineTask& task : tasks) solve_task(task);
    } else {
      // The waiting thread steals queued tasks (TaskGroup::Wait), making
      // it the last of the `workers` budgeted solvers — so the pool gets
      // workers - 1 threads, not workers.
      ThreadPool pool(workers - 1);
      TaskGroup group(&pool);
      for (RefineTask& task : tasks) {
        group.Spawn([&solve_task, &task] { solve_task(task); });
      }
      group.Wait();
    }
    for (const RefineTask& task : tasks) {
      PB_RETURN_IF_ERROR(task.status);
      // Reused tasks did no solver work this call: their cached result's
      // counters were charged when it was originally solved.
      if (task.reused) continue;
      out.lp_iterations += task.solution.lp_iterations;
      out.lp_dual_iterations += task.solution.lp_dual_iterations;
      out.lp_refactorizations += task.solution.lp_refactorizations;
    }
    if (interrupted()) {
      out.refine_seconds += phase_timer.ElapsedSeconds();
      out.cancelled = true;
      return out;
    }

    // Deterministic merge in refine order. The merged package stands only
    // if every group solved and the result validates.
    bool all_solved = true;
    for (const RefineTask& task : tasks) {
      if (!task.solution.has_solution()) {
        all_solved = false;
        break;
      }
    }
    Package pkg;
    bool valid = false;
    std::vector<int64_t> mult(n, 0);
    if (all_solved) {
      for (size_t t = 0; t < tasks.size(); ++t) {
        size_t g = refine_order[t];
        for (size_t k = 0; k < groups[g].size(); ++k) {
          mult[groups[g][k]] +=
              static_cast<int64_t>(std::llround(tasks[t].solution.x[k]));
        }
      }
      pkg = package_from(mult);
      PB_ASSIGN_OR_RETURN(valid, IsValidPackage(aq, pkg));
    }

    bool failed_group = false;
    size_t failed_g = 0;
    if (!valid) {
      // Repair: the independent solves let per-group drift accumulate
      // (chosen members aggregate differently than their representative),
      // and a group infeasible against the sketch residuals may still be
      // feasible against the actual ones. Rebuild greedily, propagating
      // actual residuals group by group as the 2016 paper's refine does; a
      // parallel result (solution or proven infeasibility) is reused when
      // its residuals match the actual state exactly — always true for the
      // first group, and for every group while no drift has occurred. The
      // pass depends only on the tasks' deterministic results, so any
      // num_threads still yields an identical outcome. The actual residual
      // is tracked as (base - own rep contribution) + drift so that a
      // zero-drift prefix reproduces the task residuals bit-for-bit.
      ++out.repair_passes;
      mult.assign(n, 0);
      for (size_t g : refine_order) mult[rep[g]] += group_mult[g];
      std::vector<double> drift(rows.size(), 0.0);
      for (size_t t = 0; t < refine_order.size(); ++t) {
        if (interrupted()) {
          out.refine_seconds += phase_timer.ElapsedSeconds();
          out.cancelled = true;
          return out;
        }
        size_t g = refine_order[t];
        std::vector<double> others(rows.size());
        for (size_t r = 0; r < rows.size(); ++r) {
          others[r] = tasks[t].others[r] + drift[r];
        }
        const solver::MilpResult* sol = &tasks[t].solution;
        solver::MilpResult fresh;
        if (others != tasks[t].others) {
          ++out.refine_ilps_solved;
          // Same group, same model structure, shifted residual ranges: the
          // task's cached root basis and pseudocost history carry over
          // (sequential pass, so borrowing the task's warm state is safe).
          solver::MilpOptions repair_milp = budgeted_milp();
          repair_milp.warm = tasks[t].warm;
          // The repair pass is sequential: each re-solve gets the whole
          // thread budget as tree parallelism.
          repair_milp.num_threads = thread_budget;
          PB_ASSIGN_OR_RETURN(
              fresh, solver::SolveMilp(build_sub(g, others), repair_milp));
          out.lp_iterations += fresh.lp_iterations;
          out.lp_dual_iterations += fresh.lp_dual_iterations;
          out.lp_refactorizations += fresh.lp_refactorizations;
          sol = &fresh;
        }
        if (!sol->has_solution()) {
          failed_group = true;
          failed_g = g;
          break;
        }
        mult[rep[g]] -= group_mult[g];
        for (size_t r = 0; r < rows.size(); ++r) {
          drift[r] -= rows[r].w[rep[g]] * static_cast<double>(group_mult[g]);
        }
        for (size_t k = 0; k < groups[g].size(); ++k) {
          int64_t m = static_cast<int64_t>(std::llround(sol->x[k]));
          if (m == 0) continue;
          mult[groups[g][k]] += m;
          for (size_t r = 0; r < rows.size(); ++r) {
            drift[r] += rows[r].w[groups[g][k]] * static_cast<double>(m);
          }
        }
      }
      if (!failed_group) {
        pkg = package_from(mult);
        PB_ASSIGN_OR_RETURN(valid, IsValidPackage(aq, pkg));
      }
    }
    out.refine_seconds += phase_timer.ElapsedSeconds();

    if (failed_group) {
      excluded[failed_g] = true;
      ++out.backtracks;
      continue;
    }
    if (!valid) {
      // The repair pass's last group enforces exact residuals, so a fully
      // repaired package that still fails validation either missed a row
      // by solver-scale round-off (IsValidPackage compares exactly while
      // the solver accepts feas_tol slack) or broke a real invariant.
      // Distinguish the two: a round-off near-miss is an honest failed
      // attempt — and retrying is deterministic (same sketch, same
      // excluded set), so stop rather than burn backtracks on identical
      // failures — while a gross violation is surfaced as an error
      // instead of the old silent backtrack, which could only hand back
      // found=false over an invalid solve.
      constexpr double kRowSlack = 1e-5;
      bool near_valid = true;
      for (size_t r = 0; r < rows.size() && near_valid; ++r) {
        double act = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (mult[i] != 0) {
            act += rows[r].w[i] * static_cast<double>(mult[i]);
          }
        }
        double slack = kRowSlack * std::max(1.0, std::abs(act));
        near_valid =
            act >= rows[r].lo - slack && act <= rows[r].hi + slack;
      }
      if (near_valid) break;  // tolerance drift: report found == false
      return Status::Internal(
          "SketchRefine repair produced an invalid package despite exact "
          "residual propagation (solver invariant violated)");
    }
    out.found = true;
    PB_ASSIGN_OR_RETURN(out.objective, PackageObjective(aq, pkg));
    out.package = std::move(pkg);
    if (state != nullptr) {
      // Persist this call's refine results: each refined group caches the
      // residual it was solved against plus its sub-solution (the
      // task-level pair — repair re-solves depend on drift ordering and
      // are not replayable, so they are never cached). Every group is now
      // clean: memberships and representatives match what was just solved.
      for (size_t t = 0; t < refine_order.size(); ++t) {
        SketchRefineState::Group& sg = state->groups[refine_order[t]];
        sg.has_solution = true;
        sg.cached_others = std::move(tasks[t].others);
        sg.cached_solution = std::move(tasks[t].solution);
      }
      for (SketchRefineState::Group& sg : state->groups) sg.dirty = false;
    }
    return out;
  }

  return out;  // found == false: sketch/refine failed within the budget
}

}  // namespace pb::core
