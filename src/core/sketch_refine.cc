#include "core/sketch_refine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <tuple>
#include <utility>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/pruning.h"
#include "db/ops.h"

namespace pb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One linear requirement over candidate positions (query constraints plus
/// the synthetic non-empty row).
struct Row {
  std::vector<double> w;  // per candidate position
  double lo = -kInf;
  double hi = kInf;
  std::string name;
};

/// Zone granularity of the partitioner's spread index. Independent of the
/// table's storage block size: the index lives over candidate positions
/// (post-filter, post-normalization), not table rows.
constexpr size_t kSpreadBlock = 4096;

/// Per-block min/max over every feature column, built once per partition
/// call. Identity-ordered ranges answer their spread scans from this index
/// block-at-a-time instead of re-reading the values.
struct SpreadIndex {
  size_t n = 0;
  std::vector<std::vector<double>> mins;  // mins[d][b]
  std::vector<std::vector<double>> maxs;
  int64_t skipped_blocks = 0;

  static SpreadIndex Build(const std::vector<std::vector<double>>& cols,
                           size_t n) {
    SpreadIndex idx;
    idx.n = n;
    const size_t blocks = (n + kSpreadBlock - 1) / kSpreadBlock;
    idx.mins.resize(cols.size());
    idx.maxs.resize(cols.size());
    for (size_t d = 0; d < cols.size(); ++d) {
      idx.mins[d].resize(blocks);
      idx.maxs[d].resize(blocks);
      const double* f = cols[d].data();
      for (size_t b = 0; b < blocks; ++b) {
        const size_t lo = b * kSpreadBlock;
        const size_t hi = std::min(n, lo + kSpreadBlock);
        double mn = kInf, mx = -kInf;
        for (size_t i = lo; i < hi; ++i) {
          mn = std::min(mn, f[i]);
          mx = std::max(mx, f[i]);
        }
        idx.mins[d][b] = mn;
        idx.maxs[d][b] = mx;
      }
    }
    return idx;
  }

  /// Spread bounds of dimension d over the contiguous candidate range
  /// [begin, end): zone entries for fully covered blocks, value scans for
  /// the ragged edges.
  std::pair<double, double> MinMax(size_t d, const double* f, size_t begin,
                                   size_t end) {
    double mn = kInf, mx = -kInf;
    size_t i = begin;
    while (i < end) {
      const size_t b = i / kSpreadBlock;
      const size_t block_lo = b * kSpreadBlock;
      const size_t block_hi = std::min(n, block_lo + kSpreadBlock);
      if (i == block_lo && block_hi <= end) {
        mn = std::min(mn, mins[d][b]);
        mx = std::max(mx, maxs[d][b]);
        ++skipped_blocks;
        i = block_hi;
      } else {
        const size_t stop = std::min(end, block_hi);
        for (; i < stop; ++i) {
          mn = std::min(mn, f[i]);
          mx = std::max(mx, f[i]);
        }
      }
    }
    return {mn, mx};
  }
};

/// Recursive median split over one index range [begin, end) of `order`.
/// `feature_cols` is column-major: feature_cols[d][i] is dimension d of
/// candidate i, so each spread scan and the split comparator walk one
/// contiguous span. `aligned` records that order[i] == i throughout the
/// range (true at the top level and preserved by positional splits, lost
/// after an nth_element); aligned ranges take their spread bounds from the
/// zone index.
void SplitRange(const std::vector<std::vector<double>>& feature_cols,
                std::vector<size_t>& order, size_t begin, size_t end,
                size_t partition_size, bool aligned, SpreadIndex* index,
                std::vector<std::vector<size_t>>* groups) {
  size_t count = end - begin;
  if (count <= partition_size) {
    groups->emplace_back(order.begin() + begin, order.begin() + end);
    return;
  }
  // Pick the dimension with the largest spread inside this range.
  size_t dims = feature_cols.size();
  size_t best_dim = 0;
  double best_spread = -1.0;
  for (size_t d = 0; d < dims; ++d) {
    const double* f = feature_cols[d].data();
    double mn = kInf, mx = -kInf;
    if (aligned) {
      std::tie(mn, mx) = index->MinMax(d, f, begin, end);
    } else {
      for (size_t i = begin; i < end; ++i) {
        double v = f[order[i]];
        mn = std::min(mn, v);
        mx = std::max(mx, v);
      }
    }
    if (mx - mn > best_spread) {
      best_spread = mx - mn;
      best_dim = d;
    }
  }
  size_t mid = begin + count / 2;
  if (best_spread <= 0.0 || dims == 0) {
    // All-identical features: split positionally (alignment survives).
    SplitRange(feature_cols, order, begin, mid, partition_size, aligned,
               index, groups);
    SplitRange(feature_cols, order, mid, end, partition_size, aligned, index,
               groups);
    return;
  }
  const double* f = feature_cols[best_dim].data();
  std::nth_element(order.begin() + begin, order.begin() + mid,
                   order.begin() + end,
                   [f](size_t a, size_t b) { return f[a] < f[b]; });
  SplitRange(feature_cols, order, begin, mid, partition_size, /*aligned=*/false,
             index, groups);
  SplitRange(feature_cols, order, mid, end, partition_size, /*aligned=*/false,
             index, groups);
}

}  // namespace

std::vector<std::vector<size_t>> PartitionCandidatesColumnar(
    const std::vector<std::vector<double>>& feature_cols, size_t n,
    size_t partition_size, int64_t* zone_map_skipped_blocks) {
  std::vector<std::vector<size_t>> groups;
  if (n == 0) return groups;
  partition_size = std::max<size_t>(partition_size, 1);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  SpreadIndex index = SpreadIndex::Build(feature_cols, n);
  SplitRange(feature_cols, order, 0, order.size(), partition_size,
             /*aligned=*/true, &index, &groups);
  if (zone_map_skipped_blocks != nullptr) {
    *zone_map_skipped_blocks += index.skipped_blocks;
  }
  return groups;
}

std::vector<std::vector<size_t>> PartitionCandidates(
    const std::vector<std::vector<double>>& features, size_t partition_size) {
  if (features.empty()) return {};
  // Transpose the row-major input; the engine itself builds column-major
  // features directly and calls PartitionCandidatesColumnar.
  size_t dims = features[0].size();
  std::vector<std::vector<double>> cols(
      dims, std::vector<double>(features.size()));
  for (size_t i = 0; i < features.size(); ++i) {
    for (size_t d = 0; d < dims; ++d) cols[d][i] = features[i][d];
  }
  return PartitionCandidatesColumnar(cols, features.size(), partition_size);
}

Result<SketchRefineResult> SketchRefine(const paql::AnalyzedQuery& aq,
                                        const SketchRefineOptions& options) {
  if (!aq.ilp_translatable || (aq.has_objective && !aq.objective_linear)) {
    return Status::Unimplemented(
        "SketchRefine requires an ILP-translatable query");
  }
  if (!aq.extreme_constraints.empty()) {
    return Status::Unimplemented(
        "SketchRefine does not support MIN/MAX global constraints "
        "(representatives do not preserve extremes)");
  }

  SketchRefineResult out;
  Stopwatch phase_timer;
  // The authoritative thread budget for every solve this call runs; a
  // caller-set options.milp.num_threads is always overridden from it
  // (like options.milp.warm) so no path can oversubscribe the host.
  // Deprecated aliases resolve against the unified ComputeBudget (larger
  // wins; see common/budget.h).
  const int thread_budget =
      ResolveThreads(options.compute.threads, options.num_threads);

  // Interruption plumbing: milp.cancel is polled between phases and
  // sub-solves (each solve also polls it per node), and milp.time_limit_s
  // bounds the WHOLE call — every sub-solve's own limit is clamped to the
  // time remaining so the pipeline never overshoots by its solve count.
  const CancelToken cancel = options.milp.cancel;
  const Deadline deadline = Deadline::AfterSeconds(options.milp.time_limit_s);
  auto interrupted = [&] {
    return cancel.cancel_requested() || deadline.expired();
  };
  auto budgeted_milp = [&] {
    solver::MilpOptions m = options.milp;
    m.time_limit_s = std::min(m.time_limit_s, deadline.SecondsRemaining());
    // Thread counts are always assigned by this call's budget split (via
    // the num_threads alias at each solve site); reset the caller's
    // ComputeBudget so the max-resolution rule cannot smuggle a larger
    // count past the authoritative thread_budget.
    m.compute.threads = 1;
    return m;
  };

  // ---- Candidates, weights, rows.
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  const size_t n = candidates.size();
  if (n == 0) {
    // Only the empty package is possible.
    Package empty;
    PB_ASSIGN_OR_RETURN(bool valid, SatisfiesGlobalConstraints(aq, empty));
    out.found = valid;
    return out;
  }

  std::vector<std::vector<double>> agg_w(aq.aggs.size());
  for (size_t a = 0; a < aq.aggs.size(); ++a) {
    PB_ASSIGN_OR_RETURN(agg_w[a],
                        ComputeAggWeights(aq.aggs[a], *aq.table, candidates));
  }
  std::vector<Row> rows;
  for (const paql::LinearConstraint& lc : aq.linear_constraints) {
    Row row;
    row.w.assign(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
      for (const paql::LinearAggTerm& t : lc.terms) {
        row.w[i] += t.coeff * agg_w[t.agg_index][i];
      }
    }
    row.lo = lc.lo;
    row.hi = lc.hi;
    row.name = lc.source_text;
    rows.push_back(std::move(row));
  }
  if (aq.requires_nonempty) {
    Row row;
    row.w.assign(n, 1.0);
    row.lo = 1.0;
    row.name = "nonempty";
    rows.push_back(std::move(row));
  }
  std::vector<double> obj_w(n, 0.0);
  if (aq.has_objective) {
    for (const paql::LinearAggTerm& t : aq.objective_terms) {
      for (size_t i = 0; i < n; ++i) {
        obj_w[i] += t.coeff * agg_w[t.agg_index][i];
      }
    }
  }
  const auto sense = aq.has_objective && !aq.maximize
                         ? solver::ObjectiveSense::kMinimize
                         : solver::ObjectiveSense::kMaximize;

  // ---- Offline partitioning on normalized (constraint-weight, objective)
  // feature space: tuples similar on every dimension the query touches end
  // up in one group, which is what lets a representative stand in for them.
  // Features are column-major — one contiguous span per dimension — so the
  // normalization, split scans, and centroid sums are tight vector passes.
  const size_t dims = rows.size() + (aq.has_objective ? 1 : 0);
  std::vector<std::vector<double>> feature_cols(dims);
  for (size_t r = 0; r < rows.size(); ++r) feature_cols[r] = rows[r].w;
  if (aq.has_objective) feature_cols[rows.size()] = obj_w;
  for (std::vector<double>& col : feature_cols) {
    auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    double lo = *mn, span = *mx - *mn;
    if (span > 0) {
      for (double& v : col) v = (v - lo) / span;
    } else {
      std::fill(col.begin(), col.end(), 0.0);
    }
  }
  std::vector<std::vector<size_t>> groups = PartitionCandidatesColumnar(
      feature_cols, n, options.partition_size, &out.zone_map_skipped_blocks);
  out.num_partitions = groups.size();

  // Representative: the member closest to the group's feature centroid.
  std::vector<size_t> rep(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& members = groups[g];
    std::vector<double> centroid(dims, 0.0);
    for (size_t d = 0; d < dims; ++d) {
      const double* f = feature_cols[d].data();
      for (size_t i : members) centroid[d] += f[i];
    }
    for (double& c : centroid) c /= static_cast<double>(members.size());
    std::vector<double> dist(members.size(), 0.0);
    for (size_t d = 0; d < dims; ++d) {
      const double* f = feature_cols[d].data();
      for (size_t m = 0; m < members.size(); ++m) {
        double delta = f[members[m]] - centroid[d];
        dist[m] += delta * delta;
      }
    }
    double best = kInf;
    rep[g] = members[0];
    for (size_t m = 0; m < members.size(); ++m) {
      if (dist[m] < best) {
        best = dist[m];
        rep[g] = members[m];
      }
    }
  }
  out.partition_seconds = phase_timer.ElapsedSeconds();

  // ---- Sketch (+ refine, with backtracking over excluded groups).
  std::vector<bool> excluded(groups.size(), false);
  // Sketch-phase warm state, local so a caller-provided options.milp.warm
  // is never consumed (and so clobbered) by SketchRefine's internal
  // solves. A backtrack rebuilds the sketch with fewer variables, which
  // the signature check detects and resets automatically.
  solver::MilpWarmStart sketch_warm;
  for (int attempt = 0; attempt <= options.max_backtracks; ++attempt) {
    if (interrupted()) {
      out.cancelled = true;
      return out;
    }
    // Sketch model: one integer variable per (non-excluded) group.
    phase_timer.Restart();
    solver::LpModel sketch;
    sketch.SetSense(sense);
    std::vector<int> var_of_group(groups.size(), -1);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (excluded[g]) continue;
      double cap = static_cast<double>(groups[g].size()) *
                   static_cast<double>(aq.max_multiplicity);
      var_of_group[g] =
          sketch.AddVariable("g" + std::to_string(g), 0.0, cap,
                             obj_w[rep[g]], /*is_integer=*/true);
    }
    for (const Row& row : rows) {
      std::vector<solver::LinearTerm> terms;
      for (size_t g = 0; g < groups.size(); ++g) {
        if (var_of_group[g] >= 0 && row.w[rep[g]] != 0.0) {
          terms.push_back({var_of_group[g], row.w[rep[g]]});
        }
      }
      sketch.AddConstraint(row.name, std::move(terms), row.lo, row.hi);
    }
    if (sketch.num_variables() == 0) break;
    out.sketch_variables = sketch.num_variables();
    solver::MilpOptions sketch_milp = budgeted_milp();
    sketch_milp.warm = &sketch_warm;
    // The sketch ILP is one monolithic solve, so the whole thread budget
    // goes to its tree search (bit-identical for any count).
    sketch_milp.num_threads = thread_budget;
    PB_ASSIGN_OR_RETURN(solver::MilpResult sk,
                        solver::SolveMilp(sketch, sketch_milp));
    out.lp_iterations += sk.lp_iterations;
    out.lp_dual_iterations += sk.lp_dual_iterations;
    out.lp_refactorizations += sk.lp_refactorizations;
    out.sketch_seconds += phase_timer.ElapsedSeconds();
    if (interrupted()) {
      // A cancelled/out-of-time sketch solve surfaces kNoSolution; report
      // the interruption rather than a (misleading) plain failure.
      out.cancelled = true;
      return out;
    }
    if (!sk.has_solution()) break;  // sketch infeasible: give up

    std::vector<int64_t> group_mult(groups.size(), 0);
    for (size_t g = 0; g < groups.size(); ++g) {
      if (var_of_group[g] >= 0) {
        group_mult[g] =
            static_cast<int64_t>(std::llround(sk.x[var_of_group[g]]));
      }
    }

    // Refine groups in decreasing sketch-multiplicity order (stable sort:
    // the order, and therefore the result, is fully deterministic).
    phase_timer.Restart();
    std::vector<size_t> refine_order;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (group_mult[g] > 0) refine_order.push_back(g);
    }
    std::stable_sort(
        refine_order.begin(), refine_order.end(),
        [&](size_t a, size_t b) { return group_mult[a] > group_mult[b]; });

    // Residual sub-ILP for group g: what its members must deliver given the
    // per-row contribution `others` of everyone else. Variable k is the
    // k-th member of the group (indices are dense).
    auto build_sub = [&](size_t g, const std::vector<double>& others) {
      solver::LpModel sub;
      sub.SetSense(sense);
      for (size_t k = 0; k < groups[g].size(); ++k) {
        sub.AddVariable("m" + std::to_string(k), 0.0,
                        static_cast<double>(aq.max_multiplicity),
                        obj_w[groups[g][k]], /*is_integer=*/true);
      }
      for (size_t r = 0; r < rows.size(); ++r) {
        const Row& row = rows[r];
        std::vector<solver::LinearTerm> terms;
        for (size_t k = 0; k < groups[g].size(); ++k) {
          if (row.w[groups[g][k]] != 0.0) {
            terms.push_back({static_cast<int>(k), row.w[groups[g][k]]});
          }
        }
        sub.AddConstraint(row.name, std::move(terms),
                          row.lo == -kInf ? -kInf : row.lo - others[r],
                          row.hi == kInf ? kInf : row.hi - others[r]);
      }
      return sub;
    };
    auto package_from = [&](const std::vector<int64_t>& m) {
      Package p;
      for (size_t i = 0; i < n; ++i) {
        if (m[i] > 0) p.Add(candidates[i], m[i]);
      }
      return p;
    };

    // Independent pass: each group's residual is taken against the sketch
    // state (every other group at its representative multiplicity), so the
    // sub-ILPs share nothing and fan out across the pool. Models are built
    // single-threaded in refine order; workers only solve.
    struct RefineTask {
      std::vector<double> others;  // per-row contribution of everyone else
      solver::LpModel model;
      solver::MilpResult solution;
      /// Task-local solver warm-start state (root basis + pseudocosts),
      /// written by this task's solve and re-seeded into the repair pass's
      /// re-solve of the same group — the models are structurally
      /// identical, only the residual ranges move.
      solver::MilpWarmStart warm;
      Status status = Status::OK();
    };
    // Per-row activity of the whole sketch state; each task's residual is
    // that minus the group's own representative contribution, O(rows) per
    // group instead of a full O(rows * n) recompute.
    std::vector<double> base(rows.size(), 0.0);
    for (size_t r = 0; r < rows.size(); ++r) {
      for (size_t g : refine_order) {
        base[r] += rows[r].w[rep[g]] * group_mult[g];
      }
    }
    std::vector<RefineTask> tasks(refine_order.size());
    for (size_t t = 0; t < refine_order.size(); ++t) {
      size_t g = refine_order[t];
      tasks[t].others.resize(rows.size());
      for (size_t r = 0; r < rows.size(); ++r) {
        tasks[t].others[r] =
            base[r] - rows[r].w[rep[g]] * static_cast<double>(group_mult[g]);
      }
      tasks[t].model = build_sub(g, tasks[t].others);
    }
    out.refine_ilps_solved += static_cast<int64_t>(tasks.size());
    // Thread-budget split: group-level fan-out times node-level tree
    // parallelism stays within options.num_threads — node_threads is
    // clamped into [1, budget] so the budget is authoritative. Any split
    // yields the identical result — each MILP solve is thread-count
    // invariant — so the knob only moves where the hardware effort goes.
    const int node_threads = std::min(
        ResolveThreads(options.compute.node_threads, options.node_threads),
        thread_budget);
    auto solve_task = [&](RefineTask& task) {
      // A task that starts after interruption leaves its solution at the
      // kNoSolution default — the merge below then routes through repair,
      // whose own interruption check returns before any re-solve.
      if (interrupted()) return;
      // Each task owns its warm-start state: safe under the thread pool
      // (no sharing) and deterministic (state depends only on the task's
      // own solves). A caller-provided options.milp.warm would be shared
      // across concurrent tasks, so it is always overridden here.
      solver::MilpOptions task_milp = budgeted_milp();
      task_milp.warm = &task.warm;
      // Like `warm`, always overridden: a caller-set milp.num_threads
      // would multiply with the group fan-out and overrun the budget.
      task_milp.num_threads = node_threads;
      Result<solver::MilpResult> sr = solver::SolveMilp(task.model, task_milp);
      if (sr.ok()) {
        task.solution = std::move(sr).value();
      } else {
        task.status = sr.status();
      }
    };
    size_t workers = std::min<size_t>(
        static_cast<size_t>(std::max(thread_budget / node_threads, 1)),
        tasks.size());
    if (workers <= 1) {
      for (RefineTask& task : tasks) solve_task(task);
    } else {
      // The waiting thread steals queued tasks (TaskGroup::Wait), making
      // it the last of the `workers` budgeted solvers — so the pool gets
      // workers - 1 threads, not workers.
      ThreadPool pool(workers - 1);
      TaskGroup group(&pool);
      for (RefineTask& task : tasks) {
        group.Spawn([&solve_task, &task] { solve_task(task); });
      }
      group.Wait();
    }
    for (const RefineTask& task : tasks) {
      PB_RETURN_IF_ERROR(task.status);
      out.lp_iterations += task.solution.lp_iterations;
      out.lp_dual_iterations += task.solution.lp_dual_iterations;
      out.lp_refactorizations += task.solution.lp_refactorizations;
    }
    if (interrupted()) {
      out.refine_seconds += phase_timer.ElapsedSeconds();
      out.cancelled = true;
      return out;
    }

    // Deterministic merge in refine order. The merged package stands only
    // if every group solved and the result validates.
    bool all_solved = true;
    for (const RefineTask& task : tasks) {
      if (!task.solution.has_solution()) {
        all_solved = false;
        break;
      }
    }
    Package pkg;
    bool valid = false;
    std::vector<int64_t> mult(n, 0);
    if (all_solved) {
      for (size_t t = 0; t < tasks.size(); ++t) {
        size_t g = refine_order[t];
        for (size_t k = 0; k < groups[g].size(); ++k) {
          mult[groups[g][k]] +=
              static_cast<int64_t>(std::llround(tasks[t].solution.x[k]));
        }
      }
      pkg = package_from(mult);
      PB_ASSIGN_OR_RETURN(valid, IsValidPackage(aq, pkg));
    }

    bool failed_group = false;
    size_t failed_g = 0;
    if (!valid) {
      // Repair: the independent solves let per-group drift accumulate
      // (chosen members aggregate differently than their representative),
      // and a group infeasible against the sketch residuals may still be
      // feasible against the actual ones. Rebuild greedily, propagating
      // actual residuals group by group as the 2016 paper's refine does; a
      // parallel result (solution or proven infeasibility) is reused when
      // its residuals match the actual state exactly — always true for the
      // first group, and for every group while no drift has occurred. The
      // pass depends only on the tasks' deterministic results, so any
      // num_threads still yields an identical outcome. The actual residual
      // is tracked as (base - own rep contribution) + drift so that a
      // zero-drift prefix reproduces the task residuals bit-for-bit.
      ++out.repair_passes;
      mult.assign(n, 0);
      for (size_t g : refine_order) mult[rep[g]] += group_mult[g];
      std::vector<double> drift(rows.size(), 0.0);
      for (size_t t = 0; t < refine_order.size(); ++t) {
        if (interrupted()) {
          out.refine_seconds += phase_timer.ElapsedSeconds();
          out.cancelled = true;
          return out;
        }
        size_t g = refine_order[t];
        std::vector<double> others(rows.size());
        for (size_t r = 0; r < rows.size(); ++r) {
          others[r] = tasks[t].others[r] + drift[r];
        }
        const solver::MilpResult* sol = &tasks[t].solution;
        solver::MilpResult fresh;
        if (others != tasks[t].others) {
          ++out.refine_ilps_solved;
          // Same group, same model structure, shifted residual ranges: the
          // task's cached root basis and pseudocost history carry over
          // (sequential pass, so borrowing the task's warm state is safe).
          solver::MilpOptions repair_milp = budgeted_milp();
          repair_milp.warm = &tasks[t].warm;
          // The repair pass is sequential: each re-solve gets the whole
          // thread budget as tree parallelism.
          repair_milp.num_threads = thread_budget;
          PB_ASSIGN_OR_RETURN(
              fresh, solver::SolveMilp(build_sub(g, others), repair_milp));
          out.lp_iterations += fresh.lp_iterations;
          out.lp_dual_iterations += fresh.lp_dual_iterations;
          out.lp_refactorizations += fresh.lp_refactorizations;
          sol = &fresh;
        }
        if (!sol->has_solution()) {
          failed_group = true;
          failed_g = g;
          break;
        }
        mult[rep[g]] -= group_mult[g];
        for (size_t r = 0; r < rows.size(); ++r) {
          drift[r] -= rows[r].w[rep[g]] * static_cast<double>(group_mult[g]);
        }
        for (size_t k = 0; k < groups[g].size(); ++k) {
          int64_t m = static_cast<int64_t>(std::llround(sol->x[k]));
          if (m == 0) continue;
          mult[groups[g][k]] += m;
          for (size_t r = 0; r < rows.size(); ++r) {
            drift[r] += rows[r].w[groups[g][k]] * static_cast<double>(m);
          }
        }
      }
      if (!failed_group) {
        pkg = package_from(mult);
        PB_ASSIGN_OR_RETURN(valid, IsValidPackage(aq, pkg));
      }
    }
    out.refine_seconds += phase_timer.ElapsedSeconds();

    if (failed_group) {
      excluded[failed_g] = true;
      ++out.backtracks;
      continue;
    }
    if (!valid) {
      // The repair pass's last group enforces exact residuals, so a fully
      // repaired package that still fails validation either missed a row
      // by solver-scale round-off (IsValidPackage compares exactly while
      // the solver accepts feas_tol slack) or broke a real invariant.
      // Distinguish the two: a round-off near-miss is an honest failed
      // attempt — and retrying is deterministic (same sketch, same
      // excluded set), so stop rather than burn backtracks on identical
      // failures — while a gross violation is surfaced as an error
      // instead of the old silent backtrack, which could only hand back
      // found=false over an invalid solve.
      constexpr double kRowSlack = 1e-5;
      bool near_valid = true;
      for (size_t r = 0; r < rows.size() && near_valid; ++r) {
        double act = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (mult[i] != 0) {
            act += rows[r].w[i] * static_cast<double>(mult[i]);
          }
        }
        double slack = kRowSlack * std::max(1.0, std::abs(act));
        near_valid =
            act >= rows[r].lo - slack && act <= rows[r].hi + slack;
      }
      if (near_valid) break;  // tolerance drift: report found == false
      return Status::Internal(
          "SketchRefine repair produced an invalid package despite exact "
          "residual propagation (solver invariant violated)");
    }
    out.found = true;
    PB_ASSIGN_OR_RETURN(out.objective, PackageObjective(aq, pkg));
    out.package = std::move(pkg);
    return out;
  }

  return out;  // found == false: sketch/refine failed within the budget
}

}  // namespace pb::core
