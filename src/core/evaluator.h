// QueryEvaluator: the front door of the evaluation engine.
//
// The paper (§4) lists the system's strategies — SQL-validated candidate
// generation, ILP translation + constraint solver, cardinality pruning, and
// heuristic local search — and §5 notes that PackageBuilder "heuristically
// combines all of them". This facade implements that combination:
//
//   kAuto (default, the paper's hybrid):
//     - pruning bounds are always derived first (cheap; may prove
//       infeasibility outright);
//     - ILP-translatable optimization queries go to branch-and-bound, with
//       the pruning row tightening the model;
//     - feasibility-only queries try a short local search first and fall
//       back to the solver;
//     - non-translatable queries (OR / NOT / '<>' / non-linear) use brute
//       force when small, local search otherwise.
//   Explicit strategies force a single path (used by the benches).

#ifndef PB_CORE_EVALUATOR_H_
#define PB_CORE_EVALUATOR_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "core/brute_force.h"
#include "core/local_search.h"
#include "core/package.h"
#include "core/pruning.h"
#include "db/catalog.h"
#include "solver/milp.h"

namespace pb::core {

enum class Strategy {
  kAuto,        ///< the hybrid policy above
  kIlpSolver,   ///< translate + branch-and-bound (exact for linear queries)
  kBruteForce,  ///< exhaustive (exact for every query shape)
  kLocalSearch, ///< heuristic (fast, incomplete)
};

const char* StrategyToString(Strategy s);

struct EvaluationOptions {
  Strategy strategy = Strategy::kAuto;
  /// Apply §4.1 cardinality pruning (bounds row for the solver, cardinality
  /// clamps for search strategies). Off only for ablation benches.
  bool use_pruning = true;
  /// Candidate-count threshold below which kAuto uses brute force for
  /// non-translatable queries.
  size_t brute_force_threshold = 24;
  solver::MilpOptions milp;
  LocalSearchOptions local_search;
  BruteForceOptions brute_force;
};

struct EvaluationResult {
  Package package;
  /// Objective value (0 when the query has none).
  double objective = 0.0;
  Strategy strategy_used = Strategy::kAuto;
  /// True when the strategy proves optimality (solver optimal / exhaustive
  /// brute force); local-search answers are valid but possibly suboptimal.
  bool proven_optimal = false;
  CardinalityBounds bounds;
  double seconds = 0.0;
  size_t num_candidates = 0;
  /// Strategy-specific diagnostics.
  std::optional<solver::MilpResult> milp;
  std::optional<LocalSearchResult> local_search;
  std::optional<BruteForceResult> brute_force;
};

/// Evaluates PaQL queries against a catalog.
class QueryEvaluator {
 public:
  explicit QueryEvaluator(const db::Catalog* catalog) : catalog_(catalog) {}

  /// Parses, analyzes, and evaluates PaQL text. Returns kInfeasible when no
  /// valid package exists (or, for heuristic paths, when none was found).
  Result<EvaluationResult> Evaluate(const std::string& paql,
                                    const EvaluationOptions& options = {});

  /// Evaluates an already-analyzed query.
  Result<EvaluationResult> Evaluate(const paql::AnalyzedQuery& aq,
                                    const EvaluationOptions& options = {});

  /// Evaluates the query's LIMIT clause: returns up to LIMIT packages
  /// (default 1), best-first when the query has an objective. Uses
  /// no-good-cut solver enumeration for translatable REPEAT-free queries
  /// and exhaustive collection otherwise. An empty vector means infeasible.
  Result<std::vector<Package>> EvaluateAll(
      const paql::AnalyzedQuery& aq, const EvaluationOptions& options = {});

  Result<std::vector<Package>> EvaluateAll(
      const std::string& paql, const EvaluationOptions& options = {});

 private:
  const db::Catalog* catalog_;
};

}  // namespace pb::core

#endif  // PB_CORE_EVALUATOR_H_
