// Package enumeration: producing *many* valid packages rather than one.
//
// The paper's interface needs this twice: the visual summary lays out "only
// packages found so far" (§3.2), and the Challenges section calls out that
// "constraint solvers are typically limited to returning a single package
// solution at a time, and retrieving more packages requires modifying and
// re-evaluating the query" (§5). EnumerateViaSolver implements exactly that
// modify-and-re-evaluate loop with no-good cuts; EnumerateExhaustively uses
// the brute-force oracle for small inputs.

#ifndef PB_CORE_ENUMERATOR_H_
#define PB_CORE_ENUMERATOR_H_

#include <vector>

#include "common/status.h"
#include "core/brute_force.h"
#include "core/package.h"
#include "solver/milp.h"

namespace pb::core {

struct EnumerateOptions {
  size_t max_packages = 50;
  double time_limit_s = 30.0;
  solver::MilpOptions milp;
};

/// Repeatedly solves the translated ILP, excluding each found package with
/// a no-good cut (sum_{i in P} x_i - sum_{i not in P} x_i <= |P| - 1).
/// Packages come out in non-increasing objective quality. Requires an
/// ILP-translatable query with REPEAT absent (binary multiplicities —
/// no-good cuts for general integers would not exclude single points).
Result<std::vector<Package>> EnumerateViaSolver(
    const paql::AnalyzedQuery& aq, const EnumerateOptions& options = {});

/// Collects up to `max_packages` valid packages exhaustively (exact for any
/// query shape; practical only for small candidate counts).
Result<std::vector<Package>> EnumerateExhaustively(
    const paql::AnalyzedQuery& aq, size_t max_packages,
    const BruteForceOptions& options = {});

/// Jaccard distance between two packages as multisets:
/// 1 - |A ∩ B| / |A ∪ B| (multiplicities included). 0 = identical.
double PackageJaccardDistance(const Package& a, const Package& b);

/// §5's "diverse package results" challenge: "we plan to devise techniques
/// to present the user with the most diverse and potentially interesting
/// packages." Enumerates a pool of `max_packages * pool_factor` candidates
/// (solver cuts when possible, exhaustive otherwise), then greedily keeps
/// the packages maximizing the minimum Jaccard distance to those already
/// chosen — the best-quality package always comes first.
Result<std::vector<Package>> EnumerateDiverse(
    const paql::AnalyzedQuery& aq, size_t max_packages,
    size_t pool_factor = 4, const EnumerateOptions& options = {});

}  // namespace pb::core

#endif  // PB_CORE_ENUMERATOR_H_
