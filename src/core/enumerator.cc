#include "core/enumerator.h"

#include "common/stopwatch.h"
#include "core/translator.h"

namespace pb::core {

Result<std::vector<Package>> EnumerateViaSolver(
    const paql::AnalyzedQuery& aq, const EnumerateOptions& options) {
  if (aq.max_multiplicity != 1) {
    return Status::Unimplemented(
        "solver-based enumeration requires binary multiplicities (no REPEAT)");
  }
  Stopwatch timer;
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  PB_ASSIGN_OR_RETURN(CardinalityBounds bounds,
                      DeriveCardinalityBounds(aq, candidates));
  if (bounds.infeasible) return std::vector<Package>{};
  TranslateOptions topts;
  topts.bounds = &bounds;
  PB_ASSIGN_OR_RETURN(IlpTranslation translation, TranslateToIlp(aq, topts));

  std::vector<Package> out;
  while (out.size() < options.max_packages &&
         timer.ElapsedSeconds() < options.time_limit_s) {
    solver::MilpOptions milp = options.milp;
    milp.time_limit_s =
        std::min(milp.time_limit_s,
                 options.time_limit_s - timer.ElapsedSeconds());
    PB_ASSIGN_OR_RETURN(solver::MilpResult r,
                        solver::SolveMilp(translation.model, milp));
    if (!r.has_solution()) break;
    Package pkg = DecodeSolution(translation, r.x);
    out.push_back(pkg);

    // No-good cut excluding exactly this 0/1 point.
    std::vector<solver::LinearTerm> terms;
    double rhs = -1.0;
    for (int j = 0; j < translation.model.num_variables(); ++j) {
      bool in_pkg = pkg.MultiplicityOf(translation.candidates[j]) > 0;
      terms.push_back({j, in_pkg ? 1.0 : -1.0});
      if (in_pkg) rhs += 1.0;
    }
    translation.model.AddConstraint(
        "nogood" + std::to_string(out.size()), std::move(terms),
        -solver::kInfinity, rhs);
  }
  return out;
}

Result<std::vector<Package>> EnumerateExhaustively(
    const paql::AnalyzedQuery& aq, size_t max_packages,
    const BruteForceOptions& options) {
  BruteForceOptions opts = options;
  opts.collect_limit = max_packages;
  PB_ASSIGN_OR_RETURN(BruteForceResult r, BruteForceSearch(aq, opts));
  return r.all;
}

double PackageJaccardDistance(const Package& a, const Package& b) {
  // Merge-walk over the sorted row lists.
  size_t i = 0, j = 0;
  int64_t intersection = 0, union_size = 0;
  while (i < a.rows.size() || j < b.rows.size()) {
    if (j >= b.rows.size() || (i < a.rows.size() && a.rows[i] < b.rows[j])) {
      union_size += a.multiplicity[i];
      ++i;
    } else if (i >= a.rows.size() || b.rows[j] < a.rows[i]) {
      union_size += b.multiplicity[j];
      ++j;
    } else {
      intersection += std::min(a.multiplicity[i], b.multiplicity[j]);
      union_size += std::max(a.multiplicity[i], b.multiplicity[j]);
      ++i;
      ++j;
    }
  }
  if (union_size == 0) return 0.0;  // both empty
  return 1.0 - static_cast<double>(intersection) /
                   static_cast<double>(union_size);
}

Result<std::vector<Package>> EnumerateDiverse(
    const paql::AnalyzedQuery& aq, size_t max_packages, size_t pool_factor,
    const EnumerateOptions& options) {
  if (max_packages == 0) return std::vector<Package>{};
  // Build the candidate pool.
  EnumerateOptions pool_opts = options;
  pool_opts.max_packages = max_packages * std::max<size_t>(pool_factor, 1);
  std::vector<Package> pool;
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);
  if (translatable && aq.max_multiplicity == 1) {
    PB_ASSIGN_OR_RETURN(pool, EnumerateViaSolver(aq, pool_opts));
  } else {
    PB_ASSIGN_OR_RETURN(pool,
                        EnumerateExhaustively(aq, pool_opts.max_packages));
  }
  if (pool.size() <= max_packages) return pool;

  // Greedy max-min selection. The pool comes best-first, so seeding with
  // pool[0] keeps the top-quality package in every result set.
  std::vector<Package> chosen;
  std::vector<bool> used(pool.size(), false);
  chosen.push_back(pool[0]);
  used[0] = true;
  std::vector<double> min_dist(pool.size(), 0.0);
  for (size_t p = 0; p < pool.size(); ++p) {
    min_dist[p] = PackageJaccardDistance(pool[p], pool[0]);
  }
  while (chosen.size() < max_packages) {
    size_t best = 0;
    double best_dist = -1.0;
    for (size_t p = 0; p < pool.size(); ++p) {
      if (!used[p] && min_dist[p] > best_dist) {
        best_dist = min_dist[p];
        best = p;
      }
    }
    if (best_dist < 0) break;
    used[best] = true;
    chosen.push_back(pool[best]);
    for (size_t p = 0; p < pool.size(); ++p) {
      if (!used[p]) {
        min_dist[p] = std::min(min_dist[p],
                               PackageJaccardDistance(pool[p], pool[best]));
      }
    }
  }
  return chosen;
}

}  // namespace pb::core
