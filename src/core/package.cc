#include "core/package.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "db/ops.h"

namespace pb::core {

int64_t Package::TotalCount() const {
  int64_t total = 0;
  for (int64_t m : multiplicity) total += m;
  return total;
}

void Package::Add(size_t row, int64_t count) {
  PB_DCHECK(count >= 1);
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  size_t pos = static_cast<size_t>(it - rows.begin());
  if (it != rows.end() && *it == row) {
    multiplicity[pos] += count;
    return;
  }
  rows.insert(it, row);
  multiplicity.insert(multiplicity.begin() + pos, count);
}

int64_t Package::Remove(size_t row, int64_t count) {
  PB_DCHECK(count >= 1);
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || *it != row) return 0;
  size_t pos = static_cast<size_t>(it - rows.begin());
  int64_t removed = std::min(count, multiplicity[pos]);
  multiplicity[pos] -= removed;
  if (multiplicity[pos] == 0) {
    rows.erase(it);
    multiplicity.erase(multiplicity.begin() + pos);
  }
  return removed;
}

int64_t Package::MultiplicityOf(size_t row) const {
  auto it = std::lower_bound(rows.begin(), rows.end(), row);
  if (it == rows.end() || *it != row) return 0;
  return multiplicity[static_cast<size_t>(it - rows.begin())];
}

void Package::Normalize() {
  std::vector<std::pair<size_t, int64_t>> pairs;
  pairs.reserve(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    if (multiplicity[i] > 0) pairs.emplace_back(rows[i], multiplicity[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  rows.clear();
  multiplicity.clear();
  for (auto& [r, m] : pairs) {
    if (!rows.empty() && rows.back() == r) {
      multiplicity.back() += m;
    } else {
      rows.push_back(r);
      multiplicity.push_back(m);
    }
  }
}

std::string Package::Fingerprint() const {
  std::string out;
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(rows[i]) + "x" + std::to_string(multiplicity[i]);
  }
  return out;
}

Result<db::Value> EvalPackageAgg(const paql::AggCall& agg,
                                 const db::Table& table, const Package& pkg) {
  PB_ASSIGN_OR_RETURN(
      db::Value v, db::AggregateRows(table, agg.func, agg.arg, pkg.rows,
                                     pkg.multiplicity));
  // Package semantics: SUM over the empty package is 0, not NULL.
  if (agg.func == db::AggFunc::kSum && v.is_null()) {
    return db::Value::Int(0);
  }
  return v;
}

namespace {

Result<db::Value> CompareValues(db::BinaryOp op, const db::Value& l,
                                const db::Value& r) {
  if (l.is_null() || r.is_null()) return db::Value::Null();
  int c = l.Compare(r);
  bool result;
  switch (op) {
    case db::BinaryOp::kEq: result = (c == 0); break;
    case db::BinaryOp::kNe: result = (c != 0); break;
    case db::BinaryOp::kLt: result = (c < 0); break;
    case db::BinaryOp::kLe: result = (c <= 0); break;
    case db::BinaryOp::kGt: result = (c > 0); break;
    case db::BinaryOp::kGe: result = (c >= 0); break;
    default:
      return Status::Internal("not a comparison");
  }
  return db::Value::Bool(result);
}

Result<db::Value> ArithValues(db::BinaryOp op, const db::Value& l,
                              const db::Value& r) {
  if (l.is_null() || r.is_null()) return db::Value::Null();
  PB_ASSIGN_OR_RETURN(double a, l.ToDouble());
  PB_ASSIGN_OR_RETURN(double b, r.ToDouble());
  switch (op) {
    case db::BinaryOp::kAdd: return db::Value::Double(a + b);
    case db::BinaryOp::kSub: return db::Value::Double(a - b);
    case db::BinaryOp::kMul: return db::Value::Double(a * b);
    case db::BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return db::Value::Double(a / b);
    default:
      return Status::Internal("not an arithmetic op");
  }
}

}  // namespace

Result<db::Value> EvalGExpr(const paql::GExpr& e, const db::Table& table,
                            const Package& pkg) {
  using paql::GExprKind;
  switch (e.kind) {
    case GExprKind::kLiteral:
      return e.literal;
    case GExprKind::kAgg:
      return EvalPackageAgg(e.agg, table, pkg);
    case GExprKind::kArith: {
      PB_ASSIGN_OR_RETURN(db::Value l, EvalGExpr(*e.children[0], table, pkg));
      PB_ASSIGN_OR_RETURN(db::Value r, EvalGExpr(*e.children[1], table, pkg));
      return ArithValues(e.op, l, r);
    }
    case GExprKind::kCompare: {
      PB_ASSIGN_OR_RETURN(db::Value l, EvalGExpr(*e.children[0], table, pkg));
      PB_ASSIGN_OR_RETURN(db::Value r, EvalGExpr(*e.children[1], table, pkg));
      return CompareValues(e.op, l, r);
    }
    case GExprKind::kBetween: {
      PB_ASSIGN_OR_RETURN(db::Value v, EvalGExpr(*e.children[0], table, pkg));
      PB_ASSIGN_OR_RETURN(db::Value lo, EvalGExpr(*e.children[1], table, pkg));
      PB_ASSIGN_OR_RETURN(db::Value hi, EvalGExpr(*e.children[2], table, pkg));
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        return db::Value::Null();
      }
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return db::Value::Bool(e.negated ? !in : in);
    }
    case GExprKind::kBool: {
      PB_ASSIGN_OR_RETURN(db::Value l, EvalGExpr(*e.children[0], table, pkg));
      PB_ASSIGN_OR_RETURN(db::Value r, EvalGExpr(*e.children[1], table, pkg));
      // Kleene logic: encode {false=0, null=1, true=2}.
      auto rank = [](const db::Value& v) -> Result<int> {
        if (v.is_null()) return 1;
        if (v.is_bool()) return v.AsBool() ? 2 : 0;
        return Status::TypeError("logical operand must be BOOL");
      };
      PB_ASSIGN_OR_RETURN(int a, rank(l));
      PB_ASSIGN_OR_RETURN(int b, rank(r));
      int res = e.op == db::BinaryOp::kAnd ? std::min(a, b) : std::max(a, b);
      if (res == 1) return db::Value::Null();
      return db::Value::Bool(res == 2);
    }
    case GExprKind::kNot: {
      PB_ASSIGN_OR_RETURN(db::Value v, EvalGExpr(*e.children[0], table, pkg));
      if (v.is_null()) return db::Value::Null();
      if (!v.is_bool()) return Status::TypeError("NOT requires BOOL");
      return db::Value::Bool(!v.AsBool());
    }
  }
  return Status::Internal("unknown GExpr kind");
}

Result<bool> SatisfiesGlobalConstraints(const paql::AnalyzedQuery& aq,
                                        const Package& pkg) {
  if (!aq.query.such_that) return true;
  PB_ASSIGN_OR_RETURN(db::Value v,
                      EvalGExpr(*aq.query.such_that, *aq.table, pkg));
  return v.is_bool() && v.AsBool();
}

Result<bool> SatisfiesBaseConstraints(const paql::AnalyzedQuery& aq,
                                      const Package& pkg) {
  if (!aq.query.where) return true;
  db::ExprPtr bound = aq.query.where->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(aq.table->schema()));
  for (size_t row : pkg.rows) {
    if (row >= aq.table->num_rows()) {
      return Status::OutOfRange("package references row " +
                                std::to_string(row) + " beyond table size");
    }
    PB_ASSIGN_OR_RETURN(bool ok, bound->Matches(aq.table->row(row)));
    if (!ok) return false;
  }
  return true;
}

Result<bool> IsValidPackage(const paql::AnalyzedQuery& aq,
                            const Package& pkg) {
  for (size_t row : pkg.rows) {
    if (row >= aq.table->num_rows()) {
      return Status::OutOfRange("package references row " +
                                std::to_string(row) + " beyond table size");
    }
  }
  for (int64_t m : pkg.multiplicity) {
    if (m < 1 || m > aq.max_multiplicity) return false;
  }
  PB_ASSIGN_OR_RETURN(bool base, SatisfiesBaseConstraints(aq, pkg));
  if (!base) return false;
  return SatisfiesGlobalConstraints(aq, pkg);
}

Result<double> PackageObjective(const paql::AnalyzedQuery& aq,
                                const Package& pkg) {
  if (!aq.query.objective) return 0.0;
  PB_ASSIGN_OR_RETURN(db::Value v,
                      EvalGExpr(*aq.query.objective->expr, *aq.table, pkg));
  if (v.is_null()) {
    // Mirrors aggregate semantics: an undefined objective (e.g. AVG of an
    // empty package) is worst-possible rather than an error.
    return aq.maximize ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
  }
  return v.ToDouble();
}

db::Table MaterializePackage(const db::Table& table, const Package& pkg,
                             const std::string& name) {
  db::Table out(name, table.schema());
  for (size_t i = 0; i < pkg.rows.size(); ++i) {
    for (int64_t m = 0; m < pkg.multiplicity[i]; ++m) {
      out.AppendRowFrom(table, pkg.rows[i]);
    }
  }
  return out;
}

}  // namespace pb::core
