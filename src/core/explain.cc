#include "core/explain.h"

#include <cmath>

#include "common/strings.h"
#include "core/translator.h"
#include "db/ops.h"

namespace pb::core {

std::string QueryPlan::ToString() const {
  std::string out;
  out += "== Query plan ==\n";
  out += "base relation:        " + std::to_string(table_rows) + " rows\n";
  out += "base constraints:     " + std::to_string(candidates) +
         " candidates (selectivity " +
         FormatDouble(base_selectivity * 100.0, 3) + "%)\n";
  out += "global constraints:   " + std::to_string(linear_constraints) +
         " linear, " + std::to_string(extreme_constraints) + " MIN/MAX\n";
  out += "ILP-translatable:     ";
  out += ilp_translatable ? "yes" : ("no (" + not_translatable_reason + ")");
  out += "\n";
  if (has_objective) {
    out += "objective:            ";
    out += objective_linear ? "linear" : "non-linear";
    out += "\n";
  }
  out += "cardinality bounds:   " + bounds.ToString() + "\n";
  if (proven_infeasible) {
    out += "VERDICT:              infeasible (proved by pruning, no search "
           "needed)\n";
    return out;
  }
  if (std::isfinite(bounds.log2_pruned)) {
    out += "search space:         2^" + FormatDouble(bounds.log2_unpruned, 4) +
           " packages, 2^" + FormatDouble(bounds.log2_pruned, 4) +
           " after pruning\n";
  }
  if (model_variables > 0) {
    out += "translated model:     " + std::to_string(model_variables) +
           " integer variables, " + std::to_string(model_rows) + " rows\n";
  }
  out += "strategy:             " +
         std::string(StrategyToString(chosen_strategy)) + " -- " + rationale +
         "\n";
  return out;
}

Result<QueryPlan> ExplainQuery(const paql::AnalyzedQuery& aq,
                               const EvaluationOptions& options) {
  QueryPlan plan;
  plan.table_rows = aq.table->num_rows();
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  plan.candidates = candidates.size();
  plan.base_selectivity =
      plan.table_rows > 0
          ? static_cast<double>(plan.candidates) /
                static_cast<double>(plan.table_rows)
          : 1.0;
  plan.linear_constraints = aq.linear_constraints.size();
  plan.extreme_constraints = aq.extreme_constraints.size();
  plan.ilp_translatable = aq.ilp_translatable;
  plan.not_translatable_reason = aq.not_translatable_reason;
  plan.has_objective = aq.has_objective;
  plan.objective_linear = aq.objective_linear;

  PB_ASSIGN_OR_RETURN(plan.bounds, DeriveCardinalityBounds(aq, candidates));
  if (options.use_pruning && plan.bounds.infeasible) {
    plan.proven_infeasible = true;
    plan.chosen_strategy = Strategy::kAuto;
    plan.rationale = "pruning proves infeasibility";
    return plan;
  }

  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);
  if (translatable) {
    TranslateOptions topts;
    if (options.use_pruning) topts.bounds = &plan.bounds;
    auto translation = TranslateToIlp(aq, topts);
    if (translation.ok()) {
      plan.model_variables = translation->model.num_variables();
      plan.model_rows = translation->model.num_constraints();
    }
  }

  // Mirror the Auto policy's decision tree (evaluator.cc).
  if (options.strategy != Strategy::kAuto) {
    plan.chosen_strategy = options.strategy;
    plan.rationale = "forced by options";
  } else if (!translatable) {
    if (plan.candidates <= options.brute_force_threshold) {
      plan.chosen_strategy = Strategy::kBruteForce;
      plan.rationale = "disjunctive/non-linear constraints on a small "
                       "candidate set: exhaustive search is exact and cheap";
    } else {
      plan.chosen_strategy = Strategy::kLocalSearch;
      plan.rationale = "disjunctive/non-linear constraints: the solver "
                       "cannot express them; falling back to heuristic "
                       "search (incomplete)";
    }
  } else if (!aq.has_objective) {
    plan.chosen_strategy = Strategy::kLocalSearch;
    plan.rationale = "feasibility-only query: a short heuristic burst "
                     "usually answers before the solver is needed "
                     "(solver fallback on failure)";
  } else if (plan.candidates <= 12 && aq.max_multiplicity <= 2) {
    plan.chosen_strategy = Strategy::kBruteForce;
    plan.rationale = "tiny candidate set: exhaustive search beats the LP "
                     "machinery and is exact";
  } else {
    plan.chosen_strategy = Strategy::kIlpSolver;
    plan.rationale = "conjunctive linear optimization query: "
                     "branch-and-bound is exact";
  }
  return plan;
}

Result<QueryPlan> ExplainQuery(const std::string& paql,
                               const db::Catalog& catalog,
                               const EvaluationOptions& options) {
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, catalog));
  return ExplainQuery(aq, options);
}

}  // namespace pb::core
