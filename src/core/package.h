// Package: the answer object of a package query — a multiset of base-table
// tuples, stored as (row index, multiplicity) pairs against the query's
// base table.
//
// Aggregate semantics over packages (documented in DESIGN.md):
//   COUNT(*)           total multiplicity (0 for the empty package)
//   COUNT(e)/SUM(e)    NULL cells skipped; SUM of an empty package is 0
//   AVG/MIN/MAX        NULL over an empty package; a comparison against
//                      NULL is unsatisfied (SQL three-valued logic)

#ifndef PB_CORE_PACKAGE_H_
#define PB_CORE_PACKAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/table.h"
#include "paql/analyzer.h"

namespace pb::core {

/// A multiset of base-table rows. Invariant: `rows` strictly increasing,
/// multiplicities >= 1 (normalized form; use Normalize() after bulk edits).
struct Package {
  std::vector<size_t> rows;
  std::vector<int64_t> multiplicity;

  bool empty() const { return rows.empty(); }

  /// Total tuple count (sum of multiplicities).
  int64_t TotalCount() const;

  /// Adds `count` occurrences of `row`, keeping the normalized form.
  void Add(size_t row, int64_t count = 1);

  /// Removes up to `count` occurrences of `row`; returns how many were
  /// actually removed.
  int64_t Remove(size_t row, int64_t count = 1);

  /// Multiplicity of `row` (0 when absent).
  int64_t MultiplicityOf(size_t row) const;

  /// Sorts by row and merges duplicates; drops zero multiplicities.
  void Normalize();

  /// Stable content identity ("3x1,7x2" = row 3 once, row 7 twice).
  std::string Fingerprint() const;

  bool operator==(const Package& other) const {
    return rows == other.rows && multiplicity == other.multiplicity;
  }
};

/// Evaluates one aggregate over a package (see semantics above).
Result<db::Value> EvalPackageAgg(const paql::AggCall& agg,
                                 const db::Table& table, const Package& pkg);

/// Evaluates a global-constraint expression over a package. Comparisons and
/// BETWEEN yield BOOL or NULL; arithmetic yields numerics.
Result<db::Value> EvalGExpr(const paql::GExpr& e, const db::Table& table,
                            const Package& pkg);

/// True iff the package satisfies the whole SUCH THAT clause (a missing
/// clause is trivially satisfied; NULL results count as unsatisfied).
Result<bool> SatisfiesGlobalConstraints(const paql::AnalyzedQuery& aq,
                                        const Package& pkg);

/// True iff every member tuple satisfies the WHERE clause.
Result<bool> SatisfiesBaseConstraints(const paql::AnalyzedQuery& aq,
                                      const Package& pkg);

/// Full validity: base + global + multiplicity cap (REPEAT).
Result<bool> IsValidPackage(const paql::AnalyzedQuery& aq, const Package& pkg);

/// Objective value of the package (0 when the query has no objective).
Result<double> PackageObjective(const paql::AnalyzedQuery& aq,
                                const Package& pkg);

/// Materializes the package as a table (repeated tuples appear repeatedly),
/// e.g. for display or CSV export.
db::Table MaterializePackage(const db::Table& table, const Package& pkg,
                             const std::string& name = "package");

}  // namespace pb::core

#endif  // PB_CORE_PACKAGE_H_
