// EXPLAIN for package queries — the §5 "Optimizing PaQL queries" challenge:
// "a more principled approach to package query optimization could add
// several benefits to the query engine."
//
// ExplainQuery performs the analysis the hybrid evaluator would do — base
// selectivity, linear structure, cardinality bounds, search-space size,
// translated model dimensions — and reports which strategy the Auto policy
// would choose and why, without running the (possibly expensive) search.

#ifndef PB_CORE_EXPLAIN_H_
#define PB_CORE_EXPLAIN_H_

#include <string>

#include "common/status.h"
#include "core/evaluator.h"
#include "core/pruning.h"
#include "paql/analyzer.h"

namespace pb::core {

/// The optimizer's view of one query.
struct QueryPlan {
  // Input shape.
  size_t table_rows = 0;
  size_t candidates = 0;          ///< rows surviving the base constraints
  double base_selectivity = 1.0;  ///< candidates / table_rows

  // Constraint structure.
  size_t linear_constraints = 0;
  size_t extreme_constraints = 0;
  bool ilp_translatable = false;
  std::string not_translatable_reason;
  bool has_objective = false;
  bool objective_linear = false;

  // §4.1 pruning.
  CardinalityBounds bounds;
  bool proven_infeasible = false;

  // Translated model dimensions (when translatable).
  int model_variables = 0;
  int model_rows = 0;

  // The Auto policy's verdict.
  Strategy chosen_strategy = Strategy::kAuto;
  std::string rationale;

  /// Multi-line human-readable plan (EXPLAIN output).
  std::string ToString() const;
};

/// Plans (without executing) the query under the given options.
Result<QueryPlan> ExplainQuery(const paql::AnalyzedQuery& aq,
                               const EvaluationOptions& options = {});

/// Convenience: parse + analyze + explain.
Result<QueryPlan> ExplainQuery(const std::string& paql,
                               const db::Catalog& catalog,
                               const EvaluationOptions& options = {});

}  // namespace pb::core

#endif  // PB_CORE_EXPLAIN_H_
