#include "core/brute_force.h"

#include <cmath>
#include <limits>

#include "common/stopwatch.h"
#include "db/ops.h"

namespace pb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFeasTol = 1e-9;

/// DFS state for the exhaustive enumeration.
class Enumerator {
 public:
  Enumerator(const paql::AnalyzedQuery& aq, const BruteForceOptions& options,
             std::vector<size_t> candidates, CardinalityBounds bounds)
      : aq_(aq),
        opts_(options),
        candidates_(std::move(candidates)),
        bounds_(bounds),
        n_(candidates_.size()) {}

  Status Prepare() {
    // Per-candidate combined weight for each linear constraint, plus suffix
    // min/max achievable contributions for interval bounding.
    const size_t rows = aq_.linear_constraints.size();
    std::vector<std::vector<double>> agg_w(aq_.aggs.size());
    for (size_t a = 0; a < aq_.aggs.size(); ++a) {
      PB_ASSIGN_OR_RETURN(
          agg_w[a], ComputeAggWeights(aq_.aggs[a], *aq_.table, candidates_));
    }
    w_.assign(rows, std::vector<double>(n_, 0.0));
    suffix_max_.assign(rows, std::vector<double>(n_ + 1, 0.0));
    suffix_min_.assign(rows, std::vector<double>(n_ + 1, 0.0));
    lo_.resize(rows);
    hi_.resize(rows);
    const double k = static_cast<double>(aq_.max_multiplicity);
    for (size_t r = 0; r < rows; ++r) {
      const paql::LinearConstraint& lc = aq_.linear_constraints[r];
      lo_[r] = lc.lo;
      hi_[r] = lc.hi;
      for (size_t i = 0; i < n_; ++i) {
        for (const paql::LinearAggTerm& t : lc.terms) {
          w_[r][i] += t.coeff * agg_w[t.agg_index][i];
        }
      }
      for (size_t i = n_; i-- > 0;) {
        suffix_max_[r][i] =
            suffix_max_[r][i + 1] + std::max(0.0, w_[r][i]) * k;
        suffix_min_[r][i] =
            suffix_min_[r][i + 1] + std::min(0.0, w_[r][i]) * k;
      }
    }
    sums_.assign(rows, 0.0);

    // Exact validity needs the original expression whenever the linear rows
    // do not capture the whole SUCH THAT clause.
    exact_check_needed_ = !aq_.ilp_translatable ||
                          !aq_.extreme_constraints.empty() ||
                          aq_.requires_nonempty;
    // Linear objective fast path.
    if (aq_.has_objective && aq_.objective_linear) {
      obj_w_.assign(n_, 0.0);
      for (const paql::LinearAggTerm& t : aq_.objective_terms) {
        for (size_t i = 0; i < n_; ++i) {
          obj_w_[i] += t.coeff * agg_w[t.agg_index][i];
        }
      }
    }
    return Status::OK();
  }

  Result<BruteForceResult> Run() {
    BruteForceResult out;
    out.bounds = bounds_;
    if (bounds_.infeasible) {
      out.exhausted = true;
      return out;
    }
    result_ = &out;
    best_obj_ = aq_.maximize ? -kInf : kInf;
    PB_RETURN_IF_ERROR(Dfs(0));
    out.found = found_;
    if (found_) {
      out.best = best_;
      out.best_objective = best_obj_valid_ ? best_obj_ : 0.0;
    }
    // "Exhausted" means the result is definitive: the tree was fully
    // explored, or a feasibility query was answered by its first valid
    // package. Budget stops and full collect buffers are not definitive.
    out.exhausted = stop_reason_ == StopReason::kNone ||
                    stop_reason_ == StopReason::kAnswered;
    return out;
  }

 private:
  int64_t CardLo() const {
    return opts_.use_cardinality_pruning ? bounds_.lo : 0;
  }
  int64_t CardHi() const {
    return opts_.use_cardinality_pruning
               ? bounds_.hi
               : static_cast<int64_t>(n_) * aq_.max_multiplicity;
  }

  bool stopped() const { return stop_reason_ != StopReason::kNone; }

  Status Dfs(size_t idx) {
    if (stopped()) return Status::OK();
    ++result_->nodes;
    if ((result_->nodes & 1023) == 0) {
      if (result_->nodes > opts_.max_nodes ||
          timer_.ElapsedSeconds() > opts_.time_limit_s) {
        stop_reason_ = StopReason::kBudget;
        return Status::OK();
      }
    }
    // Cardinality pruning (§4.1): can the count still reach [l, u]?
    int64_t remaining_max =
        static_cast<int64_t>(n_ - idx) * aq_.max_multiplicity;
    if (count_ > CardHi()) return Status::OK();
    if (count_ + remaining_max < CardLo()) return Status::OK();
    // Linear interval bounding: each row must still be able to land in
    // [lo, hi] given the best/worst remaining contributions.
    if (opts_.use_linear_bounding) {
      for (size_t r = 0; r < sums_.size(); ++r) {
        double reach_max = sums_[r] + suffix_max_[r][idx];
        double reach_min = sums_[r] + suffix_min_[r][idx];
        if (reach_max < lo_[r] - kFeasTol || reach_min > hi_[r] + kFeasTol) {
          return Status::OK();
        }
      }
    }
    if (idx == n_) {
      return CheckLeaf();
    }
    // Choose multiplicity 0..k for candidate idx. Trying 0 first biases the
    // search toward small packages (cheap leaves early).
    for (int64_t m = 0; m <= aq_.max_multiplicity; ++m) {
      if (m > 0) {
        Push(idx, 1);
      }
      PB_RETURN_IF_ERROR(Dfs(idx + 1));
      if (stopped()) break;
    }
    PopAll(idx);
    return Status::OK();
  }

  void Push(size_t idx, int64_t m) {
    stack_mult_.resize(std::max(stack_mult_.size(), idx + 1), 0);
    stack_mult_[idx] += m;
    count_ += m;
    for (size_t r = 0; r < sums_.size(); ++r) {
      sums_[r] += w_[r][idx] * static_cast<double>(m);
    }
  }

  void PopAll(size_t idx) {
    if (idx >= stack_mult_.size() || stack_mult_[idx] == 0) return;
    int64_t m = stack_mult_[idx];
    stack_mult_[idx] = 0;
    count_ -= m;
    for (size_t r = 0; r < sums_.size(); ++r) {
      sums_[r] -= w_[r][idx] * static_cast<double>(m);
    }
  }

  Status CheckLeaf() {
    if (count_ < CardLo() || count_ > CardHi()) return Status::OK();
    ++result_->leaves_checked;
    // Linear rows first (cheap, already maintained incrementally).
    for (size_t r = 0; r < sums_.size(); ++r) {
      if (sums_[r] < lo_[r] - kFeasTol || sums_[r] > hi_[r] + kFeasTol) {
        return Status::OK();
      }
    }
    Package pkg = CurrentPackage();
    if (exact_check_needed_) {
      PB_ASSIGN_OR_RETURN(bool ok, SatisfiesGlobalConstraints(aq_, pkg));
      if (!ok) return Status::OK();
    }
    // Valid package.
    if (opts_.collect_limit > 0 &&
        result_->all.size() < opts_.collect_limit) {
      result_->all.push_back(pkg);
      if (result_->all.size() >= opts_.collect_limit) {
        stop_reason_ = StopReason::kCollectFull;
      }
    }
    double obj = 0.0;
    if (aq_.has_objective) {
      if (!obj_w_.empty()) {
        for (size_t i = 0; i < stack_mult_.size(); ++i) {
          obj += obj_w_[i] * static_cast<double>(stack_mult_[i]);
        }
      } else {
        PB_ASSIGN_OR_RETURN(obj, PackageObjective(aq_, pkg));
      }
    }
    bool better = !found_ || (aq_.has_objective &&
                              (aq_.maximize ? obj > best_obj_
                                            : obj < best_obj_));
    if (better) {
      found_ = true;
      best_ = std::move(pkg);
      best_obj_ = obj;
      best_obj_valid_ = true;
    }
    // Without an objective and without collection, the first valid package
    // answers the query definitively.
    if (!aq_.has_objective && opts_.collect_limit == 0) {
      stop_reason_ = StopReason::kAnswered;
    }
    return Status::OK();
  }

  Package CurrentPackage() const {
    Package pkg;
    for (size_t i = 0; i < stack_mult_.size(); ++i) {
      if (stack_mult_[i] > 0) pkg.Add(candidates_[i], stack_mult_[i]);
    }
    return pkg;
  }

  const paql::AnalyzedQuery& aq_;
  const BruteForceOptions& opts_;
  std::vector<size_t> candidates_;
  CardinalityBounds bounds_;
  size_t n_;

  std::vector<std::vector<double>> w_;           // [row][candidate]
  std::vector<std::vector<double>> suffix_max_;  // [row][idx]
  std::vector<std::vector<double>> suffix_min_;
  std::vector<double> lo_, hi_, sums_, obj_w_;
  std::vector<int64_t> stack_mult_;
  int64_t count_ = 0;
  bool exact_check_needed_ = false;

  enum class StopReason { kNone, kAnswered, kCollectFull, kBudget };

  BruteForceResult* result_ = nullptr;
  bool found_ = false;
  StopReason stop_reason_ = StopReason::kNone;
  Package best_;
  double best_obj_ = 0.0;
  bool best_obj_valid_ = false;
  Stopwatch timer_;
};

}  // namespace

Result<BruteForceResult> BruteForceSearch(const paql::AnalyzedQuery& aq,
                                          const BruteForceOptions& options) {
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  PB_ASSIGN_OR_RETURN(CardinalityBounds bounds,
                      DeriveCardinalityBounds(aq, candidates));
  Enumerator e(aq, options, std::move(candidates), bounds);
  PB_RETURN_IF_ERROR(e.Prepare());
  return e.Run();
}

}  // namespace pb::core
