// PaQL -> ILP translation (the demo's §7 tutorial path: "a PaQL query is
// translated into a linear program and then solved using existing
// constraint solvers").
//
// Each base tuple that survives the WHERE clause becomes one integer
// variable x_i in [0, REPEAT] (default [0, 1]) — its multiplicity in the
// package. Linear global constraints become rows; MIN/MAX comparisons
// become per-tuple variable fixings (<=-direction) or at-least-one rows
// (>=-direction); AVG constraints were already rewritten by the analyzer.

#ifndef PB_CORE_TRANSLATOR_H_
#define PB_CORE_TRANSLATOR_H_

#include <vector>

#include "common/status.h"
#include "core/package.h"
#include "core/pruning.h"
#include "paql/analyzer.h"
#include "solver/model.h"

namespace pb::core {

struct TranslateOptions {
  /// Add the pruning-derived cardinality row lo <= sum x_i <= hi as a
  /// redundant-but-tightening constraint (the §4.1 bounds applied to the
  /// solver path). Ignored when `bounds` is null.
  const CardinalityBounds* bounds = nullptr;
};

/// The translated model plus the variable <-> base-row mapping.
struct IlpTranslation {
  solver::LpModel model;
  /// Model variable j corresponds to base-table row candidates[j].
  std::vector<size_t> candidates;
  /// Candidates whose variable was fixed to 0 by a MAX<=/MIN>= constraint.
  size_t num_fixed_out = 0;
};

/// Translates an analyzed query. Fails with kUnimplemented when the query
/// is not ILP-translatable (the caller falls back to search strategies) and
/// with kInfeasible when pruning bounds already prove emptiness.
Result<IlpTranslation> TranslateToIlp(const paql::AnalyzedQuery& aq,
                                      const TranslateOptions& options = {});

/// Converts a solver point back into a package.
Package DecodeSolution(const IlpTranslation& translation,
                       const std::vector<double>& x);

}  // namespace pb::core

#endif  // PB_CORE_TRANSLATOR_H_
