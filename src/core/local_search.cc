#include "core/local_search.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "common/random.h"
#include "common/stopwatch.h"
#include "db/ops.h"

namespace pb::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kFeasTol = 1e-9;

/// Incremental view of a package over the candidate list: per-linear-row
/// sums, occurrence count, and objective, all maintained in O(rows) per
/// single-tuple move.
class SearchState {
 public:
  Status Init(const paql::AnalyzedQuery& aq,
              std::vector<size_t> candidates) {
    aq_ = &aq;
    candidates_ = std::move(candidates);
    n_ = candidates_.size();
    std::vector<std::vector<double>> agg_w(aq.aggs.size());
    for (size_t a = 0; a < aq.aggs.size(); ++a) {
      PB_ASSIGN_OR_RETURN(
          agg_w[a], ComputeAggWeights(aq.aggs[a], *aq.table, candidates_));
    }
    const size_t rows = aq.linear_constraints.size();
    w_.assign(rows, std::vector<double>(n_, 0.0));
    lo_.resize(rows);
    hi_.resize(rows);
    scale_.resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      const paql::LinearConstraint& lc = aq.linear_constraints[r];
      lo_[r] = lc.lo;
      hi_[r] = lc.hi;
      scale_[r] = 1.0;
      if (std::isfinite(lc.lo)) {
        scale_[r] = std::max(scale_[r], std::abs(lc.lo));
      }
      if (std::isfinite(lc.hi)) {
        scale_[r] = std::max(scale_[r], std::abs(lc.hi));
      }
      for (size_t i = 0; i < n_; ++i) {
        for (const paql::LinearAggTerm& t : lc.terms) {
          w_[r][i] += t.coeff * agg_w[t.agg_index][i];
        }
      }
    }
    obj_w_.assign(n_, 0.0);
    if (aq.has_objective && aq.objective_linear) {
      for (const paql::LinearAggTerm& t : aq.objective_terms) {
        for (size_t i = 0; i < n_; ++i) {
          obj_w_[i] += t.coeff * agg_w[t.agg_index][i];
        }
      }
    }
    // Whether linear rows fully determine validity.
    exact_linear_ = aq.ilp_translatable && aq.extreme_constraints.empty() &&
                    !aq.requires_nonempty;
    mult_.assign(n_, 0);
    sums_.assign(rows, 0.0);
    return Status::OK();
  }

  size_t n() const { return n_; }
  int64_t count() const { return count_; }
  const std::vector<int64_t>& mult() const { return mult_; }
  double objective() const { return obj_; }
  bool has_linear_objective() const { return !obj_w_.empty(); }
  double move_obj_delta(size_t add, size_t drop) const {
    return obj_w_[add] - obj_w_[drop];
  }
  double add_obj_delta(size_t add) const { return obj_w_[add]; }

  void Clear() {
    std::fill(mult_.begin(), mult_.end(), 0);
    std::fill(sums_.begin(), sums_.end(), 0.0);
    count_ = 0;
    obj_ = 0.0;
  }

  void Apply(size_t i, int64_t delta) {
    mult_[i] += delta;
    count_ += delta;
    for (size_t r = 0; r < sums_.size(); ++r) {
      sums_[r] += w_[r][i] * static_cast<double>(delta);
    }
    obj_ += obj_w_.empty() ? 0.0 : obj_w_[i] * static_cast<double>(delta);
  }

  /// Normalized violation of the linear rows at the current point.
  double Violation() const { return ViolationWith(nullptr, 0, nullptr, 0); }

  /// Violation if `add` gained `da` occurrences and `drop` lost `dd`
  /// (hypothetical move, nothing mutated). Pass null to skip a side.
  double ViolationWith(const size_t* add, int64_t da, const size_t* drop,
                       int64_t dd) const {
    double total = 0.0;
    for (size_t r = 0; r < sums_.size(); ++r) {
      double s = sums_[r];
      if (add) s += w_[r][*add] * static_cast<double>(da);
      if (drop) s -= w_[r][*drop] * static_cast<double>(dd);
      if (s < lo_[r] - kFeasTol) total += (lo_[r] - s) / scale_[r];
      if (s > hi_[r] + kFeasTol) total += (s - hi_[r]) / scale_[r];
    }
    return total;
  }

  Package ToPackage() const {
    Package pkg;
    for (size_t i = 0; i < n_; ++i) {
      if (mult_[i] > 0) pkg.Add(candidates_[i], mult_[i]);
    }
    return pkg;
  }

  /// Exact validity: linear rows plus — when they are not the whole story —
  /// the original global-constraint expression.
  Result<bool> IsValid() const {
    if (Violation() > 0) return false;
    if (exact_linear_) return true;
    return SatisfiesGlobalConstraints(*aq_, ToPackage());
  }

  const paql::AnalyzedQuery& aq() const { return *aq_; }
  const std::vector<size_t>& candidates() const { return candidates_; }

 private:
  const paql::AnalyzedQuery* aq_ = nullptr;
  std::vector<size_t> candidates_;
  size_t n_ = 0;
  std::vector<std::vector<double>> w_;
  std::vector<double> lo_, hi_, scale_, obj_w_, sums_;
  std::vector<int64_t> mult_;
  int64_t count_ = 0;
  double obj_ = 0.0;
  bool exact_linear_ = false;
};

}  // namespace

Result<LocalSearchResult> LocalSearch(const paql::AnalyzedQuery& aq,
                                      const LocalSearchOptions& options) {
  Stopwatch timer;
  LocalSearchResult out;

  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  if (candidates.empty()) {
    // Only the empty package is possible.
    SearchState probe;
    PB_RETURN_IF_ERROR(probe.Init(aq, {}));
    PB_ASSIGN_OR_RETURN(bool valid, probe.IsValid());
    out.found = valid;
    out.seconds = timer.ElapsedSeconds();
    return out;
  }
  PB_ASSIGN_OR_RETURN(CardinalityBounds bounds,
                      DeriveCardinalityBounds(aq, candidates));
  if (bounds.infeasible) {
    out.seconds = timer.ElapsedSeconds();
    return out;  // pruning already proves there is nothing to find
  }

  SearchState state;
  PB_RETURN_IF_ERROR(state.Init(aq, std::move(candidates)));
  const size_t n = state.n();
  const int64_t max_mult = aq.max_multiplicity;
  const int64_t card_lo = std::max<int64_t>(bounds.lo, 0);
  const int64_t card_hi =
      std::min<int64_t>(bounds.hi, static_cast<int64_t>(n) * max_mult);

  Rng rng(options.seed);
  bool best_found = false;
  Package best_pkg;
  double best_obj = aq.maximize ? -kInf : kInf;

  auto obj_better = [&](double a, double b) {
    return aq.maximize ? a > b + 1e-12 : a < b - 1e-12;
  };

  for (int restart = 0; restart < options.max_restarts; ++restart) {
    if (timer.ElapsedSeconds() > options.time_limit_s) break;
    out.restarts_used = restart + 1;

    // ---- Start package: random cardinality within the pruned bounds,
    // random members (paper: "a starting package P0, which can be
    // constructed, for example, at random").
    state.Clear();
    int64_t target = card_lo == card_hi
                         ? card_lo
                         : rng.UniformInt(card_lo, std::min(card_hi,
                                                            card_lo + 64));
    target = std::max<int64_t>(target, aq.requires_nonempty ? 1 : 0);
    for (int64_t placed = 0; placed < target; ++placed) {
      size_t i = rng.Index(n);
      // Respect the multiplicity cap; linear probe for a free slot.
      for (size_t step = 0; step < n; ++step) {
        size_t j = (i + step) % n;
        if (state.mult()[j] < max_mult) {
          state.Apply(j, 1);
          break;
        }
      }
    }

    // ---- Phase 1: reduce violation; Phase 2: improve objective.
    int64_t iterations = 0;
    while (iterations < options.max_iterations &&
           timer.ElapsedSeconds() <= options.time_limit_s) {
      ++iterations;
      double current_violation = state.Violation();
      bool feasible = current_violation <= 0;
      if (feasible && (!aq.has_objective || !options.objective_phase)) break;

      // Scan moves, first-improving, randomized start offsets.
      bool accepted = false;
      size_t member_off = rng.Index(n);
      size_t cand_off = rng.Index(n);

      // (a) single-tuple swaps: drop one occurrence of p, add one of c.
      for (size_t pi = 0; pi < n && !accepted; ++pi) {
        size_t p = (pi + member_off) % n;
        if (state.mult()[p] == 0) continue;
        for (size_t ci = 0; ci < n && !accepted; ++ci) {
          size_t c = (ci + cand_off) % n;
          if (c == p || state.mult()[c] >= max_mult) continue;
          ++out.moves_evaluated;
          double v = state.ViolationWith(&c, 1, &p, 1);
          bool improves;
          if (!feasible) {
            improves = v < current_violation - 1e-12;
          } else {
            improves = v <= 0 && state.has_linear_objective() &&
                       obj_better(state.objective() +
                                      state.move_obj_delta(c, p),
                                  state.objective());
          }
          if (improves) {
            state.Apply(p, -1);
            state.Apply(c, +1);
            accepted = true;
            ++out.moves_accepted;
          }
        }
      }

      // (b) cardinality moves: add or drop one occurrence.
      if (!accepted && options.cardinality_moves) {
        if (state.count() < card_hi) {
          for (size_t ci = 0; ci < n && !accepted; ++ci) {
            size_t c = (ci + cand_off) % n;
            if (state.mult()[c] >= max_mult) continue;
            ++out.moves_evaluated;
            double v = state.ViolationWith(&c, 1, nullptr, 0);
            bool improves =
                !feasible
                    ? v < current_violation - 1e-12
                    : (v <= 0 && state.has_linear_objective() &&
                       obj_better(state.objective() + state.add_obj_delta(c),
                                  state.objective()));
            if (improves && state.count() + 1 <= card_hi) {
              state.Apply(c, +1);
              accepted = true;
              ++out.moves_accepted;
            }
          }
        }
        if (!accepted && state.count() > card_lo) {
          for (size_t pi = 0; pi < n && !accepted; ++pi) {
            size_t p = (pi + member_off) % n;
            if (state.mult()[p] == 0) continue;
            ++out.moves_evaluated;
            double v = state.ViolationWith(nullptr, 0, &p, 1);
            bool improves =
                !feasible
                    ? v < current_violation - 1e-12
                    : (v <= 0 && state.has_linear_objective() &&
                       obj_better(state.objective() - state.add_obj_delta(p),
                                  state.objective()));
            if (improves && state.count() - 1 >= card_lo) {
              state.Apply(p, -1);
              accepted = true;
              ++out.moves_accepted;
            }
          }
        }
      }

      // (c) sampled pair swaps (k = 2 neighborhood).
      if (!accepted && options.neighborhood_k >= 2 && !feasible) {
        for (int s = 0; s < options.pair_samples && !accepted; ++s) {
          size_t p1 = rng.Index(n), p2 = rng.Index(n);
          size_t c1 = rng.Index(n), c2 = rng.Index(n);
          if (state.mult()[p1] == 0 || state.mult()[p2] == 0) continue;
          if (p1 == p2 && state.mult()[p1] < 2) continue;
          if (state.mult()[c1] >= max_mult || state.mult()[c2] >= max_mult) {
            continue;
          }
          ++out.moves_evaluated;
          // Apply tentatively (cheap to undo).
          state.Apply(p1, -1);
          state.Apply(p2, -1);
          state.Apply(c1, +1);
          state.Apply(c2, +1);
          if (state.Violation() < current_violation - 1e-12) {
            accepted = true;
            ++out.moves_accepted;
          } else {
            state.Apply(c1, -1);
            state.Apply(c2, -1);
            state.Apply(p1, +1);
            state.Apply(p2, +1);
          }
        }
      }

      if (!accepted) break;  // local optimum for this restart
    }
    out.iterations += iterations;

    // Record the restart's outcome.
    PB_ASSIGN_OR_RETURN(bool valid, state.IsValid());
    if (valid) {
      Package pkg = state.ToPackage();
      double obj = 0.0;
      if (aq.has_objective) {
        PB_ASSIGN_OR_RETURN(obj, PackageObjective(aq, pkg));
      }
      if (!best_found || (aq.has_objective && obj_better(obj, best_obj))) {
        best_found = true;
        best_pkg = std::move(pkg);
        best_obj = obj;
      }
      if (!aq.has_objective) break;  // feasibility query answered
    }
  }

  out.found = best_found;
  if (best_found) {
    out.package = std::move(best_pkg);
    out.objective = aq.has_objective ? best_obj : 0.0;
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<db::Table> FindSingleTupleReplacementsViaJoin(
    const paql::AnalyzedQuery& aq, const Package& p0) {
  if (!aq.ilp_translatable) {
    return Status::Unimplemented(
        "the join formulation requires linear global constraints");
  }
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));

  // Per-row combined weights for members and candidates.
  const size_t rows = aq.linear_constraints.size();
  std::vector<std::vector<double>> agg_w(aq.aggs.size());
  for (size_t a = 0; a < aq.aggs.size(); ++a) {
    PB_ASSIGN_OR_RETURN(agg_w[a],
                        ComputeAggWeights(aq.aggs[a], *aq.table, candidates));
  }

  // Build the two relations of the paper's query: P0 (the current package)
  // and R (the candidates), each carrying the per-constraint weight columns.
  db::Schema p_schema, r_schema;
  PB_RETURN_IF_ERROR(p_schema.AddColumn({"pid", db::ValueType::kInt}));
  PB_RETURN_IF_ERROR(r_schema.AddColumn({"rid", db::ValueType::kInt}));
  for (size_t r = 0; r < rows; ++r) {
    PB_RETURN_IF_ERROR(
        p_schema.AddColumn({"pw" + std::to_string(r), db::ValueType::kDouble}));
    PB_RETURN_IF_ERROR(
        r_schema.AddColumn({"rw" + std::to_string(r), db::ValueType::kDouble}));
  }
  db::Table p_table("P0", std::move(p_schema));
  db::Table r_table("R", std::move(r_schema));

  // Map base row -> candidate position for weight lookup.
  std::vector<double> sums(rows, 0.0);
  std::unordered_map<size_t, size_t> cand_pos;
  for (size_t i = 0; i < candidates.size(); ++i) cand_pos[candidates[i]] = i;

  for (size_t m = 0; m < p0.rows.size(); ++m) {
    auto it = cand_pos.find(p0.rows[m]);
    if (it == cand_pos.end()) {
      return Status::InvalidArgument(
          "package member does not satisfy the base constraints");
    }
    db::Tuple row;
    row.push_back(db::Value::Int(static_cast<int64_t>(p0.rows[m])));
    for (size_t r = 0; r < rows; ++r) {
      double w = 0.0;
      for (const paql::LinearAggTerm& t : aq.linear_constraints[r].terms) {
        w += t.coeff * agg_w[t.agg_index][it->second];
      }
      row.push_back(db::Value::Double(w));
      sums[r] += w * static_cast<double>(p0.multiplicity[m]);
    }
    // One P0 row per distinct member (the swap removes one occurrence).
    p_table.AppendUnchecked(std::move(row));
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    db::Tuple row;
    row.push_back(db::Value::Int(static_cast<int64_t>(candidates[i])));
    for (size_t r = 0; r < rows; ++r) {
      double w = 0.0;
      for (const paql::LinearAggTerm& t : aq.linear_constraints[r].terms) {
        w += t.coeff * agg_w[t.agg_index][i];
      }
      row.push_back(db::Value::Double(w));
    }
    r_table.AppendUnchecked(std::move(row));
  }

  // The paper's predicate, generalized per linear constraint r:
  //   lo_r <= S_r - P0.pw_r + R.rw_r <= hi_r
  db::ExprPtr pred;
  for (size_t r = 0; r < rows; ++r) {
    const paql::LinearConstraint& lc = aq.linear_constraints[r];
    db::ExprPtr new_sum = db::Binary(
        db::BinaryOp::kAdd,
        db::Binary(db::BinaryOp::kSub, db::LitDouble(sums[r]),
                   db::Col("pw" + std::to_string(r))),
        db::Col("rw" + std::to_string(r)));
    if (std::isfinite(lc.lo)) {
      pred = db::AndMaybe(pred, db::Binary(db::BinaryOp::kGe,
                                           new_sum->Clone(),
                                           db::LitDouble(lc.lo)));
    }
    if (std::isfinite(lc.hi)) {
      pred = db::AndMaybe(pred, db::Binary(db::BinaryOp::kLe,
                                           std::move(new_sum),
                                           db::LitDouble(lc.hi)));
    }
  }
  // Do not "replace" a tuple with itself.
  pred = db::AndMaybe(
      pred, db::Binary(db::BinaryOp::kNe, db::Col("pid"), db::Col("rid")));

  return db::CrossJoin(p_table, r_table, pred, "replacements");
}

Result<KReplacementProbe> CountKReplacements(const paql::AnalyzedQuery& aq,
                                             const Package& p0, int k,
                                             uint64_t budget) {
  if (k < 1 || k > 3) {
    return Status::InvalidArgument("k must be 1, 2, or 3");
  }
  Stopwatch timer;
  KReplacementProbe probe;
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  std::vector<size_t> members = p0.rows;
  const size_t np = members.size();
  const size_t nr = candidates.size();
  if (np < static_cast<size_t>(k)) return probe;

  // Enumerate k distinct members to drop and k candidates (with repetition
  // across slots but respecting multiplicity) to add; this is exactly the
  // 2k-way join of the paper.
  std::vector<size_t> drop_idx(k), add_idx(k);
  std::function<Status(int)> choose_add = [&](int depth) -> Status {
    if (probe.truncated) return Status::OK();
    if (depth == k) {
      ++probe.combinations_examined;
      if (probe.combinations_examined >= budget) {
        probe.truncated = true;
        return Status::OK();
      }
      Package trial = p0;
      for (int d = 0; d < k; ++d) trial.Remove(members[drop_idx[d]], 1);
      bool cap_ok = true;
      for (int d = 0; d < k && cap_ok; ++d) {
        trial.Add(candidates[add_idx[d]], 1);
        if (trial.MultiplicityOf(candidates[add_idx[d]]) >
            aq.max_multiplicity) {
          cap_ok = false;
        }
      }
      if (cap_ok) {
        PB_ASSIGN_OR_RETURN(bool valid, SatisfiesGlobalConstraints(aq, trial));
        if (valid) ++probe.valid_replacements;
      }
      return Status::OK();
    }
    for (size_t c = (depth == 0 ? 0 : add_idx[depth - 1]); c < nr; ++c) {
      add_idx[depth] = c;
      PB_RETURN_IF_ERROR(choose_add(depth + 1));
      if (probe.truncated) break;
    }
    return Status::OK();
  };
  std::function<Status(int, size_t)> choose_drop = [&](int depth,
                                                       size_t from) -> Status {
    if (probe.truncated) return Status::OK();
    if (depth == k) return choose_add(0);
    for (size_t p = from; p < np; ++p) {
      drop_idx[depth] = p;
      PB_RETURN_IF_ERROR(choose_drop(depth + 1, p + 1));
      if (probe.truncated) break;
    }
    return Status::OK();
  };
  PB_RETURN_IF_ERROR(choose_drop(0, 0));
  probe.seconds = timer.ElapsedSeconds();
  return probe;
}

}  // namespace pb::core
