// Exhaustive package search — the baseline the paper calls "impractical"
// for anything but small inputs (§4: "A brute-force approach that generates
// and evaluates all candidate packages is thus impractical").
//
// The enumerator walks the multiplicity-assignment tree over the base-
// filtered candidates. Two prunings keep it exact but faster:
//   - cardinality bounds from §4.1 cut subtrees whose occurrence count can
//     no longer land inside [l, u];
//   - for linear constraints, interval arithmetic over the remaining
//     suffix (max positive / negative achievable contribution) cuts
//     subtrees that cannot re-enter a constraint's [lo, hi] window.
// Final package validity is always re-checked against the original global
// constraint expression, so OR / NOT / '<>' / non-linear queries are exact
// here (this is the oracle strategy the others are tested against).

#ifndef PB_CORE_BRUTE_FORCE_H_
#define PB_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/package.h"
#include "core/pruning.h"

namespace pb::core {

struct BruteForceOptions {
  bool use_cardinality_pruning = true;
  bool use_linear_bounding = true;
  uint64_t max_nodes = 200'000'000;
  double time_limit_s = 120.0;
  /// 0: search for the single best (or first, without an objective) valid
  /// package. >0: collect up to this many valid packages (for enumeration
  /// and the UI's package-space summary).
  size_t collect_limit = 0;
};

struct BruteForceResult {
  bool found = false;
  Package best;
  double best_objective = 0.0;
  /// Valid packages collected (when collect_limit > 0).
  std::vector<Package> all;
  uint64_t nodes = 0;
  uint64_t leaves_checked = 0;
  /// False when a node/time budget stopped the search early (results may
  /// then be incomplete/non-optimal).
  bool exhausted = true;
  CardinalityBounds bounds;
};

/// Runs the exhaustive search for `aq`.
Result<BruteForceResult> BruteForceSearch(
    const paql::AnalyzedQuery& aq, const BruteForceOptions& options = {});

}  // namespace pb::core

#endif  // PB_CORE_BRUTE_FORCE_H_
