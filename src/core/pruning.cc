#include "core/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math.h"
#include "db/ops.h"

namespace pb::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

std::string CardinalityBounds::ToString() const {
  if (infeasible) return "[infeasible]";
  std::string hi_s = hi == INT64_MAX ? "inf" : std::to_string(hi);
  return "[" + std::to_string(lo) + ", " + hi_s + "]";
}

Result<std::vector<double>> ComputeAggWeights(
    const paql::AggCall& agg, const db::Table& table,
    const std::vector<size_t>& rows) {
  std::vector<double> w(rows.size(), 0.0);
  if (agg.func == db::AggFunc::kCount && !agg.arg) {
    std::fill(w.begin(), w.end(), 1.0);
    return w;
  }
  if (!agg.arg) {
    return Status::InvalidArgument("aggregate requires an argument");
  }
  if (agg.func != db::AggFunc::kCount && agg.func != db::AggFunc::kSum) {
    return Status::InvalidArgument(
        std::string(db::AggFuncToString(agg.func)) +
        " has no per-tuple linear weight");
  }
  db::ExprPtr bound = agg.arg->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  if (agg.func == db::AggFunc::kCount) {
    // COUNT(col) only needs the null mask, which every storage layout
    // maintains — including the kNull (untyped Value) fallback, whose
    // cells used to drop to the per-row Eval path below.
    if (bound->kind == db::ExprKind::kColumnRef && bound->column_index >= 0 &&
        static_cast<size_t>(bound->column_index) <
            table.schema().num_columns()) {
      const db::Column& col = table.column_data(bound->column_index);
      const db::NullBitmap& nulls = col.nulls();
      if (nulls.null_count() == static_cast<int64_t>(col.size())) {
        // All-NULL column (e.g. a kNull-typed attribute that never saw a
        // value): every weight is zero — validate the indices and return
        // the zero fill without touching the bitmap.
        for (size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] >= col.size()) {
            return Status::OutOfRange("row index out of range");
          }
        }
        return w;
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] >= col.size()) {
          return Status::OutOfRange("row index out of range");
        }
        w[i] = nulls.Test(rows[i]) ? 0.0 : 1.0;
      }
      return w;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= table.num_rows()) {
        return Status::OutOfRange("row index out of range");
      }
      PB_ASSIGN_OR_RETURN(db::Value v, bound->Eval(table, rows[i]));
      w[i] = v.is_null() ? 0.0 : 1.0;
    }
    return w;
  }
  // SUM: one contiguous-span gather when the argument is a bare numeric
  // column, per-row expression evaluation otherwise. NULL contributes 0.
  PB_ASSIGN_OR_RETURN(std::vector<std::optional<double>> vals,
                      db::GatherNumericBound(table, *bound, rows));
  for (size_t i = 0; i < rows.size(); ++i) {
    w[i] = vals[i].value_or(0.0);
  }
  return w;
}

Result<CardinalityBounds> DeriveCardinalityBounds(
    const paql::AnalyzedQuery& aq, const std::vector<size_t>& candidates) {
  CardinalityBounds out;
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k = aq.max_multiplicity;
  const int64_t max_occurrences = n * k;

  out.lo = 0;
  out.hi = max_occurrences;

  // Per-tuple weights of every canonical aggregate, computed once.
  std::vector<std::vector<double>> weights(aq.aggs.size());
  for (size_t a = 0; a < aq.aggs.size(); ++a) {
    PB_ASSIGN_OR_RETURN(weights[a],
                        ComputeAggWeights(aq.aggs[a], *aq.table, candidates));
  }

  for (const paql::LinearConstraint& lc : aq.linear_constraints) {
    // Combined per-tuple weight w_i = sum_k coeff_k * weight_k(i).
    double wmin = kInf, wmax = -kInf;
    if (n == 0) {
      wmin = wmax = 0.0;
    } else if (lc.terms.size() == 1) {
      // Single-aggregate constraint (the common case): min/max over the
      // contiguous weight span, scaled by the coefficient.
      const paql::LinearAggTerm& t = lc.terms[0];
      const std::vector<double>& w = weights[t.agg_index];
      auto [mn, mx] = std::minmax_element(w.begin(), w.end());
      wmin = std::min(t.coeff * *mn, t.coeff * *mx);
      wmax = std::max(t.coeff * *mn, t.coeff * *mx);
    } else {
      for (int64_t i = 0; i < n; ++i) {
        double w = 0.0;
        for (const paql::LinearAggTerm& t : lc.terms) {
          w += t.coeff * weights[t.agg_index][i];
        }
        wmin = std::min(wmin, w);
        wmax = std::max(wmax, w);
      }
    }

    // A package with c occurrences has weighted sum in [c*wmin, c*wmax];
    // feasible c must satisfy  c*wmin <= hi  and  c*wmax >= lo.
    int64_t c_lo = 0, c_hi = max_occurrences;

    // c * wmax >= lo  (lower cardinality bound; the paper's l).
    if (lc.lo != -kInf) {
      if (wmax > kEps) {
        if (lc.lo > 0) {
          c_lo = std::max(
              c_lo, static_cast<int64_t>(std::ceil(lc.lo / wmax - kEps)));
        }
      } else if (wmax < -kEps) {
        // All weights negative: the sum only decreases with c.
        if (lc.lo > 0) {
          out.infeasible = true;  // positive lower bound unreachable
        } else {
          c_hi = std::min(
              c_hi, static_cast<int64_t>(std::floor(lc.lo / wmax + kEps)));
        }
      } else {  // wmax ~ 0
        if (lc.lo > kEps) out.infeasible = true;
      }
    }

    // c * wmin <= hi  (upper cardinality bound; the paper's u).
    if (lc.hi != kInf) {
      if (wmin > kEps) {
        if (lc.hi < 0) {
          out.infeasible = true;  // positive-weight sum cannot be negative
        } else {
          c_hi = std::min(
              c_hi, static_cast<int64_t>(std::floor(lc.hi / wmin + kEps)));
        }
      } else if (wmin < -kEps) {
        if (lc.hi < 0) {
          c_lo = std::max(
              c_lo, static_cast<int64_t>(std::ceil(lc.hi / wmin - kEps)));
        }
      } else {  // wmin ~ 0
        if (lc.hi < -kEps) out.infeasible = true;
      }
    }

    out.lo = std::max(out.lo, c_lo);
    out.hi = std::min(out.hi, c_hi);
  }

  if (out.lo > out.hi) out.infeasible = true;

  // Search-space accounting (§4.1's headline formula). With REPEAT k > 1 we
  // approximate by treating each tuple as k occurrence slots.
  int64_t slots = max_occurrences;
  out.log2_unpruned =
      n > 0 ? static_cast<double>(n) * std::log2(1.0 + static_cast<double>(k))
            : 0.0;
  if (out.infeasible) {
    out.log2_pruned = -kInf;
  } else {
    out.log2_pruned = Log2BinomialSum(slots, out.lo, std::min(out.hi, slots));
  }
  return out;
}

}  // namespace pb::core
