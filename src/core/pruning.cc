#include "core/pruning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math.h"
#include "db/ops.h"

namespace pb::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kEps = 1e-9;
}  // namespace

std::string CardinalityBounds::ToString() const {
  if (infeasible) return "[infeasible]";
  std::string hi_s = hi == INT64_MAX ? "inf" : std::to_string(hi);
  return "[" + std::to_string(lo) + ", " + hi_s + "]";
}

Result<std::vector<double>> ComputeAggWeights(
    const paql::AggCall& agg, const db::Table& table,
    const std::vector<size_t>& rows) {
  std::vector<double> w(rows.size(), 0.0);
  if (agg.func == db::AggFunc::kCount && !agg.arg) {
    std::fill(w.begin(), w.end(), 1.0);
    return w;
  }
  if (!agg.arg) {
    return Status::InvalidArgument("aggregate requires an argument");
  }
  if (agg.func != db::AggFunc::kCount && agg.func != db::AggFunc::kSum) {
    return Status::InvalidArgument(
        std::string(db::AggFuncToString(agg.func)) +
        " has no per-tuple linear weight");
  }
  db::ExprPtr bound = agg.arg->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  if (agg.func == db::AggFunc::kCount) {
    // COUNT(col) only needs the null mask, which every storage layout
    // maintains — including the kNull (untyped Value) fallback, whose
    // cells used to drop to the per-row Eval path below.
    if (bound->kind == db::ExprKind::kColumnRef && bound->column_index >= 0 &&
        static_cast<size_t>(bound->column_index) <
            table.schema().num_columns()) {
      const db::Column& col = table.column_data(bound->column_index);
      const db::NullBitmap& nulls = col.nulls();
      if (nulls.null_count() == static_cast<int64_t>(col.size())) {
        // All-NULL column (e.g. a kNull-typed attribute that never saw a
        // value): every weight is zero — validate the indices and return
        // the zero fill without touching the bitmap.
        for (size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] >= col.size()) {
            return Status::OutOfRange("row index out of range");
          }
        }
        return w;
      }
      for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] >= col.size()) {
          return Status::OutOfRange("row index out of range");
        }
        w[i] = nulls.Test(rows[i]) ? 0.0 : 1.0;
      }
      return w;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= table.num_rows()) {
        return Status::OutOfRange("row index out of range");
      }
      PB_ASSIGN_OR_RETURN(db::Value v, bound->Eval(table, rows[i]));
      w[i] = v.is_null() ? 0.0 : 1.0;
    }
    return w;
  }
  // SUM: one contiguous-span gather when the argument is a bare numeric
  // column, per-row expression evaluation otherwise. NULL contributes 0.
  PB_ASSIGN_OR_RETURN(std::vector<std::optional<double>> vals,
                      db::GatherNumericBound(table, *bound, rows));
  for (size_t i = 0; i < rows.size(); ++i) {
    w[i] = vals[i].value_or(0.0);
  }
  return w;
}

Result<AggWeightBounds> ComputeAggWeightBounds(
    const paql::AggCall& agg, const db::Table& table,
    const std::vector<size_t>& rows) {
  AggWeightBounds out;
  if (rows.empty()) return out;  // caller handles n == 0 before bounds
  if (agg.func == db::AggFunc::kCount && !agg.arg) {
    out.computed = true;
    out.min = out.max = 1.0;
    return out;
  }
  if (!agg.arg) {
    return Status::InvalidArgument("aggregate requires an argument");
  }
  if (agg.func != db::AggFunc::kCount && agg.func != db::AggFunc::kSum) {
    return out;  // no linear weight; the materializing path reports it
  }
  db::ExprPtr bound = agg.arg->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  if (bound->kind != db::ExprKind::kColumnRef || bound->column_index < 0 ||
      static_cast<size_t>(bound->column_index) >=
          table.schema().num_columns()) {
    return out;  // expression argument: fall back to materialized weights
  }
  const db::Column& col = table.column_data(bound->column_index);

  if (agg.func == db::AggFunc::kCount) {
    // COUNT(col) weights are the 0/1 null indicator; the bitmap is always
    // resident, so bounding it never reads value data (and is not counted
    // as a zone-map skip).
    const db::NullBitmap& nulls = col.nulls();
    bool any_null = false, any_value = false;
    for (size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= col.size()) {
        return Status::OutOfRange("row index out of range");
      }
      (nulls.any() && nulls.Test(rows[i]) ? any_null : any_value) = true;
    }
    out.computed = true;
    out.min = any_null ? 0.0 : 1.0;
    out.max = any_value ? 1.0 : 0.0;
    return out;
  }

  // SUM(bare numeric column): blocks fully covered by the candidate list
  // are bounded from their zone maps alone; partially covered blocks fall
  // back to reading the covered values.
  if (!col.numeric_storage()) return out;
  const db::NumericColumnView view = col.NumericView();
  const storage::ZoneMap* zones = col.ZoneMaps();
  const size_t bs = col.block_size();
  const size_t n = col.size();
  bool seen = false;
  double mn = 0.0, mx = 0.0;
  auto add = [&](double v) {
    if (!seen) {
      mn = mx = v;
      seen = true;
    } else {
      if (v < mn) mn = v;
      if (v > mx) mx = v;
    }
  };
  size_t i = 0;
  while (i < rows.size()) {
    if (rows[i] >= n) return Status::OutOfRange("row index out of range");
    const size_t b = rows[i] / bs;
    const size_t begin = b * bs;
    const size_t count = std::min(bs, n - begin);
    // Full coverage: the next `count` candidates are exactly this block's
    // rows (the common case — filter output is ascending and dense).
    bool full = i + count <= rows.size() && rows[i] == begin;
    if (full) {
      for (size_t k = 1; k < count; ++k) {
        if (rows[i + k] != begin + k) {
          full = false;
          break;
        }
      }
    }
    if (full) {
      const storage::ZoneMap& z = zones[b];
      if (z.has_minmax()) {
        add(z.min);
        add(z.max);
      }
      if (z.null_count > 0) add(0.0);  // NULL weighs 0, same as the gather
      ++out.zone_map_skipped_blocks;
      i += count;
    } else {
      const size_t end = begin + count;
      for (; i < rows.size() && rows[i] < end; ++i) {
        add(view.IsNull(rows[i]) ? 0.0 : view[rows[i]]);
      }
    }
  }
  PB_RETURN_IF_ERROR(view.status());
  out.computed = true;
  out.min = mn;
  out.max = mx;
  return out;
}

Result<CardinalityBounds> DeriveCardinalityBounds(
    const paql::AnalyzedQuery& aq, const std::vector<size_t>& candidates) {
  CardinalityBounds out;
  const int64_t n = static_cast<int64_t>(candidates.size());
  const int64_t k = aq.max_multiplicity;
  const int64_t max_occurrences = n * k;

  out.lo = 0;
  out.hi = max_occurrences;

  // Per-tuple weights, materialized lazily: single-aggregate constraints
  // usually get by on AggWeightBounds (zone maps / null bitmaps) and never
  // need the vector at all.
  std::vector<std::vector<double>> weights(aq.aggs.size());
  std::vector<bool> materialized(aq.aggs.size(), false);
  auto ensure_weights = [&](size_t a) -> Status {
    if (!materialized[a]) {
      PB_ASSIGN_OR_RETURN(weights[a],
                          ComputeAggWeights(aq.aggs[a], *aq.table, candidates));
      materialized[a] = true;
    }
    return Status::OK();
  };

  for (const paql::LinearConstraint& lc : aq.linear_constraints) {
    // Combined per-tuple weight w_i = sum_k coeff_k * weight_k(i).
    double wmin = kInf, wmax = -kInf;
    if (n == 0) {
      wmin = wmax = 0.0;
    } else if (lc.terms.size() == 1) {
      // Single-aggregate constraint (the common case): weight bounds from
      // zone-map metadata when the aggregate shape allows, else min/max
      // over the materialized span. Both are bit-identical; the metadata
      // path skips the value data of fully covered blocks.
      const paql::LinearAggTerm& t = lc.terms[0];
      PB_ASSIGN_OR_RETURN(
          AggWeightBounds b,
          ComputeAggWeightBounds(aq.aggs[t.agg_index], *aq.table, candidates));
      double mn, mx;
      if (b.computed) {
        out.zone_map_skipped_blocks += b.zone_map_skipped_blocks;
        mn = b.min;
        mx = b.max;
      } else {
        PB_RETURN_IF_ERROR(ensure_weights(t.agg_index));
        const std::vector<double>& w = weights[t.agg_index];
        auto [mn_it, mx_it] = std::minmax_element(w.begin(), w.end());
        mn = *mn_it;
        mx = *mx_it;
      }
      wmin = std::min(t.coeff * mn, t.coeff * mx);
      wmax = std::max(t.coeff * mn, t.coeff * mx);
    } else {
      for (const paql::LinearAggTerm& t : lc.terms) {
        PB_RETURN_IF_ERROR(ensure_weights(t.agg_index));
      }
      for (int64_t i = 0; i < n; ++i) {
        double w = 0.0;
        for (const paql::LinearAggTerm& t : lc.terms) {
          w += t.coeff * weights[t.agg_index][i];
        }
        wmin = std::min(wmin, w);
        wmax = std::max(wmax, w);
      }
    }

    // A package with c occurrences has weighted sum in [c*wmin, c*wmax];
    // feasible c must satisfy  c*wmin <= hi  and  c*wmax >= lo.
    int64_t c_lo = 0, c_hi = max_occurrences;

    // c * wmax >= lo  (lower cardinality bound; the paper's l).
    if (lc.lo != -kInf) {
      if (wmax > kEps) {
        if (lc.lo > 0) {
          c_lo = std::max(
              c_lo, static_cast<int64_t>(std::ceil(lc.lo / wmax - kEps)));
        }
      } else if (wmax < -kEps) {
        // All weights negative: the sum only decreases with c.
        if (lc.lo > 0) {
          out.infeasible = true;  // positive lower bound unreachable
        } else {
          c_hi = std::min(
              c_hi, static_cast<int64_t>(std::floor(lc.lo / wmax + kEps)));
        }
      } else {  // wmax ~ 0
        if (lc.lo > kEps) out.infeasible = true;
      }
    }

    // c * wmin <= hi  (upper cardinality bound; the paper's u).
    if (lc.hi != kInf) {
      if (wmin > kEps) {
        if (lc.hi < 0) {
          out.infeasible = true;  // positive-weight sum cannot be negative
        } else {
          c_hi = std::min(
              c_hi, static_cast<int64_t>(std::floor(lc.hi / wmin + kEps)));
        }
      } else if (wmin < -kEps) {
        if (lc.hi < 0) {
          c_lo = std::max(
              c_lo, static_cast<int64_t>(std::ceil(lc.hi / wmin - kEps)));
        }
      } else {  // wmin ~ 0
        if (lc.hi < -kEps) out.infeasible = true;
      }
    }

    out.lo = std::max(out.lo, c_lo);
    out.hi = std::min(out.hi, c_hi);
  }

  if (out.lo > out.hi) out.infeasible = true;

  // Search-space accounting (§4.1's headline formula). With REPEAT k > 1 we
  // approximate by treating each tuple as k occurrence slots.
  int64_t slots = max_occurrences;
  out.log2_unpruned =
      n > 0 ? static_cast<double>(n) * std::log2(1.0 + static_cast<double>(k))
            : 0.0;
  if (out.infeasible) {
    out.log2_pruned = -kInf;
  } else {
    out.log2_pruned = Log2BinomialSum(slots, out.lo, std::min(out.hi, slots));
  }
  return out;
}

}  // namespace pb::core
