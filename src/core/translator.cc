#include "core/translator.h"

#include <cmath>

#include "db/ops.h"

namespace pb::core {

namespace {

/// Evaluates an extreme-constraint argument for each candidate; NULLs come
/// back as std::nullopt (SQL MIN/MAX skip NULLs). Bare column references
/// gather from the contiguous column span in one pass.
Result<std::vector<std::optional<double>>> EvalExtremeArg(
    const db::ExprPtr& arg, const db::Table& table,
    const std::vector<size_t>& rows) {
  return db::GatherNumeric(table, arg, rows);
}

}  // namespace

Result<IlpTranslation> TranslateToIlp(const paql::AnalyzedQuery& aq,
                                      const TranslateOptions& options) {
  if (!aq.ilp_translatable) {
    return Status::Unimplemented("query is not ILP-translatable: " +
                                 aq.not_translatable_reason);
  }
  if (aq.has_objective && !aq.objective_linear) {
    return Status::Unimplemented("objective is not linear: " +
                                 aq.not_translatable_reason);
  }
  if (options.bounds && options.bounds->infeasible) {
    return Status::Infeasible(
        "cardinality pruning proves the query infeasible");
  }

  IlpTranslation out;
  PB_ASSIGN_OR_RETURN(out.candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  const size_t n = out.candidates.size();

  // Per-tuple weights of each canonical aggregate.
  std::vector<std::vector<double>> weights(aq.aggs.size());
  for (size_t a = 0; a < aq.aggs.size(); ++a) {
    PB_ASSIGN_OR_RETURN(
        weights[a], ComputeAggWeights(aq.aggs[a], *aq.table, out.candidates));
  }

  // Objective coefficient per candidate.
  std::vector<double> obj(n, 0.0);
  if (aq.has_objective) {
    for (const paql::LinearAggTerm& t : aq.objective_terms) {
      for (size_t i = 0; i < n; ++i) {
        obj[i] += t.coeff * weights[t.agg_index][i];
      }
    }
  }

  // Variables. MAX(e)<=c / MIN(e)>=c constraints fix violating tuples to 0.
  std::vector<double> ub(n, static_cast<double>(aq.max_multiplicity));
  for (const paql::ExtremeConstraint& ec : aq.extreme_constraints) {
    bool is_upper_side =
        (ec.func == db::AggFunc::kMax &&
         (ec.op == db::BinaryOp::kLe || ec.op == db::BinaryOp::kLt ||
          ec.op == db::BinaryOp::kEq)) ||
        (ec.func == db::AggFunc::kMin &&
         (ec.op == db::BinaryOp::kGe || ec.op == db::BinaryOp::kGt ||
          ec.op == db::BinaryOp::kEq));
    if (!is_upper_side) continue;
    PB_ASSIGN_OR_RETURN(auto vals,
                        EvalExtremeArg(ec.arg, *aq.table, out.candidates));
    for (size_t i = 0; i < n; ++i) {
      if (!vals[i]) continue;  // NULLs are invisible to MIN/MAX
      bool violates;
      if (ec.func == db::AggFunc::kMax) {
        violates = ec.op == db::BinaryOp::kLt ? *vals[i] >= ec.bound
                                              : *vals[i] > ec.bound;
      } else {
        violates = ec.op == db::BinaryOp::kGt ? *vals[i] <= ec.bound
                                              : *vals[i] < ec.bound;
      }
      if (violates && ub[i] > 0) {
        ub[i] = 0;
        ++out.num_fixed_out;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    out.model.AddVariable("x" + std::to_string(out.candidates[i]), 0.0, ub[i],
                          obj[i], /*is_integer=*/true);
  }
  out.model.SetSense(aq.has_objective && !aq.maximize
                         ? solver::ObjectiveSense::kMinimize
                         : solver::ObjectiveSense::kMaximize);

  // Linear global-constraint rows. The translator emits rows (one
  // span-gather over the candidate weights per constraint) and never
  // touches column storage: the simplex derives its CSC view lazily from
  // these rows via model.csc(), so both layouts come from one build pass.
  for (const paql::LinearConstraint& lc : aq.linear_constraints) {
    std::vector<solver::LinearTerm> terms;
    terms.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      double w = 0.0;
      for (const paql::LinearAggTerm& t : lc.terms) {
        w += t.coeff * weights[t.agg_index][i];
      }
      if (w != 0.0) terms.push_back({static_cast<int>(i), w});
    }
    double lo = std::isfinite(lc.lo) ? lc.lo : -solver::kInfinity;
    double hi = std::isfinite(lc.hi) ? lc.hi : solver::kInfinity;
    out.model.AddConstraint(lc.source_text, std::move(terms), lo, hi);
  }

  // MAX(e)>=c / MIN(e)<=c: at least one qualifying tuple must be selected.
  for (const paql::ExtremeConstraint& ec : aq.extreme_constraints) {
    bool is_lower_side =
        (ec.func == db::AggFunc::kMax &&
         (ec.op == db::BinaryOp::kGe || ec.op == db::BinaryOp::kGt ||
          ec.op == db::BinaryOp::kEq)) ||
        (ec.func == db::AggFunc::kMin &&
         (ec.op == db::BinaryOp::kLe || ec.op == db::BinaryOp::kLt ||
          ec.op == db::BinaryOp::kEq));
    if (!is_lower_side) continue;
    PB_ASSIGN_OR_RETURN(auto vals,
                        EvalExtremeArg(ec.arg, *aq.table, out.candidates));
    std::vector<solver::LinearTerm> terms;
    for (size_t i = 0; i < n; ++i) {
      if (!vals[i]) continue;
      bool qualifies;
      if (ec.func == db::AggFunc::kMax) {
        // Need some tuple with value >= c (or > c, or == c for equality).
        qualifies = ec.op == db::BinaryOp::kGt   ? *vals[i] > ec.bound
                    : ec.op == db::BinaryOp::kEq ? *vals[i] == ec.bound
                                                 : *vals[i] >= ec.bound;
      } else {
        qualifies = ec.op == db::BinaryOp::kLt   ? *vals[i] < ec.bound
                    : ec.op == db::BinaryOp::kEq ? *vals[i] == ec.bound
                                                 : *vals[i] <= ec.bound;
      }
      if (qualifies && ub[i] > 0) {
        terms.push_back({static_cast<int>(i), 1.0});
      }
    }
    if (terms.empty()) {
      return Status::Infeasible("extreme constraint '" + ec.source_text +
                                "' cannot be satisfied by any candidate");
    }
    out.model.AddConstraint(ec.source_text, std::move(terms), 1.0,
                            solver::kInfinity);
  }

  // AVG/MIN/MAX semantics force a non-empty package.
  if (aq.requires_nonempty) {
    std::vector<solver::LinearTerm> terms;
    for (size_t i = 0; i < n; ++i) {
      if (ub[i] > 0) terms.push_back({static_cast<int>(i), 1.0});
    }
    if (terms.empty()) {
      return Status::Infeasible(
          "no candidate can populate the required non-empty package");
    }
    out.model.AddConstraint("nonempty", std::move(terms), 1.0,
                            solver::kInfinity);
  }

  // Redundant-but-tightening cardinality row from §4.1 pruning.
  if (options.bounds) {
    const CardinalityBounds& b = *options.bounds;
    bool tightens = b.lo > 0 || b.hi < static_cast<int64_t>(n) *
                                            aq.max_multiplicity;
    if (tightens) {
      std::vector<solver::LinearTerm> terms;
      for (size_t i = 0; i < n; ++i) {
        terms.push_back({static_cast<int>(i), 1.0});
      }
      out.model.AddConstraint(
          "cardinality_pruning", std::move(terms),
          static_cast<double>(b.lo),
          b.hi == INT64_MAX ? solver::kInfinity : static_cast<double>(b.hi));
    }
  }

  return out;
}

Package DecodeSolution(const IlpTranslation& translation,
                       const std::vector<double>& x) {
  Package pkg;
  for (size_t j = 0; j < translation.candidates.size() && j < x.size(); ++j) {
    int64_t m = static_cast<int64_t>(std::llround(x[j]));
    if (m > 0) pkg.Add(translation.candidates[j], m);
  }
  return pkg;
}

}  // namespace pb::core
