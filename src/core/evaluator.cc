#include "core/evaluator.h"

#include "common/stopwatch.h"
#include "core/enumerator.h"
#include "core/translator.h"
#include "db/ops.h"
#include "paql/analyzer.h"

namespace pb::core {

const char* StrategyToString(Strategy s) {
  switch (s) {
    case Strategy::kAuto:        return "Auto";
    case Strategy::kIlpSolver:   return "IlpSolver";
    case Strategy::kBruteForce:  return "BruteForce";
    case Strategy::kLocalSearch: return "LocalSearch";
  }
  return "?";
}

namespace {

Result<EvaluationResult> RunIlp(const paql::AnalyzedQuery& aq,
                                const EvaluationOptions& options,
                                const CardinalityBounds& bounds) {
  EvaluationResult out;
  out.strategy_used = Strategy::kIlpSolver;
  out.bounds = bounds;
  TranslateOptions topts;
  if (options.use_pruning) topts.bounds = &bounds;
  PB_ASSIGN_OR_RETURN(IlpTranslation translation, TranslateToIlp(aq, topts));
  out.num_candidates = translation.candidates.size();
  PB_ASSIGN_OR_RETURN(solver::MilpResult r,
                      solver::SolveMilp(translation.model, options.milp));
  out.milp = r;
  switch (r.status) {
    case solver::MilpStatus::kOptimal:
    case solver::MilpStatus::kFeasible:
      out.package = DecodeSolution(translation, r.x);
      out.objective = aq.has_objective ? r.objective : 0.0;
      out.proven_optimal = r.status == solver::MilpStatus::kOptimal;
      return out;
    case solver::MilpStatus::kInfeasible:
      return Status::Infeasible("no package satisfies the constraints");
    case solver::MilpStatus::kUnbounded:
      return Status::Unbounded(
          "the objective is unbounded (add COUNT/SUM limits)");
    case solver::MilpStatus::kNoSolution:
      return Status::ResourceExhausted(
          "solver budget exhausted before a package was found");
  }
  return Status::Internal("unknown solver status");
}

Result<EvaluationResult> RunBruteForce(const paql::AnalyzedQuery& aq,
                                       const EvaluationOptions& options,
                                       const CardinalityBounds& bounds) {
  EvaluationResult out;
  out.strategy_used = Strategy::kBruteForce;
  out.bounds = bounds;
  BruteForceOptions bf = options.brute_force;
  bf.use_cardinality_pruning = options.use_pruning;
  PB_ASSIGN_OR_RETURN(BruteForceResult r, BruteForceSearch(aq, bf));
  out.brute_force = r;
  if (!r.found) {
    if (!r.exhausted) {
      return Status::ResourceExhausted(
          "brute-force budget exhausted before a package was found");
    }
    return Status::Infeasible("no package satisfies the constraints");
  }
  out.package = r.best;
  out.objective = r.best_objective;
  out.proven_optimal = r.exhausted;
  return out;
}

Result<EvaluationResult> RunLocalSearch(const paql::AnalyzedQuery& aq,
                                        const EvaluationOptions& options,
                                        const CardinalityBounds& bounds) {
  EvaluationResult out;
  out.strategy_used = Strategy::kLocalSearch;
  out.bounds = bounds;
  PB_ASSIGN_OR_RETURN(LocalSearchResult r,
                      LocalSearch(aq, options.local_search));
  out.local_search = r;
  if (!r.found) {
    return Status::Infeasible(
        "local search found no valid package (the query may still be "
        "satisfiable: the heuristic is incomplete)");
  }
  out.package = r.package;
  out.objective = r.objective;
  out.proven_optimal = false;
  return out;
}

}  // namespace

Result<EvaluationResult> QueryEvaluator::Evaluate(
    const std::string& paql, const EvaluationOptions& options) {
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, *catalog_));
  return Evaluate(aq, options);
}

Result<EvaluationResult> QueryEvaluator::Evaluate(
    const paql::AnalyzedQuery& aq, const EvaluationOptions& options) {
  Stopwatch timer;
  PB_ASSIGN_OR_RETURN(std::vector<size_t> candidates,
                      db::FilterIndices(*aq.table, aq.query.where));
  PB_ASSIGN_OR_RETURN(CardinalityBounds bounds,
                      DeriveCardinalityBounds(aq, candidates));
  if (options.use_pruning && bounds.infeasible) {
    return Status::Infeasible(
        "cardinality pruning proves no package can satisfy the constraints");
  }

  auto finish = [&](Result<EvaluationResult> r) -> Result<EvaluationResult> {
    if (r.ok()) {
      r->seconds = timer.ElapsedSeconds();
      if (r->num_candidates == 0) r->num_candidates = candidates.size();
    }
    return r;
  };

  switch (options.strategy) {
    case Strategy::kIlpSolver:
      return finish(RunIlp(aq, options, bounds));
    case Strategy::kBruteForce:
      return finish(RunBruteForce(aq, options, bounds));
    case Strategy::kLocalSearch:
      return finish(RunLocalSearch(aq, options, bounds));
    case Strategy::kAuto:
      break;
  }

  // ---- The hybrid policy (paper §5: "heuristically combines all of
  // them").
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);

  if (!translatable) {
    if (candidates.size() <= options.brute_force_threshold) {
      return finish(RunBruteForce(aq, options, bounds));
    }
    auto ls = RunLocalSearch(aq, options, bounds);
    if (ls.ok()) return finish(std::move(ls));
    // Heuristic failed; a bounded brute-force pass is the last resort.
    EvaluationOptions bf_opts = options;
    bf_opts.brute_force.time_limit_s =
        std::min(bf_opts.brute_force.time_limit_s, 10.0);
    return finish(RunBruteForce(aq, bf_opts, bounds));
  }

  if (!aq.has_objective) {
    // Feasibility query: a short local-search burst often answers without
    // touching the solver.
    EvaluationOptions quick = options;
    quick.local_search.time_limit_s =
        std::min(options.local_search.time_limit_s, 0.25);
    quick.local_search.max_restarts = 3;
    auto ls = RunLocalSearch(aq, quick, bounds);
    if (ls.ok()) return finish(std::move(ls));
    return finish(RunIlp(aq, options, bounds));
  }

  // Optimization query: the solver is exact; tiny inputs go exhaustive
  // (cheaper than the LP machinery and exact for any shape).
  if (candidates.size() <= 12 && aq.max_multiplicity <= 2) {
    return finish(RunBruteForce(aq, options, bounds));
  }
  return finish(RunIlp(aq, options, bounds));
}

Result<std::vector<Package>> QueryEvaluator::EvaluateAll(
    const paql::AnalyzedQuery& aq, const EvaluationOptions& options) {
  const size_t limit = static_cast<size_t>(aq.query.limit.value_or(1));
  const bool translatable =
      aq.ilp_translatable && (!aq.has_objective || aq.objective_linear);
  if (translatable && aq.max_multiplicity == 1) {
    EnumerateOptions opts;
    opts.max_packages = limit;
    opts.milp = options.milp;
    return EnumerateViaSolver(aq, opts);
  }
  BruteForceOptions bf = options.brute_force;
  bf.use_cardinality_pruning = options.use_pruning;
  return EnumerateExhaustively(aq, limit, bf);
}

Result<std::vector<Package>> QueryEvaluator::EvaluateAll(
    const std::string& paql, const EvaluationOptions& options) {
  PB_ASSIGN_OR_RETURN(paql::AnalyzedQuery aq,
                      paql::ParseAndAnalyze(paql, *catalog_));
  return EvaluateAll(aq, options);
}

}  // namespace pb::core
