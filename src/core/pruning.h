// Cardinality-based pruning (paper §4.1).
//
// For each global constraint the engine derives bounds [l, u] on the number
// of tuple occurrences any satisfying package can have. The paper's example:
// for 2000 <= SUM(calories) <= 2500 over gluten-free recipes,
//     l = ceil(2000 / MAX(calories)),  u = floor(2500 / MIN(calories)),
// because l tuples of maximal calories are needed to reach the lower bound
// and more than u tuples of minimal calories would overshoot the upper
// bound. (The paper's text shows 3000 in the numerator of u — a typo for
// the query's 2500.)
//
// This module generalizes the formula to arbitrary linear constraints
// lo <= sum w_i x_i <= hi with per-tuple weights w_i of either sign: a
// package with c occurrences has its weighted sum inside [c*wmin, c*wmax],
// so c is feasible only if that interval intersects [lo, hi]. Intersecting
// the per-constraint bounds gives the final [l, u]; an empty intersection
// proves infeasibility without any search. The reduction in search-space
// size — from 2^n to sum_{k=l..u} C(n, k) — is reported in log2.

#ifndef PB_CORE_PRUNING_H_
#define PB_CORE_PRUNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "paql/analyzer.h"

namespace pb::core {

/// Cardinality bounds on total tuple occurrences in any valid package.
struct CardinalityBounds {
  int64_t lo = 0;
  int64_t hi = INT64_MAX;
  /// True when the bounds prove no package (of any cardinality) satisfies
  /// the linear global constraints.
  bool infeasible = false;

  /// log2 of the unpruned candidate-package count (2^n for REPEAT-free
  /// queries; (1+k)^n with REPEAT k).
  double log2_unpruned = 0.0;
  /// log2 of the pruned count sum_{c=lo..hi} C(n, c) (REPEAT-free queries;
  /// with REPEAT this is an upper-bound approximation over n*k occurrence
  /// slots, noted in EXPERIMENTS.md).
  double log2_pruned = 0.0;

  /// Blocks whose weight bounds came from zone-map metadata instead of a
  /// value scan while deriving these bounds. Independent of where the
  /// column bytes live (resident columns carry the same zone maps), so the
  /// count is deterministic for a given table + query and CI-gateable.
  int64_t zone_map_skipped_blocks = 0;

  std::string ToString() const;
};

/// Min/max of one aggregate's per-tuple weights over the candidate rows,
/// derived without materializing the weight vector when the aggregate
/// shape allows it (COUNT(*), COUNT(bare column), SUM(bare numeric
/// column)). `computed == false` means the shape is not supported and the
/// caller must fall back to ComputeAggWeights + minmax. The min/max are
/// bit-identical to minmax over the materialized weights: zone min/max are
/// accumulated from the same values a scan would visit, extended with 0.0
/// exactly when the block has NULLs (NULL weighs 0).
struct AggWeightBounds {
  bool computed = false;
  double min = 0.0;
  double max = 0.0;
  /// Fully-covered blocks bounded from zone metadata (no value read).
  int64_t zone_map_skipped_blocks = 0;
};

Result<AggWeightBounds> ComputeAggWeightBounds(const paql::AggCall& agg,
                                               const db::Table& table,
                                               const std::vector<size_t>& rows);

/// Per-tuple weight of one linear aggregate (COUNT(*) -> 1, COUNT(e) -> 0/1
/// null indicator, SUM(e) -> the value with NULL as 0) for each candidate
/// row. Shared by the pruner, the ILP translator, and local search.
Result<std::vector<double>> ComputeAggWeights(
    const paql::AggCall& agg, const db::Table& table,
    const std::vector<size_t>& rows);

/// Derives cardinality bounds for the query over the base-filtered
/// candidate rows. Queries with no linear constraints get the trivial
/// bounds [0, n*max_multiplicity].
Result<CardinalityBounds> DeriveCardinalityBounds(
    const paql::AnalyzedQuery& aq, const std::vector<size_t>& candidates);

}  // namespace pb::core

#endif  // PB_CORE_PRUNING_H_
