// SketchRefine: scalable approximate package evaluation.
//
// The demo paper's Challenges section (§5) calls for principled scaling of
// package evaluation beyond what one monolithic ILP can handle; the
// follow-up PaQL paper (Brucato et al., VLDB 2016) answers with
// SketchRefine, implemented here as the engine's scalability extension:
//
//   Offline  PARTITION the candidate tuples into groups of at most tau
//            tuples that are similar on the attributes the query
//            aggregates; pick one representative per group.
//   Sketch   Solve the package query over the representatives only, where
//            a representative may repeat up to its group's size — an ILP
//            with n/tau variables instead of n.
//   Refine   Replace each representative's multiplicity m_g with real
//            tuples from its group by solving a small ILP over the group's
//            members with all other groups pinned at their sketch
//            (representative) contributions. Those sub-ILPs depend only on
//            the sketch solution, so they run in parallel on a thread
//            pool and merge in deterministic group order. If the merged
//            package drifts out of feasibility (chosen members aggregate
//            differently than their representative), a sequential repair
//            pass rebuilds it greedily, propagating actual residuals group
//            by group; backtracking excludes a group whose sub-ILP is
//            infeasible and restarts from the sketch. Every pass is
//            deterministic, so results are identical for any num_threads
//            as long as the solver's stopping rule is (i.e. no sub-ILP
//            hits MilpOptions::time_limit_s mid-search — prefer node
//            budgets when exact reproducibility matters).
//
// The refine/repair sub-ILP sequence re-solves structurally identical
// models per group (the repair pass shifts only constraint ranges), so each
// group's solver warm-start state — root LP basis plus pseudocost branching
// history — is cached from the parallel pass and re-seeded into that
// group's repair solve. Reuse is task-local and consumed in deterministic
// repair order, so thread-count invariance is preserved.
//
// The result is validated against the original query; approximation shows
// up only in the objective value, which the E6 bench compares to Direct.
//
// Incremental maintenance (HTAP): the partition is reusable state, not a
// per-call throwaway. A caller that keeps a SketchRefineState alive across
// calls (SketchRefineOptions::state) turns appends into maintenance work
// instead of a rebuild: new candidates are routed to their nearest group
// (in the state's frozen feature normalization), groups that grow past a
// size threshold split and undersized ones merge, and only "dirty" groups
// — those whose membership changed, or whose residual constraints moved —
// are re-solved, each from its saved per-group MilpWarmStart. A clean
// group whose residual repeats exactly reuses its cached sub-solution
// without any solver work. Because the solver is deterministic and warm
// starts never change results (pinned by test_warm_start), a maintained
// call is bit-identical to re-solving every group cold over the same
// partition; reuse only removes work, never changes answers.

#ifndef PB_CORE_SKETCH_REFINE_H_
#define PB_CORE_SKETCH_REFINE_H_

#include <cstdint>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "core/package.h"
#include "solver/milp.h"

namespace pb::core {

/// Persistent partitioning state for one (query, table) pair, owned by the
/// caller and passed via SketchRefineOptions::state. SketchRefine reads it
/// on entry and updates it on exit:
///
///   - empty / incompatible state -> a full partition build populates it;
///   - compatible state over a grown candidate set -> incremental
///     maintenance (route new candidates, split/merge, re-solve only the
///     dirty groups).
///
/// Compatibility requires the same query (weights per candidate and the
/// feature dimensionality derive from it) over the same table with rows
/// only appended since the state was built: WHERE predicates are per-row,
/// so the surviving candidate positions of the old prefix are unchanged
/// and new candidates can only appear at the end. The caller is
/// responsible for that discipline (the Engine keys states on query text
/// and drops them on any non-append catalog mutation); SketchRefine itself
/// only checks the cheap invariants (dimensionality, monotone growth).
///
/// NOT thread-safe: like MilpWarmStart, one state must not be shared by
/// concurrent calls.
struct SketchRefineState {
  struct Group {
    std::vector<size_t> members;  ///< candidate positions
    size_t rep = 0;               ///< representative (candidate position)
    /// Membership changed since the last successful solve (or the group
    /// was never solved): the representative must be recomputed and the
    /// cached sub-solution is gone.
    bool dirty = true;
    /// Per-group solver warm start (root basis + pseudocosts), reused
    /// across calls whenever this group's sub-ILP is re-solved.
    solver::MilpWarmStart warm;
    /// Cached refine sub-solution from the last successful call, valid
    /// while the group stays clean. Reused verbatim when the residual it
    /// was solved against repeats exactly (same model bit-for-bit, and the
    /// solver is deterministic — so reuse cannot change the answer).
    bool has_solution = false;
    std::vector<double> cached_others;
    solver::MilpResult cached_solution;
  };

  /// Candidates covered by `groups` (positions [0, n_candidates) of the
  /// filtered candidate vector).
  size_t n_candidates = 0;
  size_t dims = 0;  ///< feature dimensionality the state was built with
  /// Frozen per-dimension normalization captured at build time. Routing
  /// and centroid geometry must live in the space the partition was built
  /// in, so the affine map is state — appended values are mapped with it,
  /// not re-normalized.
  std::vector<double> feat_lo;
  std::vector<double> feat_span;
  std::vector<Group> groups;
  /// Sketch-phase warm start (survives across calls; the signature check
  /// resets it automatically when the group count changes).
  solver::MilpWarmStart sketch_warm;

  /// Drops every cached sub-solution and warm start while keeping the
  /// partition itself — the "cold re-solve over the same partition"
  /// baseline the incremental path is benchmarked (and bit-compared)
  /// against.
  void InvalidateSolutions() {
    for (Group& g : groups) {
      g.warm = solver::MilpWarmStart();
      g.has_solution = false;
      g.cached_others.clear();
      g.cached_solution = solver::MilpResult();
    }
    sketch_warm = solver::MilpWarmStart();
  }
};

struct SketchRefineOptions {
  /// Maximum tuples per partition (tau). Smaller = finer approximation,
  /// larger sketch model.
  size_t partition_size = 64;
  /// Backtracking budget: how many failed groups may be excluded from the
  /// sketch before giving up.
  int max_backtracks = 4;
  /// Unified thread budget (see common/budget.h): `compute.threads` is the
  /// total budget, `compute.node_threads` the per-sub-ILP tree share. The
  /// fields below are DEPRECATED aliases kept for one release; each knob
  /// resolves to max(compute field, alias), both defaulting to 1.
  ///
  /// Cancellation and deadlines ride in `milp`: milp.cancel is polled
  /// between every phase and sub-solve here (and inside each solve's own
  /// tree search), and milp.time_limit_s bounds the WHOLE SketchRefine
  /// call — each sub-solve's limit is clamped to the time remaining, so
  /// the pipeline cannot overshoot the budget by a factor of its solve
  /// count. A cancelled or out-of-time call returns found == false with
  /// whatever phase counters were already earned; it never returns a
  /// partially merged package.
  ComputeBudget compute;
  /// DEPRECATED alias for compute.threads (see above).
  /// Total thread budget for the solve phases. The Refine phase splits it
  /// between group-level and node-level parallelism: num_threads /
  /// node_threads groups solve concurrently, each sub-ILP running its
  /// branch-and-bound with node_threads-way tree parallelism; the Sketch
  /// phase's single monolithic ILP always gets the whole budget as tree
  /// parallelism, as do the sequential repair re-solves. The result is
  /// bit-identical for any value (and any split) provided the solver stops
  /// deterministically (a sub-ILP that hits `milp.time_limit_s` mid-search
  /// can surface a different incumbent under CPU contention; use
  /// `milp.max_nodes` as the budget when reproducibility matters).
  int num_threads = 1;
  /// DEPRECATED alias for compute.node_threads (see above).
  /// Threads each refine sub-ILP's tree search gets
  /// (MilpOptions::num_threads for the per-group solves), clamped into
  /// [1, num_threads] so the total budget stays authoritative. 1 — the
  /// default — spends the whole budget on group-level fan-out, which is
  /// the right split while there are many more groups than threads; raise
  /// it (up to num_threads = one group at a time, all tree parallelism)
  /// when few large groups leave the pool underfilled. Never changes the
  /// result, only the schedule.
  int node_threads = 1;
  solver::MilpOptions milp;

  // ----- Incremental maintenance (HTAP) ------------------------------------

  /// Optional cross-call partition state (borrowed, in/out); see
  /// SketchRefineState. Null = the classic one-shot pipeline.
  SketchRefineState* state = nullptr;
  /// A maintained group larger than this re-splits into tau-bounded parts
  /// (0 = 2 * partition_size). Routing alone never re-partitions, so the
  /// threshold bounds how far a hot group can drift from tau before it is
  /// split back.
  size_t split_threshold = 0;
  /// A maintained group smaller than this merges into its nearest
  /// neighbour (0 = never merge). Appends never shrink groups, so merges
  /// only fire when splits leave slivers behind or the caller lowers tau.
  size_t merge_min_size = 0;
  /// Routing radius: an appended candidate farther than this (L2 in the
  /// state's frozen normalized feature space) from every representative
  /// starts a new singleton group instead of stretching the nearest one
  /// (0 = unlimited, always route).
  double route_max_distance = 0.0;
  /// Reuse cached sub-solutions of clean groups whose residuals repeat
  /// exactly. Off = re-solve every refined group (the cold baseline; the
  /// result is bit-identical either way, only the work differs).
  bool reuse_group_solutions = true;
};

struct SketchRefineResult {
  bool found = false;
  Package package;
  double objective = 0.0;
  size_t num_partitions = 0;
  size_t sketch_variables = 0;
  int backtracks = 0;
  /// True when the run stopped early because milp.cancel requested it or
  /// the milp.time_limit_s whole-call budget ran out (found is then false).
  bool cancelled = false;
  /// Sequential repair passes taken after a parallel refine drifted out of
  /// feasibility (0 when the independent solves merged cleanly).
  int repair_passes = 0;
  int64_t refine_ilps_solved = 0;
  /// Total simplex iterations across every MILP solved (sketch, refine,
  /// repair) — the substrate-cost metric the warm-start benchmarks compare.
  int64_t lp_iterations = 0;
  /// Subset of lp_iterations spent in dual-simplex child re-solves
  /// (0 when milp.use_dual_simplex or milp.warm_start_lps is off).
  int64_t lp_dual_iterations = 0;
  /// Basis refactorizations across every MILP solved — the factorization-
  /// layer cost metric the engine benchmarks gate alongside iterations.
  int64_t lp_refactorizations = 0;
  double partition_seconds = 0.0;
  double sketch_seconds = 0.0;
  double refine_seconds = 0.0;
  /// Feature blocks whose spread bounds came from the partitioner's zone
  /// index instead of a value scan (identity-ordered ranges only; see
  /// PartitionCandidatesColumnar). Deterministic for a given query + table.
  int64_t zone_map_skipped_blocks = 0;
  // ----- Incremental maintenance counters (0 without options.state) -------
  /// The partition came from options.state (incremental maintenance ran
  /// instead of a full build).
  bool state_reused = false;
  /// Appended candidates routed into existing (or new singleton) groups.
  int64_t appended_routed = 0;
  /// Refined groups re-solved this call (dirty membership, moved residual,
  /// or reuse disabled).
  int64_t dirty_groups = 0;
  /// Refined groups answered from the state's cached sub-solutions with
  /// zero solver work.
  int64_t groups_reused = 0;
  int64_t groups_split = 0;   ///< maintained groups re-split (over threshold)
  int64_t groups_merged = 0;  ///< maintained groups merged away (under min)
};

/// Offline partitioning, exposed for reuse across queries on the same
/// table (the 2016 paper's "offline" phase). `features` are per-candidate
/// numeric vectors; groups have at most `partition_size` members.
/// (Row-major convenience wrapper; transposes and delegates to the
/// column-major form below.)
std::vector<std::vector<size_t>> PartitionCandidates(
    const std::vector<std::vector<double>>& features, size_t partition_size);

/// Column-major partitioning over `n` candidates: feature_cols[d] is one
/// contiguous span of dimension d (length n) — e.g. a per-candidate gather
/// of a table column. This is the form the engine's hot path uses.
///
/// The recursive median split scans every dimension of a range to find the
/// widest spread. For ranges still in identity order (no reordering has
/// touched them yet — always true for the top-level range and for ranges
/// produced by positional splits), those scans are answered from a zone
/// index built once per call: per-block min/max over each feature column,
/// so fully covered blocks never re-read their values. When
/// `zone_map_skipped_blocks` is non-null it accumulates one count per
/// (dimension, block) answered from the index.
std::vector<std::vector<size_t>> PartitionCandidatesColumnar(
    const std::vector<std::vector<double>>& feature_cols, size_t n,
    size_t partition_size, int64_t* zone_map_skipped_blocks = nullptr);

/// Runs Sketch + Refine for an ILP-translatable query.
Result<SketchRefineResult> SketchRefine(
    const paql::AnalyzedQuery& aq, const SketchRefineOptions& options = {});

}  // namespace pb::core

#endif  // PB_CORE_SKETCH_REFINE_H_
