// Bounded-variable revised primal simplex.
//
// This is the LP engine underneath the MILP branch-and-bound. It handles
// ranged constraints (lo <= ax <= hi) by introducing one slack per row
// (ax - s = 0, s in [lo, hi]) and runs a two-phase primal simplex:
//
//   Phase 1 starts from the always-valid slack basis and minimizes the total
//   bound violation of basic variables (piecewise-linear composite phase 1;
//   the cost vector is re-derived each iteration, and infeasible basics
//   block the ratio test at the bound where their cost segment changes).
//
//   Phase 2 is the standard bounded-variable primal simplex with Dantzig
//   pricing and a Bland's-rule fallback for anti-cycling after a stall
//   threshold. The basis inverse is kept dense (rows are few in package
//   models: one per global constraint) and refactorized periodically.

#ifndef PB_SOLVER_SIMPLEX_H_
#define PB_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "solver/model.h"

namespace pb::solver {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* LpStatusToString(LpStatus s);

/// Result of one LP solve.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Structural variable values (model order); valid when kOptimal.
  std::vector<double> x;
  /// Objective under the model's sense; valid when kOptimal.
  double objective = 0.0;
  int64_t iterations = 0;
};

struct SimplexOptions {
  double feas_tol = 1e-7;     ///< bound/row feasibility tolerance
  double opt_tol = 1e-9;      ///< reduced-cost optimality tolerance
  double pivot_tol = 1e-9;    ///< smallest acceptable pivot magnitude
  int64_t max_iterations = 0; ///< 0 = automatic (scaled to model size)
  int refactor_every = 64;    ///< basis-inverse refactorization period
  /// Use Bland's rule from the first iteration (ablation knob; the default
  /// prices with Dantzig and falls back to Bland only on suspected cycling).
  bool always_bland = false;
};

/// Solves the LP relaxation of `model` (integrality is ignored).
/// `bound_override`, when non-null, replaces variable bounds (used by
/// branch-and-bound nodes); it must have one (lb, ub) pair per variable.
Result<LpSolution> SolveLp(
    const LpModel& model, const SimplexOptions& options = {},
    const std::vector<std::pair<double, double>>* bound_override = nullptr);

}  // namespace pb::solver

#endif  // PB_SOLVER_SIMPLEX_H_
