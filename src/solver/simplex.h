// Bounded-variable revised simplex: two-phase primal plus a dual simplex
// for warm re-solves.
//
// This is the LP engine underneath the MILP branch-and-bound. It handles
// ranged constraints (lo <= ax <= hi) by introducing one slack per row
// (ax - s = 0, s in [lo, hi]) and runs a two-phase primal simplex:
//
//   Phase 1 starts from the always-valid slack basis and minimizes the total
//   bound violation of basic variables (piecewise-linear composite phase 1;
//   the cost vector is re-derived each iteration, and infeasible basics
//   block the ratio test at the bound where their cost segment changes).
//
//   Phase 2 is the standard bounded-variable primal simplex with devex
//   pricing (Dantzig as an ablation knob) and a Bland's-rule fallback for
//   anti-cycling after a stall threshold.
//
// The linear algebra lives behind two layers (see factorization.h and
// pricing.h): a BasisFactorization — sparse LU with eta updates by
// default, the historical dense inverse as the ablation baseline — and a
// Pricing object scoring entering columns / leaving rows. Reduced costs
// are maintained incrementally from the priced pivot row (a sparse BTRAN
// per pivot) instead of being recomputed by a dense scan each iteration,
// and are rebuilt from fresh duals on every refactorization and before
// any claim of optimality.
//
// When a warm-start basis arrives that is bound-infeasible but still
// dual-feasible — exactly what a branch-and-bound child inherits after the
// branch tightened one variable bound — the solve enters a bounded-variable
// DUAL simplex instead of the phase-1 primal repair: pick the most-violated
// basic variable (dual devex row weights; lowest-index Bland fallback for
// anti-cycling), run the dual ratio test over the priced pivot row, and
// pivot through the same factorization layer the primal uses.
// Primal feasibility is restored in a few dual pivots while dual
// feasibility (= optimality) is maintained throughout, so the follow-up
// primal phases exit immediately. A dual run that hits numerical trouble
// falls back to the cold primal path before ever concluding infeasible.

#ifndef PB_SOLVER_SIMPLEX_H_
#define PB_SOLVER_SIMPLEX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "solver/factorization.h"
#include "solver/model.h"
#include "solver/pricing.h"

namespace pb::solver {

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

const char* LpStatusToString(LpStatus s);

/// Where a variable rests in a simplex basis. Variables 0..n-1 are the
/// model's structural columns; n..n+m-1 are the per-row slacks.
enum class VarStat : int8_t { kBasic, kAtLower, kAtUpper, kFree };

/// Snapshot of a simplex basis, sufficient to warm-start a later solve of
/// the same model (or any model with identical dimensions — structural
/// compatibility is the caller's contract; SolveLp falls back to a cold
/// start whenever the snapshot does not fit or is singular).
struct LpBasis {
  /// basic[i] = index of the variable basic in row i (size m).
  std::vector<int> basic;
  /// Status of every variable, structural then slack (size n + m).
  /// stat[basic[i]] must be kBasic; exactly m entries are kBasic.
  std::vector<VarStat> stat;

  bool empty() const { return basic.empty(); }
  void clear() {
    basic.clear();
    stat.clear();
  }
};

/// Result of one LP solve.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  /// Structural variable values (model order); valid when kOptimal.
  std::vector<double> x;
  /// Objective under the model's sense; valid when kOptimal.
  double objective = 0.0;
  int64_t iterations = 0;
  /// Subset of `iterations` spent in the dual simplex (0 for cold solves
  /// and for warm starts repaired by the primal phase 1).
  int64_t dual_iterations = 0;
  /// Full basis factorizations (initial, periodic, and recovery) and
  /// successful column-replace updates between them. Deterministic for a
  /// given model/options, so benches gate on them.
  int64_t refactorizations = 0;
  int64_t basis_updates = 0;
  /// Final basis; populated when kOptimal (for warm-starting related
  /// solves) and when kIterationLimit (so a re-solve with a raised limit
  /// resumes instead of restarting).
  LpBasis basis;
};

struct SimplexOptions {
  double feas_tol = 1e-7;     ///< bound/row feasibility tolerance
  double opt_tol = 1e-9;      ///< reduced-cost optimality tolerance
  double pivot_tol = 1e-9;    ///< smallest acceptable pivot magnitude
  int64_t max_iterations = 0; ///< 0 = automatic (scaled to model size)
  int refactor_every = 64;    ///< basis refactorization period (pivots)
  /// Linear-algebra backend (see factorization.h). The sparse LU is the
  /// default engine; the dense inverse is the ablation baseline.
  FactorizationKind factorization = FactorizationKind::kSparseLu;
  /// Entering-column / leaving-row selection rule (see pricing.h). Devex
  /// by default; Dantzig restores the historical candidate ordering.
  PricingRule pricing = PricingRule::kDevex;
  /// Use Bland's rule from the first iteration (ablation knob; the default
  /// prices by `pricing` and falls back to Bland only on suspected
  /// cycling).
  bool always_bland = false;
  /// Enter the dual simplex when a warm basis is bound-infeasible but
  /// dual-feasible (the branch-and-bound child re-solve). Off restores the
  /// pre-dual behavior exactly: every warm repair goes through the
  /// composite primal phase 1 (ablation knob).
  bool use_dual_simplex = true;
};

/// The iteration budget SolveLp will use for `model` under `options`:
/// options.max_iterations when positive, otherwise the automatic limit
/// scaled to the model's size. Exposed so callers (branch-and-bound's
/// iteration-limit re-queue) can raise the limit meaningfully.
int64_t EffectiveIterationLimit(const LpModel& model,
                                const SimplexOptions& options);

/// Solves the LP relaxation of `model` (integrality is ignored).
/// `bound_override`, when non-null, replaces variable bounds (used by
/// branch-and-bound nodes); it must have one (lb, ub) pair per variable.
/// `warm_start`, when non-null and non-empty, seeds the solve from a prior
/// basis of a dimensionally identical model: nonbasic variables snap to
/// their (possibly changed) bounds, a bound-infeasible basis is
/// re-optimized by the dual simplex when it is still dual-feasible
/// (options.use_dual_simplex) and repaired by the composite phase 1
/// otherwise, and a singular or ill-sized snapshot silently falls back to
/// the cold slack basis.
[[nodiscard]] Result<LpSolution> SolveLp(
    const LpModel& model, const SimplexOptions& options = {},
    const std::vector<std::pair<double, double>>* bound_override = nullptr,
    const LpBasis* warm_start = nullptr);

}  // namespace pb::solver

#endif  // PB_SOLVER_SIMPLEX_H_
