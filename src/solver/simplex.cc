#include "solver/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "solver/factorization.h"
#include "solver/pricing.h"

namespace pb::solver {

const char* LpStatusToString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:        return "Optimal";
    case LpStatus::kInfeasible:     return "Infeasible";
    case LpStatus::kUnbounded:      return "Unbounded";
    case LpStatus::kIterationLimit: return "IterationLimit";
  }
  return "?";
}

namespace {

/// The working state of one simplex solve. Variables 0..n-1 are structural;
/// n..n+m-1 are row slacks (column -e_i, bounds = row range).
///
/// Linear algebra goes through the BasisFactorization layer; candidate
/// selection through the Pricing layer. Reduced costs d_ are maintained
/// incrementally: each pivot prices its row out of B^{-1} (one sparse
/// BTRAN plus a walk over the touched rows' terms) and applies the rank-one
/// update, instead of the dense rebuild-everything scan the solver used to
/// do per iteration. d_ is rebuilt from fresh duals after every
/// refactorization, on phase entry, whenever the phase-1 composite cost
/// vector changes segment, and always before optimality is declared.
class Simplex {
 public:
  Simplex(const LpModel& model, const SimplexOptions& options,
          const std::vector<std::pair<double, double>>* bound_override)
      : opts_(options),
        model_(model),
        m_(model.num_constraints()),
        n_(model.num_variables()),
        total_(n_ + m_),
        pricing_(options.pricing) {
    // Internally we always minimize; flip sign for maximize.
    sign_ = model.sense() == ObjectiveSense::kMaximize ? -1.0 : 1.0;

    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    for (int j = 0; j < n_; ++j) {
      const Variable& v = model.variable(j);
      lb_[j] = bound_override ? (*bound_override)[j].first : v.lb;
      ub_[j] = bound_override ? (*bound_override)[j].second : v.ub;
      cost_[j] = sign_ * v.objective;
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constraint(i);
      int slack = n_ + i;
      lb_[slack] = c.lo;
      ub_[slack] = c.hi;
    }

    fact_ = MakeFactorization(options.factorization, model.csc(), n_, m_,
                              options.pivot_tol);

    d_.assign(total_, 0.0);
    z_.assign(total_, 0.0);
    z_mark_.assign(total_, 0);
    c1_.assign(total_, 0);

    max_iter_ = EffectiveIterationLimit(model, options);
  }

  LpSolution Run(const LpBasis* warm_start) {
    bool warm_loaded = warm_start != nullptr && !warm_start->empty() &&
                       LoadBasis(*warm_start);
    if (!warm_loaded) InitBasis();
    // The dual simplex is only ever entered on a warm basis: a cold slack
    // basis is not dual-feasible in general, and the primal phases are the
    // right engine for it anyway.
    bool allow_dual = warm_loaded && opts_.use_dual_simplex;
    for (;;) {
      LpSolution out = RunFromCurrentBasis(allow_dual);
      // Never conclude infeasible/unbounded from a warm start that hit
      // numerical trouble (a singular refactorization aborts a phase
      // early and can fake either verdict on an ill-conditioned inherited
      // basis, and an aborted dual run reports infeasible as its trouble
      // signal): restart from the perfectly conditioned slack basis and
      // let the cold primal solve have the final word. Iterations
      // accumulate across the restart, so the accounting stays honest.
      if (warm_loaded && numerical_trouble_ &&
          (out.status == LpStatus::kInfeasible ||
           out.status == LpStatus::kUnbounded)) {
        warm_loaded = false;
        allow_dual = false;
        numerical_trouble_ = false;
        InitBasis();
        continue;
      }
      return out;
    }
  }

 private:
  /// How one phase of the solve ended.
  enum class PhaseResult {
    kConverged,    ///< no improving direction remains (optimal / stalled)
    kNoDirection,  ///< phase 2 found an unbounded improving ray
    kLimit,        ///< iteration budget exhausted with work remaining
  };

  /// The single end-of-solve classification point. Every path through
  /// RunFromCurrentBasis funnels into this so statuses, counters, and basis
  /// export can never drift apart (they used to be duplicated per exit and
  /// mislabeled an optimum proven exactly at the iteration limit).
  LpSolution Finish(LpStatus status) {
    LpSolution out;
    out.status = status;
    out.iterations = iterations_;
    out.dual_iterations = dual_iterations_;
    out.refactorizations = fact_->stats().refactorizations;
    out.basis_updates = fact_->stats().updates;
    if (status == LpStatus::kOptimal) {
      out.x.assign(x_.begin(), x_.begin() + n_);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) obj += cost_[j] * x_[j];
      out.objective = sign_ * obj;
    }
    if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit) {
      ExportBasis(&out.basis);
    }
    return out;
  }

  /// Solve from whatever basis is currently loaded: dual re-optimization
  /// when the basis qualifies (allow_dual), then the primal phases.
  LpSolution RunFromCurrentBasis(bool allow_dual) {
    // ---- Dual simplex: a warm basis whose bounds moved is bound-
    // infeasible but (coming from a parent's optimum) still dual-feasible;
    // restore primal feasibility in a few dual pivots instead of a phase-1
    // repair. On success the primal phases below exit immediately.
    if (allow_dual && TotalInfeasibility() > opts_.feas_tol && DualFeasible()) {
      switch (SolveDual()) {
        case DualOutcome::kPrimalFeasible:
          break;  // optimal up to tolerances; the primal phases confirm
        case DualOutcome::kInfeasible:
          // A violated row with no eligible entering column is a valid
          // infeasibility certificate (unless numerical trouble fired, in
          // which case Run() retries cold before trusting this verdict).
          return Finish(LpStatus::kInfeasible);
        case DualOutcome::kLimit:
          return Finish(LpStatus::kIterationLimit);
        case DualOutcome::kTrouble:
          // Numerically failed dual run: report infeasible WITH
          // numerical_trouble_ set, which Run() converts into a cold
          // primal restart — the dual path never concludes infeasible on
          // its own after trouble.
          numerical_trouble_ = true;
          return Finish(LpStatus::kInfeasible);
      }
    }

    // ---- Phase 1: drive basic bound violations to zero. A warm basis that
    // is primal feasible under the current bounds exits immediately; one
    // that inherited now-violated bounds gets repaired here.
    if (SolvePhase(/*phase1=*/true) == PhaseResult::kLimit) {
      return Finish(LpStatus::kIterationLimit);
    }
    if (TotalInfeasibility() > opts_.feas_tol * (1 + m_)) {
      return Finish(LpStatus::kInfeasible);
    }

    // ---- Phase 2: optimize the true objective.
    switch (SolvePhase(/*phase1=*/false)) {
      case PhaseResult::kLimit:
        return Finish(LpStatus::kIterationLimit);
      case PhaseResult::kNoDirection:
        return Finish(LpStatus::kUnbounded);
      case PhaseResult::kConverged:
        break;
    }
    return Finish(LpStatus::kOptimal);
  }

  static constexpr double kInf = kInfinity;

  /// Visits (row, value) of column j: CSC entries for structural columns,
  /// the synthesized single entry (j - n, -1) for slacks.
  template <typename Fn>
  void ForEachCol(int j, Fn&& fn) const {
    const CscMatrix& a = model_.csc();
    if (j < n_) {
      for (int64_t k = a.col_start[j]; k < a.col_start[j + 1]; ++k) {
        fn(static_cast<int>(a.row[k]), a.value[k]);
      }
    } else {
      fn(j - n_, -1.0);
    }
  }

  /// Puts every slack in the basis, structural variables at their "natural"
  /// bound (the finite bound nearest zero; free variables at 0).
  void InitBasis() {
    basis_.resize(m_);
    stat_.assign(total_, VarStat::kAtLower);
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (lb_[j] == -kInf && ub_[j] == kInf) {
        stat_[j] = VarStat::kFree;
        x_[j] = 0.0;
      } else if (lb_[j] == -kInf) {
        stat_[j] = VarStat::kAtUpper;
        x_[j] = ub_[j];
      } else if (ub_[j] == kInf) {
        stat_[j] = VarStat::kAtLower;
        x_[j] = lb_[j];
      } else {
        // Both finite: start at the bound with smaller magnitude.
        bool lower = std::abs(lb_[j]) <= std::abs(ub_[j]);
        stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
        x_[j] = lower ? lb_[j] : ub_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      basis_[i] = n_ + i;
      stat_[n_ + i] = VarStat::kBasic;
    }
    // The slack basis (B = -I) can never be singular.
    fact_->Refactorize(basis_);
    d_valid_ = false;
    RecomputeBasicValues();
  }

  /// Restores a prior basis: statuses are adopted, nonbasic variables snap
  /// to the current bounds (which may have moved since the snapshot — the
  /// branch-and-bound case), and the basis is refactorized from scratch.
  /// Returns false (leaving reinitialization to the caller) when the
  /// snapshot has the wrong shape, is internally inconsistent, or its
  /// basis matrix is singular.
  bool LoadBasis(const LpBasis& b) {
    if (static_cast<int>(b.basic.size()) != m_ ||
        static_cast<int>(b.stat.size()) != total_) {
      return false;
    }
    int basic_count = 0;
    for (int j = 0; j < total_; ++j) {
      if (b.stat[j] == VarStat::kBasic) ++basic_count;
    }
    if (basic_count != m_) return false;
    for (int j : b.basic) {
      if (j < 0 || j >= total_ || b.stat[j] != VarStat::kBasic) return false;
    }
    basis_ = b.basic;
    stat_ = b.stat;
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      switch (stat_[j]) {
        case VarStat::kBasic:
          break;  // recomputed below
        case VarStat::kAtLower:
          if (lb_[j] > -kInf) {
            x_[j] = lb_[j];
          } else if (ub_[j] < kInf) {
            stat_[j] = VarStat::kAtUpper;
            x_[j] = ub_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kAtUpper:
          if (ub_[j] < kInf) {
            x_[j] = ub_[j];
          } else if (lb_[j] > -kInf) {
            stat_[j] = VarStat::kAtLower;
            x_[j] = lb_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kFree:
          if (lb_[j] > -kInf || ub_[j] < kInf) {
            // Bounds appeared since the snapshot: rest on the nearer one.
            bool lower =
                ub_[j] == kInf ||
                (lb_[j] > -kInf && std::abs(lb_[j]) <= std::abs(ub_[j]));
            stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
            x_[j] = lower ? lb_[j] : ub_[j];
          }
          break;
      }
    }
    if (!fact_->Refactorize(basis_)) return false;
    d_valid_ = false;
    RecomputeBasicValues();
    return true;
  }

  void ExportBasis(LpBasis* out) const {
    out->basic = basis_;
    out->stat = stat_;
  }

  /// x_B = B^{-1} (0 - N x_N).
  void RecomputeBasicValues() {
    rhs_.assign(m_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic || x_[j] == 0.0) continue;
      double v = x_[j];
      ForEachCol(j, [&](int row, double coeff) { rhs_[row] -= coeff * v; });
    }
    fact_->Ftran(&rhs_);
    for (int i = 0; i < m_; ++i) x_[basis_[i]] = rhs_[i];
  }

  /// Refactorizes the current basis and restores the derived state (basic
  /// values; reduced costs are invalidated for lazy rebuild). False means
  /// numerically singular.
  bool RefactorizeBasis() {
    d_valid_ = false;
    if (!fact_->Refactorize(basis_)) return false;
    RecomputeBasicValues();
    return true;
  }

  double Violation(int j) const {
    if (x_[j] < lb_[j]) return lb_[j] - x_[j];
    if (x_[j] > ub_[j]) return x_[j] - ub_[j];
    return 0.0;
  }

  double TotalInfeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i) total += Violation(basis_[i]);
    return total;
  }

  /// Phase-1 cost segment of variable j: -1 below its lower bound (cost
  /// wants it to grow), +1 above its upper (shrink), 0 in range.
  int8_t Seg(int j) const {
    if (x_[j] < lb_[j] - opts_.feas_tol) return -1;
    if (x_[j] > ub_[j] + opts_.feas_tol) return +1;
    return 0;
  }

  /// y = B^{-T} c_B where c_B is the (phase-dependent) basic cost vector.
  void ComputeDuals(bool phase1, std::vector<double>* y) {
    y->assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      int b = basis_[i];
      (*y)[i] = phase1 ? static_cast<double>(Seg(b)) : cost_[b];
    }
    fact_->Btran(y);
  }

  /// Rebuilds every reduced cost from fresh duals — the expensive O(nnz)
  /// pass the incremental updates exist to avoid; runs only on phase entry,
  /// after refactorizations, and to confirm convergence. For phase 1 it
  /// also snapshots the composite cost vector (c1_) so the loop can detect
  /// when a segment change invalidates d_.
  void RecomputeReducedCosts(bool phase1) {
    ComputeDuals(phase1, &y_);
    if (phase1) {
      for (int j : c1_nonzero_) c1_[j] = 0;
      c1_nonzero_.clear();
      for (int i = 0; i < m_; ++i) {
        int b = basis_[i];
        int8_t s = Seg(b);
        if (s != 0) {
          c1_[b] = s;
          c1_nonzero_.push_back(b);
        }
      }
    }
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic) {
        d_[j] = 0.0;
        continue;
      }
      double d = phase1 ? 0.0 : cost_[j];
      ForEachCol(j, [&](int row, double coeff) { d -= y_[row] * coeff; });
      d_[j] = d;
    }
    d_valid_ = true;
    d_phase1_ = phase1;
  }

  /// True when some basic variable's phase-1 cost segment no longer
  /// matches the snapshot d_ was computed against (a bound was crossed or
  /// repaired): the composite cost vector changed and d_ is stale.
  bool Phase1CostChanged() const {
    for (int i = 0; i < m_; ++i) {
      int b = basis_[i];
      if (c1_[b] != Seg(b)) return true;
    }
    return false;
  }

  /// Prices pivot row `leave_row` out of the factorization: rho_ = row of
  /// B^{-1} (one sparse BTRAN), then z_ = rho^T [A | -I] accumulated by
  /// walking only the rows rho touches (row-major `constraints()`; the CSC
  /// view would transpose badly here). z_pattern_ lists the touched
  /// columns; z_ values outside it are stale.
  void ComputePivotRow(int leave_row) {
    fact_->BtranUnit(leave_row, &rho_);
    ++z_stamp_;
    z_pattern_.clear();
    for (int i = 0; i < m_; ++i) {
      double r = rho_[i];
      if (r == 0.0) continue;
      AddToZ(n_ + i, -r);  // slack column of row i
      for (const LinearTerm& t : model_.constraint(i).terms) {
        AddToZ(t.var, r * t.coeff);
      }
    }
  }

  void AddToZ(int j, double v) {
    if (z_mark_[j] != z_stamp_) {
      z_mark_[j] = z_stamp_;
      z_[j] = 0.0;
      z_pattern_.push_back(j);
    }
    z_[j] += v;
  }

  /// The rank-one reduced-cost update for a pivot with priced row
  /// z_/z_pattern_ and pivot element `pivot` (the entering column's Ftran
  /// value in the leaving row). Must run while stat_ still reflects the
  /// pre-pivot basis. No-op when d_ is already stale.
  void UpdateReducedCostsAfterPivot(int enter, int leave, double pivot) {
    if (!d_valid_) return;
    double theta = d_[enter] / pivot;
    for (int j : z_pattern_) {
      if (j == enter || stat_[j] == VarStat::kBasic) continue;
      d_[j] -= theta * z_[j];
    }
    d_[leave] = -theta;  // z over the leaving column is exactly e_r
    d_[enter] = 0.0;
    // Phase 1 only: the leaving variable lands on a bound, so its
    // composite cost drops to 0 — if it was nonzero, the whole cost
    // vector shifted and d_ must be rebuilt.
    if (d_phase1_ && c1_[leave] != 0) d_valid_ = false;
  }

  /// Scatters column j and applies B^{-1} through the factorization.
  void FtranColumn(int j, std::vector<double>* alpha) {
    alpha->assign(m_, 0.0);
    ForEachCol(j, [&](int row, double coeff) { (*alpha)[row] += coeff; });
    fact_->Ftran(alpha);
  }

  /// Shared post-pivot bookkeeping: replace the factorized column and
  /// refactorize on schedule (or when the backend asks). Returns false on
  /// numerical trouble (caller aborts the phase).
  bool CommitPivot(int leave_row, int* since_refactor) {
    int64_t refs_before = fact_->stats().refactorizations;
    if (!fact_->Update(leave_row, alpha_, basis_)) return false;
    if (fact_->stats().refactorizations != refs_before) {
      // A tiny pivot forced an internal refactorization: re-derive state.
      d_valid_ = false;
      RecomputeBasicValues();
    }
    if (++*since_refactor >= opts_.refactor_every ||
        fact_->ShouldRefactorize()) {
      *since_refactor = 0;
      if (!RefactorizeBasis()) return false;
    }
    return true;
  }

  /// Runs one phase to completion. kConverged means no improving direction
  /// remains — phase 1 feasibility is then judged by TotalInfeasibility(),
  /// phase 2 is optimal; kNoDirection is phase 2's unbounded ray. The
  /// iteration limit is only reported when an improving direction still
  /// exists: a solve that proves optimality on the pricing pass after its
  /// last allowed pivot is kConverged, not kLimit (the old per-phase limit
  /// checks mislabeled exactly-at-limit optima). Optimality and
  /// unboundedness are only ever declared off freshly recomputed reduced
  /// costs, never off the incrementally maintained ones.
  PhaseResult SolvePhase(bool phase1) {
    pricing_.ResetPrimal(total_);
    d_valid_ = false;  // phase entry: the cost vector changed
    int since_refactor = 0;
    for (;;) {
      if (phase1 && TotalInfeasibility() <= opts_.feas_tol) {
        return PhaseResult::kConverged;
      }
      if (d_valid_ && d_phase1_ == phase1 && phase1 && Phase1CostChanged()) {
        d_valid_ = false;
      }
      bool fresh = false;
      if (!d_valid_ || d_phase1_ != phase1) {
        RecomputeReducedCosts(phase1);
        fresh = true;
      }

      // Pricing: best score among eligible columns; Bland's (lowest
      // eligible index) once the iteration count suggests cycling.
      bool bland = iterations_ > bland_threshold_;
      int enter = -1;
      int enter_dir = 0;  // +1 increase, -1 decrease
      auto select = [&]() {
        enter = -1;
        enter_dir = 0;
        double best_score = 0.0;
        for (int j = 0; j < total_; ++j) {
          if (stat_[j] == VarStat::kBasic) continue;
          double d = d_[j];
          int dir = 0;
          if (stat_[j] == VarStat::kAtLower && d < -opts_.opt_tol) {
            dir = +1;
          } else if (stat_[j] == VarStat::kAtUpper && d > opts_.opt_tol) {
            dir = -1;
          } else if (stat_[j] == VarStat::kFree &&
                     std::abs(d) > opts_.opt_tol) {
            dir = d < 0 ? +1 : -1;
          }
          if (dir == 0) continue;
          if (bland) {
            enter = j;
            enter_dir = dir;
            return;
          }
          double score = pricing_.PrimalScore(j, d);
          if (score > best_score) {
            best_score = score;
            enter = j;
            enter_dir = dir;
          }
        }
      };
      select();
      if (enter < 0 && !fresh) {
        // Maintained reduced costs say converged: confirm before claiming.
        RecomputeReducedCosts(phase1);
        fresh = true;
        select();
      }
      if (enter < 0) {
        // No improving direction: phase-1 stalls (feasible or not);
        // phase-2 is optimal — even when the budget is exactly spent.
        return PhaseResult::kConverged;
      }
      if (iterations_ >= max_iter_) {
        if (!fresh) {
          // Don't report kLimit off drifted costs: an exactly-at-limit
          // optimum must still classify as converged.
          RecomputeReducedCosts(phase1);
          fresh = true;
          select();
          if (enter < 0) return PhaseResult::kConverged;
        }
        return PhaseResult::kLimit;
      }

      FtranColumn(enter, &alpha_);

      // Ratio test. The entering variable moves by t >= 0 in direction
      // enter_dir; basic i changes at rate delta_i = -enter_dir * alpha_i.
      double limit = kInf;
      int leave_row = -1;
      double leave_to_bound = 0.0;  // bound value the leaving var lands on
      VarStat leave_stat = VarStat::kAtLower;
      // Entering variable's own opposite bound (bound flip).
      if (stat_[enter] == VarStat::kAtLower && ub_[enter] < kInf) {
        limit = ub_[enter] - lb_[enter];
      } else if (stat_[enter] == VarStat::kAtUpper && lb_[enter] > -kInf) {
        limit = ub_[enter] - lb_[enter];
      }
      for (int i = 0; i < m_; ++i) {
        double rate = -enter_dir * alpha_[i];
        if (std::abs(rate) < opts_.pivot_tol) continue;
        int b = basis_[i];
        double t;
        VarStat to_stat;
        double to_bound;
        bool below = x_[b] < lb_[b] - opts_.feas_tol;
        bool above = x_[b] > ub_[b] + opts_.feas_tol;
        if (phase1 && below) {
          // Infeasible-below basic blocks where its cost segment changes:
          // at its lower bound when moving up; never when moving down.
          if (rate <= 0) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        } else if (phase1 && above) {
          if (rate >= 0) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else if (rate > 0) {
          if (ub_[b] == kInf) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else {
          if (lb_[b] == -kInf) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        }
        t = std::max(t, 0.0);
        if (t < limit - 1e-12 ||
            (leave_row >= 0 && t < limit + 1e-12 &&
             std::abs(alpha_[i]) > std::abs(alpha_[leave_row]))) {
          limit = t;
          leave_row = i;
          leave_stat = to_stat;
          leave_to_bound = to_bound;
        }
      }

      if (limit == kInf) {
        if (!fresh) {
          // The improving direction came from drifted reduced costs; get
          // fresh ones before believing an unbounded ray.
          RecomputeReducedCosts(phase1);
          continue;
        }
        // Unbounded direction. In phase 1 this cannot lower a
        // nonnegative objective forever — treat as numerical trouble and
        // report converged (the caller's infeasibility check decides).
        if (phase1) {
          numerical_trouble_ = true;
          return PhaseResult::kConverged;
        }
        return PhaseResult::kNoDirection;
      }

      ++iterations_;

      // Apply the step.
      double t = limit;
      if (leave_row < 0) {
        // Bound flip of the entering variable: no basis change, reduced
        // costs untouched.
        x_[enter] += enter_dir * t;
        stat_[enter] =
            stat_[enter] == VarStat::kAtLower ? VarStat::kAtUpper
                                              : VarStat::kAtLower;
        for (int i = 0; i < m_; ++i) {
          x_[basis_[i]] += -enter_dir * alpha_[i] * t;
        }
        continue;
      }

      // Pivot: enter replaces basis_[leave_row]. Price the pivot row
      // first (while the factorization still holds the old basis), fold
      // the rank-one update into d_ and the devex weights, then commit.
      int leave = basis_[leave_row];
      ComputePivotRow(leave_row);
      UpdateReducedCostsAfterPivot(enter, leave, alpha_[leave_row]);
      pricing_.PrimalUpdate(z_pattern_, z_, enter, leave, alpha_[leave_row]);

      for (int i = 0; i < m_; ++i) {
        x_[basis_[i]] += -enter_dir * alpha_[i] * t;
      }
      x_[enter] += enter_dir * t;
      x_[leave] = leave_to_bound;
      stat_[leave] = leave_stat;
      stat_[enter] = VarStat::kBasic;
      basis_[leave_row] = enter;

      if (!CommitPivot(leave_row, &since_refactor)) {
        numerical_trouble_ = true;
        return phase1 ? PhaseResult::kConverged : PhaseResult::kNoDirection;
      }
    }
  }

  /// How a dual-simplex run ended.
  enum class DualOutcome {
    kPrimalFeasible,  ///< all basics back in bounds: optimal up to tolerance
    kInfeasible,      ///< a violated row admits no entering column
    kLimit,           ///< iteration budget exhausted
    kTrouble,         ///< numerical failure; caller must re-solve primally
  };

  /// True when the current basis satisfies the phase-2 optimality (= dual
  /// feasibility) conditions: nonbasic-at-lower reduced costs nonnegative,
  /// at-upper nonpositive, free near zero. The entry gate for the dual
  /// simplex; the tolerance is looser than opt_tol because the inherited
  /// basis was refactorized from scratch. Leaves d_ freshly computed for
  /// the dual loop.
  bool DualFeasible() {
    RecomputeReducedCosts(/*phase1=*/false);
    const double tol = 100.0 * opts_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic) continue;
      double d = d_[j];
      switch (stat_[j]) {
        case VarStat::kAtLower:
          if (d < -tol) return false;
          break;
        case VarStat::kAtUpper:
          if (d > tol) return false;
          break;
        case VarStat::kFree:
          if (std::abs(d) > tol) return false;
          break;
        case VarStat::kBasic:
          break;
      }
    }
    return true;
  }

  /// Bounded-variable dual simplex. Precondition: the basis is
  /// dual-feasible (DualFeasible()). Each iteration picks the leaving row
  /// by dual pricing (devex row weights or plain most-violated; lowest
  /// basic index under Bland's fallback), prices the pivot row through the
  /// factorization, runs the dual ratio test over the row's nonzero
  /// columns to preserve dual feasibility, and pivots through the shared
  /// commit path. Terminates with primal feasibility (= optimality), a
  /// proven-infeasible row, the iteration limit, or numerical trouble.
  DualOutcome SolveDual() {
    pricing_.ResetDual(m_);
    int since_refactor = 0;
    int bad_pivots = 0;
    for (;;) {
      if (!d_valid_ || d_phase1_) RecomputeReducedCosts(/*phase1=*/false);

      // ---- Leaving variable: a basic outside its bounds.
      bool bland = iterations_ > bland_threshold_;
      int leave_row = -1;
      double best_score = 0.0;
      for (int i = 0; i < m_; ++i) {
        int b = basis_[i];
        double viol = std::max(lb_[b] - x_[b], x_[b] - ub_[b]);
        if (viol <= opts_.feas_tol) continue;
        if (bland) {
          // Anti-cycling: lowest basic variable index among the violated.
          if (leave_row < 0 || b < basis_[leave_row]) leave_row = i;
        } else {
          double score = pricing_.DualScore(i, viol);
          if (score > best_score) {
            best_score = score;
            leave_row = i;
          }
        }
      }
      if (leave_row < 0) return DualOutcome::kPrimalFeasible;
      if (iterations_ >= max_iter_) return DualOutcome::kLimit;

      int leave = basis_[leave_row];
      // s = +1: above its upper bound, must decrease onto it;
      // s = -1: below its lower bound, must increase onto it.
      int s = x_[leave] > ub_[leave] ? +1 : -1;
      double target = s > 0 ? ub_[leave] : lb_[leave];

      // ---- Dual ratio test over the priced pivot row: one sparse BTRAN,
      // then only the columns the row actually touches (z_pattern_) are
      // candidates — the old dense scan priced every nonbasic column.
      // Eligibility keeps the basic moving toward its violated bound;
      // walking the ratio-sorted candidates keeps every reduced cost on
      // its feasible side after the step.
      ComputePivotRow(leave_row);
      struct Cand {
        int j;
        double a;      // priced pivot-row coefficient
        double ratio;  // dual ratio d_j / (s * a_j), clamped >= 0
      };
      std::vector<Cand> cands;
      for (int j : z_pattern_) {
        if (stat_[j] == VarStat::kBasic) continue;
        double a = z_[j];
        double sa = s * a;
        bool eligible;
        if (stat_[j] == VarStat::kAtLower) {
          eligible = sa > opts_.pivot_tol;
        } else if (stat_[j] == VarStat::kAtUpper) {
          eligible = sa < -opts_.pivot_tol;
        } else {  // kFree
          eligible = std::abs(sa) > opts_.pivot_tol;
        }
        if (!eligible) continue;
        double d = d_[j];
        // Nonnegative by dual feasibility (at-lower: d >= 0, sa > 0;
        // at-upper: d <= 0, sa < 0; free: d ~ 0); clamp entry-tolerance
        // slack so degenerate steps stay degenerate.
        double ratio = stat_[j] == VarStat::kFree ? std::abs(d / sa) : d / sa;
        cands.push_back({j, a, std::max(ratio, 0.0)});
      }

      // The signed excursion the step must absorb.
      double delta = x_[leave] - target;
      int enter = -1;
      // Bound flips collected by the ratio test: (column, signed step).
      std::vector<std::pair<int, double>> flips;
      if (bland) {
        // Anti-cycling: plain min-ratio with lowest index on ties, no
        // flips (the termination argument wants one pivot per iteration).
        // z_pattern_ is not index-sorted, so the tie-break is explicit.
        double best_ratio = kInf;
        for (const Cand& c : cands) {
          if (c.ratio < best_ratio - 1e-12 ||
              (c.ratio < best_ratio + 1e-12 && enter >= 0 && c.j < enter)) {
            best_ratio = std::min(best_ratio, c.ratio);
            enter = c.j;
          }
        }
      } else {
        // Bound-flipping ratio test: walk the breakpoints in dual-ratio
        // order (ties prefer the larger |a| for pivot stability). A boxed
        // candidate whose full range cannot absorb the remaining
        // excursion is flipped to its other bound — no basis change, and
        // its reduced cost legitimately crosses zero at this dual step —
        // and the first candidate that can absorb the rest becomes the
        // pivot column. On 0/1 package models this replaces strings of
        // single-bound dual pivots with one pivot plus cheap flips.
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& x, const Cand& y) {
                    if (x.ratio != y.ratio) return x.ratio < y.ratio;
                    if (std::abs(x.a) != std::abs(y.a)) {
                      return std::abs(x.a) > std::abs(y.a);
                    }
                    return x.j < y.j;
                  });
        for (const Cand& c : cands) {
          double dx = delta / c.a;
          double range = ub_[c.j] - lb_[c.j];
          if (stat_[c.j] == VarStat::kFree ||
              std::abs(dx) <= range + opts_.feas_tol) {
            enter = c.j;
            break;
          }
          double t = dx > 0 ? range : -range;
          flips.push_back({c.j, t});
          // |a * t| < |delta|: the excursion shrinks but keeps its sign.
          delta -= c.a * t;
        }
      }
      if (enter < 0) {
        // Even with every eligible column at its most helpful bound the
        // row cannot reach its range: a primal infeasibility certificate
        // regardless of the reduced costs (the row is a fixed combination
        // of original rows). Nothing was applied; the basis is intact.
        return DualOutcome::kInfeasible;
      }

      FtranColumn(enter, &alpha_);
      if (std::abs(alpha_[leave_row]) < opts_.pivot_tol) {
        // The priced row and the Ftran column disagree about the pivot:
        // the factorization has drifted. Refactorize and retry (the flips
        // were not applied yet); give up after repeated disagreement.
        numerical_trouble_ = true;
        if (++bad_pivots > 2 || !RefactorizeBasis()) {
          return DualOutcome::kTrouble;
        }
        continue;
      }

      ++iterations_;
      ++dual_iterations_;

      // The rank-one updates use pre-pivot statuses; flips don't touch
      // reduced costs, so fold them in before anything moves.
      UpdateReducedCostsAfterPivot(enter, leave, alpha_[leave_row]);
      pricing_.DualUpdate(alpha_, leave_row);

      // ---- Apply the bound flips: each moves a nonbasic column to its
      // opposite bound and shifts every basic accordingly (an Ftran per
      // flip, but no pricing pass and no basis change — far cheaper than
      // the dual pivots they replace).
      for (const auto& [fj, t] : flips) {
        FtranColumn(fj, &fcol_);
        for (int i = 0; i < m_; ++i) x_[basis_[i]] -= fcol_[i] * t;
        x_[fj] = t > 0 ? ub_[fj] : lb_[fj];
        stat_[fj] = t > 0 ? VarStat::kAtUpper : VarStat::kAtLower;
      }

      // ---- Pivot: the entering variable absorbs what is left of the
      // leaving basic's excursion past its bound.
      double dx = (x_[leave] - target) / alpha_[leave_row];
      for (int i = 0; i < m_; ++i) {
        if (i == leave_row) continue;
        x_[basis_[i]] -= alpha_[i] * dx;
      }
      x_[enter] += dx;
      x_[leave] = target;
      stat_[leave] = s > 0 ? VarStat::kAtUpper : VarStat::kAtLower;
      stat_[enter] = VarStat::kBasic;
      basis_[leave_row] = enter;

      if (!CommitPivot(leave_row, &since_refactor)) {
        numerical_trouble_ = true;
        return DualOutcome::kTrouble;
      }
    }
  }

  SimplexOptions opts_;
  const LpModel& model_;
  int m_, n_, total_;
  double sign_ = 1.0;
  int64_t max_iter_ = 0;
  int64_t iterations_ = 0;
  int64_t dual_iterations_ = 0;
  int64_t bland_threshold_ = 0;
  /// A phase aborted early on a singular refactorization (or phase 1 found
  /// an "unbounded" improving direction): any infeasible/unbounded verdict
  /// is suspect. Run() retries cold when this fires under a warm start.
  bool numerical_trouble_ = false;

  std::vector<double> lb_, ub_, cost_;
  std::vector<int> basis_;
  std::vector<VarStat> stat_;
  std::vector<double> x_;

  std::unique_ptr<BasisFactorization> fact_;
  Pricing pricing_;

  /// Incrementally maintained reduced costs (see class comment).
  std::vector<double> d_;
  bool d_valid_ = false;
  bool d_phase1_ = false;  ///< cost vector d_ was computed against
  /// Phase-1 composite cost snapshot: c1_[j] in {-1, 0, +1}, nonzeros
  /// listed in c1_nonzero_ for O(active) clearing.
  std::vector<int8_t> c1_;
  std::vector<int> c1_nonzero_;

  // Workspaces.
  std::vector<double> y_, alpha_, rho_, rhs_, fcol_;
  std::vector<double> z_;       ///< priced pivot row (scatter)
  std::vector<int> z_mark_;     ///< stamp per column: z_[j] valid this row
  std::vector<int> z_pattern_;  ///< columns touched by the current row
  int z_stamp_ = 0;

 public:
  void set_bland_threshold(int64_t t) { bland_threshold_ = t; }
};

}  // namespace

int64_t EffectiveIterationLimit(const LpModel& model,
                                const SimplexOptions& options) {
  if (options.max_iterations > 0) return options.max_iterations;
  int64_t m = model.num_constraints();
  int64_t n = model.num_variables();
  return 200LL * (m + 1) + 20LL * (n + m) + 2000;
}

Result<LpSolution> SolveLp(
    const LpModel& model, const SimplexOptions& options,
    const std::vector<std::pair<double, double>>* bound_override,
    const LpBasis* warm_start) {
  PB_RETURN_IF_ERROR(model.Validate());
  if (bound_override) {
    if (static_cast<int>(bound_override->size()) != model.num_variables()) {
      return Status::InvalidArgument(
          "bound_override size does not match variable count");
    }
    for (const auto& [lo, hi] : *bound_override) {
      if (lo > hi) {
        LpSolution s;
        s.status = LpStatus::kInfeasible;
        return s;
      }
    }
  }
  Simplex solver(model, options, bound_override);
  // Switch to Bland's rule after a generous pricing budget (immediately
  // when the ablation knob asks for it).
  solver.set_bland_threshold(
      options.always_bland
          ? -1
          : 50LL * (model.num_constraints() + 1) +
                2LL * (model.num_variables() + model.num_constraints()) + 500);
  return solver.Run(warm_start);
}

}  // namespace pb::solver
