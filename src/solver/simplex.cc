#include "solver/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pb::solver {

const char* LpStatusToString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:        return "Optimal";
    case LpStatus::kInfeasible:     return "Infeasible";
    case LpStatus::kUnbounded:      return "Unbounded";
    case LpStatus::kIterationLimit: return "IterationLimit";
  }
  return "?";
}

namespace {

/// The working state of one simplex solve. Variables 0..n-1 are structural;
/// n..n+m-1 are row slacks (column -e_i, bounds = row range).
class Simplex {
 public:
  Simplex(const LpModel& model, const SimplexOptions& options,
          const std::vector<std::pair<double, double>>* bound_override)
      : opts_(options),
        m_(model.num_constraints()),
        n_(model.num_variables()),
        total_(n_ + m_) {
    // Internally we always minimize; flip sign for maximize.
    sign_ = model.sense() == ObjectiveSense::kMaximize ? -1.0 : 1.0;

    cols_.resize(total_);
    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    for (int j = 0; j < n_; ++j) {
      const Variable& v = model.variable(j);
      lb_[j] = bound_override ? (*bound_override)[j].first : v.lb;
      ub_[j] = bound_override ? (*bound_override)[j].second : v.ub;
      cost_[j] = sign_ * v.objective;
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constraint(i);
      for (const LinearTerm& t : c.terms) {
        cols_[t.var].push_back({i, t.coeff});
      }
      int slack = n_ + i;
      cols_[slack].push_back({i, -1.0});
      lb_[slack] = c.lo;
      ub_[slack] = c.hi;
    }

    max_iter_ = EffectiveIterationLimit(model, options);
  }

  LpSolution Run(const LpBasis* warm_start) {
    bool warm_loaded = warm_start != nullptr && !warm_start->empty() &&
                       LoadBasis(*warm_start);
    if (!warm_loaded) InitBasis();
    // The dual simplex is only ever entered on a warm basis: a cold slack
    // basis is not dual-feasible in general, and the primal phases are the
    // right engine for it anyway.
    bool allow_dual = warm_loaded && opts_.use_dual_simplex;
    for (;;) {
      LpSolution out = RunFromCurrentBasis(allow_dual);
      // Never conclude infeasible/unbounded from a warm start that hit
      // numerical trouble (a singular refactorization aborts a phase
      // early and can fake either verdict on an ill-conditioned inherited
      // basis, and an aborted dual run reports infeasible as its trouble
      // signal): restart from the perfectly conditioned slack basis and
      // let the cold primal solve have the final word. Iterations
      // accumulate across the restart, so the accounting stays honest.
      if (warm_loaded && numerical_trouble_ &&
          (out.status == LpStatus::kInfeasible ||
           out.status == LpStatus::kUnbounded)) {
        warm_loaded = false;
        allow_dual = false;
        numerical_trouble_ = false;
        InitBasis();
        continue;
      }
      return out;
    }
  }

 private:
  /// How one phase of the solve ended.
  enum class PhaseResult {
    kConverged,    ///< no improving direction remains (optimal / stalled)
    kNoDirection,  ///< phase 2 found an unbounded improving ray
    kLimit,        ///< iteration budget exhausted with work remaining
  };

  /// The single end-of-solve classification point. Every path through
  /// RunFromCurrentBasis funnels into this so statuses, counters, and basis
  /// export can never drift apart (they used to be duplicated per exit and
  /// mislabeled an optimum proven exactly at the iteration limit).
  LpSolution Finish(LpStatus status) {
    LpSolution out;
    out.status = status;
    out.iterations = iterations_;
    out.dual_iterations = dual_iterations_;
    if (status == LpStatus::kOptimal) {
      out.x.assign(x_.begin(), x_.begin() + n_);
      double obj = 0.0;
      for (int j = 0; j < n_; ++j) obj += cost_[j] * x_[j];
      out.objective = sign_ * obj;
    }
    if (status == LpStatus::kOptimal || status == LpStatus::kIterationLimit) {
      ExportBasis(&out.basis);
    }
    return out;
  }

  /// Solve from whatever basis is currently loaded: dual re-optimization
  /// when the basis qualifies (allow_dual), then the primal phases.
  LpSolution RunFromCurrentBasis(bool allow_dual) {
    // ---- Dual simplex: a warm basis whose bounds moved is bound-
    // infeasible but (coming from a parent's optimum) still dual-feasible;
    // restore primal feasibility in a few dual pivots instead of a phase-1
    // repair. On success the primal phases below exit immediately.
    if (allow_dual && TotalInfeasibility() > opts_.feas_tol && DualFeasible()) {
      switch (SolveDual()) {
        case DualOutcome::kPrimalFeasible:
          break;  // optimal up to tolerances; the primal phases confirm
        case DualOutcome::kInfeasible:
          // A violated row with no eligible entering column is a valid
          // infeasibility certificate (unless numerical trouble fired, in
          // which case Run() retries cold before trusting this verdict).
          return Finish(LpStatus::kInfeasible);
        case DualOutcome::kLimit:
          return Finish(LpStatus::kIterationLimit);
        case DualOutcome::kTrouble:
          // Numerically failed dual run: report infeasible WITH
          // numerical_trouble_ set, which Run() converts into a cold
          // primal restart — the dual path never concludes infeasible on
          // its own after trouble.
          numerical_trouble_ = true;
          return Finish(LpStatus::kInfeasible);
      }
    }

    // ---- Phase 1: drive basic bound violations to zero. A warm basis that
    // is primal feasible under the current bounds exits immediately; one
    // that inherited now-violated bounds gets repaired here.
    if (SolvePhase(/*phase1=*/true) == PhaseResult::kLimit) {
      return Finish(LpStatus::kIterationLimit);
    }
    if (TotalInfeasibility() > opts_.feas_tol * (1 + m_)) {
      return Finish(LpStatus::kInfeasible);
    }

    // ---- Phase 2: optimize the true objective.
    switch (SolvePhase(/*phase1=*/false)) {
      case PhaseResult::kLimit:
        return Finish(LpStatus::kIterationLimit);
      case PhaseResult::kNoDirection:
        return Finish(LpStatus::kUnbounded);
      case PhaseResult::kConverged:
        break;
    }
    return Finish(LpStatus::kOptimal);
  }

 private:
  static constexpr double kInf = kInfinity;

  /// Puts every slack in the basis, structural variables at their "natural"
  /// bound (the finite bound nearest zero; free variables at 0).
  void InitBasis() {
    basis_.resize(m_);
    stat_.assign(total_, VarStat::kAtLower);
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (lb_[j] == -kInf && ub_[j] == kInf) {
        stat_[j] = VarStat::kFree;
        x_[j] = 0.0;
      } else if (lb_[j] == -kInf) {
        stat_[j] = VarStat::kAtUpper;
        x_[j] = ub_[j];
      } else if (ub_[j] == kInf) {
        stat_[j] = VarStat::kAtLower;
        x_[j] = lb_[j];
      } else {
        // Both finite: start at the bound with smaller magnitude.
        bool lower = std::abs(lb_[j]) <= std::abs(ub_[j]);
        stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
        x_[j] = lower ? lb_[j] : ub_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      basis_[i] = n_ + i;
      stat_[n_ + i] = VarStat::kBasic;
    }
    // Slack basis inverse: B = -I  =>  B^{-1} = -I.
    binv_.assign(m_ * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[i * m_ + i] = -1.0;
    RecomputeBasicValues();
  }

  /// Restores a prior basis: statuses are adopted, nonbasic variables snap
  /// to the current bounds (which may have moved since the snapshot — the
  /// branch-and-bound case), and the basis inverse is refactorized from
  /// scratch. Returns false (leaving reinitialization to the caller) when
  /// the snapshot has the wrong shape, is internally inconsistent, or its
  /// basis matrix is singular.
  bool LoadBasis(const LpBasis& b) {
    if (static_cast<int>(b.basic.size()) != m_ ||
        static_cast<int>(b.stat.size()) != total_) {
      return false;
    }
    int basic_count = 0;
    for (int j = 0; j < total_; ++j) {
      if (b.stat[j] == VarStat::kBasic) ++basic_count;
    }
    if (basic_count != m_) return false;
    for (int j : b.basic) {
      if (j < 0 || j >= total_ || b.stat[j] != VarStat::kBasic) return false;
    }
    basis_ = b.basic;
    stat_ = b.stat;
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      switch (stat_[j]) {
        case VarStat::kBasic:
          break;  // recomputed by Refactorize()
        case VarStat::kAtLower:
          if (lb_[j] > -kInf) {
            x_[j] = lb_[j];
          } else if (ub_[j] < kInf) {
            stat_[j] = VarStat::kAtUpper;
            x_[j] = ub_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kAtUpper:
          if (ub_[j] < kInf) {
            x_[j] = ub_[j];
          } else if (lb_[j] > -kInf) {
            stat_[j] = VarStat::kAtLower;
            x_[j] = lb_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kFree:
          if (lb_[j] > -kInf || ub_[j] < kInf) {
            // Bounds appeared since the snapshot: rest on the nearer one.
            bool lower =
                ub_[j] == kInf ||
                (lb_[j] > -kInf && std::abs(lb_[j]) <= std::abs(ub_[j]));
            stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
            x_[j] = lower ? lb_[j] : ub_[j];
          }
          break;
      }
    }
    return Refactorize();
  }

  void ExportBasis(LpBasis* out) const {
    out->basic = basis_;
    out->stat = stat_;
  }

  /// x_B = B^{-1} (0 - N x_N).
  void RecomputeBasicValues() {
    std::vector<double> rhs(m_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic || x_[j] == 0.0) continue;
      for (const auto& [row, coeff] : cols_[j]) rhs[row] -= coeff * x_[j];
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int k = 0; k < m_; ++k) v += binv_[i * m_ + k] * rhs[k];
      x_[basis_[i]] = v;
    }
  }

  /// Rebuilds binv_ from the basis columns by Gauss-Jordan with partial
  /// pivoting. Returns false if the basis matrix is (numerically) singular.
  bool Refactorize() {
    std::vector<double> mat(m_ * m_, 0.0);   // basis matrix B
    std::vector<double> inv(m_ * m_, 0.0);
    for (int i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
    for (int c = 0; c < m_; ++c) {
      for (const auto& [row, coeff] : cols_[basis_[c]]) {
        mat[row * m_ + c] = coeff;
      }
    }
    for (int c = 0; c < m_; ++c) {
      int piv = -1;
      double best = opts_.pivot_tol;
      for (int r = c; r < m_; ++r) {
        if (std::abs(mat[r * m_ + c]) > best) {
          best = std::abs(mat[r * m_ + c]);
          piv = r;
        }
      }
      if (piv < 0) return false;
      if (piv != c) {
        for (int k = 0; k < m_; ++k) {
          std::swap(mat[piv * m_ + k], mat[c * m_ + k]);
          std::swap(inv[piv * m_ + k], inv[c * m_ + k]);
        }
      }
      double d = mat[c * m_ + c];
      for (int k = 0; k < m_; ++k) {
        mat[c * m_ + k] /= d;
        inv[c * m_ + k] /= d;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == c) continue;
        double f = mat[r * m_ + c];
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          mat[r * m_ + k] -= f * mat[c * m_ + k];
          inv[r * m_ + k] -= f * inv[c * m_ + k];
        }
      }
    }
    binv_ = std::move(inv);
    RecomputeBasicValues();
    return true;
  }

  double Violation(int j) const {
    if (x_[j] < lb_[j]) return lb_[j] - x_[j];
    if (x_[j] > ub_[j]) return x_[j] - ub_[j];
    return 0.0;
  }

  double TotalInfeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i) total += Violation(basis_[i]);
    return total;
  }

  /// alpha = B^{-1} a_j for a column j.
  void Ftran(int j, std::vector<double>* alpha) const {
    alpha->assign(m_, 0.0);
    for (const auto& [row, coeff] : cols_[j]) {
      for (int i = 0; i < m_; ++i) {
        (*alpha)[i] += binv_[i * m_ + row] * coeff;
      }
    }
  }

  /// y = c_B B^{-1} where c_B is the (phase-dependent) basic cost vector.
  void ComputeDuals(bool phase1, std::vector<double>* y) const {
    y->assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double cb;
      if (phase1) {
        int b = basis_[i];
        if (x_[b] < lb_[b] - opts_.feas_tol) cb = -1.0;        // below: grow
        else if (x_[b] > ub_[b] + opts_.feas_tol) cb = 1.0;    // above: shrink
        else cb = 0.0;
      } else {
        cb = cost_[basis_[i]];
      }
      if (cb == 0.0) continue;
      for (int k = 0; k < m_; ++k) (*y)[k] += cb * binv_[i * m_ + k];
    }
  }

  double ReducedCost(int j, bool phase1, const std::vector<double>& y) const {
    double d = phase1 ? 0.0 : cost_[j];
    for (const auto& [row, coeff] : cols_[j]) d -= y[row] * coeff;
    return d;
  }

  /// Applies the product-form basis-inverse update for a pivot on
  /// `leave_row` with Ftran column `alpha` (shared by the primal phases and
  /// the dual simplex). A pivot element below tolerance falls back to a
  /// full refactorization; returns false when that refactorization finds
  /// the basis singular (numerical trouble — caller aborts the phase).
  bool PivotUpdate(int leave_row, const std::vector<double>& alpha) {
    double piv = alpha[leave_row];
    if (std::abs(piv) < opts_.pivot_tol) return Refactorize();
    double* prow = &binv_[leave_row * m_];
    for (int k = 0; k < m_; ++k) prow[k] /= piv;
    for (int i = 0; i < m_; ++i) {
      if (i == leave_row) continue;
      double f = alpha[i];
      if (f == 0.0) continue;
      double* row = &binv_[i * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
    return true;
  }

  /// Runs one phase to completion. kConverged means no improving direction
  /// remains — phase 1 feasibility is then judged by TotalInfeasibility(),
  /// phase 2 is optimal; kNoDirection is phase 2's unbounded ray. The
  /// iteration limit is only reported when an improving direction still
  /// exists: a solve that proves optimality on the pricing pass after its
  /// last allowed pivot is kConverged, not kLimit (the old per-phase limit
  /// checks mislabeled exactly-at-limit optima).
  PhaseResult SolvePhase(bool phase1) {
    std::vector<double> y, alpha;
    int since_refactor = 0;
    for (;;) {
      if (phase1 && TotalInfeasibility() <= opts_.feas_tol) {
        return PhaseResult::kConverged;
      }

      ComputeDuals(phase1, &y);

      // Pricing. Dantzig rule normally; Bland's (lowest eligible index)
      // once the iteration count suggests cycling.
      bool bland = iterations_ > bland_threshold_;
      int enter = -1;
      double best_score = opts_.opt_tol;
      int enter_dir = 0;  // +1 increase, -1 decrease
      for (int j = 0; j < total_; ++j) {
        if (stat_[j] == VarStat::kBasic) continue;
        double d = ReducedCost(j, phase1, y);
        int dir = 0;
        double score = 0.0;
        if (stat_[j] == VarStat::kAtLower && d < -opts_.opt_tol) {
          dir = +1;
          score = -d;
        } else if (stat_[j] == VarStat::kAtUpper && d > opts_.opt_tol) {
          dir = -1;
          score = d;
        } else if (stat_[j] == VarStat::kFree &&
                   std::abs(d) > opts_.opt_tol) {
          dir = d < 0 ? +1 : -1;
          score = std::abs(d);
        }
        if (dir == 0) continue;
        if (bland) {
          enter = j;
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          enter = j;
          enter_dir = dir;
        }
      }
      if (enter < 0) {
        // No improving direction: phase-1 stalls (feasible or not);
        // phase-2 is optimal — even when the budget is exactly spent.
        return PhaseResult::kConverged;
      }
      if (iterations_ >= max_iter_) return PhaseResult::kLimit;

      Ftran(enter, &alpha);

      // Ratio test. The entering variable moves by t >= 0 in direction
      // enter_dir; basic i changes at rate delta_i = -enter_dir * alpha_i.
      double limit = kInf;
      int leave_row = -1;
      double leave_to_bound = 0.0;  // bound value the leaving var lands on
      VarStat leave_stat = VarStat::kAtLower;
      // Entering variable's own opposite bound (bound flip).
      if (stat_[enter] == VarStat::kAtLower && ub_[enter] < kInf) {
        limit = ub_[enter] - lb_[enter];
      } else if (stat_[enter] == VarStat::kAtUpper && lb_[enter] > -kInf) {
        limit = ub_[enter] - lb_[enter];
      }
      for (int i = 0; i < m_; ++i) {
        double rate = -enter_dir * alpha[i];
        if (std::abs(rate) < opts_.pivot_tol) continue;
        int b = basis_[i];
        double t;
        VarStat to_stat;
        double to_bound;
        bool below = x_[b] < lb_[b] - opts_.feas_tol;
        bool above = x_[b] > ub_[b] + opts_.feas_tol;
        if (phase1 && below) {
          // Infeasible-below basic blocks where its cost segment changes:
          // at its lower bound when moving up; never when moving down.
          if (rate <= 0) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        } else if (phase1 && above) {
          if (rate >= 0) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else if (rate > 0) {
          if (ub_[b] == kInf) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else {
          if (lb_[b] == -kInf) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        }
        t = std::max(t, 0.0);
        if (t < limit - 1e-12 ||
            (leave_row >= 0 && t < limit + 1e-12 &&
             std::abs(alpha[i]) > std::abs(alpha[leave_row]))) {
          limit = t;
          leave_row = i;
          leave_stat = to_stat;
          leave_to_bound = to_bound;
        }
      }

      if (limit == kInf) {
        // Unbounded direction. In phase 1 this cannot lower a
        // nonnegative objective forever — treat as numerical trouble and
        // report converged (the caller's infeasibility check decides).
        if (phase1) {
          numerical_trouble_ = true;
          return PhaseResult::kConverged;
        }
        return PhaseResult::kNoDirection;
      }

      ++iterations_;

      // Apply the step.
      double t = limit;
      if (leave_row < 0) {
        // Bound flip of the entering variable.
        x_[enter] += enter_dir * t;
        stat_[enter] =
            stat_[enter] == VarStat::kAtLower ? VarStat::kAtUpper
                                              : VarStat::kAtLower;
        for (int i = 0; i < m_; ++i) {
          x_[basis_[i]] += -enter_dir * alpha[i] * t;
        }
        continue;
      }

      // Pivot: enter replaces basis_[leave_row].
      int leave = basis_[leave_row];
      for (int i = 0; i < m_; ++i) {
        x_[basis_[i]] += -enter_dir * alpha[i] * t;
      }
      x_[enter] += enter_dir * t;
      x_[leave] = leave_to_bound;
      stat_[leave] = leave_stat;
      stat_[enter] = VarStat::kBasic;
      basis_[leave_row] = enter;

      // Update B^{-1}: row ops so that column `enter` becomes e_{leave_row}.
      if (!PivotUpdate(leave_row, alpha)) {
        numerical_trouble_ = true;
        return phase1 ? PhaseResult::kConverged : PhaseResult::kNoDirection;
      }

      if (++since_refactor >= opts_.refactor_every) {
        since_refactor = 0;
        if (!Refactorize()) {
          numerical_trouble_ = true;
          return phase1 ? PhaseResult::kConverged : PhaseResult::kNoDirection;
        }
      }
    }
  }

  /// How a dual-simplex run ended.
  enum class DualOutcome {
    kPrimalFeasible,  ///< all basics back in bounds: optimal up to tolerance
    kInfeasible,      ///< a violated row admits no entering column
    kLimit,           ///< iteration budget exhausted
    kTrouble,         ///< numerical failure; caller must re-solve primally
  };

  /// True when the current basis satisfies the phase-2 optimality (= dual
  /// feasibility) conditions: nonbasic-at-lower reduced costs nonnegative,
  /// at-upper nonpositive, free near zero. The entry gate for the dual
  /// simplex; the tolerance is looser than opt_tol because the inherited
  /// basis inverse was refactorized from scratch.
  bool DualFeasible() {
    std::vector<double> y;
    ComputeDuals(/*phase1=*/false, &y);
    const double tol = 100.0 * opts_.opt_tol;
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic) continue;
      double d = ReducedCost(j, /*phase1=*/false, y);
      switch (stat_[j]) {
        case VarStat::kAtLower:
          if (d < -tol) return false;
          break;
        case VarStat::kAtUpper:
          if (d > tol) return false;
          break;
        case VarStat::kFree:
          if (std::abs(d) > tol) return false;
          break;
        case VarStat::kBasic:
          break;
      }
    }
    return true;
  }

  /// Bounded-variable dual simplex. Precondition: the basis is
  /// dual-feasible (DualFeasible()). Each iteration picks the most-violated
  /// basic variable (dual Dantzig; lowest basic index under Bland's
  /// fallback), prices the pivot row out of B^{-1}, runs the dual ratio
  /// test over the nonbasic columns to preserve dual feasibility, and
  /// pivots with the shared PivotUpdate machinery. Terminates with primal
  /// feasibility (= optimality), a proven-infeasible row, the iteration
  /// limit, or numerical trouble.
  DualOutcome SolveDual() {
    std::vector<double> y, alpha;
    int since_refactor = 0;
    int bad_pivots = 0;
    for (;;) {
      // ---- Leaving variable: a basic outside its bounds.
      bool bland = iterations_ > bland_threshold_;
      int leave_row = -1;
      double best_viol = opts_.feas_tol;
      for (int i = 0; i < m_; ++i) {
        int b = basis_[i];
        double viol = std::max(lb_[b] - x_[b], x_[b] - ub_[b]);
        if (viol <= best_viol) continue;
        if (bland) {
          // Anti-cycling: lowest basic variable index among the violated.
          if (leave_row < 0 || b < basis_[leave_row]) leave_row = i;
        } else {
          best_viol = viol;
          leave_row = i;
        }
      }
      if (leave_row < 0) return DualOutcome::kPrimalFeasible;
      if (iterations_ >= max_iter_) return DualOutcome::kLimit;

      int leave = basis_[leave_row];
      // s = +1: above its upper bound, must decrease onto it;
      // s = -1: below its lower bound, must increase onto it.
      int s = x_[leave] > ub_[leave] ? +1 : -1;
      double target = s > 0 ? ub_[leave] : lb_[leave];

      // ---- Dual ratio test over the priced pivot row. rho is row
      // leave_row of B^{-1}; alpha_j = rho . a_j is how entering j moves
      // the leaving basic. Eligibility keeps the basic moving toward its
      // violated bound; walking the ratio-sorted candidates keeps every
      // reduced cost on its feasible side after the step.
      const double* rho = &binv_[leave_row * m_];
      ComputeDuals(/*phase1=*/false, &y);
      struct Cand {
        int j;
        double a;      // priced pivot-row coefficient
        double ratio;  // dual ratio d_j / (s * a_j), clamped >= 0
      };
      std::vector<Cand> cands;
      for (int j = 0; j < total_; ++j) {
        if (stat_[j] == VarStat::kBasic) continue;
        double a = 0.0;
        for (const auto& [row, coeff] : cols_[j]) a += rho[row] * coeff;
        double sa = s * a;
        bool eligible;
        if (stat_[j] == VarStat::kAtLower) {
          eligible = sa > opts_.pivot_tol;
        } else if (stat_[j] == VarStat::kAtUpper) {
          eligible = sa < -opts_.pivot_tol;
        } else {  // kFree
          eligible = std::abs(sa) > opts_.pivot_tol;
        }
        if (!eligible) continue;
        double d = ReducedCost(j, /*phase1=*/false, y);
        // Nonnegative by dual feasibility (at-lower: d >= 0, sa > 0;
        // at-upper: d <= 0, sa < 0; free: d ~ 0); clamp entry-tolerance
        // slack so degenerate steps stay degenerate.
        double ratio = stat_[j] == VarStat::kFree ? std::abs(d / sa) : d / sa;
        cands.push_back({j, a, std::max(ratio, 0.0)});
      }

      // The signed excursion the step must absorb.
      double delta = x_[leave] - target;
      int enter = -1;
      // Bound flips collected by the ratio test: (column, signed step).
      std::vector<std::pair<int, double>> flips;
      if (bland) {
        // Anti-cycling: plain min-ratio with lowest index on ties, no
        // flips (the termination argument wants one pivot per iteration).
        double best_ratio = kInf;
        for (const Cand& c : cands) {
          if (c.ratio < best_ratio - 1e-12) {
            best_ratio = c.ratio;
            enter = c.j;
          }
        }
      } else {
        // Bound-flipping ratio test: walk the breakpoints in dual-ratio
        // order (ties prefer the larger |a| for pivot stability). A boxed
        // candidate whose full range cannot absorb the remaining
        // excursion is flipped to its other bound — no basis change, and
        // its reduced cost legitimately crosses zero at this dual step —
        // and the first candidate that can absorb the rest becomes the
        // pivot column. On 0/1 package models this replaces strings of
        // single-bound dual pivots with one pivot plus cheap flips.
        std::sort(cands.begin(), cands.end(),
                  [](const Cand& x, const Cand& y) {
                    if (x.ratio != y.ratio) return x.ratio < y.ratio;
                    if (std::abs(x.a) != std::abs(y.a)) {
                      return std::abs(x.a) > std::abs(y.a);
                    }
                    return x.j < y.j;
                  });
        for (const Cand& c : cands) {
          double dx = delta / c.a;
          double range = ub_[c.j] - lb_[c.j];
          if (stat_[c.j] == VarStat::kFree ||
              std::abs(dx) <= range + opts_.feas_tol) {
            enter = c.j;
            break;
          }
          double t = dx > 0 ? range : -range;
          flips.push_back({c.j, t});
          // |a * t| < |delta|: the excursion shrinks but keeps its sign.
          delta -= c.a * t;
        }
      }
      if (enter < 0) {
        // Even with every eligible column at its most helpful bound the
        // row cannot reach its range: a primal infeasibility certificate
        // regardless of the reduced costs (the row is a fixed combination
        // of original rows). Nothing was applied; the basis is intact.
        return DualOutcome::kInfeasible;
      }

      Ftran(enter, &alpha);
      if (std::abs(alpha[leave_row]) < opts_.pivot_tol) {
        // The priced row and the Ftran column disagree about the pivot:
        // the inverse has drifted. Refactorize and retry (the flips were
        // not applied yet); give up after repeated disagreement.
        numerical_trouble_ = true;
        if (++bad_pivots > 2 || !Refactorize()) return DualOutcome::kTrouble;
        continue;
      }

      ++iterations_;
      ++dual_iterations_;

      // ---- Apply the bound flips: each moves a nonbasic column to its
      // opposite bound and shifts every basic accordingly (an Ftran per
      // flip, but no pricing pass and no basis change — far cheaper than
      // the dual pivots they replace).
      std::vector<double> fcol;
      for (const auto& [fj, t] : flips) {
        Ftran(fj, &fcol);
        for (int i = 0; i < m_; ++i) x_[basis_[i]] -= fcol[i] * t;
        x_[fj] = t > 0 ? ub_[fj] : lb_[fj];
        stat_[fj] = t > 0 ? VarStat::kAtUpper : VarStat::kAtLower;
      }

      // ---- Pivot: the entering variable absorbs what is left of the
      // leaving basic's excursion past its bound.
      double dx = (x_[leave] - target) / alpha[leave_row];
      for (int i = 0; i < m_; ++i) {
        if (i == leave_row) continue;
        x_[basis_[i]] -= alpha[i] * dx;
      }
      x_[enter] += dx;
      x_[leave] = target;
      stat_[leave] = s > 0 ? VarStat::kAtUpper : VarStat::kAtLower;
      stat_[enter] = VarStat::kBasic;
      basis_[leave_row] = enter;

      if (!PivotUpdate(leave_row, alpha)) {
        numerical_trouble_ = true;
        return DualOutcome::kTrouble;
      }
      if (++since_refactor >= opts_.refactor_every) {
        since_refactor = 0;
        if (!Refactorize()) {
          numerical_trouble_ = true;
          return DualOutcome::kTrouble;
        }
      }
    }
  }

  SimplexOptions opts_;
  int m_, n_, total_;
  double sign_ = 1.0;
  int64_t max_iter_ = 0;
  int64_t iterations_ = 0;
  int64_t dual_iterations_ = 0;
  int64_t bland_threshold_ = 0;
  /// A phase aborted early on a singular refactorization (or phase 1 found
  /// an "unbounded" improving direction): any infeasible/unbounded verdict
  /// is suspect. Run() retries cold when this fires under a warm start.
  bool numerical_trouble_ = false;

  std::vector<std::vector<std::pair<int, double>>> cols_;  // per-variable
  std::vector<double> lb_, ub_, cost_;
  std::vector<int> basis_;
  std::vector<VarStat> stat_;
  std::vector<double> x_;
  std::vector<double> binv_;  // m x m row-major

 public:
  void set_bland_threshold(int64_t t) { bland_threshold_ = t; }
};

}  // namespace

int64_t EffectiveIterationLimit(const LpModel& model,
                                const SimplexOptions& options) {
  if (options.max_iterations > 0) return options.max_iterations;
  int64_t m = model.num_constraints();
  int64_t n = model.num_variables();
  return 200LL * (m + 1) + 20LL * (n + m) + 2000;
}

Result<LpSolution> SolveLp(
    const LpModel& model, const SimplexOptions& options,
    const std::vector<std::pair<double, double>>* bound_override,
    const LpBasis* warm_start) {
  PB_RETURN_IF_ERROR(model.Validate());
  if (bound_override) {
    if (static_cast<int>(bound_override->size()) != model.num_variables()) {
      return Status::InvalidArgument(
          "bound_override size does not match variable count");
    }
    for (const auto& [lo, hi] : *bound_override) {
      if (lo > hi) {
        LpSolution s;
        s.status = LpStatus::kInfeasible;
        return s;
      }
    }
  }
  Simplex solver(model, options, bound_override);
  // Switch to Bland's rule after a generous Dantzig budget (immediately
  // when the ablation knob asks for it).
  solver.set_bland_threshold(
      options.always_bland
          ? -1
          : 50LL * (model.num_constraints() + 1) +
                2LL * (model.num_variables() + model.num_constraints()) + 500);
  return solver.Run(warm_start);
}

}  // namespace pb::solver
