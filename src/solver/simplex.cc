#include "solver/simplex.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace pb::solver {

const char* LpStatusToString(LpStatus s) {
  switch (s) {
    case LpStatus::kOptimal:        return "Optimal";
    case LpStatus::kInfeasible:     return "Infeasible";
    case LpStatus::kUnbounded:      return "Unbounded";
    case LpStatus::kIterationLimit: return "IterationLimit";
  }
  return "?";
}

namespace {

/// The working state of one simplex solve. Variables 0..n-1 are structural;
/// n..n+m-1 are row slacks (column -e_i, bounds = row range).
class Simplex {
 public:
  Simplex(const LpModel& model, const SimplexOptions& options,
          const std::vector<std::pair<double, double>>* bound_override)
      : opts_(options),
        m_(model.num_constraints()),
        n_(model.num_variables()),
        total_(n_ + m_) {
    // Internally we always minimize; flip sign for maximize.
    sign_ = model.sense() == ObjectiveSense::kMaximize ? -1.0 : 1.0;

    cols_.resize(total_);
    lb_.resize(total_);
    ub_.resize(total_);
    cost_.assign(total_, 0.0);
    for (int j = 0; j < n_; ++j) {
      const Variable& v = model.variable(j);
      lb_[j] = bound_override ? (*bound_override)[j].first : v.lb;
      ub_[j] = bound_override ? (*bound_override)[j].second : v.ub;
      cost_[j] = sign_ * v.objective;
    }
    for (int i = 0; i < m_; ++i) {
      const Constraint& c = model.constraint(i);
      for (const LinearTerm& t : c.terms) {
        cols_[t.var].push_back({i, t.coeff});
      }
      int slack = n_ + i;
      cols_[slack].push_back({i, -1.0});
      lb_[slack] = c.lo;
      ub_[slack] = c.hi;
    }

    max_iter_ = EffectiveIterationLimit(model, options);
  }

  LpSolution Run(const LpBasis* warm_start) {
    bool warm_loaded = warm_start != nullptr && !warm_start->empty() &&
                       LoadBasis(*warm_start);
    if (!warm_loaded) InitBasis();
    for (;;) {
      LpSolution out = RunFromCurrentBasis();
      // Never conclude infeasible/unbounded from a warm start that hit
      // numerical trouble (a singular refactorization aborts a phase
      // early and can fake either verdict on an ill-conditioned inherited
      // basis): restart from the perfectly conditioned slack basis and
      // let the cold solve have the final word. Iterations accumulate
      // across the restart, so the accounting stays honest.
      if (warm_loaded && numerical_trouble_ &&
          (out.status == LpStatus::kInfeasible ||
           out.status == LpStatus::kUnbounded)) {
        warm_loaded = false;
        numerical_trouble_ = false;
        InitBasis();
        continue;
      }
      return out;
    }
  }

 private:
  /// Two-phase solve from whatever basis is currently loaded.
  LpSolution RunFromCurrentBasis() {
    LpSolution out;

    // ---- Phase 1: drive basic bound violations to zero. A warm basis that
    // is primal feasible under the current bounds exits immediately; one
    // that inherited now-violated bounds gets repaired here.
    bool feasible = SolvePhase(/*phase1=*/true);
    if (iterations_ >= max_iter_) {
      out.status = LpStatus::kIterationLimit;
      out.iterations = iterations_;
      ExportBasis(&out.basis);
      return out;
    }
    if (!feasible || TotalInfeasibility() > opts_.feas_tol * (1 + m_)) {
      out.status = LpStatus::kInfeasible;
      out.iterations = iterations_;
      return out;
    }

    // ---- Phase 2: optimize the true objective.
    bool optimal = SolvePhase(/*phase1=*/false);
    out.iterations = iterations_;
    if (iterations_ >= max_iter_) {
      out.status = LpStatus::kIterationLimit;
      ExportBasis(&out.basis);
      return out;
    }
    if (!optimal) {
      out.status = LpStatus::kUnbounded;
      return out;
    }
    out.status = LpStatus::kOptimal;
    out.x.assign(x_.begin(), x_.begin() + n_);
    double obj = 0.0;
    for (int j = 0; j < n_; ++j) obj += cost_[j] * x_[j];
    out.objective = sign_ * obj;
    ExportBasis(&out.basis);
    return out;
  }

 private:
  static constexpr double kInf = kInfinity;

  /// Puts every slack in the basis, structural variables at their "natural"
  /// bound (the finite bound nearest zero; free variables at 0).
  void InitBasis() {
    basis_.resize(m_);
    stat_.assign(total_, VarStat::kAtLower);
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (lb_[j] == -kInf && ub_[j] == kInf) {
        stat_[j] = VarStat::kFree;
        x_[j] = 0.0;
      } else if (lb_[j] == -kInf) {
        stat_[j] = VarStat::kAtUpper;
        x_[j] = ub_[j];
      } else if (ub_[j] == kInf) {
        stat_[j] = VarStat::kAtLower;
        x_[j] = lb_[j];
      } else {
        // Both finite: start at the bound with smaller magnitude.
        bool lower = std::abs(lb_[j]) <= std::abs(ub_[j]);
        stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
        x_[j] = lower ? lb_[j] : ub_[j];
      }
    }
    for (int i = 0; i < m_; ++i) {
      basis_[i] = n_ + i;
      stat_[n_ + i] = VarStat::kBasic;
    }
    // Slack basis inverse: B = -I  =>  B^{-1} = -I.
    binv_.assign(m_ * m_, 0.0);
    for (int i = 0; i < m_; ++i) binv_[i * m_ + i] = -1.0;
    RecomputeBasicValues();
  }

  /// Restores a prior basis: statuses are adopted, nonbasic variables snap
  /// to the current bounds (which may have moved since the snapshot — the
  /// branch-and-bound case), and the basis inverse is refactorized from
  /// scratch. Returns false (leaving reinitialization to the caller) when
  /// the snapshot has the wrong shape, is internally inconsistent, or its
  /// basis matrix is singular.
  bool LoadBasis(const LpBasis& b) {
    if (static_cast<int>(b.basic.size()) != m_ ||
        static_cast<int>(b.stat.size()) != total_) {
      return false;
    }
    int basic_count = 0;
    for (int j = 0; j < total_; ++j) {
      if (b.stat[j] == VarStat::kBasic) ++basic_count;
    }
    if (basic_count != m_) return false;
    for (int j : b.basic) {
      if (j < 0 || j >= total_ || b.stat[j] != VarStat::kBasic) return false;
    }
    basis_ = b.basic;
    stat_ = b.stat;
    x_.assign(total_, 0.0);
    for (int j = 0; j < total_; ++j) {
      switch (stat_[j]) {
        case VarStat::kBasic:
          break;  // recomputed by Refactorize()
        case VarStat::kAtLower:
          if (lb_[j] > -kInf) {
            x_[j] = lb_[j];
          } else if (ub_[j] < kInf) {
            stat_[j] = VarStat::kAtUpper;
            x_[j] = ub_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kAtUpper:
          if (ub_[j] < kInf) {
            x_[j] = ub_[j];
          } else if (lb_[j] > -kInf) {
            stat_[j] = VarStat::kAtLower;
            x_[j] = lb_[j];
          } else {
            stat_[j] = VarStat::kFree;
          }
          break;
        case VarStat::kFree:
          if (lb_[j] > -kInf || ub_[j] < kInf) {
            // Bounds appeared since the snapshot: rest on the nearer one.
            bool lower =
                ub_[j] == kInf ||
                (lb_[j] > -kInf && std::abs(lb_[j]) <= std::abs(ub_[j]));
            stat_[j] = lower ? VarStat::kAtLower : VarStat::kAtUpper;
            x_[j] = lower ? lb_[j] : ub_[j];
          }
          break;
      }
    }
    return Refactorize();
  }

  void ExportBasis(LpBasis* out) const {
    out->basic = basis_;
    out->stat = stat_;
  }

  /// x_B = B^{-1} (0 - N x_N).
  void RecomputeBasicValues() {
    std::vector<double> rhs(m_, 0.0);
    for (int j = 0; j < total_; ++j) {
      if (stat_[j] == VarStat::kBasic || x_[j] == 0.0) continue;
      for (const auto& [row, coeff] : cols_[j]) rhs[row] -= coeff * x_[j];
    }
    for (int i = 0; i < m_; ++i) {
      double v = 0.0;
      for (int k = 0; k < m_; ++k) v += binv_[i * m_ + k] * rhs[k];
      x_[basis_[i]] = v;
    }
  }

  /// Rebuilds binv_ from the basis columns by Gauss-Jordan with partial
  /// pivoting. Returns false if the basis matrix is (numerically) singular.
  bool Refactorize() {
    std::vector<double> mat(m_ * m_, 0.0);   // basis matrix B
    std::vector<double> inv(m_ * m_, 0.0);
    for (int i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
    for (int c = 0; c < m_; ++c) {
      for (const auto& [row, coeff] : cols_[basis_[c]]) {
        mat[row * m_ + c] = coeff;
      }
    }
    for (int c = 0; c < m_; ++c) {
      int piv = -1;
      double best = opts_.pivot_tol;
      for (int r = c; r < m_; ++r) {
        if (std::abs(mat[r * m_ + c]) > best) {
          best = std::abs(mat[r * m_ + c]);
          piv = r;
        }
      }
      if (piv < 0) return false;
      if (piv != c) {
        for (int k = 0; k < m_; ++k) {
          std::swap(mat[piv * m_ + k], mat[c * m_ + k]);
          std::swap(inv[piv * m_ + k], inv[c * m_ + k]);
        }
      }
      double d = mat[c * m_ + c];
      for (int k = 0; k < m_; ++k) {
        mat[c * m_ + k] /= d;
        inv[c * m_ + k] /= d;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == c) continue;
        double f = mat[r * m_ + c];
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          mat[r * m_ + k] -= f * mat[c * m_ + k];
          inv[r * m_ + k] -= f * inv[c * m_ + k];
        }
      }
    }
    binv_ = std::move(inv);
    RecomputeBasicValues();
    return true;
  }

  double Violation(int j) const {
    if (x_[j] < lb_[j]) return lb_[j] - x_[j];
    if (x_[j] > ub_[j]) return x_[j] - ub_[j];
    return 0.0;
  }

  double TotalInfeasibility() const {
    double total = 0.0;
    for (int i = 0; i < m_; ++i) total += Violation(basis_[i]);
    return total;
  }

  /// alpha = B^{-1} a_j for a column j.
  void Ftran(int j, std::vector<double>* alpha) const {
    alpha->assign(m_, 0.0);
    for (const auto& [row, coeff] : cols_[j]) {
      for (int i = 0; i < m_; ++i) {
        (*alpha)[i] += binv_[i * m_ + row] * coeff;
      }
    }
  }

  /// y = c_B B^{-1} where c_B is the (phase-dependent) basic cost vector.
  void ComputeDuals(bool phase1, std::vector<double>* y) const {
    y->assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double cb;
      if (phase1) {
        int b = basis_[i];
        if (x_[b] < lb_[b] - opts_.feas_tol) cb = -1.0;        // below: grow
        else if (x_[b] > ub_[b] + opts_.feas_tol) cb = 1.0;    // above: shrink
        else cb = 0.0;
      } else {
        cb = cost_[basis_[i]];
      }
      if (cb == 0.0) continue;
      for (int k = 0; k < m_; ++k) (*y)[k] += cb * binv_[i * m_ + k];
    }
  }

  double ReducedCost(int j, bool phase1, const std::vector<double>& y) const {
    double d = phase1 ? 0.0 : cost_[j];
    for (const auto& [row, coeff] : cols_[j]) d -= y[row] * coeff;
    return d;
  }

  /// Runs one phase to completion. Returns:
  ///   phase 1 — true when no improving direction remains (then feasibility
  ///             is judged by TotalInfeasibility());
  ///   phase 2 — true for optimal, false for unbounded.
  /// May also stop on the iteration limit (caller checks iterations_).
  bool SolvePhase(bool phase1) {
    std::vector<double> y, alpha;
    int since_refactor = 0;
    while (iterations_ < max_iter_) {
      if (phase1 && TotalInfeasibility() <= opts_.feas_tol) return true;

      ComputeDuals(phase1, &y);

      // Pricing. Dantzig rule normally; Bland's (lowest eligible index)
      // once the iteration count suggests cycling.
      bool bland = iterations_ > bland_threshold_;
      int enter = -1;
      double best_score = opts_.opt_tol;
      int enter_dir = 0;  // +1 increase, -1 decrease
      for (int j = 0; j < total_; ++j) {
        if (stat_[j] == VarStat::kBasic) continue;
        double d = ReducedCost(j, phase1, y);
        int dir = 0;
        double score = 0.0;
        if (stat_[j] == VarStat::kAtLower && d < -opts_.opt_tol) {
          dir = +1;
          score = -d;
        } else if (stat_[j] == VarStat::kAtUpper && d > opts_.opt_tol) {
          dir = -1;
          score = d;
        } else if (stat_[j] == VarStat::kFree &&
                   std::abs(d) > opts_.opt_tol) {
          dir = d < 0 ? +1 : -1;
          score = std::abs(d);
        }
        if (dir == 0) continue;
        if (bland) {
          enter = j;
          enter_dir = dir;
          break;
        }
        if (score > best_score) {
          best_score = score;
          enter = j;
          enter_dir = dir;
        }
      }
      if (enter < 0) {
        // No improving direction: phase-1 stalls (feasible or not);
        // phase-2 is optimal.
        return true;
      }

      Ftran(enter, &alpha);

      // Ratio test. The entering variable moves by t >= 0 in direction
      // enter_dir; basic i changes at rate delta_i = -enter_dir * alpha_i.
      double limit = kInf;
      int leave_row = -1;
      double leave_to_bound = 0.0;  // bound value the leaving var lands on
      VarStat leave_stat = VarStat::kAtLower;
      // Entering variable's own opposite bound (bound flip).
      if (stat_[enter] == VarStat::kAtLower && ub_[enter] < kInf) {
        limit = ub_[enter] - lb_[enter];
      } else if (stat_[enter] == VarStat::kAtUpper && lb_[enter] > -kInf) {
        limit = ub_[enter] - lb_[enter];
      }
      for (int i = 0; i < m_; ++i) {
        double rate = -enter_dir * alpha[i];
        if (std::abs(rate) < opts_.pivot_tol) continue;
        int b = basis_[i];
        double t;
        VarStat to_stat;
        double to_bound;
        bool below = x_[b] < lb_[b] - opts_.feas_tol;
        bool above = x_[b] > ub_[b] + opts_.feas_tol;
        if (phase1 && below) {
          // Infeasible-below basic blocks where its cost segment changes:
          // at its lower bound when moving up; never when moving down.
          if (rate <= 0) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        } else if (phase1 && above) {
          if (rate >= 0) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else if (rate > 0) {
          if (ub_[b] == kInf) continue;
          t = (ub_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtUpper;
          to_bound = ub_[b];
        } else {
          if (lb_[b] == -kInf) continue;
          t = (lb_[b] - x_[b]) / rate;
          to_stat = VarStat::kAtLower;
          to_bound = lb_[b];
        }
        t = std::max(t, 0.0);
        if (t < limit - 1e-12 ||
            (leave_row >= 0 && t < limit + 1e-12 &&
             std::abs(alpha[i]) > std::abs(alpha[leave_row]))) {
          limit = t;
          leave_row = i;
          leave_stat = to_stat;
          leave_to_bound = to_bound;
        }
      }

      if (limit == kInf) {
        // Unbounded direction. In phase 1 this cannot lower a
        // nonnegative objective forever — treat as numerical trouble and
        // report infeasible via the caller's infeasibility check.
        if (phase1) numerical_trouble_ = true;
        return !phase1 ? false : true;
      }

      ++iterations_;

      // Apply the step.
      double t = limit;
      if (leave_row < 0) {
        // Bound flip of the entering variable.
        x_[enter] += enter_dir * t;
        stat_[enter] =
            stat_[enter] == VarStat::kAtLower ? VarStat::kAtUpper
                                              : VarStat::kAtLower;
        for (int i = 0; i < m_; ++i) {
          x_[basis_[i]] += -enter_dir * alpha[i] * t;
        }
        continue;
      }

      // Pivot: enter replaces basis_[leave_row].
      int leave = basis_[leave_row];
      for (int i = 0; i < m_; ++i) {
        x_[basis_[i]] += -enter_dir * alpha[i] * t;
      }
      x_[enter] += enter_dir * t;
      x_[leave] = leave_to_bound;
      stat_[leave] = leave_stat;
      stat_[enter] = VarStat::kBasic;
      basis_[leave_row] = enter;

      // Update B^{-1}: row ops so that column `enter` becomes e_{leave_row}.
      double piv = alpha[leave_row];
      if (std::abs(piv) < opts_.pivot_tol) {
        if (!Refactorize()) {
          numerical_trouble_ = true;
          return !phase1 ? false : true;
        }
        continue;
      }
      double* prow = &binv_[leave_row * m_];
      for (int k = 0; k < m_; ++k) prow[k] /= piv;
      for (int i = 0; i < m_; ++i) {
        if (i == leave_row) continue;
        double f = alpha[i];
        if (f == 0.0) continue;
        double* row = &binv_[i * m_];
        for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
      }

      if (++since_refactor >= opts_.refactor_every) {
        since_refactor = 0;
        if (!Refactorize()) {
          numerical_trouble_ = true;
          return !phase1 ? false : true;
        }
      }
    }
    return true;  // iteration limit; caller inspects iterations_
  }

  SimplexOptions opts_;
  int m_, n_, total_;
  double sign_ = 1.0;
  int64_t max_iter_ = 0;
  int64_t iterations_ = 0;
  int64_t bland_threshold_ = 0;
  /// A phase aborted early on a singular refactorization (or phase 1 found
  /// an "unbounded" improving direction): any infeasible/unbounded verdict
  /// is suspect. Run() retries cold when this fires under a warm start.
  bool numerical_trouble_ = false;

  std::vector<std::vector<std::pair<int, double>>> cols_;  // per-variable
  std::vector<double> lb_, ub_, cost_;
  std::vector<int> basis_;
  std::vector<VarStat> stat_;
  std::vector<double> x_;
  std::vector<double> binv_;  // m x m row-major

 public:
  void set_bland_threshold(int64_t t) { bland_threshold_ = t; }
};

}  // namespace

int64_t EffectiveIterationLimit(const LpModel& model,
                                const SimplexOptions& options) {
  if (options.max_iterations > 0) return options.max_iterations;
  int64_t m = model.num_constraints();
  int64_t n = model.num_variables();
  return 200LL * (m + 1) + 20LL * (n + m) + 2000;
}

Result<LpSolution> SolveLp(
    const LpModel& model, const SimplexOptions& options,
    const std::vector<std::pair<double, double>>* bound_override,
    const LpBasis* warm_start) {
  PB_RETURN_IF_ERROR(model.Validate());
  if (bound_override) {
    if (static_cast<int>(bound_override->size()) != model.num_variables()) {
      return Status::InvalidArgument(
          "bound_override size does not match variable count");
    }
    for (const auto& [lo, hi] : *bound_override) {
      if (lo > hi) {
        LpSolution s;
        s.status = LpStatus::kInfeasible;
        return s;
      }
    }
  }
  Simplex solver(model, options, bound_override);
  // Switch to Bland's rule after a generous Dantzig budget (immediately
  // when the ablation knob asks for it).
  solver.set_bland_threshold(
      options.always_bland
          ? -1
          : 50LL * (model.num_constraints() + 1) +
                2LL * (model.num_variables() + model.num_constraints()) + 500);
  return solver.Run(warm_start);
}

}  // namespace pb::solver
