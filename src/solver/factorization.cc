#include "solver/factorization.h"

#include <algorithm>
#include <cmath>

namespace pb::solver {

const char* FactorizationKindToString(FactorizationKind k) {
  switch (k) {
    case FactorizationKind::kDense:    return "dense";
    case FactorizationKind::kSparseLu: return "sparse-lu";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Dense backend: the original engine, verbatim — an explicit m x m inverse
// rebuilt by Gauss-Jordan and patched by product-form row operations.
// ---------------------------------------------------------------------------

class DenseFactorization final : public BasisFactorization {
 public:
  DenseFactorization(const CscMatrix& a, int n, int m, double pivot_tol)
      : BasisFactorization(a, n, m, pivot_tol) {}

  bool Refactorize(const std::vector<int>& basis) override {
    std::vector<double> mat(static_cast<size_t>(m_) * m_, 0.0);  // B
    std::vector<double> inv(static_cast<size_t>(m_) * m_, 0.0);
    for (int i = 0; i < m_; ++i) inv[i * m_ + i] = 1.0;
    for (int c = 0; c < m_; ++c) {
      ForEachColumnEntry(basis[c],
                         [&](int row, double coeff) { mat[row * m_ + c] = coeff; });
    }
    for (int c = 0; c < m_; ++c) {
      int piv = -1;
      double best = pivot_tol_;
      for (int r = c; r < m_; ++r) {
        if (std::abs(mat[r * m_ + c]) > best) {
          best = std::abs(mat[r * m_ + c]);
          piv = r;
        }
      }
      if (piv < 0) return false;
      if (piv != c) {
        for (int k = 0; k < m_; ++k) {
          std::swap(mat[piv * m_ + k], mat[c * m_ + k]);
          std::swap(inv[piv * m_ + k], inv[c * m_ + k]);
        }
      }
      double d = mat[c * m_ + c];
      for (int k = 0; k < m_; ++k) {
        mat[c * m_ + k] /= d;
        inv[c * m_ + k] /= d;
      }
      for (int r = 0; r < m_; ++r) {
        if (r == c) continue;
        double f = mat[r * m_ + c];
        if (f == 0.0) continue;
        for (int k = 0; k < m_; ++k) {
          mat[r * m_ + k] -= f * mat[c * m_ + k];
          inv[r * m_ + k] -= f * inv[c * m_ + k];
        }
      }
    }
    binv_ = std::move(inv);
    ++stats_.refactorizations;
    return true;
  }

  void Ftran(std::vector<double>* x) override {
    // binv_ * x, accumulated column-by-column so a sparse input pays only
    // for its nonzeros (entering columns have a handful).
    work_.assign(m_, 0.0);
    for (int k = 0; k < m_; ++k) {
      double v = (*x)[k];
      if (v == 0.0) continue;
      for (int i = 0; i < m_; ++i) work_[i] += binv_[i * m_ + k] * v;
    }
    std::swap(*x, work_);
  }

  void Btran(std::vector<double>* y) override {
    work_.assign(m_, 0.0);
    for (int i = 0; i < m_; ++i) {
      double v = (*y)[i];
      if (v == 0.0) continue;
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) work_[k] += v * row[k];
    }
    std::swap(*y, work_);
  }

  void BtranUnit(int r, std::vector<double>* rho) override {
    rho->assign(binv_.begin() + static_cast<size_t>(r) * m_,
                binv_.begin() + static_cast<size_t>(r + 1) * m_);
  }

  bool Update(int leave_row, const std::vector<double>& alpha,
              const std::vector<int>& basis) override {
    double piv = alpha[leave_row];
    if (std::abs(piv) < pivot_tol_) return Refactorize(basis);
    double* prow = &binv_[static_cast<size_t>(leave_row) * m_];
    for (int k = 0; k < m_; ++k) prow[k] /= piv;
    for (int i = 0; i < m_; ++i) {
      if (i == leave_row) continue;
      double f = alpha[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
    ++stats_.updates;
    return true;
  }

  bool ShouldRefactorize() const override { return false; }

  const char* name() const override { return "dense"; }

 private:
  std::vector<double> binv_;  // m x m row-major
  std::vector<double> work_;
};

// ---------------------------------------------------------------------------
// Sparse backend: left-looking LU (Gilbert-Peierls) with threshold
// Markowitz pivoting, plus a product-form eta file between
// refactorizations. Everything is O(nnz) of the factors.
//
// Index spaces: "rows" are original row indices, "steps" are elimination
// order (step k pivots row pivot_row_[k]), "positions" are basis slots
// (step k factors basis column step_pos_[k]). L columns store original row
// indices; U columns store earlier step indices.
// ---------------------------------------------------------------------------

class SparseLuFactorization final : public BasisFactorization {
 public:
  SparseLuFactorization(const CscMatrix& a, int n, int m, double pivot_tol)
      : BasisFactorization(a, n, m, pivot_tol) {}

  bool Refactorize(const std::vector<int>& basis) override {
    lcols_.assign(m_, {});
    ucols_.assign(m_, {});
    udiag_.assign(m_, 0.0);
    pivot_row_.assign(m_, -1);
    row_step_.assign(m_, -1);
    step_pos_.assign(m_, -1);
    etas_.clear();
    eta_nnz_ = 0;
    lu_nnz_ = 0;
    work_.assign(m_, 0.0);
    mark_.assign(m_, 0);
    smark_.assign(m_, 0);
    solve_.resize(m_);

    // Static Markowitz surrogate: process columns sparsest-first, break
    // pivot ties toward the sparsest row. Slacks are singletons, so a
    // package basis factors with its dense-ish COUNT rows last.
    std::vector<int> colnnz(m_, 0), rownnz(m_, 0);
    for (int p = 0; p < m_; ++p) {
      ForEachColumnEntry(basis[p], [&](int i, double) {
        ++colnnz[p];
        ++rownnz[i];
      });
    }
    std::vector<int> order(m_);
    for (int p = 0; p < m_; ++p) order[p] = p;
    std::sort(order.begin(), order.end(), [&](int x, int y) {
      if (colnnz[x] != colnnz[y]) return colnnz[x] < colnnz[y];
      return x < y;
    });

    for (int k = 0; k < m_; ++k) {
      int pos = order[k];
      // Scatter the basis column into the dense workspace.
      pattern_.clear();
      ForEachColumnEntry(basis[pos], [&](int i, double v) {
        if (!mark_[i]) {
          mark_[i] = 1;
          pattern_.push_back(i);
        }
        work_[i] += v;
      });

      // Symbolic phase: the earlier steps whose updates reach this column,
      // found by DFS through the L columns' fill rows. Every edge goes
      // from a step to a later one, so ascending step order is a valid
      // topological order for the numeric pass.
      reach_.clear();
      for (int i : pattern_) {
        int t0 = row_step_[i];
        if (t0 < 0 || smark_[t0]) continue;
        smark_[t0] = 1;
        reach_.push_back(t0);
        dfs_.assign(1, t0);
        while (!dfs_.empty()) {
          int t = dfs_.back();
          dfs_.pop_back();
          for (const Entry& e : lcols_[t]) {
            int ts = row_step_[e.idx];
            if (ts >= 0 && !smark_[ts]) {
              smark_[ts] = 1;
              reach_.push_back(ts);
              dfs_.push_back(ts);
            }
          }
        }
      }
      std::sort(reach_.begin(), reach_.end());

      // Numeric phase: record U entries and apply the multipliers.
      for (int t : reach_) {
        smark_[t] = 0;
        double d = work_[pivot_row_[t]];
        if (d == 0.0) continue;
        ucols_[k].push_back({t, d});
        work_[pivot_row_[t]] = 0.0;
        for (const Entry& e : lcols_[t]) {
          if (!mark_[e.idx]) {
            mark_[e.idx] = 1;
            pattern_.push_back(e.idx);
          }
          work_[e.idx] -= d * e.val;
        }
      }

      // Threshold pivot: the sparsest row whose magnitude is within a
      // factor of the best one (classic Markowitz-with-threshold, tau=0.1).
      double maxabs = 0.0;
      for (int i : pattern_) {
        if (row_step_[i] < 0) maxabs = std::max(maxabs, std::abs(work_[i]));
      }
      if (maxabs < pivot_tol_) {
        for (int i : pattern_) {
          mark_[i] = 0;
          work_[i] = 0.0;
        }
        return false;  // numerically singular
      }
      const double thresh = std::max(0.1 * maxabs, pivot_tol_);
      int pr = -1;
      for (int i : pattern_) {
        if (row_step_[i] >= 0 || std::abs(work_[i]) < thresh) continue;
        if (pr < 0 || rownnz[i] < rownnz[pr] ||
            (rownnz[i] == rownnz[pr] && i < pr)) {
          pr = i;
        }
      }
      double pv = work_[pr];
      pivot_row_[k] = pr;
      row_step_[pr] = k;
      step_pos_[k] = pos;
      udiag_[k] = pv;
      work_[pr] = 0.0;
      mark_[pr] = 0;
      for (int i : pattern_) {
        if (i == pr) continue;
        mark_[i] = 0;
        if (row_step_[i] < 0 && work_[i] != 0.0) {
          lcols_[k].push_back({i, work_[i] / pv});
        }
        work_[i] = 0.0;
      }
      lu_nnz_ += static_cast<int64_t>(lcols_[k].size() + ucols_[k].size()) + 1;
    }
    ++stats_.refactorizations;
    return true;
  }

  void Ftran(std::vector<double>* x) override {
    std::vector<double>& b = *x;
    // Forward L solve in original row space: after step t fires, the value
    // parked at pivot_row_[t] is (L^{-1} P b)_t.
    for (int t = 0; t < m_; ++t) {
      double d = b[pivot_row_[t]];
      if (d == 0.0) continue;
      for (const Entry& e : lcols_[t]) b[e.idx] -= d * e.val;
    }
    // Backward U solve, column-oriented.
    for (int k = m_ - 1; k >= 0; --k) {
      double z = b[pivot_row_[k]] / udiag_[k];
      solve_[k] = z;
      if (z != 0.0) {
        for (const Entry& e : ucols_[k]) b[pivot_row_[e.idx]] -= e.val * z;
      }
    }
    // Undo the column permutation (step k factored basis position
    // step_pos_[k]), then roll the eta file forward.
    for (int k = 0; k < m_; ++k) b[step_pos_[k]] = solve_[k];
    for (const Eta& eta : etas_) {
      double d = b[eta.r] / eta.diag;
      b[eta.r] = d;
      if (d != 0.0) {
        for (const Entry& e : eta.ents) b[e.idx] -= e.val * d;
      }
    }
  }

  void Btran(std::vector<double>* y) override {
    std::vector<double>& c = *y;
    // Eta file transposed, newest first.
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      double s = 0.0;
      for (const Entry& e : it->ents) s += e.val * c[e.idx];
      c[it->r] = (c[it->r] - s) / it->diag;
    }
    // U^T forward solve in step space...
    for (int k = 0; k < m_; ++k) {
      double g = c[step_pos_[k]];
      for (const Entry& e : ucols_[k]) g -= e.val * solve_[e.idx];
      solve_[k] = g / udiag_[k];
    }
    // ...then L^T backward (unit diagonal; lcols_ rows map to later steps).
    for (int t = m_ - 1; t >= 0; --t) {
      double g = solve_[t];
      for (const Entry& e : lcols_[t]) g -= e.val * solve_[row_step_[e.idx]];
      solve_[t] = g;
    }
    for (int t = 0; t < m_; ++t) c[pivot_row_[t]] = solve_[t];
  }

  void BtranUnit(int r, std::vector<double>* rho) override {
    rho->assign(m_, 0.0);
    (*rho)[r] = 1.0;
    Btran(rho);
  }

  bool Update(int leave_row, const std::vector<double>& alpha,
              const std::vector<int>& basis) override {
    double piv = alpha[leave_row];
    if (std::abs(piv) < pivot_tol_) return Refactorize(basis);
    Eta eta;
    eta.r = leave_row;
    eta.diag = piv;
    for (int i = 0; i < m_; ++i) {
      if (i != leave_row && alpha[i] != 0.0) eta.ents.push_back({i, alpha[i]});
    }
    eta_nnz_ += static_cast<int64_t>(eta.ents.size()) + 1;
    etas_.push_back(std::move(eta));
    ++stats_.updates;
    return true;
  }

  bool ShouldRefactorize() const override {
    // Once the eta file outweighs the factors, solves cost more than a
    // fresh factorization would save.
    return !etas_.empty() && eta_nnz_ > 2 * (lu_nnz_ + m_);
  }

  const char* name() const override { return "sparse-lu"; }

 private:
  struct Entry {
    int idx;     // L: original row; U: earlier step
    double val;
  };
  struct Eta {
    int r = -1;        // replaced basis position
    double diag = 0.0; // alpha[r]
    std::vector<Entry> ents;  // alpha's other nonzeros (position space)
  };

  std::vector<std::vector<Entry>> lcols_;  // per step, below-diagonal part
  std::vector<std::vector<Entry>> ucols_;  // per step, above-diagonal part
  std::vector<double> udiag_;
  std::vector<int> pivot_row_;  // step -> original row
  std::vector<int> row_step_;   // original row -> step (-1 = unpivoted)
  std::vector<int> step_pos_;   // step -> basis position
  std::vector<Eta> etas_;
  int64_t lu_nnz_ = 0;
  int64_t eta_nnz_ = 0;

  // Workspaces (persist across calls to avoid reallocation).
  std::vector<double> work_;
  std::vector<double> solve_;
  std::vector<int> pattern_;
  std::vector<int> reach_;
  std::vector<int> dfs_;
  std::vector<unsigned char> mark_;   // row in pattern_
  std::vector<unsigned char> smark_;  // step in reach_
};

}  // namespace

std::unique_ptr<BasisFactorization> MakeFactorization(FactorizationKind kind,
                                                      const CscMatrix& a,
                                                      int num_structural,
                                                      int num_rows,
                                                      double pivot_tol) {
  switch (kind) {
    case FactorizationKind::kDense:
      return std::make_unique<DenseFactorization>(a, num_structural, num_rows,
                                                  pivot_tol);
    case FactorizationKind::kSparseLu:
      return std::make_unique<SparseLuFactorization>(a, num_structural,
                                                     num_rows, pivot_tol);
  }
  return nullptr;
}

}  // namespace pb::solver
