// Branch-and-bound MILP solver on top of the bounded-variable simplex.
//
// This stands in for the "state-of-the-art constraint optimization solvers"
// the paper hands its translated package queries to (CPLEX in the authors'
// deployment). Best-first search on the LP relaxation bound, branching on
// the most fractional integer variable, with an LP-rounding primal
// heuristic to obtain incumbents early.

#ifndef PB_SOLVER_MILP_H_
#define PB_SOLVER_MILP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace pb::solver {

enum class MilpStatus {
  kOptimal,     ///< proven optimal incumbent
  kInfeasible,  ///< no integer-feasible point exists
  kFeasible,    ///< stopped at a limit with an incumbent (not proven optimal)
  kNoSolution,  ///< stopped at a limit before finding any incumbent
  kUnbounded,   ///< LP relaxation unbounded in the optimization direction
};

const char* MilpStatusToString(MilpStatus s);

struct MilpOptions {
  double int_tol = 1e-6;         ///< integrality tolerance
  double gap_abs = 1e-9;         ///< absolute bound-vs-incumbent gap to stop
  int64_t max_nodes = 2'000'000; ///< branch-and-bound node budget
  double time_limit_s = 300.0;   ///< wall-clock budget
  bool rounding_heuristic = true;
  SimplexOptions lp;
};

struct MilpResult {
  MilpStatus status = MilpStatus::kNoSolution;
  std::vector<double> x;     ///< incumbent (valid for kOptimal / kFeasible)
  double objective = 0.0;    ///< incumbent objective
  double best_bound = 0.0;   ///< proven bound on the optimum
  int64_t nodes = 0;         ///< nodes explored
  int64_t lp_iterations = 0; ///< total simplex iterations
  double solve_seconds = 0.0;

  bool has_solution() const {
    return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible;
  }
};

/// Solves a MILP. Pure-LP models (no integer variables) degrade to a single
/// simplex solve. Statuses map: LP infeasible -> kInfeasible, LP unbounded ->
/// kUnbounded.
Result<MilpResult> SolveMilp(const LpModel& model,
                             const MilpOptions& options = {});

/// Convenience: solve and require a solution, mapping "no solution" statuses
/// onto error Statuses (kInfeasible / kResourceExhausted / kUnbounded).
Result<MilpResult> SolveMilpOrFail(const LpModel& model,
                                   const MilpOptions& options = {});

}  // namespace pb::solver

#endif  // PB_SOLVER_MILP_H_
