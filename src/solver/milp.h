// Branch-and-bound MILP solver on top of the bounded-variable simplex.
//
// This stands in for the "state-of-the-art constraint optimization solvers"
// the paper hands its translated package queries to (CPLEX in the authors'
// deployment). Best-first search on the LP relaxation bound, branching on
// the most fractional integer variable, with an LP-rounding primal
// heuristic to obtain incumbents early. With MilpOptions::num_threads > 1
// the tree search runs in parallel: helper threads speculatively solve the
// LPs of frontier nodes against a shared incumbent bound while the main
// thread commits results in the exact serial order, so every solve is
// bit-identical for any thread count (see MilpOptions::num_threads).

#ifndef PB_SOLVER_MILP_H_
#define PB_SOLVER_MILP_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/budget.h"
#include "common/status.h"
#include "solver/model.h"
#include "solver/simplex.h"

namespace pb::solver {

enum class MilpStatus {
  kOptimal,     ///< proven optimal incumbent
  kInfeasible,  ///< no integer-feasible point exists
  kFeasible,    ///< stopped at a limit with an incumbent (not proven optimal)
  kNoSolution,  ///< stopped at a limit before finding any incumbent
  kUnbounded,   ///< LP relaxation unbounded in the optimization direction
};

const char* MilpStatusToString(MilpStatus s);

/// Per-variable branching history: average objective degradation observed
/// per unit of fractionality when branching a variable down (floor) or up
/// (ceil). Seeds branch-variable selection; sharing one history across
/// repeated solves of structurally identical models (SketchRefine's
/// refine/repair sub-ILP sequence) gives later solves better choices from
/// node one.
struct PseudocostHistory {
  struct Entry {
    double down_sum = 0.0;  ///< accumulated per-unit degradation, floor side
    double up_sum = 0.0;    ///< accumulated per-unit degradation, ceil side
    int32_t down_n = 0;
    int32_t up_n = 0;
  };
  std::vector<Entry> entries;  ///< indexed by variable
  /// Running aggregates over every observation, maintained alongside the
  /// per-entry sums: O(1) has_observations() and global fallback averages
  /// during branch selection instead of a full pass per node.
  double down_sum_all = 0.0;
  double up_sum_all = 0.0;
  int64_t down_n_all = 0;
  int64_t up_n_all = 0;

  bool has_observations() const { return down_n_all + up_n_all > 0; }
};

/// Reusable cross-solve warm-start state, owned by the caller and passed
/// via MilpOptions::warm. SolveMilp reads it on entry (root LP basis,
/// branching history) and updates it on exit. State is keyed on the
/// model's StructuralSignature(): a signature mismatch resets it, so it is
/// always safe to reuse one MilpWarmStart across arbitrary solves — it only
/// ever helps when the structure actually matches. NOT thread-safe: one
/// warm-start object must not be shared by concurrent solves.
struct MilpWarmStart {
  uint64_t model_signature = 0;
  LpBasis root_basis;
  PseudocostHistory pseudocosts;
};

struct MilpOptions {
  double int_tol = 1e-6;         ///< integrality tolerance
  double gap_abs = 1e-9;         ///< absolute bound-vs-incumbent gap to stop
  /// Branch-and-bound node budget. Counts LP solves, including the re-
  /// solves of a node whose LP hit its iteration limit (each retry doubles
  /// the LP budget, so retries are real work the cap must bound).
  int64_t max_nodes = 2'000'000;
  double time_limit_s = 300.0;   ///< wall-clock budget
  bool rounding_heuristic = true;
  /// Re-solve each branch-and-bound child from its parent's optimal basis
  /// (phase-1 repair handles the tightened bound), chain bases through the
  /// dive heuristic, and branch on pseudocost history. Off = the faithful
  /// pre-warm-start solver — cold slack-basis solves, most-fractional
  /// branching, and `warm` ignored — kept as an ablation/benchmark knob.
  bool warm_start_lps = true;
  /// Re-optimize warm child LPs with the dual simplex (the parent basis is
  /// dual-feasible after a branch tightens one bound, so a few dual pivots
  /// replace the phase-1 primal repair). Governs every LP this solve runs
  /// (overrides lp.use_dual_simplex); no effect without warm_start_lps,
  /// since only warm bases can enter the dual. Off = PR 3's warm-primal
  /// re-solve path exactly (ablation knob).
  bool use_dual_simplex = true;
  /// Propagate each branched bound through per-node row activity ranges
  /// before solving the child's LP: tighten implied integer bounds (COUNT
  /// = k rows fix many binaries at once) and discard children whose rows
  /// can no longer be satisfied without any LP work. Preserves the
  /// integer feasible set exactly (the MILP answer never changes); the
  /// ceil/floor tightening may trim LP-fractional corners of a child's
  /// relaxation, so only the bounds and the search path move. Off = every
  /// child pays a full LP (ablation knob).
  bool node_presolve = true;
  /// Optional cross-solve state (borrowed, in/out); see MilpWarmStart.
  MilpWarmStart* warm = nullptr;
  /// Unified thread budget (see common/budget.h). `compute.threads` is the
  /// tree-search thread count; the effective value is
  /// max(compute.threads, num_threads) while the deprecated alias below
  /// survives. `compute.node_threads` is ignored here (it only matters to
  /// SketchRefine's two-level split).
  ComputeBudget compute;
  /// Cooperative cancellation, polled once per branch-and-bound node (and
  /// per dive step). The default token is inert. A cancelled solve stops
  /// exactly like a node/time-limit stop: it returns kFeasible with the
  /// incumbent found so far or kNoSolution without one — never a
  /// corrupted result — and MilpResult::cancelled is set so callers can
  /// tell interruption from budget exhaustion.
  CancelToken cancel;
  /// DEPRECATED alias for compute.threads (one release; see ComputeBudget
  /// in common/budget.h for the resolution rule).
  /// Threads for the branch-and-bound tree search. 1 (the default) is the
  /// serial solver, unchanged. N > 1 spawns N-1 helper threads that
  /// speculatively solve the LP relaxations of nodes near the top of the
  /// open heap — a node's LP is a pure function of its bounds, inherited
  /// basis, and iteration budget — while the main thread pops, prunes, and
  /// commits results (incumbent, pseudocosts, branching, presolve) in the
  /// exact serial best-first order. Helpers skip nodes already cut off by
  /// the atomically published incumbent bound. The committed tree is
  /// therefore bit-identical for EVERY value of num_threads: same package,
  /// same bounds, same nodes/lp_iterations/presolve counters; only
  /// wall-clock and MilpResult::speculative_lps vary. (As with the Refine
  /// fan-out, determinism additionally requires a deterministic stopping
  /// rule — a solve that hits time_limit_s mid-search stops at a
  /// wall-clock-dependent node; prefer max_nodes budgets.)
  int num_threads = 1;
  /// Per-LP options, inherited by every node solve — including the
  /// factorization backend and pricing rule, so an engine ablation flips
  /// one field here and the whole tree follows.
  SimplexOptions lp;
};

struct MilpResult {
  MilpStatus status = MilpStatus::kNoSolution;
  std::vector<double> x;     ///< incumbent (valid for kOptimal / kFeasible)
  double objective = 0.0;    ///< incumbent objective
  double best_bound = 0.0;   ///< proven bound on the optimum
  /// Node LP solves performed (iteration-limit re-solves of one node
  /// count individually — see MilpOptions::max_nodes).
  int64_t nodes = 0;
  int64_t lp_iterations = 0; ///< total simplex iterations
  /// Subset of lp_iterations spent in dual-simplex child re-solves.
  int64_t lp_dual_iterations = 0;
  /// Basis factorization work across every LP in the tree: full
  /// refactorizations and column-replace updates (see FactorizationStats).
  /// Deterministic for any num_threads, like the iteration counters.
  int64_t lp_refactorizations = 0;
  int64_t lp_basis_updates = 0;
  /// Variable bounds tightened by node presolve across the whole tree.
  int64_t presolve_fixed_bounds = 0;
  /// Children proven infeasible by bound propagation alone (no LP solved,
  /// not counted in `nodes`).
  int64_t presolve_infeasible_children = 0;
  /// LPs solved by helper threads when num_threads > 1 — speculation hits
  /// and wasted guesses alike. Diagnostic only and timing-dependent: the
  /// ONE nondeterministic counter in this struct (everything else is
  /// identical for every num_threads). Always 0 for serial solves.
  int64_t speculative_lps = 0;
  /// True when the solve stopped because MilpOptions::cancel requested it
  /// (the status is then kFeasible or kNoSolution, as for a limit stop).
  bool cancelled = false;
  double solve_seconds = 0.0;

  bool has_solution() const {
    return status == MilpStatus::kOptimal || status == MilpStatus::kFeasible;
  }
};

/// Index of the integer variable whose fractional part is closest to 1/2
/// ("most fractional"), ignoring variables within `int_tol` of an integer;
/// -1 when x is integral. Ties break to the lowest index. Exposed for
/// testing and reused as the branching fallback before pseudocost history
/// accumulates.
int MostFractionalVariable(const LpModel& model, const std::vector<double>& x,
                           double int_tol);

/// Solves a MILP. Pure-LP models (no integer variables) degrade to a single
/// simplex solve. Statuses map: LP infeasible -> kInfeasible, LP unbounded ->
/// kUnbounded.
[[nodiscard]] Result<MilpResult> SolveMilp(const LpModel& model,
                                           const MilpOptions& options = {});

/// Convenience: solve and require a solution, mapping "no solution" statuses
/// onto error Statuses (kInfeasible / kResourceExhausted / kUnbounded).
[[nodiscard]] Result<MilpResult> SolveMilpOrFail(
    const LpModel& model, const MilpOptions& options = {});

}  // namespace pb::solver

#endif  // PB_SOLVER_MILP_H_
