// LpModel: the constraint-optimization model PackageBuilder translates PaQL
// queries into (§7 of the paper: "a PaQL query is translated into a linear
// program and then solved using existing constraint solvers").
//
// The model is a mixed-integer linear program:
//     min/max  c'x
//     s.t.     lo_i <= a_i'x <= hi_i        (ranged rows)
//              lb_j <= x_j  <= ub_j         (variable bounds)
//              x_j integer for j in I
//
// Infinite bounds use +/- kInfinity. The builder API mirrors OSI/CBC so the
// translator code reads like it would against a production solver.

#ifndef PB_SOLVER_MODEL_H_
#define PB_SOLVER_MODEL_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace pb::solver {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One term of a linear expression: coeff * var.
struct LinearTerm {
  int var = -1;
  double coeff = 0.0;
};

/// One decision variable.
struct Variable {
  std::string name;
  double lb = 0.0;
  double ub = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

/// One ranged linear constraint: lo <= terms . x <= hi.
struct Constraint {
  std::string name;
  std::vector<LinearTerm> terms;
  double lo = -kInfinity;
  double hi = kInfinity;
};

enum class ObjectiveSense { kMinimize, kMaximize };

/// A MILP under construction. Indices returned by AddVariable/AddConstraint
/// are dense and stable.
class LpModel {
 public:
  /// Adds a variable; returns its index.
  int AddVariable(std::string name, double lb, double ub, double objective,
                  bool is_integer);

  /// Adds a ranged constraint; returns its index. Terms with duplicate
  /// variables are merged; zero coefficients are dropped.
  int AddConstraint(std::string name, std::vector<LinearTerm> terms, double lo,
                    double hi);

  void SetSense(ObjectiveSense sense) { sense_ = sense; }
  ObjectiveSense sense() const { return sense_; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  bool has_integer_variables() const;

  const Variable& variable(int j) const { return variables_[j]; }
  Variable& mutable_variable(int j) { return variables_[j]; }
  const Constraint& constraint(int i) const { return constraints_[i]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Structural sanity: finite lb<=ub where both finite, valid term indices,
  /// at least one variable.
  Status Validate() const;

  /// Objective value of a point under this model's sense (no feasibility
  /// check).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Activity of constraint i at point x.
  double Activity(int i, const std::vector<double>& x) const;

  /// True if x satisfies all rows and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// CPLEX LP-format text (for debugging / interop with external solvers).
  std::string ToLpFormat() const;

  /// Order-sensitive hash of the model's structure: dimensions, sense,
  /// integrality pattern, and row sparsity (variable indices, not
  /// coefficient values). Warm-start state (bases, pseudocost history) is
  /// transferable between two solves exactly when their signatures match;
  /// SolveMilp resets any inherited MilpWarmStart whose signature differs.
  uint64_t StructuralSignature() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  ObjectiveSense sense_ = ObjectiveSense::kMinimize;
};

}  // namespace pb::solver

#endif  // PB_SOLVER_MODEL_H_
