// LpModel: the constraint-optimization model PackageBuilder translates PaQL
// queries into (§7 of the paper: "a PaQL query is translated into a linear
// program and then solved using existing constraint solvers").
//
// The model is a mixed-integer linear program:
//     min/max  c'x
//     s.t.     lo_i <= a_i'x <= hi_i        (ranged rows)
//              lb_j <= x_j  <= ub_j         (variable bounds)
//              x_j integer for j in I
//
// Infinite bounds use +/- kInfinity. The builder API mirrors OSI/CBC so the
// translator code reads like it would against a production solver.

#ifndef PB_SOLVER_MODEL_H_
#define PB_SOLVER_MODEL_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/status.h"

namespace pb::solver {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One term of a linear expression: coeff * var.
struct LinearTerm {
  int var = -1;
  double coeff = 0.0;
};

/// One decision variable.
struct Variable {
  std::string name;
  double lb = 0.0;
  double ub = kInfinity;
  double objective = 0.0;
  bool is_integer = false;
};

/// One ranged linear constraint: lo <= terms . x <= hi.
struct Constraint {
  std::string name;
  std::vector<LinearTerm> terms;
  double lo = -kInfinity;
  double hi = kInfinity;
};

/// The range a row's activity a_i'x can take over the variable box:
/// [min, max] with +-kInfinity when an unbounded variable contributes.
/// Branch-and-bound's node presolve seeds its bound propagation from the
/// model-level cache of these and maintains them incrementally per node.
struct RowActivityBounds {
  double min = 0.0;
  double max = 0.0;
};

/// One entry of the transposed sparsity pattern: variable j appears in
/// `row` with coefficient `coeff`.
struct RowTerm {
  int row = -1;
  double coeff = 0.0;
};

/// Column-compressed (CSC) storage of the constraint matrix — the
/// solver-facing layout. Column j's entries occupy
/// [col_start[j], col_start[j+1]); row indices ascend within a column.
/// The builder keeps rows (`Constraint::terms`) authoritative and derives
/// this view lazily: the revised simplex walks columns (FTRAN, pricing the
/// entering column) through here, while row-major consumers — the
/// translator's span-gather path, node presolve's activity ranges, the
/// sparse pivot-row pass — keep reading `constraints()`. One shared index
/// replaces the per-solve column copy the simplex used to build, which at
/// a million variables was the dominant allocation of every solve.
struct CscMatrix {
  std::vector<int64_t> col_start;  ///< size num_cols() + 1
  std::vector<int32_t> row;
  std::vector<double> value;

  int num_cols() const { return static_cast<int>(col_start.size()) - 1; }
  int64_t nnz() const { return static_cast<int64_t>(row.size()); }
};

enum class ObjectiveSense { kMinimize, kMaximize };

/// A MILP under construction. Indices returned by AddVariable/AddConstraint
/// are dense and stable.
///
/// Thread-safety: the builder calls (AddVariable/AddConstraint/SetSense)
/// require exclusive access, but every const accessor — including the lazy
/// caches row_activity_bounds()/variable_rows()/csc() — is safe to call
/// from any number of threads concurrently once building is done: the
/// first caller fills the cache under an internal mutex (double-checked
/// with an acquire/release flag) and later callers read immutable data.
/// One Engine serving concurrent sessions may therefore share a translated
/// model freely across solver threads.
class LpModel {
 public:
  LpModel() = default;
  /// Copies/moves transfer the authoritative data (variables, constraints,
  /// sense) and leave the destination's lazy caches cold: copying a cache
  /// mid-fill from another thread would race, and a rebuild is cheap.
  LpModel(const LpModel& other);
  LpModel& operator=(const LpModel& other);
  LpModel(LpModel&& other) noexcept;
  LpModel& operator=(LpModel&& other) noexcept;

  /// Adds a variable; returns its index.
  int AddVariable(std::string name, double lb, double ub, double objective,
                  bool is_integer);

  /// Adds a ranged constraint; returns its index. Terms with duplicate
  /// variables are merged; zero coefficients are dropped.
  int AddConstraint(std::string name, std::vector<LinearTerm> terms, double lo,
                    double hi);

  void SetSense(ObjectiveSense sense) { sense_ = sense; }
  ObjectiveSense sense() const { return sense_; }

  int num_variables() const { return static_cast<int>(variables_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }
  bool has_integer_variables() const;

  const Variable& variable(int j) const { return variables_[j]; }
  Variable& mutable_variable(int j) { return variables_[j]; }
  const Constraint& constraint(int i) const { return constraints_[i]; }
  const std::vector<Variable>& variables() const { return variables_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Structural sanity: finite lb<=ub where both finite, valid term indices,
  /// at least one variable.
  Status Validate() const;

  /// Objective value of a point under this model's sense (no feasibility
  /// check).
  double ObjectiveValue(const std::vector<double>& x) const;

  /// Activity of constraint i at point x.
  double Activity(int i, const std::vector<double>& x) const;

  /// True if x satisfies all rows and bounds within `tol`.
  bool IsFeasible(const std::vector<double>& x, double tol = 1e-6) const;

  /// CPLEX LP-format text (for debugging / interop with external solvers).
  std::string ToLpFormat() const;

  /// Per-row activity ranges under the model's own variable bounds,
  /// computed lazily on first call and cached until the next
  /// AddVariable/AddConstraint. Size == num_constraints(). Safe to call
  /// concurrently (see the class comment).
  const std::vector<RowActivityBounds>& row_activity_bounds() const;

  /// Transposed sparsity: variable_rows()[j] lists every (row, coeff) the
  /// variable appears in. Lazily cached alongside row_activity_bounds();
  /// safe to call concurrently.
  const std::vector<std::vector<RowTerm>>& variable_rows() const;

  /// The constraint matrix in CSC form (structural columns only; the
  /// simplex synthesizes slack columns on the fly). Lazily built on first
  /// call and cached until the next AddVariable/AddConstraint. Safe to
  /// call concurrently (SolveMilp still warms it before spawning
  /// speculation helpers so helper threads never pay the fill).
  const CscMatrix& csc() const;

  /// Order-sensitive hash of the model's structure: dimensions, sense,
  /// integrality pattern, and row sparsity (variable indices, not
  /// coefficient values). Warm-start state (bases, pseudocost history) is
  /// transferable between two solves exactly when their signatures match;
  /// SolveMilp resets any inherited MilpWarmStart whose signature differs.
  uint64_t StructuralSignature() const;

 private:
  std::vector<Variable> variables_;
  std::vector<Constraint> constraints_;
  ObjectiveSense sense_ = ObjectiveSense::kMinimize;
  // Lazy structural caches (see row_activity_bounds() / variable_rows());
  // invalidated by the builder calls. Fills are serialized by cache_mu_
  // and published through the atomic flags (acquire/release), so const
  // accessors are safe from any thread. The accessors' post-publication
  // reads are the one sanctioned double-checked-locking escape from the
  // thread-safety analysis (PB_NO_THREAD_SAFETY_ANALYSIS in model.cc);
  // every other touch of these members must hold cache_mu_.
  mutable Mutex cache_mu_;
  mutable std::vector<RowActivityBounds> row_activity_cache_
      PB_GUARDED_BY(cache_mu_);
  mutable std::vector<std::vector<RowTerm>> variable_rows_cache_
      PB_GUARDED_BY(cache_mu_);
  mutable std::atomic<bool> structural_caches_valid_{false};
  mutable CscMatrix csc_cache_ PB_GUARDED_BY(cache_mu_);
  mutable std::atomic<bool> csc_valid_{false};
};

/// The [min, max] contribution of one term coeff * x over x in [lb, ub]
/// (coeff must be nonzero; infinite bounds give infinite endpoints).
inline RowActivityBounds TermActivityRange(double coeff, double lb,
                                           double ub) {
  double a = coeff * lb;
  double b = coeff * ub;
  return a <= b ? RowActivityBounds{a, b} : RowActivityBounds{b, a};
}

}  // namespace pb::solver

#endif  // PB_SOLVER_MODEL_H_
