#include "solver/model.h"

#include <cmath>
#include <map>
#include <sstream>

#include "common/strings.h"

namespace pb::solver {

// Copies and moves transfer only the authoritative data; caches rebuild
// lazily in the destination (see the header comment). `other`'s caches are
// deliberately not read: another thread may be filling them right now.
LpModel::LpModel(const LpModel& other)
    : variables_(other.variables_),
      constraints_(other.constraints_),
      sense_(other.sense_) {}

LpModel& LpModel::operator=(const LpModel& other) {
  if (this == &other) return *this;
  variables_ = other.variables_;
  constraints_ = other.constraints_;
  sense_ = other.sense_;
  structural_caches_valid_.store(false, std::memory_order_relaxed);
  csc_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

LpModel::LpModel(LpModel&& other) noexcept
    : variables_(std::move(other.variables_)),
      constraints_(std::move(other.constraints_)),
      sense_(other.sense_) {
  other.structural_caches_valid_.store(false, std::memory_order_relaxed);
  other.csc_valid_.store(false, std::memory_order_relaxed);
}

LpModel& LpModel::operator=(LpModel&& other) noexcept {
  if (this == &other) return *this;
  variables_ = std::move(other.variables_);
  constraints_ = std::move(other.constraints_);
  sense_ = other.sense_;
  structural_caches_valid_.store(false, std::memory_order_relaxed);
  csc_valid_.store(false, std::memory_order_relaxed);
  other.structural_caches_valid_.store(false, std::memory_order_relaxed);
  other.csc_valid_.store(false, std::memory_order_relaxed);
  return *this;
}

int LpModel::AddVariable(std::string name, double lb, double ub,
                         double objective, bool is_integer) {
  if (name.empty()) name = "x" + std::to_string(variables_.size());
  variables_.push_back({std::move(name), lb, ub, objective, is_integer});
  structural_caches_valid_.store(false, std::memory_order_relaxed);
  csc_valid_.store(false, std::memory_order_relaxed);
  return static_cast<int>(variables_.size()) - 1;
}

int LpModel::AddConstraint(std::string name, std::vector<LinearTerm> terms,
                           double lo, double hi) {
  if (name.empty()) name = "c" + std::to_string(constraints_.size());
  // Merge duplicate variables and drop zeros.
  std::map<int, double> merged;
  for (const LinearTerm& t : terms) merged[t.var] += t.coeff;
  std::vector<LinearTerm> clean;
  clean.reserve(merged.size());
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) clean.push_back({var, coeff});
  }
  constraints_.push_back({std::move(name), std::move(clean), lo, hi});
  structural_caches_valid_.store(false, std::memory_order_relaxed);
  csc_valid_.store(false, std::memory_order_relaxed);
  return static_cast<int>(constraints_.size()) - 1;
}

namespace {

/// Fills both structural caches in one pass over the rows.
void BuildStructuralCaches(const std::vector<Variable>& variables,
                           const std::vector<Constraint>& constraints,
                           std::vector<RowActivityBounds>* acts,
                           std::vector<std::vector<RowTerm>>* vrows) {
  acts->assign(constraints.size(), RowActivityBounds{});
  vrows->assign(variables.size(), {});
  for (size_t i = 0; i < constraints.size(); ++i) {
    double lo = 0.0, hi = 0.0;
    for (const LinearTerm& t : constraints[i].terms) {
      const Variable& v = variables[t.var];
      RowActivityBounds r = TermActivityRange(t.coeff, v.lb, v.ub);
      lo += r.min;
      hi += r.max;
      (*vrows)[t.var].push_back({static_cast<int>(i), t.coeff});
    }
    (*acts)[i] = {lo, hi};
  }
}

}  // namespace

// Double-checked fill: the relaxed fast path pairs with the release store
// under cache_mu_, so a reader that sees `true` also sees the filled
// arrays; readers that lose the race park on the mutex until the fill is
// published. After publication the data is immutable until a builder call
// (which requires exclusive access anyway).
// NO_THREAD_SAFETY_ANALYSIS (here and in the two accessors below): the
// sanctioned double-checked-locking escape. The unlocked fast-path read of
// the cache array is safe because the acquire load of the valid flag pairs
// with the release store performed under cache_mu_ at fill time, and the
// data is immutable once published (builder calls require exclusive access
// and reset the flag). See docs/adr/0003-concurrency-invariants.md.
const std::vector<RowActivityBounds>& LpModel::row_activity_bounds() const
    PB_NO_THREAD_SAFETY_ANALYSIS {
  if (!structural_caches_valid_.load(std::memory_order_acquire)) {
    MutexLock lock(&cache_mu_);
    if (!structural_caches_valid_.load(std::memory_order_relaxed)) {
      BuildStructuralCaches(variables_, constraints_, &row_activity_cache_,
                            &variable_rows_cache_);
      structural_caches_valid_.store(true, std::memory_order_release);
    }
  }
  return row_activity_cache_;
}

const std::vector<std::vector<RowTerm>>& LpModel::variable_rows() const
    PB_NO_THREAD_SAFETY_ANALYSIS {
  if (!structural_caches_valid_.load(std::memory_order_acquire)) {
    MutexLock lock(&cache_mu_);
    if (!structural_caches_valid_.load(std::memory_order_relaxed)) {
      BuildStructuralCaches(variables_, constraints_, &row_activity_cache_,
                            &variable_rows_cache_);
      structural_caches_valid_.store(true, std::memory_order_release);
    }
  }
  return variable_rows_cache_;
}

const CscMatrix& LpModel::csc() const PB_NO_THREAD_SAFETY_ANALYSIS {
  if (!csc_valid_.load(std::memory_order_acquire)) {
    MutexLock lock(&cache_mu_);
    if (csc_valid_.load(std::memory_order_relaxed)) return csc_cache_;
    // Two row-major passes: count entries per column, then fill. Scanning
    // rows in order 0..m-1 leaves every column's row indices ascending,
    // which the sparse LU's symbolic phase relies on.
    CscMatrix& a = csc_cache_;
    const int n = num_variables();
    a.col_start.assign(n + 1, 0);
    for (const Constraint& c : constraints_) {
      for (const LinearTerm& t : c.terms) ++a.col_start[t.var + 1];
    }
    for (int j = 0; j < n; ++j) a.col_start[j + 1] += a.col_start[j];
    a.row.assign(static_cast<size_t>(a.col_start[n]), 0);
    a.value.assign(static_cast<size_t>(a.col_start[n]), 0.0);
    std::vector<int64_t> next(a.col_start.begin(), a.col_start.end() - 1);
    for (size_t i = 0; i < constraints_.size(); ++i) {
      for (const LinearTerm& t : constraints_[i].terms) {
        int64_t k = next[t.var]++;
        a.row[k] = static_cast<int32_t>(i);
        a.value[k] = t.coeff;
      }
    }
    csc_valid_.store(true, std::memory_order_release);
  }
  return csc_cache_;
}

bool LpModel::has_integer_variables() const {
  for (const Variable& v : variables_) {
    if (v.is_integer) return true;
  }
  return false;
}

Status LpModel::Validate() const {
  if (variables_.empty()) {
    return Status::InvalidArgument("model has no variables");
  }
  for (size_t j = 0; j < variables_.size(); ++j) {
    const Variable& v = variables_[j];
    if (std::isnan(v.lb) || std::isnan(v.ub)) {
      return Status::InvalidArgument("variable '" + v.name + "' has NaN bound");
    }
    if (v.lb > v.ub) {
      return Status::Infeasible("variable '" + v.name + "' has lb > ub");
    }
  }
  for (const Constraint& c : constraints_) {
    if (c.lo > c.hi) {
      return Status::Infeasible("constraint '" + c.name + "' has lo > hi");
    }
    for (const LinearTerm& t : c.terms) {
      if (t.var < 0 || t.var >= num_variables()) {
        return Status::InvalidArgument("constraint '" + c.name +
                                       "' references unknown variable");
      }
      if (!std::isfinite(t.coeff)) {
        return Status::InvalidArgument("constraint '" + c.name +
                                       "' has a non-finite coefficient");
      }
    }
  }
  return Status::OK();
}

double LpModel::ObjectiveValue(const std::vector<double>& x) const {
  double obj = 0.0;
  for (size_t j = 0; j < variables_.size() && j < x.size(); ++j) {
    obj += variables_[j].objective * x[j];
  }
  return obj;
}

double LpModel::Activity(int i, const std::vector<double>& x) const {
  double a = 0.0;
  for (const LinearTerm& t : constraints_[i].terms) a += t.coeff * x[t.var];
  return a;
}

bool LpModel::IsFeasible(const std::vector<double>& x, double tol) const {
  if (x.size() != variables_.size()) return false;
  for (size_t j = 0; j < variables_.size(); ++j) {
    if (x[j] < variables_[j].lb - tol || x[j] > variables_[j].ub + tol) {
      return false;
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    double a = Activity(i, x);
    if (a < constraints_[i].lo - tol || a > constraints_[i].hi + tol) {
      return false;
    }
  }
  return true;
}

uint64_t LpModel::StructuralSignature() const {
  // FNV-1a over the structural facts warm-start state depends on.
  uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(variables_.size()));
  mix(static_cast<uint64_t>(constraints_.size()));
  mix(sense_ == ObjectiveSense::kMaximize ? 0x9e3779b9ULL : 0x85ebca6bULL);
  for (const Variable& v : variables_) mix(v.is_integer ? 2u : 1u);
  for (const Constraint& c : constraints_) {
    mix(static_cast<uint64_t>(c.terms.size()));
    for (const LinearTerm& t : c.terms) {
      mix(static_cast<uint64_t>(t.var) + 0x9e3779b97f4a7c15ULL);
    }
  }
  return h;
}

namespace {
std::string BoundToLp(double v) {
  if (v == kInfinity) return "+inf";
  if (v == -kInfinity) return "-inf";
  return FormatDouble(v);
}
}  // namespace

std::string LpModel::ToLpFormat() const {
  std::ostringstream out;
  out << (sense_ == ObjectiveSense::kMaximize ? "Maximize" : "Minimize")
      << "\n obj:";
  for (size_t j = 0; j < variables_.size(); ++j) {
    const Variable& v = variables_[j];
    if (v.objective == 0.0) continue;
    out << (v.objective >= 0 ? " + " : " - ")
        << FormatDouble(std::abs(v.objective)) << " " << v.name;
  }
  out << "\nSubject To\n";
  for (const Constraint& c : constraints_) {
    // Ranged rows are emitted as two inequalities for maximum portability.
    auto emit = [&](const char* suffix, const char* op, double rhs) {
      out << " " << c.name << suffix << ":";
      for (const LinearTerm& t : c.terms) {
        out << (t.coeff >= 0 ? " + " : " - ")
            << FormatDouble(std::abs(t.coeff)) << " "
            << variables_[t.var].name;
      }
      out << " " << op << " " << FormatDouble(rhs) << "\n";
    };
    if (c.lo == c.hi) {
      emit("", "=", c.lo);
    } else {
      if (c.lo != -kInfinity) emit("_lo", ">=", c.lo);
      if (c.hi != kInfinity) emit("_hi", "<=", c.hi);
    }
  }
  out << "Bounds\n";
  for (const Variable& v : variables_) {
    out << " " << BoundToLp(v.lb) << " <= " << v.name
        << " <= " << BoundToLp(v.ub) << "\n";
  }
  bool any_int = false;
  for (const Variable& v : variables_) {
    if (v.is_integer) {
      if (!any_int) {
        out << "General\n";
        any_int = true;
      }
      out << " " << v.name << "\n";
    }
  }
  out << "End\n";
  return out.str();
}

}  // namespace pb::solver
