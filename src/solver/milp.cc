#include "solver/milp.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace pb::solver {

const char* MilpStatusToString(MilpStatus s) {
  switch (s) {
    case MilpStatus::kOptimal:    return "Optimal";
    case MilpStatus::kInfeasible: return "Infeasible";
    case MilpStatus::kFeasible:   return "Feasible";
    case MilpStatus::kNoSolution: return "NoSolution";
    case MilpStatus::kUnbounded:  return "Unbounded";
  }
  return "?";
}

int MostFractionalVariable(const LpModel& model, const std::vector<double>& x,
                           double int_tol) {
  int best = -1;
  double best_dist = kInfinity;  // distance of the fractional part to 1/2
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double frac = std::abs(x[j] - std::round(x[j]));
    if (frac <= int_tol) continue;
    double dist_half = std::abs(frac - 0.5);
    if (dist_half < best_dist) {
      best_dist = dist_half;
      best = j;
    }
  }
  return best;
}

namespace {

using Bounds = std::vector<std::pair<double, double>>;

struct Node {
  Bounds bounds;
  double bound;      // parent LP objective (optimistic bound for this node)
  LpBasis basis;     // parent's optimal basis (empty = cold start)
  /// Per-row activity ranges under `bounds`, maintained incrementally down
  /// the tree by node presolve (empty when node_presolve is off).
  std::vector<RowActivityBounds> acts;
  int branch_var = -1;      // variable branched on to create this node
  double branch_frac = 0.0; // fractional part of the parent's LP value
  bool branch_up = false;   // ceil side (vs floor side)
  int lp_limit_boost = 0;   // times the LP iteration limit was doubled
};

/// Heap entry: the node plus its speculation slot. A node's LP inputs
/// (bounds, basis, lp_limit_boost) are immutable from push to pop, so its
/// relaxation can be solved by any thread at any point in that window; the
/// slot records who did and holds the result. Slot transitions happen
/// under SpecPool::mu; the LP itself runs unlocked.
struct OpenNode {
  Node node;

  enum class Spec : uint8_t {
    kIdle,     ///< nobody has started this node's LP
    kClaimed,  ///< some thread is solving it right now
    kDone,     ///< lp_status / lp below hold the finished solve
  };
  Spec spec = Spec::kIdle;
  /// Popped (or pruned) by the main thread: helpers must not pick it up
  /// even if a stale frontier snapshot still lists it.
  bool dead = false;
  Status lp_status = Status::OK();
  LpSolution lp;
};

using OpenNodePtr = std::shared_ptr<OpenNode>;

/// Best-first: larger is better for max problems, smaller for min. Applied
/// through std::push_heap/pop_heap this reproduces std::priority_queue's
/// ordering decisions exactly (same algorithm, same comparator calls), so
/// the pop order matches the serial solver byte for byte.
struct NodeOrder {
  bool maximize;
  bool operator()(const OpenNodePtr& a, const OpenNodePtr& b) const {
    return maximize ? a->node.bound < b->node.bound
                    : a->node.bound > b->node.bound;
  }
};

/// Shared state between the committing main thread and the speculative LP
/// helpers. The open heap itself stays main-thread-local; helpers only see
/// the published `frontier` snapshot and write into claimed nodes' slots.
struct SpecPool {
  const LpModel* model = nullptr;
  SimplexOptions base_lp;
  int64_t base_lp_limit = 0;  // EffectiveIterationLimit(model, base_lp)
  bool warm_enabled = false;
  bool maximize = false;
  double gap_abs = 0.0;

  Mutex mu;
  CondVar work_cv;  ///< helpers: frontier refreshed / stop
  CondVar done_cv;  ///< main thread: a claimed LP finished
  /// Speculation candidates, best bound first (refreshed by the main
  /// thread after every commit). Which nodes appear here only affects how
  /// much helper work is useful — never the result. (The OpenNode
  /// spec/dead slots the frontier points at are likewise only touched
  /// under mu while helpers run; they cannot carry PB_GUARDED_BY because
  /// the serial path owns them lock-free when no helpers exist.)
  std::vector<OpenNodePtr> frontier PB_GUARDED_BY(mu);
  bool stop PB_GUARDED_BY(mu) = false;

  /// Incumbent objective, published on every improvement so helpers can
  /// skip frontier nodes the serial commit will prune anyway. Relaxed
  /// reads: a stale value costs at most one wasted LP, never correctness.
  std::atomic<double> incumbent_obj{0.0};
  std::atomic<bool> have_incumbent{false};
  /// LPs solved by helpers (useful and wasted alike; timing-dependent).
  std::atomic<int64_t> speculative_lps{0};
};

/// Helper-thread body: repeatedly claim the best idle frontier node that
/// still beats the published incumbent, solve its LP, and post the result
/// into the node's slot.
void SpeculationLoop(SpecPool* pool) {
  MutexLock lock(&pool->mu);
  for (;;) {
    if (pool->stop) return;
    OpenNodePtr pick;
    for (const OpenNodePtr& cand : pool->frontier) {
      if (cand->spec != OpenNode::Spec::kIdle || cand->dead) continue;
      if (pool->have_incumbent.load(std::memory_order_relaxed)) {
        double inc = pool->incumbent_obj.load(std::memory_order_relaxed);
        bool beats = pool->maximize
                         ? cand->node.bound > inc + pool->gap_abs
                         : cand->node.bound < inc - pool->gap_abs;
        if (!beats) continue;  // the commit loop will prune it unsolved
      }
      pick = cand;
      break;
    }
    if (!pick) {
      pool->work_cv.Wait(&pool->mu);
      continue;
    }
    pick->spec = OpenNode::Spec::kClaimed;
    lock.Unlock();

    SimplexOptions lp_opts = pool->base_lp;
    if (pick->node.lp_limit_boost > 0) {
      lp_opts.max_iterations = pool->base_lp_limit
                               << pick->node.lp_limit_boost;
    }
    const LpBasis* start = pool->warm_enabled && !pick->node.basis.empty()
                               ? &pick->node.basis
                               : nullptr;
    Result<LpSolution> r =
        SolveLp(*pool->model, lp_opts, &pick->node.bounds, start);
    pool->speculative_lps.fetch_add(1, std::memory_order_relaxed);

    lock.Lock();
    if (r.ok()) {
      pick->lp = std::move(*r);
    } else {
      pick->lp_status = r.status();
    }
    pick->spec = OpenNode::Spec::kDone;
    pool->done_cv.NotifyAll();
  }
}

/// Recomputes one row's activity range from scratch under `bounds` (the
/// fallback when infinite contributions make the incremental form
/// ill-defined).
RowActivityBounds RowActivityUnder(const LpModel& model, int row,
                                   const Bounds& bounds) {
  double lo = 0.0, hi = 0.0;
  for (const LinearTerm& t : model.constraint(row).terms) {
    RowActivityBounds r =
        TermActivityRange(t.coeff, bounds[t.var].first, bounds[t.var].second);
    lo += r.min;
    hi += r.max;
  }
  return {lo, hi};
}

/// Node presolve: propagates a branched bound through the row activity
/// ranges. On entry `bounds` holds the child's bounds with `changed_var`
/// already tightened while `acts` still reflects that variable's old
/// [old_lb, old_ub]; both are updated in place. Tightening is applied to
/// integer variables only, and the ceil/floor step may cut LP-fractional
/// points of the child's relaxation (e.g. 2x <= 1 rounds x's bound from
/// 0.5 to 0) — what is preserved exactly is the child's INTEGER feasible
/// set, so the MILP answer never changes, only the relaxation bounds and
/// the search path. A COUNT = k row whose minimum activity reaches k this
/// way fixes every remaining binary to 0 at once. Returns false when a
/// row's activity range can no longer meet its bounds: the child is
/// infeasible and needs no LP at all. `tightened` counts bound changes
/// beyond the branched one.
bool PropagateBranchedBound(const LpModel& model, int changed_var,
                            double old_lb, double old_ub, double int_tol,
                            Bounds* bounds,
                            std::vector<RowActivityBounds>* acts,
                            int64_t* tightened) {
  constexpr double kFeasEps = 1e-7;
  const auto& vrows = model.variable_rows();
  const int m = model.num_constraints();

  // Per-variable bounds currently folded into `acts`. A tightened variable
  // goes onto the queue; popping it folds the delta into its rows.
  Bounds reflected = *bounds;
  reflected[changed_var] = {old_lb, old_ub};

  std::vector<int> var_queue = {changed_var};
  std::vector<char> var_queued(bounds->size(), 0);
  var_queued[changed_var] = 1;
  std::vector<int> row_queue;
  std::vector<char> row_queued(m, 0);

  // Tightening budget (row visits). Float drift on dense package rows
  // could otherwise re-tighten forever; once spent, rows still drain for
  // their activity updates and infeasibility checks but produce no new
  // tightenings — stopping early is sound, never wrong.
  int row_budget = 8 * m + 64;

  while (!var_queue.empty() || !row_queue.empty()) {
    if (!var_queue.empty()) {
      // Fold one variable's bound delta into every row it touches. This
      // queue always drains fully so `acts` ends consistent with `bounds`
      // (children inherit it).
      int v = var_queue.back();
      var_queue.pop_back();
      var_queued[v] = 0;
      auto [olb, oub] = reflected[v];
      auto [nlb, nub] = (*bounds)[v];
      reflected[v] = (*bounds)[v];
      for (const RowTerm& rt : vrows[v]) {
        RowActivityBounds& ra = (*acts)[rt.row];
        RowActivityBounds was = TermActivityRange(rt.coeff, olb, oub);
        RowActivityBounds now = TermActivityRange(rt.coeff, nlb, nub);
        if (std::isfinite(was.min) && std::isfinite(was.max) &&
            std::isfinite(ra.min) && std::isfinite(ra.max)) {
          ra.min += now.min - was.min;
          ra.max += now.max - was.max;
        } else {
          // `reflected` is exactly what this row's range must mirror
          // mid-propagation (v's entry was just advanced).
          ra = RowActivityUnder(model, rt.row, reflected);
        }
        if (!row_queued[rt.row]) {
          row_queued[rt.row] = 1;
          row_queue.push_back(rt.row);
        }
      }
      continue;
    }

    int r = row_queue.back();
    row_queue.pop_back();
    row_queued[r] = 0;
    const Constraint& con = model.constraint(r);
    const RowActivityBounds& ra = (*acts)[r];
    if (ra.min > con.hi + kFeasEps || ra.max < con.lo - kFeasEps) {
      return false;  // the row cannot be satisfied: infeasible child
    }
    if (--row_budget < 0) continue;

    for (const LinearTerm& t : con.terms) {
      if (!model.variable(t.var).is_integer) continue;
      double l = (*bounds)[t.var].first, u = (*bounds)[t.var].second;
      if (l == u) continue;
      // Residual row range without this term, against the bounds `acts`
      // reflects for it (which may lag `bounds` while the var is queued).
      RowActivityBounds self = TermActivityRange(
          t.coeff, reflected[t.var].first, reflected[t.var].second);
      double rest_min = ra.min - self.min;
      double rest_max = ra.max - self.max;
      double new_l = l, new_u = u;
      if (t.coeff > 0) {
        if (std::isfinite(con.hi) && std::isfinite(rest_min)) {
          new_u = std::min(new_u, (con.hi - rest_min) / t.coeff);
        }
        if (std::isfinite(con.lo) && std::isfinite(rest_max)) {
          new_l = std::max(new_l, (con.lo - rest_max) / t.coeff);
        }
      } else {
        if (std::isfinite(con.hi) && std::isfinite(rest_min)) {
          new_l = std::max(new_l, (con.hi - rest_min) / t.coeff);
        }
        if (std::isfinite(con.lo) && std::isfinite(rest_max)) {
          new_u = std::min(new_u, (con.lo - rest_max) / t.coeff);
        }
      }
      if (std::isfinite(new_l)) new_l = std::ceil(new_l - int_tol);
      if (std::isfinite(new_u)) new_u = std::floor(new_u + int_tol);
      if (new_l <= l && new_u >= u) continue;  // no improvement
      if (new_l > new_u) return false;         // empty domain
      (*bounds)[t.var] = {new_l, new_u};
      ++*tightened;
      if (!var_queued[t.var]) {
        var_queued[t.var] = 1;
        var_queue.push_back(t.var);
      }
    }
  }
  return true;
}

/// Branch-variable selection: pseudocost scoring once any history exists,
/// the caller's most-fractional pick (`fallback`) before that. The score
/// is the product of the estimated objective degradations of the two
/// children (the standard product rule); variables without observations on
/// a side borrow the global average (O(1) from the history's running
/// aggregates). Fully deterministic: ties break to the lowest index via
/// strict >.
int SelectBranchVariable(const LpModel& model, const std::vector<double>& x,
                         double int_tol, const PseudocostHistory& pc,
                         int fallback) {
  if (pc.entries.size() != static_cast<size_t>(model.num_variables()) ||
      !pc.has_observations()) {
    return fallback;
  }
  double global_down =
      pc.down_n_all > 0 ? pc.down_sum_all / pc.down_n_all : 1.0;
  double global_up = pc.up_n_all > 0 ? pc.up_sum_all / pc.up_n_all : 1.0;

  int best = -1;
  double best_score = -1.0;
  constexpr double kEps = 1e-9;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double frac = x[j] - std::floor(x[j]);
    if (frac <= int_tol || frac >= 1.0 - int_tol) continue;
    const PseudocostHistory::Entry& e = pc.entries[j];
    double down = e.down_n > 0 ? e.down_sum / e.down_n : global_down;
    double up = e.up_n > 0 ? e.up_sum / e.up_n : global_up;
    double score =
        std::max(down * frac, kEps) * std::max(up * (1.0 - frac), kEps);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Rounds integer variables to the nearest integer within bounds; returns
/// true if the rounded point is feasible for the whole model.
bool TryRound(const LpModel& model, const Bounds& bounds,
              const std::vector<double>& x, double tol,
              std::vector<double>* rounded) {
  *rounded = x;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double r = std::round(x[j]);
    r = std::min(std::max(r, bounds[j].first), bounds[j].second);
    (*rounded)[j] = r;
  }
  return model.IsFeasible(*rounded, tol);
}

/// Diving heuristic: repeatedly fixes the most fractional integer variable
/// to its nearest integer and re-solves the LP. Package models (equality
/// COUNT rows) rarely round feasibly, but they dive very well — this is how
/// the solver finds its first incumbent without exploring the tree. When
/// `seed` is non-null the caller's basis starts the chain (the first dive
/// LP is exactly the caller's LP, so it prices out immediately) and each
/// step's basis warm-starts the next.
/// Returns true with an integer-feasible point in *out on success.
bool TryDive(const LpModel& model, Bounds bounds, const SimplexOptions& lp_opts,
             double int_tol, const LpBasis* seed, const CancelToken& cancel,
             MilpResult* tallies, std::vector<double>* out) {
  constexpr int kMaxDepth = 400;
  const bool warm = seed != nullptr;
  LpBasis chain;
  if (warm) chain = *seed;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    // The dive is a chain of up to kMaxDepth LP solves; without this check
    // a cancel issued mid-dive would only take effect at the next node pop.
    if (cancel.cancel_requested()) return false;
    auto lp = SolveLp(model, lp_opts, &bounds, warm ? &chain : nullptr);
    if (!lp.ok()) return false;
    tallies->lp_iterations += lp->iterations;
    tallies->lp_dual_iterations += lp->dual_iterations;
    tallies->lp_refactorizations += lp->refactorizations;
    tallies->lp_basis_updates += lp->basis_updates;
    if (lp->status != LpStatus::kOptimal) return false;
    if (warm) chain = std::move(lp->basis);
    int j = MostFractionalVariable(model, lp->x, int_tol);
    if (j < 0) {
      *out = lp->x;
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).is_integer) (*out)[v] = std::round((*out)[v]);
      }
      return model.IsFeasible(*out, int_tol);
    }
    double fixed = std::round(lp->x[j]);
    fixed = std::min(std::max(fixed, bounds[j].first), bounds[j].second);
    bounds[j] = {fixed, fixed};
  }
  return false;
}

}  // namespace

Result<MilpResult> SolveMilp(const LpModel& model, const MilpOptions& options) {
  PB_RETURN_IF_ERROR(model.Validate());
  Stopwatch timer;
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;
  auto better = [&](double a, double b) {
    return maximize ? a > b + options.gap_abs : a < b - options.gap_abs;
  };

  MilpResult result;
  const int n = model.num_variables();

  // warm_start_lps=false is the faithful pre-warm-start ablation: cold LP
  // solves, most-fractional branching, and no cross-solve state at all.
  const bool warm_enabled = options.warm_start_lps;
  // The MilpOptions knob governs every LP this solve runs (only warm
  // bases can enter the dual, so warm_start_lps=false makes it moot).
  SimplexOptions base_lp = options.lp;
  base_lp.use_dual_simplex = options.use_dual_simplex;
  const bool presolve_enabled =
      options.node_presolve && model.num_constraints() > 0;

  // Cross-solve warm-start state: usable only while the model's structure
  // matches what the state was learned on; reset otherwise.
  MilpWarmStart* warm = warm_enabled ? options.warm : nullptr;
  if (warm != nullptr) {
    uint64_t sig = model.StructuralSignature();
    if (warm->model_signature != sig) {
      warm->root_basis.clear();
      warm->pseudocosts = PseudocostHistory{};
      warm->model_signature = sig;
    }
  }
  PseudocostHistory local_pc;
  PseudocostHistory& pc = warm != nullptr ? warm->pseudocosts : local_pc;
  pc.entries.resize(n);

  Bounds root_bounds(n);
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    double lo = v.lb, hi = v.ub;
    // Integer variables get their bounds tightened to integers up front.
    if (v.is_integer) {
      if (std::isfinite(lo)) lo = std::ceil(lo - options.int_tol);
      if (std::isfinite(hi)) hi = std::floor(hi + options.int_tol);
    }
    root_bounds[j] = {lo, hi};
  }

  // Root activity ranges for node presolve: the model-level cache when the
  // integer tightening above changed nothing (the common case — package
  // binaries already have integral bounds), a fresh per-row pass otherwise.
  std::vector<RowActivityBounds> root_acts;
  if (presolve_enabled) {
    root_acts = model.row_activity_bounds();
    bool bounds_match_model = true;
    for (int j = 0; j < n && bounds_match_model; ++j) {
      const Variable& v = model.variable(j);
      bounds_match_model =
          root_bounds[j].first == v.lb && root_bounds[j].second == v.ub;
    }
    if (!bounds_match_model) {
      for (int i = 0; i < model.num_constraints(); ++i) {
        root_acts[i] = RowActivityUnder(model, i, root_bounds);
      }
    }
  }

  // ---- Speculative parallelism (see MilpOptions::num_threads). The open
  // heap and every commit stay on this thread; helpers only pre-solve LPs
  // of published frontier nodes. A pure LP (no integer variables) is a
  // single solve — nothing to speculate on.
  // Deprecated-alias resolution (see ComputeBudget): either knob works,
  // the larger wins, and both default to 1.
  const int num_threads =
      ResolveThreads(options.compute.threads, options.num_threads);
  const bool parallel = num_threads > 1 && model.has_integer_variables();
  SpecPool spec;
  std::unique_ptr<ThreadPool> helper_pool;
  std::unique_ptr<TaskGroup> helper_group;
  if (parallel) {
    // Materialize the model's lazy structural caches before any helper can
    // read the model concurrently: SolveLp reads csc() on every solve, and
    // a cold cache fill racing a reader is a data race.
    model.csc();
    if (presolve_enabled) model.variable_rows();
    spec.model = &model;
    spec.base_lp = base_lp;
    spec.base_lp_limit = EffectiveIterationLimit(model, base_lp);
    spec.warm_enabled = warm_enabled;
    spec.maximize = maximize;
    spec.gap_abs = options.gap_abs;
  }
  auto stop_helpers = [&] {
    if (helper_group == nullptr) return;
    {
      MutexLock lock(&spec.mu);
      spec.stop = true;
    }
    spec.work_cv.NotifyAll();
    helper_group->Wait();
    helper_group.reset();
    result.speculative_lps =
        spec.speculative_lps.load(std::memory_order_relaxed);
  };
  // Early returns (LP solve errors) must drain helpers before the locals
  // they reference go out of scope.
  struct StopGuard {
    decltype(stop_helpers)* fn;
    ~StopGuard() { (*fn)(); }
  } stop_guard{&stop_helpers};

  // The open heap, managed with push_heap/pop_heap (== priority_queue's
  // internals) so the serial pop order is preserved exactly while nodes
  // get the stable addresses speculation needs.
  NodeOrder node_order{maximize};
  std::vector<OpenNodePtr> open;
  auto push_open = [&](OpenNodePtr entry) {
    open.push_back(std::move(entry));
    std::push_heap(open.begin(), open.end(), node_order);
  };
  auto pop_open = [&] {
    std::pop_heap(open.begin(), open.end(), node_order);
    OpenNodePtr top = std::move(open.back());
    open.pop_back();
    return top;
  };
  // Publish the speculation frontier: the best few open nodes, taken from
  // the heap array's prefix (the shallow levels hold the best bounds) and
  // sorted best-first. Approximate by design — what helpers pre-solve only
  // affects how much of their work is useful, never the result.
  const size_t frontier_width = static_cast<size_t>(num_threads) * 4;
  std::vector<OpenNodePtr> frontier_scratch;
  auto publish_frontier = [&] {
    // Helpers spawn lazily on the first non-empty frontier: a solve that
    // ends at the root (the common SketchRefine sub-ILP case) never pays
    // for thread creation at all.
    if (helper_pool == nullptr) {
      if (open.empty()) return;
      helper_pool = std::make_unique<ThreadPool>(num_threads - 1);
      helper_group = std::make_unique<TaskGroup>(helper_pool.get());
      for (int t = 0; t < num_threads - 1; ++t) {
        helper_group->Spawn([&spec] { SpeculationLoop(&spec); });
      }
    }
    frontier_scratch.assign(
        open.begin(),
        open.begin() +
            static_cast<ptrdiff_t>(std::min(open.size(), frontier_width * 2)));
    std::sort(frontier_scratch.begin(), frontier_scratch.end(),
              [&](const OpenNodePtr& a, const OpenNodePtr& b) {
                return node_order(b, a);  // best bound first
              });
    if (frontier_scratch.size() > frontier_width) {
      frontier_scratch.resize(frontier_width);
    }
    {
      MutexLock lock(&spec.mu);
      spec.frontier = frontier_scratch;
    }
    spec.work_cv.NotifyAll();
  };

  {
    auto root = std::make_shared<OpenNode>();
    root->node.bounds = std::move(root_bounds);
    root->node.acts = std::move(root_acts);
    root->node.bound = maximize ? kInfinity : -kInfinity;
    if (warm != nullptr) root->node.basis = warm->root_basis;
    push_open(std::move(root));
  }

  bool have_incumbent = false;
  std::vector<double> incumbent;
  double incumbent_obj = 0.0;
  // Mirror every incumbent improvement into the helpers' prune bar.
  auto publish_incumbent = [&] {
    spec.incumbent_obj.store(incumbent_obj, std::memory_order_relaxed);
    spec.have_incumbent.store(true, std::memory_order_relaxed);
  };
  bool root_unbounded = false;
  bool root_basis_captured = false;
  // Optimistic bounds of subtrees abandoned because their LP would not
  // finish within the (repeatedly doubled) iteration limit. These must
  // survive into best_bound / status reporting: an abandoned subtree may
  // hold the true optimum.
  bool abandoned_any = false;
  double abandoned_bound = maximize ? -kInfinity : kInfinity;
  // Doubling the LP budget this many times (~4000x) before giving up on a
  // node keeps pathological LPs from stalling the whole solve forever.
  constexpr int kMaxLpLimitBoost = 12;

  while (!open.empty()) {
    if (options.cancel.cancel_requested()) {
      // Cooperative cancellation: identical to a limit stop (open stays
      // non-empty, so the status honestly reports unexplored work), plus
      // the `cancelled` flag for callers that need to tell the two apart.
      result.cancelled = true;
      break;
    }
    if (result.nodes >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_s) {
      break;  // open is non-empty here, so work_remaining stays true
    }
    OpenNodePtr cur = pop_open();
    Node& node = cur->node;

    // Take the node off the speculation market. Whatever its slot says
    // now is final: kIdle means this thread solves it (nobody else will
    // start — dead nodes are never claimed), kClaimed/kDone means a helper
    // got there first and the result is (or will be) in the slot.
    OpenNode::Spec slot = OpenNode::Spec::kIdle;
    if (parallel) {
      MutexLock lock(&spec.mu);
      cur->dead = true;
      slot = cur->spec;
    }

    // Bound-based pruning against the incumbent. A helper may be solving
    // this node right now; the shared_ptr keeps it alive until that solve
    // finishes, and nobody reads the wasted result.
    if (have_incumbent && !better(node.bound, incumbent_obj)) continue;

    ++result.nodes;
    // Refresh the helpers' frontier before touching this node's LP: while
    // this thread waits for (or computes) the current relaxation, helpers
    // pre-solve the nodes most likely to be popped next.
    if (parallel) publish_frontier();
    LpSolution lp;
    if (slot != OpenNode::Spec::kIdle) {
      // Committed speculation: identical to solving here (SolveLp is a
      // pure function of inputs the node has owned since push), so every
      // counter below stays bit-identical to the serial solver's.
      MutexLock lock(&spec.mu);
      while (cur->spec != OpenNode::Spec::kDone) spec.done_cv.Wait(&spec.mu);
      PB_RETURN_IF_ERROR(cur->lp_status);
      lp = std::move(cur->lp);
    } else {
      SimplexOptions lp_opts = base_lp;
      if (node.lp_limit_boost > 0) {
        lp_opts.max_iterations = EffectiveIterationLimit(model, base_lp)
                                 << node.lp_limit_boost;
      }
      const LpBasis* start =
          warm_enabled && !node.basis.empty() ? &node.basis : nullptr;
      PB_ASSIGN_OR_RETURN(lp, SolveLp(model, lp_opts, &node.bounds, start));
    }
    result.lp_iterations += lp.iterations;
    result.lp_dual_iterations += lp.dual_iterations;
    result.lp_refactorizations += lp.refactorizations;
    result.lp_basis_updates += lp.basis_updates;

    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kUnbounded) {
      // An unbounded relaxation with no incumbent yet (the root included)
      // means the MILP may be unbounded; surface it conservatively.
      if (!have_incumbent) {
        root_unbounded = true;
        break;
      }
      continue;
    }
    if (lp.status == LpStatus::kIterationLimit) {
      // The node's subtree must not be lost: re-queue it with a doubled
      // LP budget, resuming from the partial basis. Only after the boost
      // cap is the subtree abandoned — and then its optimistic bound
      // still reaches the reported best_bound below.
      if (node.lp_limit_boost < kMaxLpLimitBoost) {
        auto retry = std::make_shared<OpenNode>();
        retry->node = std::move(node);
        ++retry->node.lp_limit_boost;
        if (warm_enabled) retry->node.basis = std::move(lp.basis);
        push_open(std::move(retry));
      } else {
        abandoned_any = true;
        abandoned_bound = maximize ? std::max(abandoned_bound, node.bound)
                                   : std::min(abandoned_bound, node.bound);
      }
      continue;
    }

    double node_bound = lp.objective;
    if (!root_basis_captured && node.branch_var < 0 && warm != nullptr) {
      // First optimal solve of the root (re-queues included): remember its
      // basis for the next structurally identical model.
      warm->root_basis = lp.basis;
      root_basis_captured = true;
    }

    // Pseudocost observation: objective degradation from the parent's LP
    // bound, normalized by the branching distance. Commits happen in the
    // serial pop order, so the history every later branch decision sees is
    // identical for any thread count.
    if (warm_enabled && node.branch_var >= 0 && std::isfinite(node.bound)) {
      double degradation = maximize ? node.bound - node_bound
                                    : node_bound - node.bound;
      degradation = std::max(degradation, 0.0);
      double denom =
          node.branch_up ? 1.0 - node.branch_frac : node.branch_frac;
      if (denom > 1e-9) {
        PseudocostHistory::Entry& e = pc.entries[node.branch_var];
        if (node.branch_up) {
          e.up_sum += degradation / denom;
          ++e.up_n;
          pc.up_sum_all += degradation / denom;
          ++pc.up_n_all;
        } else {
          e.down_sum += degradation / denom;
          ++e.down_n;
          pc.down_sum_all += degradation / denom;
          ++pc.down_n_all;
        }
      }
    }

    if (have_incumbent && !better(node_bound, incumbent_obj)) continue;

    int frac_var = MostFractionalVariable(model, lp.x, options.int_tol);
    if (frac_var < 0) {
      // Integer feasible: snap and accept as incumbent.
      std::vector<double> snapped = lp.x;
      for (int j = 0; j < n; ++j) {
        if (model.variable(j).is_integer) snapped[j] = std::round(snapped[j]);
      }
      double obj = model.ObjectiveValue(snapped);
      if (!have_incumbent || better(obj, incumbent_obj)) {
        have_incumbent = true;
        incumbent = std::move(snapped);
        incumbent_obj = obj;
        publish_incumbent();
      }
      continue;
    }

    // Primal heuristics: cheap rounding at every node; one LP dive from the
    // root when rounding produced nothing (package models have equality
    // rows that defeat rounding but dive well).
    if (options.rounding_heuristic) {
      std::vector<double> rounded;
      if (TryRound(model, node.bounds, lp.x, options.int_tol, &rounded)) {
        double obj = model.ObjectiveValue(rounded);
        if (!have_incumbent || better(obj, incumbent_obj)) {
          have_incumbent = true;
          incumbent = std::move(rounded);
          incumbent_obj = obj;
          publish_incumbent();
        }
      }
      // Root identified by branch_var (result.nodes would miss a root that
      // was re-queued after an LP iteration limit).
      if (!have_incumbent && node.branch_var < 0) {
        std::vector<double> dived;
        if (TryDive(model, node.bounds, base_lp, options.int_tol,
                    warm_enabled ? &lp.basis : nullptr, options.cancel,
                    &result, &dived)) {
          have_incumbent = true;
          incumbent_obj = model.ObjectiveValue(dived);
          incumbent = std::move(dived);
          publish_incumbent();
        }
      }
    }

    // Branch: floor side and ceil side, both warm-started from this node's
    // optimal basis (they differ from it by one variable bound). Node
    // presolve then propagates that one bound through the row activity
    // ranges: children whose rows become unsatisfiable are discarded with
    // zero LP work, and implied integer fixings ride into the child's
    // bound set, which the dual re-solve picks up directly.
    int branch_var = warm_enabled
                         ? SelectBranchVariable(model, lp.x, options.int_tol,
                                                pc, frac_var)
                         : frac_var;
    if (branch_var < 0) branch_var = frac_var;
    double xv = lp.x[branch_var];
    double frac = xv - std::floor(xv);
    const double parent_lb = node.bounds[branch_var].first;
    const double parent_ub = node.bounds[branch_var].second;
    node.basis.clear();  // superseded by lp.basis; don't copy it into `down`
    auto down = std::make_shared<OpenNode>();
    down->node = node;
    down->node.bound = node_bound;
    if (warm_enabled) down->node.basis = lp.basis;
    down->node.branch_var = branch_var;
    down->node.branch_frac = frac;
    down->node.branch_up = false;
    down->node.lp_limit_boost = 0;
    down->node.bounds[branch_var].second =
        std::min(down->node.bounds[branch_var].second, std::floor(xv));
    bool push_down = down->node.bounds[branch_var].first <=
                     down->node.bounds[branch_var].second;
    if (push_down && presolve_enabled &&
        !PropagateBranchedBound(model, branch_var, parent_lb, parent_ub,
                                options.int_tol, &down->node.bounds,
                                &down->node.acts,
                                &result.presolve_fixed_bounds)) {
      ++result.presolve_infeasible_children;
      push_down = false;
    }
    if (push_down) push_open(std::move(down));
    auto up = std::make_shared<OpenNode>();
    up->node = std::move(node);
    up->node.bound = node_bound;
    if (warm_enabled) up->node.basis = std::move(lp.basis);
    up->node.branch_var = branch_var;
    up->node.branch_frac = frac;
    up->node.branch_up = true;
    up->node.lp_limit_boost = 0;
    up->node.bounds[branch_var].first =
        std::max(up->node.bounds[branch_var].first, std::ceil(xv));
    bool push_up =
        up->node.bounds[branch_var].first <= up->node.bounds[branch_var].second;
    if (push_up && presolve_enabled &&
        !PropagateBranchedBound(model, branch_var, parent_lb, parent_ub,
                                options.int_tol, &up->node.bounds,
                                &up->node.acts,
                                &result.presolve_fixed_bounds)) {
      ++result.presolve_infeasible_children;
      push_up = false;
    }
    if (push_up) push_open(std::move(up));
  }

  // Drain helpers before reading their shared tallies (and before any of
  // the locals they reference can die). Idempotent with the guard.
  stop_helpers();

  // Best remaining optimistic bound over ALL unexplored work: open nodes
  // (the heap is bound-ordered, so the front is the best) plus any
  // abandoned subtrees.
  bool work_remaining = !open.empty() || abandoned_any;
  double remaining_bound = maximize ? -kInfinity : kInfinity;
  if (!open.empty()) remaining_bound = open.front()->node.bound;
  if (abandoned_any) {
    remaining_bound = maximize ? std::max(remaining_bound, abandoned_bound)
                               : std::min(remaining_bound, abandoned_bound);
  }

  result.solve_seconds = timer.ElapsedSeconds();
  if (root_unbounded && !have_incumbent) {
    result.status = MilpStatus::kUnbounded;
    return result;
  }
  if (have_incumbent) {
    result.x = std::move(incumbent);
    result.objective = incumbent_obj;
    // Optimality is proven when no unexplored work remains, or when none of
    // it can beat the incumbent (a bound-based proof is valid even when a
    // node/time limit stopped the search).
    bool proven = !work_remaining || !better(remaining_bound, incumbent_obj);
    result.best_bound = proven ? incumbent_obj : remaining_bound;
    result.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    return result;
  }
  result.status = work_remaining ? MilpStatus::kNoSolution
                                 : MilpStatus::kInfeasible;
  result.best_bound = remaining_bound;
  return result;
}

Result<MilpResult> SolveMilpOrFail(const LpModel& model,
                                   const MilpOptions& options) {
  PB_ASSIGN_OR_RETURN(MilpResult r, SolveMilp(model, options));
  switch (r.status) {
    case MilpStatus::kOptimal:
    case MilpStatus::kFeasible:
      return r;
    case MilpStatus::kInfeasible:
      return Status::Infeasible("no integer-feasible solution exists");
    case MilpStatus::kUnbounded:
      return Status::Unbounded("objective is unbounded");
    case MilpStatus::kNoSolution:
      return Status::ResourceExhausted(
          "solver limits reached before finding a solution");
  }
  return Status::Internal("unknown MILP status");
}

}  // namespace pb::solver
