#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace pb::solver {

const char* MilpStatusToString(MilpStatus s) {
  switch (s) {
    case MilpStatus::kOptimal:    return "Optimal";
    case MilpStatus::kInfeasible: return "Infeasible";
    case MilpStatus::kFeasible:   return "Feasible";
    case MilpStatus::kNoSolution: return "NoSolution";
    case MilpStatus::kUnbounded:  return "Unbounded";
  }
  return "?";
}

int MostFractionalVariable(const LpModel& model, const std::vector<double>& x,
                           double int_tol) {
  int best = -1;
  double best_dist = kInfinity;  // distance of the fractional part to 1/2
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double frac = std::abs(x[j] - std::round(x[j]));
    if (frac <= int_tol) continue;
    double dist_half = std::abs(frac - 0.5);
    if (dist_half < best_dist) {
      best_dist = dist_half;
      best = j;
    }
  }
  return best;
}

namespace {

using Bounds = std::vector<std::pair<double, double>>;

struct Node {
  Bounds bounds;
  double bound;      // parent LP objective (optimistic bound for this node)
  LpBasis basis;     // parent's optimal basis (empty = cold start)
  /// Per-row activity ranges under `bounds`, maintained incrementally down
  /// the tree by node presolve (empty when node_presolve is off).
  std::vector<RowActivityBounds> acts;
  int branch_var = -1;      // variable branched on to create this node
  double branch_frac = 0.0; // fractional part of the parent's LP value
  bool branch_up = false;   // ceil side (vs floor side)
  int lp_limit_boost = 0;   // times the LP iteration limit was doubled
};

/// Best-first: larger is better for max problems, smaller for min.
struct NodeOrder {
  bool maximize;
  bool operator()(const Node& a, const Node& b) const {
    return maximize ? a.bound < b.bound : a.bound > b.bound;
  }
};

/// Recomputes one row's activity range from scratch under `bounds` (the
/// fallback when infinite contributions make the incremental form
/// ill-defined).
RowActivityBounds RowActivityUnder(const LpModel& model, int row,
                                   const Bounds& bounds) {
  double lo = 0.0, hi = 0.0;
  for (const LinearTerm& t : model.constraint(row).terms) {
    RowActivityBounds r =
        TermActivityRange(t.coeff, bounds[t.var].first, bounds[t.var].second);
    lo += r.min;
    hi += r.max;
  }
  return {lo, hi};
}

/// Node presolve: propagates a branched bound through the row activity
/// ranges. On entry `bounds` holds the child's bounds with `changed_var`
/// already tightened while `acts` still reflects that variable's old
/// [old_lb, old_ub]; both are updated in place. Tightening is applied to
/// integer variables only, and the ceil/floor step may cut LP-fractional
/// points of the child's relaxation (e.g. 2x <= 1 rounds x's bound from
/// 0.5 to 0) — what is preserved exactly is the child's INTEGER feasible
/// set, so the MILP answer never changes, only the relaxation bounds and
/// the search path. A COUNT = k row whose minimum activity reaches k this
/// way fixes every remaining binary to 0 at once. Returns false when a
/// row's activity range can no longer meet its bounds: the child is
/// infeasible and needs no LP at all. `tightened` counts bound changes
/// beyond the branched one.
bool PropagateBranchedBound(const LpModel& model, int changed_var,
                            double old_lb, double old_ub, double int_tol,
                            Bounds* bounds,
                            std::vector<RowActivityBounds>* acts,
                            int64_t* tightened) {
  constexpr double kFeasEps = 1e-7;
  const auto& vrows = model.variable_rows();
  const int m = model.num_constraints();

  // Per-variable bounds currently folded into `acts`. A tightened variable
  // goes onto the queue; popping it folds the delta into its rows.
  Bounds reflected = *bounds;
  reflected[changed_var] = {old_lb, old_ub};

  std::vector<int> var_queue = {changed_var};
  std::vector<char> var_queued(bounds->size(), 0);
  var_queued[changed_var] = 1;
  std::vector<int> row_queue;
  std::vector<char> row_queued(m, 0);

  // Tightening budget (row visits). Float drift on dense package rows
  // could otherwise re-tighten forever; once spent, rows still drain for
  // their activity updates and infeasibility checks but produce no new
  // tightenings — stopping early is sound, never wrong.
  int row_budget = 8 * m + 64;

  while (!var_queue.empty() || !row_queue.empty()) {
    if (!var_queue.empty()) {
      // Fold one variable's bound delta into every row it touches. This
      // queue always drains fully so `acts` ends consistent with `bounds`
      // (children inherit it).
      int v = var_queue.back();
      var_queue.pop_back();
      var_queued[v] = 0;
      auto [olb, oub] = reflected[v];
      auto [nlb, nub] = (*bounds)[v];
      reflected[v] = (*bounds)[v];
      for (const RowTerm& rt : vrows[v]) {
        RowActivityBounds& ra = (*acts)[rt.row];
        RowActivityBounds was = TermActivityRange(rt.coeff, olb, oub);
        RowActivityBounds now = TermActivityRange(rt.coeff, nlb, nub);
        if (std::isfinite(was.min) && std::isfinite(was.max) &&
            std::isfinite(ra.min) && std::isfinite(ra.max)) {
          ra.min += now.min - was.min;
          ra.max += now.max - was.max;
        } else {
          // `reflected` is exactly what this row's range must mirror
          // mid-propagation (v's entry was just advanced).
          ra = RowActivityUnder(model, rt.row, reflected);
        }
        if (!row_queued[rt.row]) {
          row_queued[rt.row] = 1;
          row_queue.push_back(rt.row);
        }
      }
      continue;
    }

    int r = row_queue.back();
    row_queue.pop_back();
    row_queued[r] = 0;
    const Constraint& con = model.constraint(r);
    const RowActivityBounds& ra = (*acts)[r];
    if (ra.min > con.hi + kFeasEps || ra.max < con.lo - kFeasEps) {
      return false;  // the row cannot be satisfied: infeasible child
    }
    if (--row_budget < 0) continue;

    for (const LinearTerm& t : con.terms) {
      if (!model.variable(t.var).is_integer) continue;
      double l = (*bounds)[t.var].first, u = (*bounds)[t.var].second;
      if (l == u) continue;
      // Residual row range without this term, against the bounds `acts`
      // reflects for it (which may lag `bounds` while the var is queued).
      RowActivityBounds self = TermActivityRange(
          t.coeff, reflected[t.var].first, reflected[t.var].second);
      double rest_min = ra.min - self.min;
      double rest_max = ra.max - self.max;
      double new_l = l, new_u = u;
      if (t.coeff > 0) {
        if (std::isfinite(con.hi) && std::isfinite(rest_min)) {
          new_u = std::min(new_u, (con.hi - rest_min) / t.coeff);
        }
        if (std::isfinite(con.lo) && std::isfinite(rest_max)) {
          new_l = std::max(new_l, (con.lo - rest_max) / t.coeff);
        }
      } else {
        if (std::isfinite(con.hi) && std::isfinite(rest_min)) {
          new_l = std::max(new_l, (con.hi - rest_min) / t.coeff);
        }
        if (std::isfinite(con.lo) && std::isfinite(rest_max)) {
          new_u = std::min(new_u, (con.lo - rest_max) / t.coeff);
        }
      }
      if (std::isfinite(new_l)) new_l = std::ceil(new_l - int_tol);
      if (std::isfinite(new_u)) new_u = std::floor(new_u + int_tol);
      if (new_l <= l && new_u >= u) continue;  // no improvement
      if (new_l > new_u) return false;         // empty domain
      (*bounds)[t.var] = {new_l, new_u};
      ++*tightened;
      if (!var_queued[t.var]) {
        var_queued[t.var] = 1;
        var_queue.push_back(t.var);
      }
    }
  }
  return true;
}

/// Branch-variable selection: pseudocost scoring once any history exists,
/// the caller's most-fractional pick (`fallback`) before that. The score
/// is the product of the estimated objective degradations of the two
/// children (the standard product rule); variables without observations on
/// a side borrow the global average (O(1) from the history's running
/// aggregates). Fully deterministic: ties break to the lowest index via
/// strict >.
int SelectBranchVariable(const LpModel& model, const std::vector<double>& x,
                         double int_tol, const PseudocostHistory& pc,
                         int fallback) {
  if (pc.entries.size() != static_cast<size_t>(model.num_variables()) ||
      !pc.has_observations()) {
    return fallback;
  }
  double global_down =
      pc.down_n_all > 0 ? pc.down_sum_all / pc.down_n_all : 1.0;
  double global_up = pc.up_n_all > 0 ? pc.up_sum_all / pc.up_n_all : 1.0;

  int best = -1;
  double best_score = -1.0;
  constexpr double kEps = 1e-9;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double frac = x[j] - std::floor(x[j]);
    if (frac <= int_tol || frac >= 1.0 - int_tol) continue;
    const PseudocostHistory::Entry& e = pc.entries[j];
    double down = e.down_n > 0 ? e.down_sum / e.down_n : global_down;
    double up = e.up_n > 0 ? e.up_sum / e.up_n : global_up;
    double score =
        std::max(down * frac, kEps) * std::max(up * (1.0 - frac), kEps);
    if (score > best_score) {
      best_score = score;
      best = j;
    }
  }
  return best;
}

/// Rounds integer variables to the nearest integer within bounds; returns
/// true if the rounded point is feasible for the whole model.
bool TryRound(const LpModel& model, const Bounds& bounds,
              const std::vector<double>& x, double tol,
              std::vector<double>* rounded) {
  *rounded = x;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double r = std::round(x[j]);
    r = std::min(std::max(r, bounds[j].first), bounds[j].second);
    (*rounded)[j] = r;
  }
  return model.IsFeasible(*rounded, tol);
}

/// Diving heuristic: repeatedly fixes the most fractional integer variable
/// to its nearest integer and re-solves the LP. Package models (equality
/// COUNT rows) rarely round feasibly, but they dive very well — this is how
/// the solver finds its first incumbent without exploring the tree. When
/// `seed` is non-null the caller's basis starts the chain (the first dive
/// LP is exactly the caller's LP, so it prices out immediately) and each
/// step's basis warm-starts the next.
/// Returns true with an integer-feasible point in *out on success.
bool TryDive(const LpModel& model, Bounds bounds, const SimplexOptions& lp_opts,
             double int_tol, const LpBasis* seed, int64_t* lp_iterations,
             int64_t* lp_dual_iterations, std::vector<double>* out) {
  constexpr int kMaxDepth = 400;
  const bool warm = seed != nullptr;
  LpBasis chain;
  if (warm) chain = *seed;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    auto lp = SolveLp(model, lp_opts, &bounds, warm ? &chain : nullptr);
    if (!lp.ok()) return false;
    *lp_iterations += lp->iterations;
    *lp_dual_iterations += lp->dual_iterations;
    if (lp->status != LpStatus::kOptimal) return false;
    if (warm) chain = std::move(lp->basis);
    int j = MostFractionalVariable(model, lp->x, int_tol);
    if (j < 0) {
      *out = lp->x;
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).is_integer) (*out)[v] = std::round((*out)[v]);
      }
      return model.IsFeasible(*out, int_tol);
    }
    double fixed = std::round(lp->x[j]);
    fixed = std::min(std::max(fixed, bounds[j].first), bounds[j].second);
    bounds[j] = {fixed, fixed};
  }
  return false;
}

}  // namespace

Result<MilpResult> SolveMilp(const LpModel& model, const MilpOptions& options) {
  PB_RETURN_IF_ERROR(model.Validate());
  Stopwatch timer;
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;
  auto better = [&](double a, double b) {
    return maximize ? a > b + options.gap_abs : a < b - options.gap_abs;
  };

  MilpResult result;
  const int n = model.num_variables();

  // warm_start_lps=false is the faithful pre-warm-start ablation: cold LP
  // solves, most-fractional branching, and no cross-solve state at all.
  const bool warm_enabled = options.warm_start_lps;
  // The MilpOptions knob governs every LP this solve runs (only warm
  // bases can enter the dual, so warm_start_lps=false makes it moot).
  SimplexOptions base_lp = options.lp;
  base_lp.use_dual_simplex = options.use_dual_simplex;
  const bool presolve_enabled =
      options.node_presolve && model.num_constraints() > 0;

  // Cross-solve warm-start state: usable only while the model's structure
  // matches what the state was learned on; reset otherwise.
  MilpWarmStart* warm = warm_enabled ? options.warm : nullptr;
  if (warm != nullptr) {
    uint64_t sig = model.StructuralSignature();
    if (warm->model_signature != sig) {
      warm->root_basis.clear();
      warm->pseudocosts = PseudocostHistory{};
      warm->model_signature = sig;
    }
  }
  PseudocostHistory local_pc;
  PseudocostHistory& pc = warm != nullptr ? warm->pseudocosts : local_pc;
  pc.entries.resize(n);

  Bounds root_bounds(n);
  for (int j = 0; j < n; ++j) {
    const Variable& v = model.variable(j);
    double lo = v.lb, hi = v.ub;
    // Integer variables get their bounds tightened to integers up front.
    if (v.is_integer) {
      if (std::isfinite(lo)) lo = std::ceil(lo - options.int_tol);
      if (std::isfinite(hi)) hi = std::floor(hi + options.int_tol);
    }
    root_bounds[j] = {lo, hi};
  }

  // Root activity ranges for node presolve: the model-level cache when the
  // integer tightening above changed nothing (the common case — package
  // binaries already have integral bounds), a fresh per-row pass otherwise.
  std::vector<RowActivityBounds> root_acts;
  if (presolve_enabled) {
    root_acts = model.row_activity_bounds();
    bool bounds_match_model = true;
    for (int j = 0; j < n && bounds_match_model; ++j) {
      const Variable& v = model.variable(j);
      bounds_match_model =
          root_bounds[j].first == v.lb && root_bounds[j].second == v.ub;
    }
    if (!bounds_match_model) {
      for (int i = 0; i < model.num_constraints(); ++i) {
        root_acts[i] = RowActivityUnder(model, i, root_bounds);
      }
    }
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open(
      NodeOrder{maximize});
  {
    Node root;
    root.bounds = std::move(root_bounds);
    root.acts = std::move(root_acts);
    root.bound = maximize ? kInfinity : -kInfinity;
    if (warm != nullptr) root.basis = warm->root_basis;
    open.push(std::move(root));
  }

  bool have_incumbent = false;
  std::vector<double> incumbent;
  double incumbent_obj = 0.0;
  bool root_unbounded = false;
  bool root_basis_captured = false;
  // Optimistic bounds of subtrees abandoned because their LP would not
  // finish within the (repeatedly doubled) iteration limit. These must
  // survive into best_bound / status reporting: an abandoned subtree may
  // hold the true optimum.
  bool abandoned_any = false;
  double abandoned_bound = maximize ? -kInfinity : kInfinity;
  // Doubling the LP budget this many times (~4000x) before giving up on a
  // node keeps pathological LPs from stalling the whole solve forever.
  constexpr int kMaxLpLimitBoost = 12;

  while (!open.empty()) {
    if (result.nodes >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_s) {
      break;  // open is non-empty here, so work_remaining stays true
    }
    // Move the node out of the queue (top() is const only because mutating
    // a live element could break the heap; we pop it immediately, so
    // stealing its guts is safe and saves an O(n + m) deep copy per node).
    Node node = std::move(const_cast<Node&>(open.top()));
    open.pop();

    // Bound-based pruning against the incumbent.
    if (have_incumbent && !better(node.bound, incumbent_obj)) continue;

    ++result.nodes;
    SimplexOptions lp_opts = base_lp;
    if (node.lp_limit_boost > 0) {
      lp_opts.max_iterations = EffectiveIterationLimit(model, base_lp)
                               << node.lp_limit_boost;
    }
    const LpBasis* start =
        warm_enabled && !node.basis.empty() ? &node.basis : nullptr;
    PB_ASSIGN_OR_RETURN(LpSolution lp,
                        SolveLp(model, lp_opts, &node.bounds, start));
    result.lp_iterations += lp.iterations;
    result.lp_dual_iterations += lp.dual_iterations;

    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kUnbounded) {
      // An unbounded relaxation with no incumbent yet (the root included)
      // means the MILP may be unbounded; surface it conservatively.
      if (!have_incumbent) {
        root_unbounded = true;
        break;
      }
      continue;
    }
    if (lp.status == LpStatus::kIterationLimit) {
      // The node's subtree must not be lost: re-queue it with a doubled
      // LP budget, resuming from the partial basis. Only after the boost
      // cap is the subtree abandoned — and then its optimistic bound
      // still reaches the reported best_bound below.
      if (node.lp_limit_boost < kMaxLpLimitBoost) {
        Node retry = std::move(node);
        ++retry.lp_limit_boost;
        if (warm_enabled) retry.basis = std::move(lp.basis);
        open.push(std::move(retry));
      } else {
        abandoned_any = true;
        abandoned_bound = maximize ? std::max(abandoned_bound, node.bound)
                                   : std::min(abandoned_bound, node.bound);
      }
      continue;
    }

    double node_bound = lp.objective;
    if (!root_basis_captured && node.branch_var < 0 && warm != nullptr) {
      // First optimal solve of the root (re-queues included): remember its
      // basis for the next structurally identical model.
      warm->root_basis = lp.basis;
      root_basis_captured = true;
    }

    // Pseudocost observation: objective degradation from the parent's LP
    // bound, normalized by the branching distance.
    if (warm_enabled && node.branch_var >= 0 && std::isfinite(node.bound)) {
      double degradation = maximize ? node.bound - node_bound
                                    : node_bound - node.bound;
      degradation = std::max(degradation, 0.0);
      double denom =
          node.branch_up ? 1.0 - node.branch_frac : node.branch_frac;
      if (denom > 1e-9) {
        PseudocostHistory::Entry& e = pc.entries[node.branch_var];
        if (node.branch_up) {
          e.up_sum += degradation / denom;
          ++e.up_n;
          pc.up_sum_all += degradation / denom;
          ++pc.up_n_all;
        } else {
          e.down_sum += degradation / denom;
          ++e.down_n;
          pc.down_sum_all += degradation / denom;
          ++pc.down_n_all;
        }
      }
    }

    if (have_incumbent && !better(node_bound, incumbent_obj)) continue;

    int frac_var = MostFractionalVariable(model, lp.x, options.int_tol);
    if (frac_var < 0) {
      // Integer feasible: snap and accept as incumbent.
      std::vector<double> snapped = lp.x;
      for (int j = 0; j < n; ++j) {
        if (model.variable(j).is_integer) snapped[j] = std::round(snapped[j]);
      }
      double obj = model.ObjectiveValue(snapped);
      if (!have_incumbent || better(obj, incumbent_obj)) {
        have_incumbent = true;
        incumbent = std::move(snapped);
        incumbent_obj = obj;
      }
      continue;
    }

    // Primal heuristics: cheap rounding at every node; one LP dive from the
    // root when rounding produced nothing (package models have equality
    // rows that defeat rounding but dive well).
    if (options.rounding_heuristic) {
      std::vector<double> rounded;
      if (TryRound(model, node.bounds, lp.x, options.int_tol, &rounded)) {
        double obj = model.ObjectiveValue(rounded);
        if (!have_incumbent || better(obj, incumbent_obj)) {
          have_incumbent = true;
          incumbent = std::move(rounded);
          incumbent_obj = obj;
        }
      }
      // Root identified by branch_var (result.nodes would miss a root that
      // was re-queued after an LP iteration limit).
      if (!have_incumbent && node.branch_var < 0) {
        std::vector<double> dived;
        if (TryDive(model, node.bounds, base_lp, options.int_tol,
                    warm_enabled ? &lp.basis : nullptr,
                    &result.lp_iterations, &result.lp_dual_iterations,
                    &dived)) {
          have_incumbent = true;
          incumbent_obj = model.ObjectiveValue(dived);
          incumbent = std::move(dived);
        }
      }
    }

    // Branch: floor side and ceil side, both warm-started from this node's
    // optimal basis (they differ from it by one variable bound). Node
    // presolve then propagates that one bound through the row activity
    // ranges: children whose rows become unsatisfiable are discarded with
    // zero LP work, and implied integer fixings ride into the child's
    // bound set, which the dual re-solve picks up directly.
    int branch_var = warm_enabled
                         ? SelectBranchVariable(model, lp.x, options.int_tol,
                                                pc, frac_var)
                         : frac_var;
    if (branch_var < 0) branch_var = frac_var;
    double xv = lp.x[branch_var];
    double frac = xv - std::floor(xv);
    const double parent_lb = node.bounds[branch_var].first;
    const double parent_ub = node.bounds[branch_var].second;
    node.basis.clear();  // superseded by lp.basis; don't copy it into `down`
    Node down = node;
    down.bound = node_bound;
    if (warm_enabled) down.basis = lp.basis;
    down.branch_var = branch_var;
    down.branch_frac = frac;
    down.branch_up = false;
    down.lp_limit_boost = 0;
    down.bounds[branch_var].second =
        std::min(down.bounds[branch_var].second, std::floor(xv));
    bool push_down =
        down.bounds[branch_var].first <= down.bounds[branch_var].second;
    if (push_down && presolve_enabled &&
        !PropagateBranchedBound(model, branch_var, parent_lb, parent_ub,
                                options.int_tol, &down.bounds, &down.acts,
                                &result.presolve_fixed_bounds)) {
      ++result.presolve_infeasible_children;
      push_down = false;
    }
    if (push_down) open.push(std::move(down));
    Node up = std::move(node);
    up.bound = node_bound;
    if (warm_enabled) up.basis = std::move(lp.basis);
    up.branch_var = branch_var;
    up.branch_frac = frac;
    up.branch_up = true;
    up.lp_limit_boost = 0;
    up.bounds[branch_var].first =
        std::max(up.bounds[branch_var].first, std::ceil(xv));
    bool push_up = up.bounds[branch_var].first <= up.bounds[branch_var].second;
    if (push_up && presolve_enabled &&
        !PropagateBranchedBound(model, branch_var, parent_lb, parent_ub,
                                options.int_tol, &up.bounds, &up.acts,
                                &result.presolve_fixed_bounds)) {
      ++result.presolve_infeasible_children;
      push_up = false;
    }
    if (push_up) open.push(std::move(up));
  }

  // Best remaining optimistic bound over ALL unexplored work: open nodes
  // (the queue is bound-ordered, so top() is the best) plus any abandoned
  // subtrees.
  bool work_remaining = !open.empty() || abandoned_any;
  double remaining_bound = maximize ? -kInfinity : kInfinity;
  if (!open.empty()) remaining_bound = open.top().bound;
  if (abandoned_any) {
    remaining_bound = maximize ? std::max(remaining_bound, abandoned_bound)
                               : std::min(remaining_bound, abandoned_bound);
  }

  result.solve_seconds = timer.ElapsedSeconds();
  if (root_unbounded && !have_incumbent) {
    result.status = MilpStatus::kUnbounded;
    return result;
  }
  if (have_incumbent) {
    result.x = std::move(incumbent);
    result.objective = incumbent_obj;
    // Optimality is proven when no unexplored work remains, or when none of
    // it can beat the incumbent (a bound-based proof is valid even when a
    // node/time limit stopped the search).
    bool proven = !work_remaining || !better(remaining_bound, incumbent_obj);
    result.best_bound = proven ? incumbent_obj : remaining_bound;
    result.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    return result;
  }
  result.status = work_remaining ? MilpStatus::kNoSolution
                                 : MilpStatus::kInfeasible;
  result.best_bound = remaining_bound;
  return result;
}

Result<MilpResult> SolveMilpOrFail(const LpModel& model,
                                   const MilpOptions& options) {
  PB_ASSIGN_OR_RETURN(MilpResult r, SolveMilp(model, options));
  switch (r.status) {
    case MilpStatus::kOptimal:
    case MilpStatus::kFeasible:
      return r;
    case MilpStatus::kInfeasible:
      return Status::Infeasible("no integer-feasible solution exists");
    case MilpStatus::kUnbounded:
      return Status::Unbounded("objective is unbounded");
    case MilpStatus::kNoSolution:
      return Status::ResourceExhausted(
          "solver limits reached before finding a solution");
  }
  return Status::Internal("unknown MILP status");
}

}  // namespace pb::solver
