#include "solver/milp.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace pb::solver {

const char* MilpStatusToString(MilpStatus s) {
  switch (s) {
    case MilpStatus::kOptimal:    return "Optimal";
    case MilpStatus::kInfeasible: return "Infeasible";
    case MilpStatus::kFeasible:   return "Feasible";
    case MilpStatus::kNoSolution: return "NoSolution";
    case MilpStatus::kUnbounded:  return "Unbounded";
  }
  return "?";
}

namespace {

using Bounds = std::vector<std::pair<double, double>>;

struct Node {
  Bounds bounds;
  double bound;  // parent LP objective (optimistic bound for this node)
};

/// Best-first: larger is better for max problems, smaller for min.
struct NodeOrder {
  bool maximize;
  bool operator()(const Node& a, const Node& b) const {
    return maximize ? a.bound < b.bound : a.bound > b.bound;
  }
};

/// Index of the most fractional integer variable, or -1 if integral.
int MostFractional(const LpModel& model, const std::vector<double>& x,
                   double int_tol) {
  int best = -1;
  double best_frac = int_tol;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double frac = std::abs(x[j] - std::round(x[j]));
    if (frac > best_frac) {
      // Prefer the variable closest to 0.5 fractionality.
      double dist_half = std::abs(frac - 0.5);
      if (best < 0 ||
          dist_half < std::abs(std::abs(x[best] - std::round(x[best])) - 0.5)) {
        best = j;
      }
      best_frac = std::max(best_frac, int_tol);
    }
  }
  return best;
}

/// Rounds integer variables to the nearest integer within bounds; returns
/// true if the rounded point is feasible for the whole model.
bool TryRound(const LpModel& model, const Bounds& bounds,
              const std::vector<double>& x, double tol,
              std::vector<double>* rounded) {
  *rounded = x;
  for (int j = 0; j < model.num_variables(); ++j) {
    if (!model.variable(j).is_integer) continue;
    double r = std::round(x[j]);
    r = std::min(std::max(r, bounds[j].first), bounds[j].second);
    (*rounded)[j] = r;
  }
  return model.IsFeasible(*rounded, tol);
}

/// Diving heuristic: repeatedly fixes the most fractional integer variable
/// to its nearest integer and re-solves the LP. Package models (equality
/// COUNT rows) rarely round feasibly, but they dive very well — this is how
/// the solver finds its first incumbent without exploring the tree.
/// Returns true with an integer-feasible point in *out on success.
bool TryDive(const LpModel& model, Bounds bounds, const SimplexOptions& lp_opts,
             double int_tol, int64_t* lp_iterations,
             std::vector<double>* out) {
  constexpr int kMaxDepth = 400;
  for (int depth = 0; depth < kMaxDepth; ++depth) {
    auto lp = SolveLp(model, lp_opts, &bounds);
    if (!lp.ok() || lp->status != LpStatus::kOptimal) return false;
    *lp_iterations += lp->iterations;
    int j = MostFractional(model, lp->x, int_tol);
    if (j < 0) {
      *out = lp->x;
      for (int v = 0; v < model.num_variables(); ++v) {
        if (model.variable(v).is_integer) (*out)[v] = std::round((*out)[v]);
      }
      return model.IsFeasible(*out, int_tol);
    }
    double fixed = std::round(lp->x[j]);
    fixed = std::min(std::max(fixed, bounds[j].first), bounds[j].second);
    bounds[j] = {fixed, fixed};
  }
  return false;
}

}  // namespace

Result<MilpResult> SolveMilp(const LpModel& model, const MilpOptions& options) {
  PB_RETURN_IF_ERROR(model.Validate());
  Stopwatch timer;
  const bool maximize = model.sense() == ObjectiveSense::kMaximize;
  auto better = [&](double a, double b) {
    return maximize ? a > b + options.gap_abs : a < b - options.gap_abs;
  };

  MilpResult result;

  Bounds root_bounds(model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    const Variable& v = model.variable(j);
    double lo = v.lb, hi = v.ub;
    // Integer variables get their bounds tightened to integers up front.
    if (v.is_integer) {
      if (std::isfinite(lo)) lo = std::ceil(lo - options.int_tol);
      if (std::isfinite(hi)) hi = std::floor(hi + options.int_tol);
    }
    root_bounds[j] = {lo, hi};
  }

  std::priority_queue<Node, std::vector<Node>, NodeOrder> open(
      NodeOrder{maximize});
  open.push({std::move(root_bounds),
             maximize ? kInfinity : -kInfinity});

  bool have_incumbent = false;
  std::vector<double> incumbent;
  double incumbent_obj = 0.0;
  double best_open_bound = maximize ? -kInfinity : kInfinity;
  bool hit_limit = false;
  bool root_unbounded = false;

  while (!open.empty()) {
    if (result.nodes >= options.max_nodes ||
        timer.ElapsedSeconds() > options.time_limit_s) {
      hit_limit = true;
      break;
    }
    Node node = open.top();
    open.pop();

    // Bound-based pruning against the incumbent.
    if (have_incumbent && !better(node.bound, incumbent_obj)) continue;

    ++result.nodes;
    PB_ASSIGN_OR_RETURN(LpSolution lp,
                        SolveLp(model, options.lp, &node.bounds));
    result.lp_iterations += lp.iterations;

    if (lp.status == LpStatus::kInfeasible) continue;
    if (lp.status == LpStatus::kUnbounded) {
      if (result.nodes == 1) root_unbounded = true;
      // An unbounded relaxation at a non-root node still means the MILP
      // may be unbounded; surface it conservatively.
      root_unbounded = root_unbounded || !have_incumbent;
      if (root_unbounded) break;
      continue;
    }
    if (lp.status == LpStatus::kIterationLimit) {
      hit_limit = true;
      continue;
    }

    double node_bound = lp.objective;
    if (have_incumbent && !better(node_bound, incumbent_obj)) continue;

    int branch_var = MostFractional(model, lp.x, options.int_tol);
    if (branch_var < 0) {
      // Integer feasible: snap and accept as incumbent.
      std::vector<double> snapped = lp.x;
      for (int j = 0; j < model.num_variables(); ++j) {
        if (model.variable(j).is_integer) snapped[j] = std::round(snapped[j]);
      }
      double obj = model.ObjectiveValue(snapped);
      if (!have_incumbent || better(obj, incumbent_obj)) {
        have_incumbent = true;
        incumbent = std::move(snapped);
        incumbent_obj = obj;
      }
      continue;
    }

    // Primal heuristics: cheap rounding at every node; one LP dive from the
    // root when rounding produced nothing (package models have equality
    // rows that defeat rounding but dive well).
    if (options.rounding_heuristic) {
      std::vector<double> rounded;
      if (TryRound(model, node.bounds, lp.x, options.int_tol, &rounded)) {
        double obj = model.ObjectiveValue(rounded);
        if (!have_incumbent || better(obj, incumbent_obj)) {
          have_incumbent = true;
          incumbent = std::move(rounded);
          incumbent_obj = obj;
        }
      }
      if (!have_incumbent && result.nodes == 1) {
        std::vector<double> dived;
        if (TryDive(model, node.bounds, options.lp, options.int_tol,
                    &result.lp_iterations, &dived)) {
          have_incumbent = true;
          incumbent_obj = model.ObjectiveValue(dived);
          incumbent = std::move(dived);
        }
      }
    }

    // Branch: floor side and ceil side.
    double xv = lp.x[branch_var];
    Node down = node;
    down.bound = node_bound;
    down.bounds[branch_var].second =
        std::min(down.bounds[branch_var].second, std::floor(xv));
    if (down.bounds[branch_var].first <= down.bounds[branch_var].second) {
      open.push(std::move(down));
    }
    Node up = std::move(node);
    up.bound = node_bound;
    up.bounds[branch_var].first =
        std::max(up.bounds[branch_var].first, std::ceil(xv));
    if (up.bounds[branch_var].first <= up.bounds[branch_var].second) {
      open.push(std::move(up));
    }
  }

  // Best remaining optimistic bound (for gap reporting).
  if (!open.empty()) best_open_bound = open.top().bound;

  result.solve_seconds = timer.ElapsedSeconds();
  if (root_unbounded && !have_incumbent) {
    result.status = MilpStatus::kUnbounded;
    return result;
  }
  if (have_incumbent) {
    result.x = std::move(incumbent);
    result.objective = incumbent_obj;
    bool proven = open.empty() && !hit_limit;
    // With pruning, an emptied queue proves optimality; otherwise compare
    // the incumbent with the best open bound.
    if (!proven && !open.empty() && !better(best_open_bound, incumbent_obj)) {
      proven = !hit_limit;
    }
    result.best_bound = open.empty() ? incumbent_obj : best_open_bound;
    result.status = proven ? MilpStatus::kOptimal : MilpStatus::kFeasible;
    return result;
  }
  result.status = hit_limit ? MilpStatus::kNoSolution : MilpStatus::kInfeasible;
  result.best_bound = best_open_bound;
  return result;
}

Result<MilpResult> SolveMilpOrFail(const LpModel& model,
                                   const MilpOptions& options) {
  PB_ASSIGN_OR_RETURN(MilpResult r, SolveMilp(model, options));
  switch (r.status) {
    case MilpStatus::kOptimal:
    case MilpStatus::kFeasible:
      return r;
    case MilpStatus::kInfeasible:
      return Status::Infeasible("no integer-feasible solution exists");
    case MilpStatus::kUnbounded:
      return Status::Unbounded("objective is unbounded");
    case MilpStatus::kNoSolution:
      return Status::ResourceExhausted(
          "solver limits reached before finding a solution");
  }
  return Status::Internal("unknown MILP status");
}

}  // namespace pb::solver
