#include "solver/pricing.h"

#include <algorithm>
#include <cmath>

namespace pb::solver {

namespace {
// When any weight outgrows this, the reference framework has drifted far
// from the current basis and the scores stop meaning anything: start a
// fresh frame (all weights 1), as Forrest & Goldfarb prescribe.
constexpr double kFrameResetThreshold = 1e10;
}  // namespace

const char* PricingRuleToString(PricingRule r) {
  switch (r) {
    case PricingRule::kDantzig: return "dantzig";
    case PricingRule::kDevex:   return "devex";
  }
  return "?";
}

void Pricing::PrimalUpdate(const std::vector<int>& pattern,
                           const std::vector<double>& z, int enter, int leave,
                           double z_enter) {
  if (rule_ != PricingRule::kDevex || z_enter == 0.0) return;
  // w_j <- max(w_j, (z_j / z_e)^2 w_e); the leaving variable re-enters the
  // nonbasic pool with the entering column's transformed weight.
  const double we = primal_w_[enter];
  const double ratio2 = we / (z_enter * z_enter);
  double maxw = 0.0;
  for (int j : pattern) {
    if (j == enter) continue;
    double zj = z[j];
    if (zj == 0.0) continue;
    double cand = zj * zj * ratio2;
    if (cand > primal_w_[j]) primal_w_[j] = cand;
    maxw = std::max(maxw, primal_w_[j]);
  }
  primal_w_[leave] = std::max(ratio2, 1.0);
  if (std::max(maxw, primal_w_[leave]) > kFrameResetThreshold) {
    primal_w_.assign(primal_w_.size(), 1.0);
  }
}

void Pricing::DualUpdate(const std::vector<double>& alpha, int leave_row) {
  if (rule_ != PricingRule::kDevex) return;
  const double ar = alpha[leave_row];
  if (ar == 0.0) return;
  const double wr = dual_w_[leave_row];
  const double ratio2 = wr / (ar * ar);
  double maxw = 0.0;
  const int m = static_cast<int>(dual_w_.size());
  for (int i = 0; i < m; ++i) {
    if (i == leave_row) continue;
    double ai = alpha[i];
    if (ai == 0.0) continue;
    double cand = ai * ai * ratio2;
    if (cand > dual_w_[i]) dual_w_[i] = cand;
    maxw = std::max(maxw, dual_w_[i]);
  }
  dual_w_[leave_row] = std::max(ratio2, 1.0);
  if (std::max(maxw, dual_w_[leave_row]) > kFrameResetThreshold) {
    dual_w_.assign(dual_w_.size(), 1.0);
  }
}

}  // namespace pb::solver
