// Pricing: the column/row-selection layer shared by the primal phase-1 and
// phase-2 loops and by the dual simplex's leaving-row choice.
//
// Both rules are expressed through one scoring interface so the loops stay
// rule-agnostic:
//
//   kDantzig  score = d^2 (primal) / violation^2 (dual). Orders candidates
//             exactly like the classic most-negative-reduced-cost rule the
//             solver always used, including its lowest-index tie-break.
//
//   kDevex    score = d^2 / w_j with reference-framework weights updated on
//             every pivot (Forrest & Goldfarb). Weights approximate the
//             steepest-edge norms ||B^{-1} a_j||^2, which on long thin
//             package LPs stops Dantzig's hallmark stall: entering columns
//             picked on raw reduced cost but with huge pivot rows that
//             barely move the objective. The dual loop runs the analogous
//             row-weight scheme. Weight explosion resets the reference
//             frame.
//
// Bland's anti-cycling rule is NOT here: the simplex loops fall back to
// lowest-eligible-index selection themselves once the iteration count
// crosses the stall threshold, bypassing scores entirely — identical
// behavior under either rule, exactly as before the refactor.

#ifndef PB_SOLVER_PRICING_H_
#define PB_SOLVER_PRICING_H_

#include <cstdint>
#include <vector>

namespace pb::solver {

enum class PricingRule : int8_t { kDantzig, kDevex };

const char* PricingRuleToString(PricingRule r);

class Pricing {
 public:
  explicit Pricing(PricingRule rule) : rule_(rule) {}

  PricingRule rule() const { return rule_; }

  /// Starts a fresh primal reference frame over `total` columns
  /// (structural + slack). Call on phase entry.
  void ResetPrimal(int total) {
    if (rule_ == PricingRule::kDevex) primal_w_.assign(total, 1.0);
  }

  /// Starts a fresh dual reference frame over `m` rows.
  void ResetDual(int m) {
    if (rule_ == PricingRule::kDevex) dual_w_.assign(m, 1.0);
  }

  /// Score of entering candidate j with reduced cost d (larger is better;
  /// all scores are comparable across statuses/directions).
  double PrimalScore(int j, double d) const {
    double s = d * d;
    return rule_ == PricingRule::kDevex ? s / primal_w_[j] : s;
  }

  /// Score of leaving-row candidate i with bound violation v.
  double DualScore(int i, double v) const {
    double s = v * v;
    return rule_ == PricingRule::kDevex ? s / dual_w_[i] : s;
  }

  /// Devex weight update after a primal pivot. `pattern`/`z` hold the
  /// priced pivot row (z_j = rho . a_j over nonbasic columns), `enter` the
  /// entering column, `leave` the leaving variable, `z_enter` the pivot
  /// element. No-op under Dantzig.
  void PrimalUpdate(const std::vector<int>& pattern,
                    const std::vector<double>& z, int enter, int leave,
                    double z_enter);

  /// Devex weight update after a dual pivot with Ftran column `alpha` and
  /// pivot row `leave_row`. No-op under Dantzig.
  void DualUpdate(const std::vector<double>& alpha, int leave_row);

 private:
  PricingRule rule_;
  std::vector<double> primal_w_;  // per column, devex only
  std::vector<double> dual_w_;    // per row, devex only
};

}  // namespace pb::solver

#endif  // PB_SOLVER_PRICING_H_
