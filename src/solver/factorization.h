// BasisFactorization: the linear-algebra layer of the revised simplex.
//
// The simplex loops (primal phase 1/2 and the dual) never touch the basis
// matrix directly; they go through this interface for the four operations
// revised simplex needs:
//
//   Refactorize(basis)      factor B from scratch (basis[i] = column basic
//                           in row i; columns >= n are row slacks, -e_i)
//   Ftran(x)                x := B^{-1} x        (entering column, RHS)
//   Btran(y)                y := B^{-T} y        (duals from basic costs)
//   BtranUnit(r, rho)       rho := row r of B^{-1} (the priced pivot row)
//   Update(r, alpha, basis) column-replace: basic in row r swapped for the
//                           column whose Ftran image is alpha
//
// Two implementations:
//
//   kDense     the original engine: an explicit m x m inverse maintained by
//              Gauss-Jordan refactorization and product-form row updates.
//              O(m^2) per solve, O(m^3) per refactorization — fine for the
//              handful of global constraints in a classic package query,
//              hopeless at scale. Kept as the ablation baseline.
//
//   kSparseLu  sparse LU in the spirit of Suhl & Suhl: a left-looking
//              Gilbert-Peierls factorization with a static minimum-count
//              column order and Markowitz-flavored threshold pivoting
//              (among numerically acceptable rows, prefer the sparsest),
//              updated between refactorizations by a product-form eta
//              file. All solves run in O(nnz(L+U) + nnz(etas)).
//
// Both backends are deterministic: column order, pivot choice, and
// tie-breaks depend only on the basis and the matrix, never on timing or
// addresses — the branch-and-bound determinism rule (bit-identical results
// at any thread count) extends through this layer.

#ifndef PB_SOLVER_FACTORIZATION_H_
#define PB_SOLVER_FACTORIZATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "solver/model.h"

namespace pb::solver {

enum class FactorizationKind : int8_t { kDense, kSparseLu };

const char* FactorizationKindToString(FactorizationKind k);

struct FactorizationStats {
  int64_t refactorizations = 0;  ///< full factorizations computed
  int64_t updates = 0;           ///< successful column-replace updates
};

class BasisFactorization {
 public:
  virtual ~BasisFactorization() = default;

  /// Factors the basis from scratch. Returns false when the basis matrix
  /// is numerically singular (no acceptable pivot); the factorization is
  /// then unusable until a successful Refactorize.
  virtual bool Refactorize(const std::vector<int>& basis) = 0;

  /// x := B^{-1} x. `x` is dense, size m.
  virtual void Ftran(std::vector<double>* x) = 0;

  /// y := B^{-T} y. `y` is dense, size m.
  virtual void Btran(std::vector<double>* y) = 0;

  /// rho := row r of B^{-1} (equivalently B^{-T} e_r) — the priced pivot
  /// row the dual ratio test and the reduced-cost update consume.
  virtual void BtranUnit(int r, std::vector<double>* rho) = 0;

  /// Replaces the basic column in row `leave_row`; `alpha` is the Ftran
  /// image B^{-1} a_enter of the incoming column, `basis` the already-
  /// updated basis (used only if a small pivot forces an internal
  /// refactorization). Returns false on a singular refactorization.
  virtual bool Update(int leave_row, const std::vector<double>& alpha,
                      const std::vector<int>& basis) = 0;

  /// True when accumulated updates have degraded the representation enough
  /// that the caller should refactorize before its periodic schedule (the
  /// sparse backend's eta file outgrowing the LU factors).
  virtual bool ShouldRefactorize() const = 0;

  virtual const char* name() const = 0;

  const FactorizationStats& stats() const { return stats_; }

 protected:
  BasisFactorization(const CscMatrix& a, int num_structural, int num_rows,
                     double pivot_tol)
      : a_(a), n_(num_structural), m_(num_rows), pivot_tol_(pivot_tol) {}

  /// Visits (row, value) of basis column j: CSC entries for structural
  /// columns, the synthesized single entry (j - n, -1) for slacks.
  template <typename Fn>
  void ForEachColumnEntry(int j, Fn&& fn) const {
    if (j < n_) {
      for (int64_t k = a_.col_start[j]; k < a_.col_start[j + 1]; ++k) {
        fn(static_cast<int>(a_.row[k]), a_.value[k]);
      }
    } else {
      fn(j - n_, -1.0);
    }
  }

  const CscMatrix& a_;  ///< structural columns (model.csc()); not owned
  int n_;               ///< structural column count
  int m_;               ///< row count == basis size
  double pivot_tol_;
  FactorizationStats stats_;
};

/// Factory. `a` must outlive the returned object and is the model's csc().
std::unique_ptr<BasisFactorization> MakeFactorization(FactorizationKind kind,
                                                      const CscMatrix& a,
                                                      int num_structural,
                                                      int num_rows,
                                                      double pivot_tol);

}  // namespace pb::solver

#endif  // PB_SOLVER_FACTORIZATION_H_
