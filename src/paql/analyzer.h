// Semantic analysis of PaQL queries.
//
// The analyzer binds the query against a catalog table, type-checks base and
// global constraints, and extracts the *linear structure* of the SUCH THAT
// clause and objective — the form the ILP translator consumes:
//
//   linear constraint:   lo <= sum_k coeff_k * AGG_k(P) <= hi
//   extreme constraint:  MIN/MAX(expr) op constant
//
// where each AGG_k is COUNT(*) / COUNT(e) / SUM(e), i.e. an aggregate whose
// package value is a per-tuple-weighted sum and therefore a linear function
// of the tuple-multiplicity variables. AVG constraints of the simple form
// (sum of AVG terms vs. constant) are rewritten by multiplying through by
// COUNT(*):   AVG(e) <= c   ==>   SUM(e) - c*COUNT(*) <= 0  (plus a
// non-empty-package requirement, since AVG over an empty package is NULL
// and NULL never satisfies a comparison).
//
// Queries whose SUCH THAT is not a conjunction of such constraints (OR /
// NOT / '<>' / non-linear aggregate arithmetic) are still *valid* — the
// analyzer marks them not-ILP-translatable and the engine falls back to
// search strategies that only need a package membership oracle. This
// mirrors the paper's "solvers cannot usually handle non-linear global
// constraints; hence evaluating such queries requires different methods"
// (§5).

#ifndef PB_PAQL_ANALYZER_H_
#define PB_PAQL_ANALYZER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "paql/ast.h"

namespace pb::paql {

/// One term of a linear global expression: coeff * aggs[agg_index].
struct LinearAggTerm {
  size_t agg_index = 0;
  double coeff = 0.0;
};

/// lo <= sum(terms) <= hi over the canonical aggregate list.
struct LinearConstraint {
  std::vector<LinearAggTerm> terms;
  double lo;
  double hi;
  std::string source_text;  ///< original PaQL spelling, for diagnostics
};

/// MIN/MAX(arg) op bound — handled by the translator with per-tuple logic.
struct ExtremeConstraint {
  db::AggFunc func = db::AggFunc::kMin;  ///< kMin or kMax
  db::ExprPtr arg;
  db::BinaryOp op = db::BinaryOp::kLe;   ///< comparison, constant on the rhs
  double bound = 0.0;
  std::string source_text;
};

/// The fully analyzed query, ready for any evaluation strategy.
struct AnalyzedQuery {
  Query query;
  const db::Table* table = nullptr;

  /// Max occurrences of one base tuple in a package (REPEAT k, default 1).
  int64_t max_multiplicity = 1;

  /// Canonical list of distinct linear aggregates (COUNT/COUNT(e)/SUM(e))
  /// referenced by `linear_constraints` and `objective_terms`. Arguments are
  /// bound against the table schema.
  std::vector<AggCall> aggs;

  std::vector<LinearConstraint> linear_constraints;
  std::vector<ExtremeConstraint> extreme_constraints;

  /// True when the entire SUCH THAT clause is captured by
  /// linear_constraints + extreme_constraints (conjunctive, linear).
  bool ilp_translatable = true;
  std::string not_translatable_reason;

  /// True when semantics force a non-empty package (any AVG/MIN/MAX
  /// constraint: their value over an empty package is NULL).
  bool requires_nonempty = false;

  /// Objective as a linear combination of `aggs` (valid when
  /// objective_linear; queries without MAXIMIZE/MINIMIZE have none).
  bool has_objective = false;
  bool objective_linear = true;
  std::vector<LinearAggTerm> objective_terms;
  bool maximize = true;

  /// Index of COUNT(*) in `aggs`, creating it if absent (mutating helper
  /// used by translator extensions; const queries use FindCountStar).
  int FindCountStar() const;
};

/// Analyzes `query` against `catalog`. Fails on unknown tables/columns and
/// type errors; non-translatable global constraints do NOT fail (see above).
Result<AnalyzedQuery> Analyze(const Query& query, const db::Catalog& catalog);

/// Convenience: parse + analyze.
Result<AnalyzedQuery> ParseAndAnalyze(std::string_view text,
                                      const db::Catalog& catalog);

}  // namespace pb::paql

#endif  // PB_PAQL_ANALYZER_H_
