#include "paql/parser.h"

#include "paql/lexer.h"

namespace pb::paql {

namespace {

/// Token-stream cursor shared by all parse routines.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> ParseQuery() {
    Query q;
    PB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    PB_RETURN_IF_ERROR(ExpectKeyword("PACKAGE"));
    PB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
    PB_ASSIGN_OR_RETURN(std::string pkg_rel, ExpectIdent());
    PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
    if (AcceptKeyword("AS")) {
      PB_ASSIGN_OR_RETURN(q.package_alias, ExpectIdent());
    }
    PB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    PB_ASSIGN_OR_RETURN(q.relation, ExpectIdent());
    q.relation_alias = q.relation;
    if (Peek().kind == TokenKind::kIdent) {
      q.relation_alias = Advance().text;
    }
    if (AcceptKeyword("REPEAT")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("REPEAT expects an integer");
      }
      q.repeat = Advance().int_value;
      if (*q.repeat < 1) return Error("REPEAT count must be >= 1");
    }
    // PACKAGE(X) must reference the FROM relation or its alias.
    if (pkg_rel != q.relation && pkg_rel != q.relation_alias) {
      return Error("PACKAGE(" + pkg_rel +
                   ") does not match the FROM relation '" + q.relation + "'");
    }
    if (q.package_alias.empty()) q.package_alias = pkg_rel;

    if (AcceptKeyword("WHERE")) {
      PB_ASSIGN_OR_RETURN(q.where, ParseOr());
    }
    if (AcceptKeyword("SUCH")) {
      PB_RETURN_IF_ERROR(ExpectKeyword("THAT"));
      PB_ASSIGN_OR_RETURN(q.such_that, ParseGOr());
    }
    if (Peek().IsKeyword("MAXIMIZE") || Peek().IsKeyword("MINIMIZE")) {
      Objective obj;
      obj.sense = Advance().text == "MAXIMIZE" ? ObjectiveSense::kMaximize
                                               : ObjectiveSense::kMinimize;
      PB_ASSIGN_OR_RETURN(obj.expr, ParseGSum());
      q.objective = obj;
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kIntLiteral) {
        return Error("LIMIT expects an integer");
      }
      q.limit = Advance().int_value;
      if (*q.limit < 1) return Error("LIMIT must be >= 1");
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input '" + Peek().text + "'");
    }
    return q;
  }

  // ----- Scalar (WHERE) expression grammar --------------------------------

  Result<db::ExprPtr> ParseOr() {
    PB_ASSIGN_OR_RETURN(db::ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseAnd());
      lhs = db::Binary(db::BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<db::ExprPtr> ParseAnd() {
    PB_ASSIGN_OR_RETURN(db::ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseNot());
      lhs = db::Binary(db::BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<db::ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      PB_ASSIGN_OR_RETURN(db::ExprPtr inner, ParseNot());
      return db::Unary(db::UnaryOp::kNot, std::move(inner));
    }
    return ParsePredicate();
  }

  Result<db::ExprPtr> ParsePredicate() {
    PB_ASSIGN_OR_RETURN(db::ExprPtr lhs, ParseAdditive());
    // Optional comparison / BETWEEN / IN / LIKE / IS NULL suffix.
    bool negated = false;
    if (Peek().IsKeyword("NOT")) {
      // Only valid before BETWEEN / IN / LIKE.
      const Token& next = PeekAt(1);
      if (next.IsKeyword("BETWEEN") || next.IsKeyword("IN") ||
          next.IsKeyword("LIKE")) {
        Advance();
        negated = true;
      }
    }
    if (AcceptKeyword("BETWEEN")) {
      PB_ASSIGN_OR_RETURN(db::ExprPtr lo, ParseAdditive());
      PB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      PB_ASSIGN_OR_RETURN(db::ExprPtr hi, ParseAdditive());
      return db::Between(std::move(lhs), std::move(lo), std::move(hi),
                         negated);
    }
    if (AcceptKeyword("IN")) {
      PB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      std::vector<db::Value> items;
      do {
        PB_ASSIGN_OR_RETURN(db::Value v, ExpectLiteralValue());
        items.push_back(std::move(v));
      } while (Accept(TokenKind::kComma));
      PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return db::In(std::move(lhs), std::move(items), negated);
    }
    if (AcceptKeyword("LIKE")) {
      if (Peek().kind != TokenKind::kStringLiteral) {
        return Error("LIKE expects a string pattern");
      }
      return db::Like(std::move(lhs), Advance().text, negated);
    }
    if (AcceptKeyword("IS")) {
      bool not_null = AcceptKeyword("NOT");
      PB_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return db::IsNull(std::move(lhs), not_null);
    }
    if (negated) return Error("dangling NOT");
    auto cmp = AcceptComparison();
    if (cmp) {
      PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseAdditive());
      return db::Binary(*cmp, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<db::ExprPtr> ParseAdditive() {
    PB_ASSIGN_OR_RETURN(db::ExprPtr lhs, ParseMultiplicative());
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseMultiplicative());
        lhs = db::Binary(db::BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kMinus)) {
        PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseMultiplicative());
        lhs = db::Binary(db::BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<db::ExprPtr> ParseMultiplicative() {
    PB_ASSIGN_OR_RETURN(db::ExprPtr lhs, ParseUnary());
    while (true) {
      if (Accept(TokenKind::kStar)) {
        PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseUnary());
        lhs = db::Binary(db::BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kSlash)) {
        PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseUnary());
        lhs = db::Binary(db::BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kPercent)) {
        PB_ASSIGN_OR_RETURN(db::ExprPtr rhs, ParseUnary());
        lhs = db::Binary(db::BinaryOp::kMod, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<db::ExprPtr> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      PB_ASSIGN_OR_RETURN(db::ExprPtr inner, ParseUnary());
      return db::Unary(db::UnaryOp::kNeg, std::move(inner));
    }
    return ParsePrimary();
  }

  Result<db::ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        return db::LitInt(Advance().int_value);
      case TokenKind::kDoubleLiteral:
        return db::LitDouble(Advance().double_value);
      case TokenKind::kStringLiteral:
        return db::LitString(Advance().text);
      case TokenKind::kLParen: {
        Advance();
        PB_ASSIGN_OR_RETURN(db::ExprPtr inner, ParseOr());
        PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
        return inner;
      }
      case TokenKind::kKeyword:
        if (t.text == "TRUE") {
          Advance();
          return db::LitBool(true);
        }
        if (t.text == "FALSE") {
          Advance();
          return db::LitBool(false);
        }
        if (t.text == "NULL") {
          Advance();
          return db::Lit(db::Value::Null());
        }
        return Error("unexpected keyword '" + t.text + "' in expression");
      case TokenKind::kIdent: {
        std::string name = Advance().text;
        if (Accept(TokenKind::kDot)) {
          PB_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          name += "." + col;
        }
        return db::Col(std::move(name));
      }
      default:
        return Error("unexpected token '" + t.text + "' in expression");
    }
  }

  // ----- Global (SUCH THAT) expression grammar ----------------------------

  Result<GExprPtr> ParseGOr() {
    PB_ASSIGN_OR_RETURN(GExprPtr lhs, ParseGAnd());
    while (AcceptKeyword("OR")) {
      PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGAnd());
      lhs = GBool(db::BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<GExprPtr> ParseGAnd() {
    PB_ASSIGN_OR_RETURN(GExprPtr lhs, ParseGNot());
    while (Peek().IsKeyword("AND")) {
      Advance();
      PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGNot());
      lhs = GBool(db::BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<GExprPtr> ParseGNot() {
    if (AcceptKeyword("NOT")) {
      PB_ASSIGN_OR_RETURN(GExprPtr inner, ParseGNot());
      return GNot(std::move(inner));
    }
    return ParseGComparison();
  }

  Result<GExprPtr> ParseGComparison() {
    // Parenthesized boolean sub-formulas: "(" can open either a boolean
    // group or an arithmetic group. Try boolean first by lookahead: a
    // boolean group must eventually contain a comparison; simplest reliable
    // rule — parse an arithmetic sum, and if the next token is a comparison
    // we are in the comparison case; otherwise, if the sum consumed a
    // parenthesized boolean, it would have failed. To keep the grammar
    // predictable we require parentheses around boolean sub-formulas to
    // start with NOT, or contain a full comparison; we attempt the sum
    // parse and backtrack on failure.
    size_t save = pos_;
    auto sum = ParseGSum();
    if (sum.ok()) {
      const Token& t = Peek();
      bool negated = false;
      if (t.IsKeyword("NOT") && PeekAt(1).IsKeyword("BETWEEN")) {
        Advance();
        negated = true;
      }
      if (AcceptKeyword("BETWEEN")) {
        PB_ASSIGN_OR_RETURN(GExprPtr lo, ParseGSum());
        PB_RETURN_IF_ERROR(ExpectKeyword("AND"));
        PB_ASSIGN_OR_RETURN(GExprPtr hi, ParseGSum());
        return GBetween(std::move(sum).value(), std::move(lo), std::move(hi),
                        negated);
      }
      auto cmp = AcceptComparison();
      if (cmp) {
        PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGSum());
        return GCompare(*cmp, std::move(sum).value(), std::move(rhs));
      }
      return Error("expected a comparison in global constraint near '" +
                   Peek().text + "'");
    }
    // Backtrack: maybe "(" <boolean formula> ")".
    pos_ = save;
    if (Accept(TokenKind::kLParen)) {
      PB_ASSIGN_OR_RETURN(GExprPtr inner, ParseGOr());
      PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    return sum.status();
  }

  Result<GExprPtr> ParseGSum() {
    PB_ASSIGN_OR_RETURN(GExprPtr lhs, ParseGTerm());
    while (true) {
      if (Accept(TokenKind::kPlus)) {
        PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGTerm());
        lhs = GArith(db::BinaryOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kMinus)) {
        PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGTerm());
        lhs = GArith(db::BinaryOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<GExprPtr> ParseGTerm() {
    PB_ASSIGN_OR_RETURN(GExprPtr lhs, ParseGFactor());
    while (true) {
      if (Accept(TokenKind::kStar)) {
        PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGFactor());
        lhs = GArith(db::BinaryOp::kMul, std::move(lhs), std::move(rhs));
      } else if (Accept(TokenKind::kSlash)) {
        PB_ASSIGN_OR_RETURN(GExprPtr rhs, ParseGFactor());
        lhs = GArith(db::BinaryOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<GExprPtr> ParseGFactor() {
    const Token& t = Peek();
    if (Accept(TokenKind::kMinus)) {
      PB_ASSIGN_OR_RETURN(GExprPtr inner, ParseGFactor());
      return GArith(db::BinaryOp::kMul, GLit(db::Value::Int(-1)),
                    std::move(inner));
    }
    if (t.kind == TokenKind::kIntLiteral) {
      return GLit(db::Value::Int(Advance().int_value));
    }
    if (t.kind == TokenKind::kDoubleLiteral) {
      return GLit(db::Value::Double(Advance().double_value));
    }
    if (t.kind == TokenKind::kStringLiteral) {
      return GLit(db::Value::String(Advance().text));
    }
    if (t.kind == TokenKind::kKeyword) {
      db::AggFunc func;
      if (t.text == "COUNT") func = db::AggFunc::kCount;
      else if (t.text == "SUM") func = db::AggFunc::kSum;
      else if (t.text == "AVG") func = db::AggFunc::kAvg;
      else if (t.text == "MIN") func = db::AggFunc::kMin;
      else if (t.text == "MAX") func = db::AggFunc::kMax;
      else return Error("unexpected keyword '" + t.text +
                        "' in global constraint");
      Advance();
      PB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "("));
      db::ExprPtr arg;
      if (Accept(TokenKind::kStar)) {
        if (func != db::AggFunc::kCount) {
          return Error("only COUNT may take '*'");
        }
      } else {
        PB_ASSIGN_OR_RETURN(arg, ParseAdditive());
      }
      PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return GAgg(func, std::move(arg));
    }
    if (Accept(TokenKind::kLParen)) {
      PB_ASSIGN_OR_RETURN(GExprPtr inner, ParseGSum());
      PB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, ")"));
      return inner;
    }
    return Error("unexpected token '" + t.text + "' in global constraint");
  }

  // ----- Cursor helpers ----------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t ahead) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool Accept(TokenKind kind) {
    if (Peek().kind != kind) return false;
    Advance();
    return true;
  }

  bool AcceptKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) return false;
    Advance();
    return true;
  }

  std::optional<db::BinaryOp> AcceptComparison() {
    switch (Peek().kind) {
      case TokenKind::kEq: Advance(); return db::BinaryOp::kEq;
      case TokenKind::kNe: Advance(); return db::BinaryOp::kNe;
      case TokenKind::kLt: Advance(); return db::BinaryOp::kLt;
      case TokenKind::kLe: Advance(); return db::BinaryOp::kLe;
      case TokenKind::kGt: Advance(); return db::BinaryOp::kGt;
      case TokenKind::kGe: Advance(); return db::BinaryOp::kGe;
      default: return std::nullopt;
    }
  }

  Status Expect(TokenKind kind, const char* what) {
    if (Peek().kind != kind) {
      return Status::ParseError("expected '" + std::string(what) +
                                "', found '" + Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!Peek().IsKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + ", found '" +
                                Peek().text + "' at offset " +
                                std::to_string(Peek().position));
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError("expected identifier, found '" + Peek().text +
                                "' at offset " +
                                std::to_string(Peek().position));
    }
    return Advance().text;
  }

  Result<db::Value> ExpectLiteralValue() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kIntLiteral:
        return db::Value::Int(Advance().int_value);
      case TokenKind::kDoubleLiteral:
        return db::Value::Double(Advance().double_value);
      case TokenKind::kStringLiteral:
        return db::Value::String(Advance().text);
      case TokenKind::kKeyword:
        if (t.text == "TRUE") { Advance(); return db::Value::Bool(true); }
        if (t.text == "FALSE") { Advance(); return db::Value::Bool(false); }
        if (t.text == "NULL") { Advance(); return db::Value::Null(); }
        [[fallthrough]];
      default:
        return Error("expected a literal, found '" + t.text + "'");
    }
  }

  Status Error(std::string message) const {
    return Status::ParseError(message + " (offset " +
                              std::to_string(Peek().position) + ")");
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> Parse(std::string_view text) {
  PB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.ParseQuery();
}

Result<db::ExprPtr> ParseScalarExpr(std::string_view text) {
  PB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  PB_ASSIGN_OR_RETURN(db::ExprPtr e, parser.ParseOr());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after expression");
  }
  return e;
}

Result<GExprPtr> ParseGlobalExpr(std::string_view text) {
  PB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  PB_ASSIGN_OR_RETURN(GExprPtr e, parser.ParseGOr());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after global constraint");
  }
  return e;
}

Result<GExprPtr> ParseAggregateExpr(std::string_view text) {
  PB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  PB_ASSIGN_OR_RETURN(GExprPtr e, parser.ParseGSum());
  if (!parser.AtEnd()) {
    return Status::ParseError("trailing input after aggregate expression");
  }
  return e;
}

}  // namespace pb::paql
