#include "paql/lexer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace pb::paql {

bool IsPaqlKeyword(const std::string& upper_word) {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "PACKAGE", "AS", "FROM", "REPEAT", "WHERE", "SUCH", "THAT",
      "AND", "OR", "NOT", "BETWEEN", "IN", "LIKE", "IS", "NULL",
      "COUNT", "SUM", "AVG", "MIN", "MAX",
      "MAXIMIZE", "MINIMIZE", "LIMIT", "TRUE", "FALSE",
  };
  return kKeywords.count(upper_word) > 0;
}

Result<std::vector<Token>> Lex(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto make = [&](TokenKind kind, size_t pos) {
    Token t;
    t.kind = kind;
    t.position = pos;
    return t;
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < input.size() && input[i + 1] == '-') {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    // Identifier / keyword.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[j])) ||
              input[j] == '_')) {
        ++j;
      }
      std::string word(input.substr(i, j - i));
      std::string upper = AsciiToUpper(word);
      Token t = make(IsPaqlKeyword(upper) ? TokenKind::kKeyword
                                          : TokenKind::kIdent,
                     start);
      t.text = t.kind == TokenKind::kKeyword ? upper : word;
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Number: integer or double (with optional fraction/exponent).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < input.size() &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[j]))) {
        ++j;
      }
      if (j < input.size() && input[j] == '.') {
        is_double = true;
        ++j;
        while (j < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[j]))) {
          ++j;
        }
      }
      if (j < input.size() && (input[j] == 'e' || input[j] == 'E')) {
        size_t k = j + 1;
        if (k < input.size() && (input[k] == '+' || input[k] == '-')) ++k;
        if (k < input.size() &&
            std::isdigit(static_cast<unsigned char>(input[k]))) {
          is_double = true;
          j = k;
          while (j < input.size() &&
                 std::isdigit(static_cast<unsigned char>(input[j]))) {
            ++j;
          }
        }
      }
      // Checked conversion (same discipline as csv.cc's ParseDouble /
      // ParseInt): an unconsumed suffix or out-of-range value is a lex
      // error rather than a silent inf / LLONG_MAX. Underflow (ERANGE
      // with a tiny result, e.g. 1e-400) is accepted as the nearest
      // representable value; only overflow to infinity is rejected.
      std::string num(input.substr(i, j - i));
      char* end = nullptr;
      if (is_double) {
        errno = 0;
        double v = std::strtod(num.c_str(), &end);
        bool overflow = errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL);
        if (overflow || end != num.c_str() + num.size()) {
          return Status::ParseError("numeric literal '" + num +
                                    "' out of range at offset " +
                                    std::to_string(start));
        }
        Token t = make(TokenKind::kDoubleLiteral, start);
        t.double_value = v;
        t.text = num;
        tokens.push_back(std::move(t));
      } else {
        errno = 0;
        long long v = std::strtoll(num.c_str(), &end, 10);
        if (errno != 0 || end != num.c_str() + num.size()) {
          return Status::ParseError("integer literal '" + num +
                                    "' out of range at offset " +
                                    std::to_string(start));
        }
        Token t = make(TokenKind::kIntLiteral, start);
        t.int_value = v;
        t.text = num;
        tokens.push_back(std::move(t));
      }
      i = j;
      continue;
    }
    // String literal with '' escape. Also accept typographic quotes that
    // papers love to paste ("‘free’").
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < input.size()) {
        if (input[j] == '\'') {
          if (j + 1 < input.size() && input[j + 1] == '\'') {
            text += '\'';
            j += 2;
          } else {
            closed = true;
            ++j;
            break;
          }
        } else {
          text += input[j++];
        }
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t = make(TokenKind::kStringLiteral, start);
      t.text = std::move(text);
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two('<', '=')) {
      tokens.push_back(make(TokenKind::kLe, start));
      i += 2;
      continue;
    }
    if (two('>', '=')) {
      tokens.push_back(make(TokenKind::kGe, start));
      i += 2;
      continue;
    }
    if (two('<', '>')) {
      tokens.push_back(make(TokenKind::kNe, start));
      i += 2;
      continue;
    }
    if (two('!', '=')) {
      tokens.push_back(make(TokenKind::kNe, start));
      i += 2;
      continue;
    }
    switch (c) {
      case '(': tokens.push_back(make(TokenKind::kLParen, start)); break;
      case ')': tokens.push_back(make(TokenKind::kRParen, start)); break;
      case ',': tokens.push_back(make(TokenKind::kComma, start)); break;
      case '.': tokens.push_back(make(TokenKind::kDot, start)); break;
      case '*': tokens.push_back(make(TokenKind::kStar, start)); break;
      case '+': tokens.push_back(make(TokenKind::kPlus, start)); break;
      case '-': tokens.push_back(make(TokenKind::kMinus, start)); break;
      case '/': tokens.push_back(make(TokenKind::kSlash, start)); break;
      case '%': tokens.push_back(make(TokenKind::kPercent, start)); break;
      case '=': tokens.push_back(make(TokenKind::kEq, start)); break;
      case '<': tokens.push_back(make(TokenKind::kLt, start)); break;
      case '>': tokens.push_back(make(TokenKind::kGt, start)); break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(start));
    }
    ++i;
  }
  tokens.push_back(Token{TokenKind::kEnd, "", 0, 0.0, input.size()});
  return tokens;
}

}  // namespace pb::paql
