// PaQL abstract syntax.
//
// A PaQL query (paper §2):
//
//   SELECT PACKAGE(R) AS P
//   FROM <relation> R [REPEAT k]
//   WHERE <base constraints -- ordinary tuple predicate>
//   SUCH THAT <global constraints -- boolean formula over aggregates>
//   [MAXIMIZE | MINIMIZE <aggregate expression>]
//   [LIMIT <number of packages>]
//
// Base constraints reuse the relational expression trees (db::Expr); global
// constraints get their own tree type (GExpr) whose leaves are aggregate
// calls over package columns.
//
// Multiplicity semantics implemented here (documented deviation: the demo
// paper leaves the default open-ended, which admits infinitely many
// packages): without REPEAT each base tuple may appear at most once; REPEAT
// k allows up to k occurrences of the same tuple.

#ifndef PB_PAQL_AST_H_
#define PB_PAQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "db/expr.h"
#include "db/ops.h"

namespace pb::paql {

struct GExpr;
using GExprPtr = std::shared_ptr<GExpr>;

/// An aggregate call over the package: COUNT(*) or FUNC(<scalar expr>).
struct AggCall {
  db::AggFunc func = db::AggFunc::kCount;
  db::ExprPtr arg;  ///< null for COUNT(*)

  /// "SUM(P.calories)" — `qualifier` prefixes bare column refs when not
  /// already qualified (cosmetic only).
  std::string ToString() const;

  /// Canonical identity used to merge equal aggregates ("SUM|calories+fat").
  std::string CanonicalKey() const;
};

enum class GExprKind {
  kLiteral,  ///< numeric/string literal
  kAgg,      ///< aggregate leaf
  kArith,    ///< +, -, *, / over sub-expressions
  kCompare,  ///< =, <>, <, <=, >, >=
  kBetween,  ///< lo <= e <= hi (negatable)
  kBool,     ///< AND / OR
  kNot,      ///< NOT
};

/// One node of a global-constraint expression.
struct GExpr {
  GExprKind kind = GExprKind::kLiteral;
  db::Value literal;                   // kLiteral
  AggCall agg;                         // kAgg
  db::BinaryOp op = db::BinaryOp::kAdd;  // kArith / kCompare / kBool
  bool negated = false;                // kBetween
  std::vector<GExprPtr> children;

  std::string ToString() const;
  GExprPtr Clone() const;
};

// GExpr factories.
GExprPtr GLit(db::Value v);
GExprPtr GAgg(db::AggFunc func, db::ExprPtr arg);
GExprPtr GArith(db::BinaryOp op, GExprPtr l, GExprPtr r);
GExprPtr GCompare(db::BinaryOp op, GExprPtr l, GExprPtr r);
GExprPtr GBetween(GExprPtr e, GExprPtr lo, GExprPtr hi, bool negated = false);
GExprPtr GBool(db::BinaryOp op, GExprPtr l, GExprPtr r);
GExprPtr GNot(GExprPtr e);
/// AND-combines, tolerating nulls.
GExprPtr GAndMaybe(GExprPtr a, GExprPtr b);

enum class ObjectiveSense { kMaximize, kMinimize };

struct Objective {
  ObjectiveSense sense = ObjectiveSense::kMaximize;
  GExprPtr expr;  ///< aggregate expression to optimize

  std::string ToString() const;
};

/// A parsed PaQL query.
struct Query {
  std::string package_alias;    ///< "P" (defaults to relation alias)
  std::string relation;         ///< base table name
  std::string relation_alias;   ///< "R" (defaults to relation name)
  std::optional<int64_t> repeat;  ///< REPEAT k: max occurrences per tuple
  db::ExprPtr where;            ///< base constraints (may be null)
  GExprPtr such_that;           ///< global constraints (may be null)
  std::optional<Objective> objective;
  std::optional<int64_t> limit; ///< LIMIT: how many packages to produce

  /// Canonical PaQL text (round-trips through the parser).
  std::string ToPaql() const;
};

/// English rendering of a global constraint / objective, in the style of the
/// interface's "natural language descriptions" (paper Figure 1).
std::string DescribeGlobalConstraint(const GExpr& e);
std::string DescribeObjective(const Objective& o);

}  // namespace pb::paql

#endif  // PB_PAQL_AST_H_
