#include "paql/ast.h"

#include "common/logging.h"
#include "common/strings.h"

namespace pb::paql {

std::string AggCall::ToString() const {
  std::string out = db::AggFuncToString(func);
  out += "(";
  out += arg ? arg->ToString() : "*";
  out += ")";
  return out;
}

std::string AggCall::CanonicalKey() const {
  std::string out = db::AggFuncToString(func);
  out += "|";
  if (arg) out += AsciiToLower(arg->ToString());
  return out;
}

std::string GExpr::ToString() const {
  switch (kind) {
    case GExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case GExprKind::kAgg:
      return agg.ToString();
    case GExprKind::kArith:
    case GExprKind::kCompare: {
      std::string l = children[0]->ToString();
      std::string r = children[1]->ToString();
      return l + " " + db::BinaryOpToString(op) + " " + r;
    }
    case GExprKind::kBetween:
      return children[0]->ToString() +
             (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case GExprKind::kBool:
      return "(" + children[0]->ToString() + " " + db::BinaryOpToString(op) +
             " " + children[1]->ToString() + ")";
    case GExprKind::kNot:
      return "NOT (" + children[0]->ToString() + ")";
  }
  return "?";
}

GExprPtr GExpr::Clone() const {
  auto out = std::make_shared<GExpr>(*this);
  out->children.clear();
  for (const auto& c : children) out->children.push_back(c->Clone());
  if (agg.arg) out->agg.arg = agg.arg->Clone();
  return out;
}

GExprPtr GLit(db::Value v) {
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

GExprPtr GAgg(db::AggFunc func, db::ExprPtr arg) {
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kAgg;
  e->agg.func = func;
  e->agg.arg = std::move(arg);
  return e;
}

GExprPtr GArith(db::BinaryOp op, GExprPtr l, GExprPtr r) {
  PB_DCHECK(db::IsArithmeticOp(op));
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kArith;
  e->op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

GExprPtr GCompare(db::BinaryOp op, GExprPtr l, GExprPtr r) {
  PB_DCHECK(db::IsComparisonOp(op));
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kCompare;
  e->op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

GExprPtr GBetween(GExprPtr x, GExprPtr lo, GExprPtr hi, bool negated) {
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kBetween;
  e->negated = negated;
  e->children = {std::move(x), std::move(lo), std::move(hi)};
  return e;
}

GExprPtr GBool(db::BinaryOp op, GExprPtr l, GExprPtr r) {
  PB_DCHECK(db::IsLogicalOp(op));
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kBool;
  e->op = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

GExprPtr GNot(GExprPtr x) {
  auto e = std::make_shared<GExpr>();
  e->kind = GExprKind::kNot;
  e->children = {std::move(x)};
  return e;
}

GExprPtr GAndMaybe(GExprPtr a, GExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return GBool(db::BinaryOp::kAnd, std::move(a), std::move(b));
}

std::string Objective::ToString() const {
  std::string out =
      sense == ObjectiveSense::kMaximize ? "MAXIMIZE " : "MINIMIZE ";
  out += expr ? expr->ToString() : "?";
  return out;
}

std::string Query::ToPaql() const {
  std::string out = "SELECT PACKAGE(" + relation_alias + ")";
  if (!package_alias.empty() && package_alias != relation_alias) {
    out += " AS " + package_alias;
  }
  out += "\nFROM " + relation;
  if (relation_alias != relation) out += " " + relation_alias;
  if (repeat) out += " REPEAT " + std::to_string(*repeat);
  if (where) out += "\nWHERE " + where->ToString();
  if (such_that) out += "\nSUCH THAT " + such_that->ToString();
  if (objective) out += "\n" + objective->ToString();
  if (limit) out += "\nLIMIT " + std::to_string(*limit);
  return out;
}

namespace {

std::string DescribeAgg(const AggCall& agg) {
  switch (agg.func) {
    case db::AggFunc::kCount:
      return "the number of tuples";
    case db::AggFunc::kSum:
      return "the total " + (agg.arg ? agg.arg->ToString() : "?");
    case db::AggFunc::kAvg:
      return "the average " + (agg.arg ? agg.arg->ToString() : "?");
    case db::AggFunc::kMin:
      return "the smallest " + (agg.arg ? agg.arg->ToString() : "?");
    case db::AggFunc::kMax:
      return "the largest " + (agg.arg ? agg.arg->ToString() : "?");
  }
  return "?";
}

std::string DescribeSide(const GExpr& e) {
  if (e.kind == GExprKind::kAgg) return DescribeAgg(e.agg);
  if (e.kind == GExprKind::kLiteral) return e.literal.ToString();
  return e.ToString();
}

std::string CompareWord(db::BinaryOp op) {
  switch (op) {
    case db::BinaryOp::kEq: return "must be exactly";
    case db::BinaryOp::kNe: return "must differ from";
    case db::BinaryOp::kLt: return "must be below";
    case db::BinaryOp::kLe: return "must be at most";
    case db::BinaryOp::kGt: return "must be above";
    case db::BinaryOp::kGe: return "must be at least";
    default: return "?";
  }
}

}  // namespace

std::string DescribeGlobalConstraint(const GExpr& e) {
  switch (e.kind) {
    case GExprKind::kCompare:
      return DescribeSide(*e.children[0]) + " " + CompareWord(e.op) + " " +
             DescribeSide(*e.children[1]);
    case GExprKind::kBetween:
      return DescribeSide(*e.children[0]) +
             (e.negated ? " must not be between " : " must be between ") +
             DescribeSide(*e.children[1]) + " and " +
             DescribeSide(*e.children[2]);
    case GExprKind::kBool: {
      const char* word = e.op == db::BinaryOp::kAnd ? " and " : " or ";
      return DescribeGlobalConstraint(*e.children[0]) + word +
             DescribeGlobalConstraint(*e.children[1]);
    }
    case GExprKind::kNot:
      return "it is not the case that " +
             DescribeGlobalConstraint(*e.children[0]);
    default:
      return e.ToString();
  }
}

std::string DescribeObjective(const Objective& o) {
  std::string verb =
      o.sense == ObjectiveSense::kMaximize ? "maximize " : "minimize ";
  return verb + (o.expr ? DescribeSide(*o.expr) : "?");
}

}  // namespace pb::paql
