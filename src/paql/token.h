// Token kinds for the PaQL lexer.

#ifndef PB_PAQL_TOKEN_H_
#define PB_PAQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace pb::paql {

enum class TokenKind {
  kEnd,
  kIdent,
  kKeyword,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  // Punctuation / operators.
  kLParen, kRParen, kComma, kDot, kStar,
  kPlus, kMinus, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

/// One lexed token. `text` is the raw (for idents) or decoded (for strings)
/// spelling; keywords are upper-cased into `text`.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  size_t position = 0;  ///< byte offset in the query text, for diagnostics

  bool IsKeyword(const char* kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

}  // namespace pb::paql

#endif  // PB_PAQL_TOKEN_H_
