// PaQL lexer: turns query text into a token vector.

#ifndef PB_PAQL_LEXER_H_
#define PB_PAQL_LEXER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "paql/token.h"

namespace pb::paql {

/// True if `word` (upper-cased) is a reserved PaQL keyword.
bool IsPaqlKeyword(const std::string& upper_word);

/// Lexes the full input; the result always ends with a kEnd token.
/// Comments ("-- ..." to end of line) are skipped.
Result<std::vector<Token>> Lex(std::string_view input);

}  // namespace pb::paql

#endif  // PB_PAQL_LEXER_H_
