#include "paql/analyzer.h"

#include <cmath>
#include <map>

#include "common/strings.h"
#include "paql/parser.h"

namespace pb::paql {

namespace {

/// Strict-inequality slack: '<' and '>' against continuous data are encoded
/// as non-strict bounds nudged by this relative epsilon (documented in
/// DESIGN.md; exact strictness is preserved by the search-based strategies,
/// which evaluate the original GExpr).
constexpr double kStrictEps = 1e-9;

/// A linear combination of canonical aggregates plus a constant, or
/// "not linear" with a reason.
struct LinearForm {
  double constant = 0.0;
  // agg_index -> coeff, over AnalyzedQuery::aggs (kSum/kCount entries) and
  // a parallel "avg" map for AVG terms awaiting the multiply-by-COUNT
  // rewrite.
  std::map<size_t, double> coeffs;
  std::map<size_t, double> avg_coeffs;  // key: index into `avg_args`
  bool linear = true;
  std::string reason;

  bool IsConstant() const {
    return linear && coeffs.empty() && avg_coeffs.empty();
  }
  bool HasAvg() const { return !avg_coeffs.empty(); }

  static LinearForm NotLinear(std::string why) {
    LinearForm f;
    f.linear = false;
    f.reason = std::move(why);
    return f;
  }
};

class Analyzer {
 public:
  Analyzer(const Query& query, const db::Catalog& catalog)
      : query_(query), catalog_(catalog) {}

  Result<AnalyzedQuery> Run() {
    AnalyzedQuery out;
    out.query = query_;
    PB_ASSIGN_OR_RETURN(out.table, catalog_.Get(query_.relation));
    out.max_multiplicity = query_.repeat.value_or(1);

    // Bind the base predicate (type errors surface here, once).
    if (out.query.where) {
      PB_RETURN_IF_ERROR(out.query.where->Bind(out.table->schema()));
    }

    aq_ = &out;
    if (query_.such_that) {
      AnalyzeSuchThat(*query_.such_that, out);
      // Bind errors inside aggregate args are hard errors even when the
      // constraint shape is not translatable.
      PB_RETURN_IF_ERROR(bind_error_);
    }
    if (query_.objective) {
      out.has_objective = true;
      out.maximize = query_.objective->sense == ObjectiveSense::kMaximize;
      AnalyzeObjective(*query_.objective, out);
      PB_RETURN_IF_ERROR(bind_error_);
    }
    return out;
  }

 private:
  /// Canonicalizes an aggregate (binding its argument) and returns its index
  /// in aq_->aggs. COUNT/SUM only.
  size_t InternAgg(db::AggFunc func, const db::ExprPtr& arg) {
    AggCall call;
    call.func = func;
    call.arg = arg ? arg->Clone() : nullptr;
    if (call.arg) {
      Status s = call.arg->Bind(aq_->table->schema());
      if (!s.ok() && bind_error_.ok()) bind_error_ = s;
    }
    std::string key = call.CanonicalKey();
    auto it = agg_index_.find(key);
    if (it != agg_index_.end()) return it->second;
    size_t idx = aq_->aggs.size();
    aq_->aggs.push_back(std::move(call));
    agg_index_[key] = idx;
    return idx;
  }

  size_t InternAvgArg(const db::ExprPtr& arg) {
    db::ExprPtr bound = arg->Clone();
    Status s = bound->Bind(aq_->table->schema());
    if (!s.ok() && bind_error_.ok()) bind_error_ = s;
    std::string key = AsciiToLower(bound->ToString());
    auto it = avg_index_.find(key);
    if (it != avg_index_.end()) return it->second;
    size_t idx = avg_args_.size();
    avg_args_.push_back(std::move(bound));
    avg_index_[key] = idx;
    return idx;
  }

  /// Builds the linear form of an arithmetic global expression.
  LinearForm BuildLinearForm(const GExpr& e) {
    switch (e.kind) {
      case GExprKind::kLiteral: {
        LinearForm f;
        auto d = e.literal.ToDouble();
        if (!d.ok()) {
          return LinearForm::NotLinear("non-numeric literal '" +
                                       e.literal.ToString() + "'");
        }
        f.constant = *d;
        return f;
      }
      case GExprKind::kAgg: {
        LinearForm f;
        switch (e.agg.func) {
          case db::AggFunc::kCount:
          case db::AggFunc::kSum:
            f.coeffs[InternAgg(e.agg.func, e.agg.arg)] = 1.0;
            return f;
          case db::AggFunc::kAvg:
            f.avg_coeffs[InternAvgArg(e.agg.arg)] = 1.0;
            return f;
          case db::AggFunc::kMin:
          case db::AggFunc::kMax:
            // Handled at the comparison level (extreme constraints); inside
            // arithmetic they are non-linear.
            return LinearForm::NotLinear(
                std::string(db::AggFuncToString(e.agg.func)) +
                " inside arithmetic is not linear");
        }
        return LinearForm::NotLinear("unknown aggregate");
      }
      case GExprKind::kArith: {
        LinearForm l = BuildLinearForm(*e.children[0]);
        if (!l.linear) return l;
        LinearForm r = BuildLinearForm(*e.children[1]);
        if (!r.linear) return r;
        switch (e.op) {
          case db::BinaryOp::kAdd:
          case db::BinaryOp::kSub: {
            double sign = e.op == db::BinaryOp::kAdd ? 1.0 : -1.0;
            l.constant += sign * r.constant;
            for (auto& [k, v] : r.coeffs) l.coeffs[k] += sign * v;
            for (auto& [k, v] : r.avg_coeffs) l.avg_coeffs[k] += sign * v;
            return l;
          }
          case db::BinaryOp::kMul: {
            const LinearForm* scalar = l.IsConstant() ? &l : nullptr;
            const LinearForm* other = scalar ? &r : &l;
            if (!scalar && r.IsConstant()) scalar = &r;
            if (!scalar) {
              return LinearForm::NotLinear(
                  "product of two aggregate expressions is not linear");
            }
            LinearForm out = *other;
            double c = scalar->constant;
            out.constant *= c;
            for (auto& [k, v] : out.coeffs) v *= c;
            for (auto& [k, v] : out.avg_coeffs) v *= c;
            return out;
          }
          case db::BinaryOp::kDiv: {
            if (!r.IsConstant()) {
              return LinearForm::NotLinear(
                  "division by an aggregate expression is not linear");
            }
            if (r.constant == 0.0) {
              return LinearForm::NotLinear("division by zero constant");
            }
            LinearForm out = l;
            out.constant /= r.constant;
            for (auto& [k, v] : out.coeffs) v /= r.constant;
            for (auto& [k, v] : out.avg_coeffs) v /= r.constant;
            return out;
          }
          default:
            return LinearForm::NotLinear("unsupported arithmetic operator");
        }
      }
      default:
        return LinearForm::NotLinear(
            "boolean sub-expression inside arithmetic");
    }
  }

  /// Tries to capture a single MIN/MAX comparison: FUNC(e) op constant or
  /// constant op FUNC(e).
  bool TryExtreme(const GExpr& cmp, AnalyzedQuery& out) {
    const GExpr* agg_side = nullptr;
    const GExpr* const_side = nullptr;
    db::BinaryOp op = cmp.op;
    if (cmp.children[0]->kind == GExprKind::kAgg) {
      agg_side = cmp.children[0].get();
      const_side = cmp.children[1].get();
    } else if (cmp.children[1]->kind == GExprKind::kAgg) {
      agg_side = cmp.children[1].get();
      const_side = cmp.children[0].get();
      // Flip the comparison: c op AGG  ==>  AGG op' c.
      switch (op) {
        case db::BinaryOp::kLt: op = db::BinaryOp::kGt; break;
        case db::BinaryOp::kLe: op = db::BinaryOp::kGe; break;
        case db::BinaryOp::kGt: op = db::BinaryOp::kLt; break;
        case db::BinaryOp::kGe: op = db::BinaryOp::kLe; break;
        default: break;
      }
    } else {
      return false;
    }
    if (agg_side->agg.func != db::AggFunc::kMin &&
        agg_side->agg.func != db::AggFunc::kMax) {
      return false;
    }
    if (const_side->kind != GExprKind::kLiteral) return false;
    auto d = const_side->literal.ToDouble();
    if (!d.ok()) return false;
    if (op == db::BinaryOp::kNe) return false;  // disjunctive: not capturable

    ExtremeConstraint ec;
    ec.func = agg_side->agg.func;
    ec.arg = agg_side->agg.arg ? agg_side->agg.arg->Clone() : nullptr;
    if (!ec.arg) return false;  // MIN(*) is rejected by the parser anyway
    Status s = ec.arg->Bind(aq_->table->schema());
    if (!s.ok()) {
      if (bind_error_.ok()) bind_error_ = s;
      return false;
    }
    ec.op = op;
    ec.bound = *d;
    ec.source_text = cmp.ToString();
    out.extreme_constraints.push_back(std::move(ec));
    out.requires_nonempty = true;
    return true;
  }

  /// Converts "lo <= form <= hi" into a LinearConstraint, applying the
  /// AVG rewrite when needed. Returns false (with reason) if not linear.
  bool EmitRange(LinearForm form, double lo, double hi,
                 const std::string& source, AnalyzedQuery& out,
                 std::string* why) {
    if (!form.linear) {
      *why = form.reason;
      return false;
    }
    lo -= form.constant;
    hi -= form.constant;
    form.constant = 0;
    if (form.HasAvg()) {
      // Rewrite requires the non-AVG part to be empty: AVG terms only.
      if (!form.coeffs.empty()) {
        *why = "mixing AVG with SUM/COUNT in one constraint is not linear";
        return false;
      }
      // sum_a c_a * AVG(e_a) in [lo, hi]
      //   ==>  sum_a c_a * SUM(e_a) - lo*COUNT(*) >= 0   (and hi side)
      // Both rows share the SUM terms; emit as two rows referencing
      // COUNT(*) with coefficient -bound.
      size_t count_idx = InternAgg(db::AggFunc::kCount, nullptr);
      auto emit_side = [&](double bound, bool is_lower) {
        if (!std::isfinite(bound)) return;
        LinearConstraint lc;
        for (auto& [a, c] : form.avg_coeffs) {
          size_t sum_idx = InternAgg(db::AggFunc::kSum, avg_args_[a]);
          lc.terms.push_back({sum_idx, c});
        }
        lc.terms.push_back({count_idx, -bound});
        lc.lo = is_lower ? 0.0 : -kInfDouble();
        lc.hi = is_lower ? kInfDouble() : 0.0;
        lc.source_text = source;
        out.linear_constraints.push_back(std::move(lc));
      };
      emit_side(lo, /*is_lower=*/true);
      emit_side(hi, /*is_lower=*/false);
      out.requires_nonempty = true;
      return true;
    }
    LinearConstraint lc;
    for (auto& [k, c] : form.coeffs) {
      if (c != 0.0) lc.terms.push_back({k, c});
    }
    lc.lo = lo;
    lc.hi = hi;
    lc.source_text = source;
    out.linear_constraints.push_back(std::move(lc));
    return true;
  }

  static double kInfDouble() {
    return std::numeric_limits<double>::infinity();
  }

  /// Recursively decomposes the SUCH THAT tree. Top-level ANDs split into
  /// conjuncts; anything else must be a translatable comparison/BETWEEN or
  /// the query is flagged not-ILP-translatable.
  void AnalyzeSuchThat(const GExpr& e, AnalyzedQuery& out) {
    switch (e.kind) {
      case GExprKind::kBool:
        if (e.op == db::BinaryOp::kAnd) {
          AnalyzeSuchThat(*e.children[0], out);
          AnalyzeSuchThat(*e.children[1], out);
          return;
        }
        MarkNotTranslatable(out, "OR in global constraints is disjunctive");
        return;
      case GExprKind::kNot:
        MarkNotTranslatable(out, "NOT in global constraints is disjunctive");
        return;
      case GExprKind::kCompare: {
        if (TryExtreme(e, out)) return;
        LinearForm l = BuildLinearForm(*e.children[0]);
        LinearForm r = BuildLinearForm(*e.children[1]);
        if (!l.linear || !r.linear) {
          MarkNotTranslatable(out, !l.linear ? l.reason : r.reason);
          return;
        }
        // Move everything left: (l - r) op 0.
        LinearForm diff = l;
        diff.constant -= r.constant;
        for (auto& [k, v] : r.coeffs) diff.coeffs[k] -= v;
        for (auto& [k, v] : r.avg_coeffs) diff.avg_coeffs[k] -= v;
        double scale = 1.0;
        for (auto& [k, v] : diff.coeffs) {
          scale = std::max(scale, std::abs(v));
        }
        double eps = kStrictEps * scale + kStrictEps;
        std::string why;
        bool ok = true;
        switch (e.op) {
          case db::BinaryOp::kLe:
            ok = EmitRange(diff, -kInfDouble(), 0.0, e.ToString(), out, &why);
            break;
          case db::BinaryOp::kLt:
            ok = EmitRange(diff, -kInfDouble(), -eps, e.ToString(), out, &why);
            break;
          case db::BinaryOp::kGe:
            ok = EmitRange(diff, 0.0, kInfDouble(), e.ToString(), out, &why);
            break;
          case db::BinaryOp::kGt:
            ok = EmitRange(diff, eps, kInfDouble(), e.ToString(), out, &why);
            break;
          case db::BinaryOp::kEq:
            ok = EmitRange(diff, 0.0, 0.0, e.ToString(), out, &why);
            break;
          case db::BinaryOp::kNe:
            ok = false;
            why = "'<>' is disjunctive";
            break;
          default:
            ok = false;
            why = "unsupported comparison";
        }
        if (!ok) MarkNotTranslatable(out, why);
        return;
      }
      case GExprKind::kBetween: {
        if (e.negated) {
          MarkNotTranslatable(out, "NOT BETWEEN is disjunctive");
          return;
        }
        LinearForm mid = BuildLinearForm(*e.children[0]);
        LinearForm lo = BuildLinearForm(*e.children[1]);
        LinearForm hi = BuildLinearForm(*e.children[2]);
        if (!mid.linear || !lo.linear || !hi.linear || !lo.IsConstant() ||
            !hi.IsConstant()) {
          MarkNotTranslatable(out,
                              !mid.linear ? mid.reason
                                          : "BETWEEN bounds must be constants");
          return;
        }
        std::string why;
        if (!EmitRange(mid, lo.constant, hi.constant, e.ToString(), out,
                       &why)) {
          MarkNotTranslatable(out, why);
        }
        return;
      }
      default:
        MarkNotTranslatable(out, "global constraint must be a comparison");
    }
  }

  void AnalyzeObjective(const Objective& obj, AnalyzedQuery& out) {
    LinearForm f = BuildLinearForm(*obj.expr);
    if (!f.linear || f.HasAvg()) {
      out.objective_linear = false;
      if (out.not_translatable_reason.empty()) {
        out.not_translatable_reason =
            f.linear ? "AVG objectives are fractional (not linear)"
                     : f.reason;
      }
      return;
    }
    for (auto& [k, c] : f.coeffs) {
      if (c != 0.0) out.objective_terms.push_back({k, c});
    }
    // A constant objective is trivially linear (and pointless but legal).
  }

  void MarkNotTranslatable(AnalyzedQuery& out, std::string why) {
    out.ilp_translatable = false;
    if (out.not_translatable_reason.empty()) {
      out.not_translatable_reason = std::move(why);
    }
  }

  const Query& query_;
  const db::Catalog& catalog_;
  AnalyzedQuery* aq_ = nullptr;
  std::map<std::string, size_t> agg_index_;
  std::map<std::string, size_t> avg_index_;
  std::vector<db::ExprPtr> avg_args_;
  Status bind_error_;
};

}  // namespace

int AnalyzedQuery::FindCountStar() const {
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].func == db::AggFunc::kCount && !aggs[i].arg) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<AnalyzedQuery> Analyze(const Query& query, const db::Catalog& catalog) {
  Analyzer analyzer(query, catalog);
  return analyzer.Run();
}

Result<AnalyzedQuery> ParseAndAnalyze(std::string_view text,
                                      const db::Catalog& catalog) {
  PB_ASSIGN_OR_RETURN(Query q, Parse(text));
  return Analyze(q, catalog);
}

}  // namespace pb::paql
