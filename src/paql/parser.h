// PaQL parser: recursive descent over the lexer's token stream.

#ifndef PB_PAQL_PARSER_H_
#define PB_PAQL_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "paql/ast.h"

namespace pb::paql {

/// Parses one PaQL query. Errors carry the offending token and byte offset.
Result<Query> Parse(std::string_view text);

/// Parses a standalone scalar predicate/expression (the WHERE sub-language);
/// used by the interactive layer to accept user-typed base constraints.
Result<db::ExprPtr> ParseScalarExpr(std::string_view text);

/// Parses a standalone global-constraint expression (the SUCH THAT
/// sub-language); used by the interactive layer for user-typed global
/// constraints.
Result<GExprPtr> ParseGlobalExpr(std::string_view text);

/// Parses a standalone aggregate arithmetic expression (the MAXIMIZE /
/// MINIMIZE sub-language, e.g. "SUM(P.protein) - 2 * SUM(P.fat)").
Result<GExprPtr> ParseAggregateExpr(std::string_view text);

}  // namespace pb::paql

#endif  // PB_PAQL_PARSER_H_
