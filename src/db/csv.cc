#include "db/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pb::db {

namespace {

/// Splits one CSV line honoring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Result<Table> ReadCsv(std::istream& in, const std::string& table_name,
                      const CsvOptions& options) {
  std::vector<std::vector<std::string>> raw;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() && raw.empty()) continue;  // skip leading blank lines
    raw.push_back(SplitCsvLine(line, options.separator));
  }
  if (raw.empty()) {
    return Status::ParseError("empty CSV input for table '" + table_name + "'");
  }

  std::vector<std::string> names;
  size_t data_start = 0;
  if (options.has_header) {
    for (const auto& h : raw[0]) {
      names.emplace_back(StripAsciiWhitespace(h));
    }
    data_start = 1;
  } else {
    for (size_t i = 0; i < raw[0].size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
  }
  size_t ncols = names.size();
  for (size_t r = data_start; r < raw.size(); ++r) {
    if (raw[r].size() != ncols) {
      return Status::ParseError(
          "CSV row " + std::to_string(r + 1) + " has " +
          std::to_string(raw[r].size()) + " fields, expected " +
          std::to_string(ncols));
    }
  }

  // Infer a type per column: INT if all non-empty cells parse as ints,
  // else DOUBLE if all parse as numbers, else STRING.
  std::vector<ValueType> types(ncols, ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      bool all_int = true, all_num = true, any = false;
      for (size_t r = data_start; r < raw.size(); ++r) {
        const std::string& cell = raw[r][c];
        if (cell.empty()) continue;
        any = true;
        int64_t iv;
        double dv;
        if (!ParseInt(cell, &iv)) all_int = false;
        if (!ParseDouble(cell, &dv)) {
          all_num = false;
          break;
        }
      }
      if (!any) {
        types[c] = ValueType::kString;
      } else if (all_int) {
        types[c] = ValueType::kInt;
      } else if (all_num) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  Schema schema;
  for (size_t c = 0; c < ncols; ++c) {
    PB_RETURN_IF_ERROR(schema.AddColumn({names[c], types[c]}));
  }
  Table table(table_name, std::move(schema));
  for (size_t r = data_start; r < raw.size(); ++r) {
    Tuple row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = raw[r][c];
      if (cell.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          int64_t v = 0;
          ParseInt(cell, &v);
          row.push_back(Value::Int(v));
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParseDouble(cell, &v);
          row.push_back(Value::Double(v));
          break;
        }
        default:
          row.push_back(Value::String(cell));
      }
    }
    PB_RETURN_IF_ERROR(table.Append(std::move(row)));
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  return ReadCsv(in, table_name, options);
}

Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options) {
  auto quote = [&](const std::string& s) {
    bool needs = s.find(options.separator) != std::string::npos ||
                 s.find('"') != std::string::npos ||
                 s.find('\n') != std::string::npos;
    if (!needs) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += "\"";
    return q;
  };
  if (options.has_header) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) out << options.separator;
      out << quote(table.schema().column(c).name);
    }
    out << "\n";
  }
  for (const Tuple& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.separator;
      if (!row[c].is_null()) out << quote(row[c].ToString());
    }
    out << "\n";
  }
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return WriteCsv(table, out, options);
}

}  // namespace pb::db
