#include "db/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace pb::db {

namespace {

/// Splits one CSV line honoring double-quoted fields with "" escapes.
std::vector<std::string> SplitCsvLine(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == sep) {
      fields.push_back(std::move(current));
      current.clear();
    } else {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

/// Reads the next line, dropping a trailing '\r'; false at end of stream.
bool NextLine(std::istream& in, std::string* line) {
  if (!std::getline(in, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

}  // namespace

Result<Table> ReadCsv(std::istream& in, const std::string& table_name,
                      const CsvOptions& options) {
  // Two streaming passes over the input — infer (names, arity, types),
  // rewind, append — so ingest memory is one line plus the table itself,
  // never a parsed copy of the whole file. Non-seekable streams (pipes)
  // are slurped into a string once so the second pass has a rewind target.
  std::istringstream buffered;
  std::istream* src = &in;
  std::streampos start = in.tellg();
  if (start == std::streampos(-1)) {
    std::ostringstream slurp;
    slurp << in.rdbuf();
    buffered.str(slurp.str());
    src = &buffered;
    start = 0;
  }

  // Pass 1: header names, per-row arity, and per-column type evidence
  // (INT if every non-empty cell parses as an int, DOUBLE if all parse as
  // numbers, STRING otherwise).
  std::vector<std::string> names;
  std::vector<char> all_int, all_num, any_value;
  size_t ncols = 0;
  size_t line_no = 0;  // 1-based over recorded lines, header included
  std::string line;
  while (NextLine(*src, &line)) {
    if (line.empty() && line_no == 0) continue;  // skip leading blank lines
    ++line_no;
    std::vector<std::string> fields = SplitCsvLine(line, options.separator);
    if (line_no == 1) {
      ncols = fields.size();
      all_int.assign(ncols, 1);
      all_num.assign(ncols, 1);
      any_value.assign(ncols, 0);
      if (options.has_header) {
        for (const auto& h : fields) {
          names.emplace_back(StripAsciiWhitespace(h));
        }
        continue;
      }
      for (size_t i = 0; i < ncols; ++i) {
        names.push_back("c" + std::to_string(i));
      }
    }
    if (fields.size() != ncols) {
      return Status::ParseError(
          "CSV row " + std::to_string(line_no) + " has " +
          std::to_string(fields.size()) + " fields, expected " +
          std::to_string(ncols));
    }
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = fields[c];
      if (cell.empty()) continue;
      any_value[c] = 1;
      int64_t iv;
      double dv;
      if (all_int[c] && !ParseInt(cell, &iv)) all_int[c] = 0;
      if (all_num[c] && !ParseDouble(cell, &dv)) {
        all_num[c] = 0;
        all_int[c] = 0;
      }
    }
  }
  if (line_no == 0) {
    return Status::ParseError("empty CSV input for table '" + table_name + "'");
  }

  std::vector<ValueType> types(ncols, ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      if (!any_value[c]) continue;  // all-NULL column stays STRING
      if (all_int[c]) {
        types[c] = ValueType::kInt;
      } else if (all_num[c]) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  Schema schema;
  for (size_t c = 0; c < ncols; ++c) {
    PB_RETURN_IF_ERROR(schema.AddColumn({names[c], types[c]}));
  }
  Table table(table_name, std::move(schema));

  // Pass 2: append through RowAppender, straight into the column vectors.
  src->clear();
  src->seekg(start);
  if (!*src) {
    return Status::Internal("cannot rewind CSV stream for the append pass");
  }
  bool first = true;
  while (NextLine(*src, &line)) {
    if (line.empty() && first) continue;
    std::vector<std::string> fields = SplitCsvLine(line, options.separator);
    if (first) {
      first = false;
      if (options.has_header) continue;
    }
    if (fields.size() != ncols) {
      return Status::Internal("CSV input changed between ingest passes");
    }
    RowAppender row = table.StartRow();
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& cell = fields[c];
      if (cell.empty()) {
        row.Null();
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          int64_t v = 0;
          ParseInt(cell, &v);
          row.Int(v);
          break;
        }
        case ValueType::kDouble: {
          double v = 0;
          ParseDouble(cell, &v);
          row.Double(v);
          break;
        }
        default:
          row.String(cell);
      }
    }
    row.Finish();
  }
  return table;
}

Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file '" + path + "'");
  }
  return ReadCsv(in, table_name, options);
}

Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options) {
  auto quote = [&](const std::string& s) {
    bool needs = s.find(options.separator) != std::string::npos ||
                 s.find('"') != std::string::npos ||
                 s.find('\n') != std::string::npos;
    if (!needs) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += "\"\"";
      else q += c;
    }
    q += "\"";
    return q;
  };
  if (options.has_header) {
    for (size_t c = 0; c < table.schema().num_columns(); ++c) {
      if (c > 0) out << options.separator;
      out << quote(table.schema().column(c).name);
    }
    out << "\n";
  }
  for (const Tuple& row : table.rows()) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << options.separator;
      if (!row[c].is_null()) out << quote(row[c].ToString());
    }
    out << "\n";
  }
  return Status::OK();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return WriteCsv(table, out, options);
}

}  // namespace pb::db
