// Expr: scalar expression trees over tuples — the engine's predicate and
// arithmetic language. PaQL base constraints (WHERE) compile directly to
// these trees; global-constraint inner expressions reuse them too.
//
// Semantics follow SQL: three-valued logic with NULL (comparisons against
// NULL yield NULL; AND/OR use Kleene logic; a WHERE predicate accepts a row
// only when it evaluates to definite TRUE).

#ifndef PB_DB_EXPR_H_
#define PB_DB_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"

namespace pb::db {

class Table;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,
  kBinary,
  kBetween,  // lo <= arg <= hi, NOT-able
  kIn,       // arg IN (list of literals), NOT-able
  kIsNull,   // arg IS [NOT] NULL
  kLike,     // arg [NOT] LIKE pattern
};

enum class UnaryOp { kNeg, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

const char* BinaryOpToString(BinaryOp op);
bool IsComparisonOp(BinaryOp op);
bool IsArithmeticOp(BinaryOp op);
bool IsLogicalOp(BinaryOp op);

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// One node of an expression tree. Construct through the factory functions
/// below; Bind() against a Schema before evaluating.
class Expr {
 public:
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string column_name;   // possibly qualified ("R.calories")
  int column_index = -1;     // filled by Bind()

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNeg;
  BinaryOp binary_op = BinaryOp::kAdd;

  // Children: unary/is-null/like use child[0]; binary uses child[0..1];
  // between uses child[0]=arg, child[1]=lo, child[2]=hi.
  std::vector<ExprPtr> children;

  // kIn
  std::vector<Value> in_list;

  // kLike
  std::string like_pattern;

  // kBetween / kIn / kLike / kIsNull negation flag (NOT BETWEEN etc.).
  bool negated = false;

  /// Resolves every column reference against `schema` (fills column_index).
  Status Bind(const Schema& schema);

  /// Evaluates over one tuple. Bind() must have succeeded first.
  Result<Value> Eval(const Tuple& tuple) const;

  /// Evaluates over row `row` of a columnar table: column references read
  /// single cells straight from column storage, so no Tuple is built.
  Result<Value> Eval(const Table& table, size_t row) const;

  /// True iff Eval yields BOOL TRUE (NULL and errors are not TRUE).
  /// Errors are surfaced, NULL is treated as not-matching per SQL.
  Result<bool> Matches(const Tuple& tuple) const;

  /// Columnar counterpart of Matches(const Tuple&).
  Result<bool> Matches(const Table& table, size_t row) const;

  /// SQL-ish rendering ("R.calories <= 500 AND R.gluten = 'free'").
  std::string ToString() const;

  /// Deep copy (Bind state included).
  ExprPtr Clone() const;

 private:
  // Shared evaluation core; RowT supplies `Result<Value> Get(int)` over
  // either a materialized Tuple or a (table, row) pair.
  template <typename RowT>
  Result<Value> EvalImpl(const RowT& row) const;
};

// ----- Factories -----------------------------------------------------------

ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitDouble(double v);
ExprPtr LitString(std::string v);
ExprPtr LitBool(bool v);
ExprPtr Col(std::string name);
ExprPtr Unary(UnaryOp op, ExprPtr child);
ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Between(ExprPtr arg, ExprPtr lo, ExprPtr hi, bool negated = false);
ExprPtr In(ExprPtr arg, std::vector<Value> list, bool negated = false);
ExprPtr IsNull(ExprPtr arg, bool negated = false);
ExprPtr Like(ExprPtr arg, std::string pattern, bool negated = false);

/// a AND b, where either side may be null (returns the other).
ExprPtr AndMaybe(ExprPtr a, ExprPtr b);

}  // namespace pb::db

#endif  // PB_DB_EXPR_H_
