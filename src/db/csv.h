// CSV import/export with type inference, so example datasets and benchmark
// workloads can be materialized to disk and reloaded.

#ifndef PB_DB_CSV_H_
#define PB_DB_CSV_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "db/table.h"

namespace pb::db {

struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  /// When true, columns whose values all parse as INT become INT, else
  /// DOUBLE if all numeric, else STRING. Empty cells become NULL.
  bool infer_types = true;
};

/// Parses CSV text from a stream into a table.
Result<Table> ReadCsv(std::istream& in, const std::string& table_name,
                      const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const std::string& table_name,
                          const CsvOptions& options = {});

/// Writes a table as CSV (header + rows). NULLs become empty cells.
Status WriteCsv(const Table& table, std::ostream& out,
                const CsvOptions& options = {});

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace pb::db

#endif  // PB_DB_CSV_H_
