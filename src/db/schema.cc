#include "db/schema.h"

#include "common/logging.h"
#include "common/strings.h"

namespace pb::db {

Schema::Schema(std::vector<ColumnDef> columns) {
  for (auto& c : columns) {
    Status s = AddColumn(std::move(c));
    PB_CHECK(s.ok()) << s.ToString();
  }
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(AsciiToLower(name));
  if (it == index_.end()) {
    return Status::NotFound("no column named '" + name + "'");
  }
  return it->second;
}

bool Schema::HasColumn(const std::string& name) const {
  return index_.count(AsciiToLower(name)) > 0;
}

Status Schema::AddColumn(ColumnDef column) {
  std::string key = AsciiToLower(column.name);
  if (index_.count(key)) {
    return Status::AlreadyExists("duplicate column '" + column.name + "'");
  }
  index_[key] = columns_.size();
  columns_.push_back(std::move(column));
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeToString(columns_[i].type);
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace pb::db
