// Catalog: the named-table registry standing in for the DBMS PackageBuilder
// talks to. Tables are owned by the catalog; queries reference them by name.

#ifndef PB_DB_CATALOG_H_
#define PB_DB_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/table.h"

namespace pb::db {

/// Case-insensitive name -> Table registry.
class Catalog {
 public:
  /// Registers a table; fails if the name is taken.
  Status Register(Table table);

  /// Replaces or inserts a table.
  void RegisterOrReplace(Table table);

  /// Looks up a table by (case-insensitive) name.
  Result<const Table*> Get(const std::string& name) const;

  /// Mutable lookup for in-place maintenance (e.g. Table::SpillToDisk).
  /// Callers must hold whatever exclusive lock guards this catalog.
  Result<Table*> GetMutable(const std::string& name);

  bool Has(const std::string& name) const;

  Status Drop(const std::string& name);

  /// Registered table names, sorted.
  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace pb::db

#endif  // PB_DB_CATALOG_H_
