// Relational operators over Tables: selection, projection, ordering,
// aggregation, and joins. These are exactly the operations the paper's
// evaluation strategies issue "via SQL" against the DBMS:
//   - base constraints  -> Select / FilterIndices
//   - package validation -> Aggregate
//   - local-search replacement queries (§4.2) -> CrossJoin + Select

#ifndef PB_DB_OPS_H_
#define PB_DB_OPS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/expr.h"
#include "db/table.h"

namespace pb::db {

/// Rows of `table` satisfying `pred` (a bound or bindable predicate),
/// as a new table. `pred` may be null: all rows qualify.
Result<Table> Select(const Table& table, const ExprPtr& pred,
                     const std::string& result_name = "select");

/// Indices of rows satisfying `pred` (null = all rows). This is the form the
/// package engine uses: packages reference base tuples by index.
Result<std::vector<size_t>> FilterIndices(const Table& table,
                                          const ExprPtr& pred);

/// Keeps the named columns, in the given order.
Result<Table> Project(const Table& table,
                      const std::vector<std::string>& columns,
                      const std::string& result_name = "project");

/// Stable sort by one column.
Result<Table> OrderBy(const Table& table, const std::string& column,
                      bool ascending = true);

/// First `n` rows.
Table Limit(const Table& table, size_t n);

enum class AggFunc { kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncToString(AggFunc f);

/// Aggregates `arg` over all rows. For kCount, `arg` may be null (COUNT(*)).
/// SQL semantics: NULL inputs are skipped; empty input yields NULL for
/// SUM/AVG/MIN/MAX and 0 for COUNT.
Result<Value> Aggregate(const Table& table, AggFunc func, const ExprPtr& arg);

/// Aggregate over a subset of row indices (with multiplicities), used to
/// validate packages without materializing them.
Result<Value> AggregateRows(const Table& table, AggFunc func,
                            const ExprPtr& arg,
                            const std::vector<size_t>& rows,
                            const std::vector<int64_t>& multiplicities);

/// Group-by with a single grouping column and a list of (func, arg, name)
/// aggregate outputs.
struct AggSpec {
  AggFunc func;
  ExprPtr arg;  // may be null for COUNT(*)
  std::string output_name;
};
Result<Table> GroupBy(const Table& table, const std::string& group_column,
                      const std::vector<AggSpec>& aggs,
                      const std::string& result_name = "groupby");

/// Cartesian product with an optional theta predicate evaluated over the
/// concatenated row. Columns are prefixed "left.x" / "right.x" when names
/// collide; otherwise original names are kept.
Result<Table> CrossJoin(const Table& left, const Table& right,
                        const ExprPtr& pred,
                        const std::string& result_name = "join");

/// Evaluates `expr` for each index in `rows` as a double (nullopt for SQL
/// NULL). When `expr` is a bare reference to a numeric column this is one
/// vectorized gather over the contiguous column span; otherwise it falls
/// back to per-row expression evaluation. A clone of `expr` is bound
/// against `table` internally; out-of-range row indices are an error.
Result<std::vector<std::optional<double>>> GatherNumeric(
    const Table& table, const ExprPtr& expr, const std::vector<size_t>& rows);

/// As GatherNumeric, but `expr` must already be bound against `table`'s
/// schema — the repeated-call form (no per-call clone + bind).
Result<std::vector<std::optional<double>>> GatherNumericBound(
    const Table& table, const Expr& expr, const std::vector<size_t>& rows);

}  // namespace pb::db

#endif  // PB_DB_OPS_H_
