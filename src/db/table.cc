#include "db/table.h"

#include <algorithm>

#include "common/logging.h"

namespace pb::db {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (size_t i = 0; i < schema_.num_columns(); ++i) {
    columns_.emplace_back(schema_.column(i).type);
  }
}

Tuple Table::row(size_t i) const {
  PB_DCHECK(i < num_rows_);
  Tuple out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.GetValue(i));
  return out;
}

Status Table::CheckRow(const Tuple& row) const {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        std::to_string(schema_.num_columns()) + " columns) of table '" + name_ +
        "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ValueType declared = schema_.column(i).type;
    if (declared == ValueType::kNull || row[i].is_null()) continue;
    if (row[i].type() == declared) continue;
    // INT widens into DOUBLE columns (the storage handles the conversion).
    if (declared == ValueType::kDouble && row[i].is_int()) continue;
    return Status::TypeError(
        "column '" + schema_.column(i).name + "' of table '" + name_ +
        "' expects " + ValueTypeToString(declared) + ", got " +
        ValueTypeToString(row[i].type()));
  }
  return Status::OK();
}

Status Table::Append(Tuple row) {
  PB_RETURN_IF_ERROR(CheckRow(row));
  AppendUnchecked(std::move(row));
  return Status::OK();
}

Status Table::AppendRows(std::vector<Tuple> rows) {
  if (spilled()) {
    return Status::InvalidArgument(
        "table '" + name_ +
        "' is spilled (append-frozen); unspill it before appending");
  }
  // Validate the whole batch before committing any row, so a bad row never
  // leaves the table half-grown.
  for (const Tuple& row : rows) {
    PB_RETURN_IF_ERROR(CheckRow(row));
  }
  Reserve(num_rows_ + rows.size());
  for (Tuple& row : rows) AppendUnchecked(std::move(row));
  return Status::OK();
}

void Table::AppendUnchecked(Tuple row) {
  PB_DCHECK(row.size() == schema_.num_columns());
  for (size_t i = 0; i < row.size(); ++i) {
    columns_[i].AppendValue(row[i]);
  }
  ++num_rows_;
}

void Table::AppendRowFrom(const Table& src, size_t src_row) {
  PB_DCHECK(src_row < src.num_rows_);
  PB_DCHECK(src.columns_.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].AppendFrom(src.columns_[i], src_row);
  }
  ++num_rows_;
}

void Table::Reserve(size_t n) {
  for (Column& c : columns_) c.Reserve(n);
}

Result<NumericColumnView> Table::NumericView(size_t column) const {
  if (column >= columns_.size()) {
    return Status::OutOfRange("column index " + std::to_string(column) +
                              " out of range for table '" + name_ + "'");
  }
  if (!columns_[column].numeric_storage()) {
    return Status::TypeError(
        "column '" + schema_.column(column).name + "' of table '" + name_ +
        "' has " + ValueTypeToString(columns_[column].storage_type()) +
        " storage, not numeric");
  }
  return columns_[column].NumericView();
}

Result<NumericColumnView> Table::NumericView(const std::string& column) const {
  PB_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  return NumericView(idx);
}

Result<Table> Table::SelectColumns(const std::vector<size_t>& indices,
                                   const std::string& result_name) const {
  Schema out_schema;
  for (size_t idx : indices) {
    if (idx >= columns_.size()) {
      return Status::OutOfRange("column index " + std::to_string(idx) +
                                " out of range for table '" + name_ + "'");
    }
    PB_RETURN_IF_ERROR(out_schema.AddColumn(schema_.column(idx)));
  }
  Table out(result_name, std::move(out_schema));
  for (size_t k = 0; k < indices.size(); ++k) {
    out.columns_[k] = columns_[indices[k]];
  }
  out.num_rows_ = num_rows_;
  return out;
}

// ----- Out-of-core ---------------------------------------------------------

Status Table::SpillToDisk(const std::string& path, size_t block_size,
                          storage::BlockCache* cache) {
  if (spilled()) {
    return Status::InvalidArgument("table '" + name_ + "' is already spilled");
  }
  if (cache == nullptr) cache = storage::BlockCache::Default();
  PB_ASSIGN_OR_RETURN(std::shared_ptr<storage::SegmentFile> file,
                      storage::SegmentFile::Create(path));
  for (Column& c : columns_) {
    PB_RETURN_IF_ERROR(c.Spill(file, cache, block_size));
  }
  return Status::OK();
}

bool Table::spilled() const {
  for (const Column& c : columns_) {
    if (c.spilled()) return true;
  }
  return false;
}

Status Table::Unspill() {
  for (Column& c : columns_) {
    if (c.spilled()) PB_RETURN_IF_ERROR(c.Unspill());
  }
  return Status::OK();
}

void Table::SetBlockSize(size_t block_size) {
  for (Column& c : columns_) {
    if (c.numeric_storage() && !c.spilled()) c.SetBlockSize(block_size);
  }
}

// ----- RowAppender ---------------------------------------------------------

RowAppender& RowAppender::Null() {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendNull();
  return *this;
}

RowAppender& RowAppender::Int(int64_t v) {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendInt(v);
  return *this;
}

RowAppender& RowAppender::Double(double v) {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendDouble(v);
  return *this;
}

RowAppender& RowAppender::Bool(bool v) {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendBool(v);
  return *this;
}

RowAppender& RowAppender::String(std::string v) {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendString(std::move(v));
  return *this;
}

RowAppender& RowAppender::Value(const class Value& v) {
  PB_DCHECK(col_ < table_->columns_.size());
  table_->columns_[col_++].AppendValue(v);
  return *this;
}

void RowAppender::Finish() {
  PB_DCHECK(col_ == table_->columns_.size())
      << "row committed with " << col_ << " of " << table_->columns_.size()
      << " cells";
  ++table_->num_rows_;
}

// ----- Rendering -----------------------------------------------------------

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over the header and shown rows.
  size_t shown = std::min(max_rows, num_rows_);
  std::vector<size_t> width(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    width[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = columns_[c].GetValue(r).ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out = name_ + " (" + std::to_string(num_rows_) + " rows)\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += (c ? " | " : "") + pad(schema_.column(c).name, width[c]);
  }
  out += "\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += (c ? "-+-" : "") + std::string(width[c], '-');
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += (c ? " | " : "") + pad(cells[r][c], width[c]);
    }
    out += "\n";
  }
  if (shown < num_rows_) {
    out += "... (" + std::to_string(num_rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace pb::db
