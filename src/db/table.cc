#include "db/table.h"

#include <algorithm>

#include "common/logging.h"

namespace pb::db {

Status Table::Append(Tuple row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema (" +
        std::to_string(schema_.num_columns()) + " columns) of table '" + name_ +
        "'");
  }
  for (size_t i = 0; i < row.size(); ++i) {
    ValueType declared = schema_.column(i).type;
    if (declared == ValueType::kNull || row[i].is_null()) continue;
    if (row[i].type() == declared) continue;
    // Widen INT into DOUBLE columns.
    if (declared == ValueType::kDouble && row[i].is_int()) {
      row[i] = Value::Double(static_cast<double>(row[i].AsInt()));
      continue;
    }
    return Status::TypeError(
        "column '" + schema_.column(i).name + "' of table '" + name_ +
        "' expects " + ValueTypeToString(declared) + ", got " +
        ValueTypeToString(row[i].type()));
  }
  AppendUnchecked(std::move(row));
  return Status::OK();
}

void Table::AppendUnchecked(Tuple row) {
  PB_DCHECK(row.size() == schema_.num_columns());
  UpdateStats(row);
  rows_.push_back(std::move(row));
}

void Table::UpdateStats(const Tuple& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    ColumnStats& s = stats_[i];
    const Value& v = row[i];
    if (v.is_null()) {
      ++s.null_count;
      continue;
    }
    ++s.non_null_count;
    if (v.is_numeric()) {
      double d = v.is_int() ? static_cast<double>(v.AsInt())
                            : v.AsDoubleExact();
      s.sum += d;
      if (!s.min || d < *s.min) s.min = d;
      if (!s.max || d > *s.max) s.max = d;
    }
  }
}

std::string Table::ToString(size_t max_rows) const {
  // Compute column widths over the header and shown rows.
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<size_t> width(schema_.num_columns());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    width[c] = schema_.column(c).name.size();
  }
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      cells[r][c] = rows_[r][c].ToString();
      width[c] = std::max(width[c], cells[r][c].size());
    }
  }
  auto pad = [](const std::string& s, size_t w) {
    return s + std::string(w - s.size(), ' ');
  };
  std::string out = name_ + " (" + std::to_string(rows_.size()) + " rows)\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += (c ? " | " : "") + pad(schema_.column(c).name, width[c]);
  }
  out += "\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    out += (c ? "-+-" : "") + std::string(width[c], '-');
  }
  out += "\n";
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      out += (c ? " | " : "") + pad(cells[r][c], width[c]);
    }
    out += "\n";
  }
  if (shown < rows_.size()) {
    out += "... (" + std::to_string(rows_.size() - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace pb::db
