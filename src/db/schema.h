// Schema: ordered, named, typed columns of a relation.

#ifndef PB_DB_SCHEMA_H_
#define PB_DB_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/value.h"

namespace pb::db {

/// One column descriptor: a name and a declared type. kNull means
/// "untyped / any". (The typed storage itself is db/column.h's Column.)
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An ordered list of columns with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of a column by (case-insensitive) name.
  Result<size_t> IndexOf(const std::string& name) const;

  bool HasColumn(const std::string& name) const;

  /// Appends a column; fails if the name already exists.
  Status AddColumn(ColumnDef column);

  /// "name:TYPE, name:TYPE, ..."
  std::string ToString() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<ColumnDef> columns_;
  std::unordered_map<std::string, size_t> index_;  // lower-cased name -> index
};

}  // namespace pb::db

#endif  // PB_DB_SCHEMA_H_
