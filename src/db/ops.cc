#include "db/ops.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace pb::db {

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum:   return "SUM";
    case AggFunc::kAvg:   return "AVG";
    case AggFunc::kMin:   return "MIN";
    case AggFunc::kMax:   return "MAX";
  }
  return "?";
}

Result<Table> Select(const Table& table, const ExprPtr& pred,
                     const std::string& result_name) {
  Table out(result_name, table.schema());
  if (!pred) {
    for (const Tuple& row : table.rows()) out.AppendUnchecked(row);
    return out;
  }
  ExprPtr bound = pred->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  for (const Tuple& row : table.rows()) {
    PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(row));
    if (keep) out.AppendUnchecked(row);
  }
  return out;
}

Result<std::vector<size_t>> FilterIndices(const Table& table,
                                          const ExprPtr& pred) {
  std::vector<size_t> out;
  if (!pred) {
    out.resize(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) out[i] = i;
    return out;
  }
  ExprPtr bound = pred->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(table.row(i)));
    if (keep) out.push_back(i);
  }
  return out;
}

Result<Table> Project(const Table& table,
                      const std::vector<std::string>& columns,
                      const std::string& result_name) {
  std::vector<size_t> indices;
  Schema out_schema;
  for (const std::string& name : columns) {
    PB_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    indices.push_back(idx);
    PB_RETURN_IF_ERROR(out_schema.AddColumn(table.schema().column(idx)));
  }
  Table out(result_name, std::move(out_schema));
  for (const Tuple& row : table.rows()) {
    Tuple projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(row[idx]);
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

Result<Table> OrderBy(const Table& table, const std::string& column,
                      bool ascending) {
  PB_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(column));
  std::vector<size_t> order(table.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int c = table.row(a)[idx].Compare(table.row(b)[idx]);
    return ascending ? c < 0 : c > 0;
  });
  Table out(table.name() + "_sorted", table.schema());
  for (size_t i : order) out.AppendUnchecked(table.row(i));
  return out;
}

Table Limit(const Table& table, size_t n) {
  Table out(table.name() + "_limit", table.schema());
  for (size_t i = 0; i < std::min(n, table.num_rows()); ++i) {
    out.AppendUnchecked(table.row(i));
  }
  return out;
}

namespace {

/// Incremental aggregate accumulator with SQL NULL-skipping semantics.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}

  Status Add(const Value& v, int64_t multiplicity = 1) {
    if (func_ == AggFunc::kCount) {
      // COUNT(expr) skips NULL; COUNT(*) passes a non-null marker.
      if (!v.is_null()) count_ += multiplicity;
      return Status::OK();
    }
    if (v.is_null()) return Status::OK();
    if (func_ == AggFunc::kMin || func_ == AggFunc::kMax) {
      if (!extreme_ || (func_ == AggFunc::kMin
                            ? v.Compare(*extreme_) < 0
                            : v.Compare(*extreme_) > 0)) {
        extreme_ = v;
      }
      count_ += multiplicity;
      return Status::OK();
    }
    // SUM / AVG: numeric only.
    PB_ASSIGN_OR_RETURN(double d, v.ToDouble());
    sum_ += d * static_cast<double>(multiplicity);
    count_ += multiplicity;
    all_int_ = all_int_ && v.is_int();
    return Status::OK();
  }

  Value Finish() const {
    switch (func_) {
      case AggFunc::kCount:
        return Value::Int(count_);
      case AggFunc::kSum:
        if (count_ == 0) return Value::Null();
        if (all_int_) return Value::Int(static_cast<int64_t>(sum_));
        return Value::Double(sum_);
      case AggFunc::kAvg:
        if (count_ == 0) return Value::Null();
        return Value::Double(sum_ / static_cast<double>(count_));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme_ ? *extreme_ : Value::Null();
    }
    return Value::Null();
  }

 private:
  AggFunc func_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  bool all_int_ = true;
  std::optional<Value> extreme_;
};

}  // namespace

Result<Value> Aggregate(const Table& table, AggFunc func, const ExprPtr& arg) {
  std::vector<size_t> all(table.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<int64_t> ones(all.size(), 1);
  return AggregateRows(table, func, arg, all, ones);
}

Result<Value> AggregateRows(const Table& table, AggFunc func,
                            const ExprPtr& arg,
                            const std::vector<size_t>& rows,
                            const std::vector<int64_t>& multiplicities) {
  if (rows.size() != multiplicities.size()) {
    return Status::InvalidArgument(
        "rows and multiplicities must have equal length");
  }
  ExprPtr bound;
  if (arg) {
    bound = arg->Clone();
    PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  } else if (func != AggFunc::kCount) {
    return Status::InvalidArgument(
        std::string(AggFuncToString(func)) + " requires an argument");
  }
  AggAccumulator acc(func);
  for (size_t k = 0; k < rows.size(); ++k) {
    if (rows[k] >= table.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
    if (multiplicities[k] < 0) {
      return Status::InvalidArgument("negative multiplicity");
    }
    if (multiplicities[k] == 0) continue;
    Value v = Value::Int(1);  // COUNT(*) marker
    if (bound) {
      PB_ASSIGN_OR_RETURN(v, bound->Eval(table.row(rows[k])));
    }
    // MIN/MAX ignore multiplicity by nature; SUM/AVG/COUNT scale by it.
    PB_RETURN_IF_ERROR(acc.Add(v, multiplicities[k]));
  }
  return acc.Finish();
}

Result<Table> GroupBy(const Table& table, const std::string& group_column,
                      const std::vector<AggSpec>& aggs,
                      const std::string& result_name) {
  PB_ASSIGN_OR_RETURN(size_t gidx, table.schema().IndexOf(group_column));
  // Bind aggregate arguments once.
  std::vector<ExprPtr> bound(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].arg) {
      bound[i] = aggs[i].arg->Clone();
      PB_RETURN_IF_ERROR(bound[i]->Bind(table.schema()));
    } else if (aggs[i].func != AggFunc::kCount) {
      return Status::InvalidArgument(
          std::string(AggFuncToString(aggs[i].func)) + " requires an argument");
    }
  }
  // Group rows (std::map gives deterministic output order via Value::operator<).
  std::map<Value, std::vector<AggAccumulator>> groups;
  for (const Tuple& row : table.rows()) {
    auto it = groups.find(row[gidx]);
    if (it == groups.end()) {
      std::vector<AggAccumulator> accs;
      accs.reserve(aggs.size());
      for (const auto& spec : aggs) accs.emplace_back(spec.func);
      it = groups.emplace(row[gidx], std::move(accs)).first;
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      Value v = Value::Int(1);
      if (bound[i]) {
        PB_ASSIGN_OR_RETURN(v, bound[i]->Eval(row));
      }
      PB_RETURN_IF_ERROR(it->second[i].Add(v));
    }
  }
  Schema out_schema;
  PB_RETURN_IF_ERROR(out_schema.AddColumn(table.schema().column(gidx)));
  for (const auto& spec : aggs) {
    PB_RETURN_IF_ERROR(
        out_schema.AddColumn({spec.output_name, ValueType::kNull}));
  }
  Table out(result_name, std::move(out_schema));
  for (const auto& [key, accs] : groups) {
    Tuple row;
    row.push_back(key);
    for (const auto& acc : accs) row.push_back(acc.Finish());
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> CrossJoin(const Table& left, const Table& right,
                        const ExprPtr& pred,
                        const std::string& result_name) {
  // Build the output schema, prefixing on collision. Self-joins (same table
  // name on both sides) disambiguate the right side with an "_r" suffix.
  std::string lprefix = left.name();
  std::string rprefix = right.name();
  if (lprefix == rprefix) rprefix += "_r";
  Schema out_schema;
  for (const Column& c : left.schema().columns()) {
    Column col = c;
    if (right.schema().HasColumn(c.name)) col.name = lprefix + "." + c.name;
    PB_RETURN_IF_ERROR(out_schema.AddColumn(col));
  }
  for (const Column& c : right.schema().columns()) {
    Column col = c;
    if (left.schema().HasColumn(c.name)) col.name = rprefix + "." + c.name;
    PB_RETURN_IF_ERROR(out_schema.AddColumn(col));
  }
  ExprPtr bound;
  if (pred) {
    bound = pred->Clone();
    PB_RETURN_IF_ERROR(bound->Bind(out_schema));
  }
  Table out(result_name, std::move(out_schema));
  Tuple combined;
  combined.reserve(left.schema().num_columns() + right.schema().num_columns());
  for (const Tuple& l : left.rows()) {
    for (const Tuple& r : right.rows()) {
      combined.clear();
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      if (bound) {
        PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(combined));
        if (!keep) continue;
      }
      out.AppendUnchecked(combined);
    }
  }
  return out;
}

}  // namespace pb::db
