#include "db/ops.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace pb::db {

namespace {

/// True when `bound` is a bound reference to a column of `table` with
/// contiguous numeric (INT/DOUBLE) storage.
bool IsNumericColumnRef(const ExprPtr& bound, const Table& table) {
  return bound && bound->kind == ExprKind::kColumnRef &&
         bound->column_index >= 0 &&
         static_cast<size_t>(bound->column_index) <
             table.schema().num_columns() &&
         table.column_data(bound->column_index).numeric_storage();
}

}  // namespace

const char* AggFuncToString(AggFunc f) {
  switch (f) {
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum:   return "SUM";
    case AggFunc::kAvg:   return "AVG";
    case AggFunc::kMin:   return "MIN";
    case AggFunc::kMax:   return "MAX";
  }
  return "?";
}

Result<Table> Select(const Table& table, const ExprPtr& pred,
                     const std::string& result_name) {
  if (!pred) {
    // All rows qualify: copy the column vectors wholesale.
    std::vector<size_t> all(table.schema().num_columns());
    for (size_t c = 0; c < all.size(); ++c) all[c] = c;
    return table.SelectColumns(all, result_name);
  }
  Table out(result_name, table.schema());
  ExprPtr bound = pred->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(table, i));
    if (keep) out.AppendRowFrom(table, i);
  }
  return out;
}

Result<std::vector<size_t>> FilterIndices(const Table& table,
                                          const ExprPtr& pred) {
  std::vector<size_t> out;
  if (!pred) {
    out.resize(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) out[i] = i;
    return out;
  }
  ExprPtr bound = pred->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  for (size_t i = 0; i < table.num_rows(); ++i) {
    PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(table, i));
    if (keep) out.push_back(i);
  }
  return out;
}

Result<Table> Project(const Table& table,
                      const std::vector<std::string>& columns,
                      const std::string& result_name) {
  std::vector<size_t> indices;
  for (const std::string& name : columns) {
    PB_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(name));
    indices.push_back(idx);
  }
  // Column vectors are copied wholesale; SelectColumns validates the
  // projection (duplicates) and fails cleanly.
  return table.SelectColumns(indices, result_name);
}

Result<Table> OrderBy(const Table& table, const std::string& column,
                      bool ascending) {
  PB_ASSIGN_OR_RETURN(size_t idx, table.schema().IndexOf(column));
  const Column& key = table.column_data(idx);
  std::vector<size_t> order(table.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int c = key.Compare(a, b);
    return ascending ? c < 0 : c > 0;
  });
  Table out(table.name() + "_sorted", table.schema());
  out.Reserve(order.size());
  for (size_t i : order) out.AppendRowFrom(table, i);
  return out;
}

Table Limit(const Table& table, size_t n) {
  Table out(table.name() + "_limit", table.schema());
  size_t shown = std::min(n, table.num_rows());
  out.Reserve(shown);
  for (size_t i = 0; i < shown; ++i) {
    out.AppendRowFrom(table, i);
  }
  return out;
}

namespace {

/// Incremental aggregate accumulator with SQL NULL-skipping semantics.
class AggAccumulator {
 public:
  explicit AggAccumulator(AggFunc func) : func_(func) {}

  Status Add(const Value& v, int64_t multiplicity = 1) {
    if (func_ == AggFunc::kCount) {
      // COUNT(expr) skips NULL; COUNT(*) passes a non-null marker.
      if (!v.is_null()) count_ += multiplicity;
      return Status::OK();
    }
    if (v.is_null()) return Status::OK();
    if (func_ == AggFunc::kMin || func_ == AggFunc::kMax) {
      if (!extreme_ || (func_ == AggFunc::kMin
                            ? v.Compare(*extreme_) < 0
                            : v.Compare(*extreme_) > 0)) {
        extreme_ = v;
      }
      count_ += multiplicity;
      return Status::OK();
    }
    // SUM / AVG: numeric only.
    PB_ASSIGN_OR_RETURN(double d, v.ToDouble());
    sum_ += d * static_cast<double>(multiplicity);
    count_ += multiplicity;
    all_int_ = all_int_ && v.is_int();
    return Status::OK();
  }

  Value Finish() const {
    switch (func_) {
      case AggFunc::kCount:
        return Value::Int(count_);
      case AggFunc::kSum:
        if (count_ == 0) return Value::Null();
        if (all_int_) return Value::Int(static_cast<int64_t>(sum_));
        return Value::Double(sum_);
      case AggFunc::kAvg:
        if (count_ == 0) return Value::Null();
        return Value::Double(sum_ / static_cast<double>(count_));
      case AggFunc::kMin:
      case AggFunc::kMax:
        return extreme_ ? *extreme_ : Value::Null();
    }
    return Value::Null();
  }

 private:
  AggFunc func_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  bool all_int_ = true;
  std::optional<Value> extreme_;
};

/// Vectorized AggregateRows over a numeric column span: one tight pass,
/// no per-cell Value or variant dispatch. Mirrors AggAccumulator exactly.
Result<Value> AggregateColumnRows(const Table& table, AggFunc func, int column,
                                  const std::vector<size_t>& rows,
                                  const std::vector<int64_t>& multiplicities) {
  const NumericColumnView view = table.column_data(column).NumericView();
  // Storage type from the column, not the span: a spilled column's spans
  // are null but its SUM/MIN/MAX must still come back as INT.
  const bool int_storage =
      table.column_data(column).storage_type() == ValueType::kInt;
  int64_t count = 0;
  double sum = 0.0;
  bool has_extreme = false;
  double extreme = 0.0;
  for (size_t k = 0; k < rows.size(); ++k) {
    if (rows[k] >= table.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
    if (multiplicities[k] < 0) {
      return Status::InvalidArgument("negative multiplicity");
    }
    if (multiplicities[k] == 0 || view.IsNull(rows[k])) continue;
    double d = view[rows[k]];
    switch (func) {
      case AggFunc::kCount:
        count += multiplicities[k];
        break;
      case AggFunc::kMin:
        if (!has_extreme || d < extreme) extreme = d;
        has_extreme = true;
        count += multiplicities[k];
        break;
      case AggFunc::kMax:
        if (!has_extreme || d > extreme) extreme = d;
        has_extreme = true;
        count += multiplicities[k];
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg:
        sum += d * static_cast<double>(multiplicities[k]);
        count += multiplicities[k];
        break;
    }
  }
  PB_RETURN_IF_ERROR(view.status());  // spilled block faults surface here
  switch (func) {
    case AggFunc::kCount:
      return Value::Int(count);
    case AggFunc::kSum:
      if (count == 0) return Value::Null();
      return int_storage ? Value::Int(static_cast<int64_t>(sum))
                         : Value::Double(sum);
    case AggFunc::kAvg:
      if (count == 0) return Value::Null();
      return Value::Double(sum / static_cast<double>(count));
    case AggFunc::kMin:
    case AggFunc::kMax:
      if (!has_extreme) return Value::Null();
      return int_storage ? Value::Int(static_cast<int64_t>(extreme))
                         : Value::Double(extreme);
  }
  return Value::Null();
}

}  // namespace

Result<Value> Aggregate(const Table& table, AggFunc func, const ExprPtr& arg) {
  ExprPtr bound;
  if (arg) {
    bound = arg->Clone();
    PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  } else if (func != AggFunc::kCount) {
    return Status::InvalidArgument(
        std::string(AggFuncToString(func)) + " requires an argument");
  }
  if (!bound) return Value::Int(static_cast<int64_t>(table.num_rows()));
  // Whole-column aggregates of a bare column reference come straight from
  // the incrementally-maintained column statistics: O(1).
  if (bound->kind == ExprKind::kColumnRef && bound->column_index >= 0 &&
      static_cast<size_t>(bound->column_index) < table.schema().num_columns()) {
    const Column& col = table.column_data(bound->column_index);
    const ColumnStats& s = col.stats();
    if (func == AggFunc::kCount && col.storage_type() != ValueType::kNull) {
      return Value::Int(s.non_null_count);
    }
    if (col.numeric_storage()) {
      const bool int_storage = col.storage_type() == ValueType::kInt;
      switch (func) {
        case AggFunc::kSum:
          if (s.non_null_count == 0) return Value::Null();
          return int_storage ? Value::Int(static_cast<int64_t>(s.sum))
                             : Value::Double(s.sum);
        case AggFunc::kAvg:
          if (s.non_null_count == 0) return Value::Null();
          return Value::Double(s.mean());
        case AggFunc::kMin:
        case AggFunc::kMax: {
          const std::optional<double>& e = func == AggFunc::kMin ? s.min
                                                                 : s.max;
          if (!e) return Value::Null();
          return int_storage ? Value::Int(static_cast<int64_t>(*e))
                             : Value::Double(*e);
        }
        default:
          break;
      }
    }
  }
  std::vector<size_t> all(table.num_rows());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  std::vector<int64_t> ones(all.size(), 1);
  return AggregateRows(table, func, arg, all, ones);
}

Result<Value> AggregateRows(const Table& table, AggFunc func,
                            const ExprPtr& arg,
                            const std::vector<size_t>& rows,
                            const std::vector<int64_t>& multiplicities) {
  if (rows.size() != multiplicities.size()) {
    return Status::InvalidArgument(
        "rows and multiplicities must have equal length");
  }
  ExprPtr bound;
  if (arg) {
    bound = arg->Clone();
    PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  } else if (func != AggFunc::kCount) {
    return Status::InvalidArgument(
        std::string(AggFuncToString(func)) + " requires an argument");
  }
  if (IsNumericColumnRef(bound, table)) {
    return AggregateColumnRows(table, func, bound->column_index, rows,
                               multiplicities);
  }
  AggAccumulator acc(func);
  for (size_t k = 0; k < rows.size(); ++k) {
    if (rows[k] >= table.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
    if (multiplicities[k] < 0) {
      return Status::InvalidArgument("negative multiplicity");
    }
    if (multiplicities[k] == 0) continue;
    Value v = Value::Int(1);  // COUNT(*) marker
    if (bound) {
      PB_ASSIGN_OR_RETURN(v, bound->Eval(table, rows[k]));
    }
    // MIN/MAX ignore multiplicity by nature; SUM/AVG/COUNT scale by it.
    PB_RETURN_IF_ERROR(acc.Add(v, multiplicities[k]));
  }
  return acc.Finish();
}

Result<Table> GroupBy(const Table& table, const std::string& group_column,
                      const std::vector<AggSpec>& aggs,
                      const std::string& result_name) {
  PB_ASSIGN_OR_RETURN(size_t gidx, table.schema().IndexOf(group_column));
  // Bind aggregate arguments once.
  std::vector<ExprPtr> bound(aggs.size());
  for (size_t i = 0; i < aggs.size(); ++i) {
    if (aggs[i].arg) {
      bound[i] = aggs[i].arg->Clone();
      PB_RETURN_IF_ERROR(bound[i]->Bind(table.schema()));
    } else if (aggs[i].func != AggFunc::kCount) {
      return Status::InvalidArgument(
          std::string(AggFuncToString(aggs[i].func)) + " requires an argument");
    }
  }
  const Column& gcol = table.column_data(gidx);
  // Group rows (std::map gives deterministic output order via
  // Value::operator<).
  std::map<Value, std::vector<AggAccumulator>> groups;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    Value key = gcol.GetValue(r);
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<AggAccumulator> accs;
      accs.reserve(aggs.size());
      for (const auto& spec : aggs) accs.emplace_back(spec.func);
      it = groups.emplace(std::move(key), std::move(accs)).first;
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      Value v = Value::Int(1);
      if (bound[i]) {
        PB_ASSIGN_OR_RETURN(v, bound[i]->Eval(table, r));
      }
      PB_RETURN_IF_ERROR(it->second[i].Add(v));
    }
  }
  Schema out_schema;
  PB_RETURN_IF_ERROR(out_schema.AddColumn(table.schema().column(gidx)));
  for (const auto& spec : aggs) {
    PB_RETURN_IF_ERROR(
        out_schema.AddColumn({spec.output_name, ValueType::kNull}));
  }
  Table out(result_name, std::move(out_schema));
  for (const auto& [key, accs] : groups) {
    Tuple row;
    row.push_back(key);
    for (const auto& acc : accs) row.push_back(acc.Finish());
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> CrossJoin(const Table& left, const Table& right,
                        const ExprPtr& pred,
                        const std::string& result_name) {
  // Build the output schema, prefixing on collision. Self-joins (same table
  // name on both sides) disambiguate the right side with an "_r" suffix.
  std::string lprefix = left.name();
  std::string rprefix = right.name();
  if (lprefix == rprefix) rprefix += "_r";
  Schema out_schema;
  for (const ColumnDef& c : left.schema().columns()) {
    ColumnDef col = c;
    if (right.schema().HasColumn(c.name)) col.name = lprefix + "." + c.name;
    PB_RETURN_IF_ERROR(out_schema.AddColumn(col));
  }
  for (const ColumnDef& c : right.schema().columns()) {
    ColumnDef col = c;
    if (left.schema().HasColumn(c.name)) col.name = rprefix + "." + c.name;
    PB_RETURN_IF_ERROR(out_schema.AddColumn(col));
  }
  ExprPtr bound;
  if (pred) {
    bound = pred->Clone();
    PB_RETURN_IF_ERROR(bound->Bind(out_schema));
  }
  Table out(result_name, std::move(out_schema));
  // Materialize each side's rows once; the inner loop reuses them.
  std::vector<Tuple> rrows;
  rrows.reserve(right.num_rows());
  for (size_t j = 0; j < right.num_rows(); ++j) rrows.push_back(right.row(j));
  Tuple combined;
  combined.reserve(left.schema().num_columns() + right.schema().num_columns());
  for (size_t i = 0; i < left.num_rows(); ++i) {
    Tuple l = left.row(i);
    for (const Tuple& r : rrows) {
      combined.clear();
      combined.insert(combined.end(), l.begin(), l.end());
      combined.insert(combined.end(), r.begin(), r.end());
      if (bound) {
        PB_ASSIGN_OR_RETURN(bool keep, bound->Matches(combined));
        if (!keep) continue;
      }
      out.AppendUnchecked(combined);
    }
  }
  return out;
}

Result<std::vector<std::optional<double>>> GatherNumericBound(
    const Table& table, const Expr& expr, const std::vector<size_t>& rows) {
  std::vector<std::optional<double>> out(rows.size());
  if (expr.kind == ExprKind::kColumnRef && expr.column_index >= 0 &&
      static_cast<size_t>(expr.column_index) < table.schema().num_columns() &&
      table.column_data(expr.column_index).numeric_storage()) {
    const NumericColumnView view =
        table.column_data(expr.column_index).NumericView();
    const size_t n = view.size();
    if (view.spilled()) {
      // Spilled column: values fault in block-at-a-time through the view's
      // cached pin. Filter row lists are ascending, so each block is
      // pinned once per gather.
      for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] >= n) return Status::OutOfRange("row index out of range");
        if (!view.IsNull(rows[i])) out[i] = view[rows[i]];
      }
      PB_RETURN_IF_ERROR(view.status());
      return out;
    }
    if (!view.has_nulls()) {
      // Null-free spans: a straight gather over the contiguous data.
      if (const double* d = view.doubles()) {
        for (size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] >= n) return Status::OutOfRange("row index out of range");
          out[i] = d[rows[i]];
        }
      } else {
        const int64_t* p = view.ints();
        for (size_t i = 0; i < rows.size(); ++i) {
          if (rows[i] >= n) return Status::OutOfRange("row index out of range");
          out[i] = static_cast<double>(p[rows[i]]);
        }
      }
    } else {
      for (size_t i = 0; i < rows.size(); ++i) {
        if (rows[i] >= n) return Status::OutOfRange("row index out of range");
        if (!view.IsNull(rows[i])) out[i] = view[rows[i]];
      }
    }
    return out;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= table.num_rows()) {
      return Status::OutOfRange("row index out of range");
    }
    PB_ASSIGN_OR_RETURN(Value v, expr.Eval(table, rows[i]));
    if (v.is_null()) {
      out[i] = std::nullopt;
    } else {
      PB_ASSIGN_OR_RETURN(double d, v.ToDouble());
      out[i] = d;
    }
  }
  return out;
}

Result<std::vector<std::optional<double>>> GatherNumeric(
    const Table& table, const ExprPtr& expr, const std::vector<size_t>& rows) {
  ExprPtr bound = expr->Clone();
  PB_RETURN_IF_ERROR(bound->Bind(table.schema()));
  return GatherNumericBound(table, *bound, rows);
}

}  // namespace pb::db
