#include "db/catalog.h"

#include <algorithm>

#include "common/strings.h"

namespace pb::db {

Status Catalog::Register(Table table) {
  std::string key = AsciiToLower(table.name());
  if (tables_.count(key)) {
    return Status::AlreadyExists("table '" + table.name() + "' already exists");
  }
  tables_[key] = std::make_unique<Table>(std::move(table));
  return Status::OK();
}

void Catalog::RegisterOrReplace(Table table) {
  std::string key = AsciiToLower(table.name());
  tables_[key] = std::make_unique<Table>(std::move(table));
}

Result<const Table*> Catalog::Get(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return static_cast<const Table*>(it->second.get());
}

Result<Table*> Catalog::GetMutable(const std::string& name) {
  auto it = tables_.find(AsciiToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return it->second.get();
}

bool Catalog::Has(const std::string& name) const {
  return tables_.count(AsciiToLower(name)) > 0;
}

Status Catalog::Drop(const std::string& name) {
  if (tables_.erase(AsciiToLower(name)) == 0) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace pb::db
