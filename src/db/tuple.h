// Tuple: one row of Values. Tuples are positional; the Schema gives names.

#ifndef PB_DB_TUPLE_H_
#define PB_DB_TUPLE_H_

#include <string>
#include <vector>

#include "db/value.h"

namespace pb::db {

using Tuple = std::vector<Value>;

/// Renders "(v1, v2, ...)".
inline std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace pb::db

#endif  // PB_DB_TUPLE_H_
