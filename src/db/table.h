// Table: an in-memory columnar relation with per-column statistics.
//
// Storage is column-major: one typed Column (contiguous vector + null
// bitmap, see db/column.h) per schema attribute. Numeric consumers read
// whole columns through NumericView() in one contiguous pass; row-oriented
// call sites keep working through the compatibility adapters row()/rows()/
// at(), which materialize Values on demand.
//
// The statistics (count / min / max / sum over non-null numeric cells) are
// exactly what the cardinality-based pruning of §4.1 needs: the bounds
// l = ceil(L / MAX(attr)) and u = floor(U / MIN(attr)) are computed from
// column MIN/MAX without touching the rows.

#ifndef PB_DB_TABLE_H_
#define PB_DB_TABLE_H_

#include <cstddef>
#include <iterator>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "db/column.h"
#include "db/schema.h"
#include "db/tuple.h"

namespace pb::db {

class Table;

/// Lazily-materializing view of a table's rows: the compatibility adapter
/// that lets row-oriented loops (`for (const Tuple& row : table.rows())`)
/// keep working over columnar storage. Dereferencing builds the Tuple.
class RowRange {
 public:
  class iterator {
   public:
    using iterator_category = std::input_iterator_tag;
    using value_type = Tuple;
    using difference_type = std::ptrdiff_t;
    using pointer = const Tuple*;
    using reference = Tuple;

    iterator(const Table* table, size_t i) : table_(table), i_(i) {}
    Tuple operator*() const;
    iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    const Table* table_;
    size_t i_;
  };

  explicit RowRange(const Table* table) : table_(table) {}
  iterator begin() const { return iterator(table_, 0); }
  iterator end() const;
  size_t size() const;
  bool empty() const { return size() == 0; }
  Tuple operator[](size_t i) const;

 private:
  const Table* table_;
};

/// Column-wise single-row appender: generators push typed values straight
/// into the column vectors, skipping Tuple/Value materialization entirely.
///
///   table.StartRow().Int(id).Double(price).String("air").Finish();
///
/// Exactly num_columns() cells must be appended before Finish(). Int()
/// widens into DOUBLE columns like Table::Append does.
class RowAppender {
 public:
  RowAppender& Null();
  RowAppender& Int(int64_t v);
  RowAppender& Double(double v);
  RowAppender& Bool(bool v);
  RowAppender& String(std::string v);
  RowAppender& Value(const class Value& v);

  /// Commits the row; arity is asserted.
  void Finish();

 private:
  friend class Table;
  explicit RowAppender(Table* table) : table_(table) {}

  Table* table_;
  size_t col_ = 0;
};

/// A named relation: schema + typed columns + stats.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }

  // ----- Row-view compatibility adapters -----------------------------------

  /// Materializes row `i` as a Tuple (copies every cell).
  Tuple row(size_t i) const;

  /// Iterable row view; each dereference materializes one Tuple.
  RowRange rows() const { return RowRange(this); }

  /// Value at (row, column), materialized from the column — returned by
  /// value, so chaining a reference out of it (e.g. binding AsString() to a
  /// long-lived const std::string&) is a lifetime bug. Bounds-checked in
  /// debug builds.
  Value at(size_t row, size_t column) const {
    PB_DCHECK(row < num_rows_)
        << "row " << row << " out of range (" << num_rows_ << " rows)";
    PB_DCHECK(column < columns_.size())
        << "column " << column << " out of range (" << columns_.size()
        << " columns)";
    return columns_[column].GetValue(row);
  }

  // ----- Appends -----------------------------------------------------------

  /// Appends a row after checking arity and (loose) type compatibility:
  /// NULL fits anywhere; INT fits a DOUBLE column (and is widened).
  Status Append(Tuple row);

  /// Appends a batch all-or-nothing: every row is validated (arity + type,
  /// same rules as Append) before any is committed, so a failed batch never
  /// leaves the table half-grown. Fails with InvalidArgument on a spilled
  /// (append-frozen) table — callers that must grow a spilled table go
  /// through Unspill() first. Column stats and zone maps extend
  /// incrementally: zones of blocks that were complete before the append
  /// are reused as-is (see Column::ZoneMaps).
  Status AppendRows(std::vector<Tuple> rows);

  /// Appends without checks (compatibility hot path). Arity must match;
  /// cells must fit their column's storage (NULL anywhere, INT→DOUBLE ok).
  void AppendUnchecked(Tuple row);

  /// Column-wise typed appender — the fastest way to build a table.
  RowAppender StartRow() { return RowAppender(this); }

  /// Copies row `src_row` of `src` (same schema layout) column-wise.
  void AppendRowFrom(const Table& src, size_t src_row);

  /// Reserves capacity in every column.
  void Reserve(size_t n);

  // ----- Columnar access ---------------------------------------------------

  /// Typed storage of one column; index must be valid.
  const Column& column_data(size_t column) const {
    PB_DCHECK(column < columns_.size());
    return columns_[column];
  }

  /// Contiguous span + null mask over a numeric (INT/DOUBLE) column.
  Result<NumericColumnView> NumericView(size_t column) const;
  Result<NumericColumnView> NumericView(const std::string& column) const;

  /// Column statistics; index must be valid.
  const ColumnStats& stats(size_t column) const {
    PB_DCHECK(column < columns_.size());
    return columns_[column].stats();
  }

  /// New table with the given columns of this one (column vectors copied
  /// wholesale — no per-row work). Fails on an out-of-range index or a
  /// duplicated column name.
  Result<Table> SelectColumns(const std::vector<size_t>& indices,
                              const std::string& result_name) const;

  // ----- Out-of-core --------------------------------------------------------

  /// Spills every numeric column to a single segment file at `path`,
  /// sealing values into zone-mapped blocks of `block_size` and freeing
  /// the RAM vectors (see Column::Spill). Non-numeric columns stay
  /// resident. The table becomes append-frozen; reads fault blocks through
  /// `cache` (BlockCache::Default() when null). The segment file is
  /// deleted when the last spilled column copy goes away.
  Status SpillToDisk(const std::string& path,
                     size_t block_size = storage::kDefaultBlockSize,
                     storage::BlockCache* cache = nullptr);

  /// True when any column of this table is spilled.
  bool spilled() const;

  /// Reads every spilled column back into RAM vectors and clears the spill
  /// state, making the table appendable again. The inverse of SpillToDisk:
  /// values round-trip bit-exactly (blocks store the raw vectors). No-op
  /// on a resident table. On an IO error some columns may already be
  /// resident; the table stays readable either way.
  Status Unspill();

  /// Sets the zone-map granularity of every resident numeric column
  /// (test/bench hook; see Column::SetBlockSize).
  void SetBlockSize(size_t block_size);

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  friend class RowAppender;

  /// Arity + type validation shared by Append and AppendRows.
  Status CheckRow(const Tuple& row) const;

  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

inline RowRange::iterator RowRange::end() const {
  return iterator(table_, table_->num_rows());
}
inline size_t RowRange::size() const { return table_->num_rows(); }
inline Tuple RowRange::operator[](size_t i) const { return table_->row(i); }
inline Tuple RowRange::iterator::operator*() const { return table_->row(i_); }

}  // namespace pb::db

#endif  // PB_DB_TABLE_H_
