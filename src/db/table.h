// Table: an in-memory row-store relation with per-column statistics.
//
// The statistics (count / min / max / sum over non-null numeric cells) are
// exactly what the cardinality-based pruning of §4.1 needs: the bounds
// l = ceil(L / MAX(attr)) and u = floor(U / MIN(attr)) are computed from
// column MIN/MAX without touching the rows.

#ifndef PB_DB_TABLE_H_
#define PB_DB_TABLE_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "db/tuple.h"

namespace pb::db {

/// Aggregate statistics for one column, maintained incrementally on append.
struct ColumnStats {
  int64_t non_null_count = 0;
  int64_t null_count = 0;
  // Numeric-only accumulators; unset if the column has no numeric values.
  std::optional<double> min;
  std::optional<double> max;
  double sum = 0.0;

  double mean() const {
    return non_null_count > 0 ? sum / static_cast<double>(non_null_count) : 0.0;
  }
};

/// A named relation: schema + rows + stats.
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)),
        stats_(schema_.num_columns()) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a row after checking arity and (loose) type compatibility:
  /// NULL fits anywhere; INT fits a DOUBLE column (and is widened).
  Status Append(Tuple row);

  /// Appends without checks (hot path for generators). Arity must match.
  void AppendUnchecked(Tuple row);

  /// Column statistics; index must be valid.
  const ColumnStats& stats(size_t column) const { return stats_[column]; }

  /// Value at (row, column) — bounds-checked in debug builds only.
  const Value& at(size_t row, size_t column) const {
    return rows_[row][column];
  }

  /// Renders the first `max_rows` rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;

 private:
  void UpdateStats(const Tuple& row);

  std::string name_;
  Schema schema_;
  std::vector<Tuple> rows_;
  std::vector<ColumnStats> stats_;
};

}  // namespace pb::db

#endif  // PB_DB_TABLE_H_
