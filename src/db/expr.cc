#include "db/expr.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"
#include "db/table.h"

namespace pb::db {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq:  return "=";
    case BinaryOp::kNe:  return "<>";
    case BinaryOp::kLt:  return "<";
    case BinaryOp::kLe:  return "<=";
    case BinaryOp::kGt:  return ">";
    case BinaryOp::kGe:  return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr:  return "OR";
  }
  return "?";
}

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: case BinaryOp::kNe: case BinaryOp::kLt:
    case BinaryOp::kLe: case BinaryOp::kGt: case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: case BinaryOp::kSub: case BinaryOp::kMul:
    case BinaryOp::kDiv: case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

bool IsLogicalOp(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

namespace {

/// Strips an optional qualifier: "R.calories" -> "calories".
std::string UnqualifiedName(const std::string& name) {
  size_t dot = name.rfind('.');
  if (dot == std::string::npos) return name;
  return name.substr(dot + 1);
}

Result<Value> EvalComparison(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  // Disallow comparing string to number (likely a query bug).
  if (l.is_numeric() != r.is_numeric() &&
      !(l.is_bool() && r.is_bool())) {
    if (l.type() != r.type()) {
      return Status::TypeError(std::string("cannot compare ") +
                               ValueTypeToString(l.type()) + " with " +
                               ValueTypeToString(r.type()));
    }
  }
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq: result = (c == 0); break;
    case BinaryOp::kNe: result = (c != 0); break;
    case BinaryOp::kLt: result = (c < 0); break;
    case BinaryOp::kLe: result = (c <= 0); break;
    case BinaryOp::kGt: result = (c > 0); break;
    case BinaryOp::kGe: result = (c >= 0); break;
    default: return Status::Internal("not a comparison op");
  }
  return Value::Bool(result);
}

Result<Value> EvalArithmetic(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  if (!l.is_numeric() || !r.is_numeric()) {
    return Status::TypeError(std::string("arithmetic requires numeric "
                                         "operands, got ") +
                             ValueTypeToString(l.type()) + " and " +
                             ValueTypeToString(r.type()));
  }
  // Integer arithmetic stays integral (except division by zero handling).
  if (l.is_int() && r.is_int()) {
    int64_t a = l.AsInt(), b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        // SQL-style: integer division of integers.
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("modulo by zero");
        return Value::Int(a % b);
      default: break;
    }
  }
  double a = l.is_int() ? static_cast<double>(l.AsInt()) : l.AsDoubleExact();
  double b = r.is_int() ? static_cast<double>(r.AsInt()) : r.AsDoubleExact();
  switch (op) {
    case BinaryOp::kAdd: return Value::Double(a + b);
    case BinaryOp::kSub: return Value::Double(a - b);
    case BinaryOp::kMul: return Value::Double(a * b);
    case BinaryOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
    case BinaryOp::kMod:
      if (b == 0.0) return Status::InvalidArgument("modulo by zero");
      return Value::Double(std::fmod(a, b));
    default:
      return Status::Internal("not an arithmetic op");
  }
}

/// Kleene AND/OR over {false, null, true}.
Result<Value> EvalLogical(BinaryOp op, const Value& l, const Value& r) {
  auto truth = [](const Value& v) -> Result<int> {  // 0=false, 1=null, 2=true
    if (v.is_null()) return 1;
    if (v.is_bool()) return v.AsBool() ? 2 : 0;
    return Status::TypeError(std::string("logical operand must be BOOL, got ") +
                             ValueTypeToString(v.type()));
  };
  PB_ASSIGN_OR_RETURN(int a, truth(l));
  PB_ASSIGN_OR_RETURN(int b, truth(r));
  int result;
  if (op == BinaryOp::kAnd) {
    result = std::min(a, b);
  } else {
    result = std::max(a, b);
  }
  if (result == 1) return Value::Null();
  return Value::Bool(result == 2);
}

}  // namespace

Status Expr::Bind(const Schema& schema) {
  if (kind == ExprKind::kColumnRef) {
    auto idx = schema.IndexOf(column_name);
    if (!idx.ok()) {
      // Retry with the qualifier stripped ("R.calories" -> "calories").
      idx = schema.IndexOf(UnqualifiedName(column_name));
    }
    if (!idx.ok()) return idx.status();
    column_index = static_cast<int>(*idx);
  }
  for (auto& c : children) {
    PB_RETURN_IF_ERROR(c->Bind(schema));
  }
  return Status::OK();
}

namespace {

/// Row accessor over a materialized Tuple.
struct TupleRow {
  const Tuple* tuple;
  Result<Value> Get(int i) const {
    if (static_cast<size_t>(i) >= tuple->size()) {
      return Status::OutOfRange("column index out of range");
    }
    return (*tuple)[i];
  }
};

/// Row accessor over columnar storage: one cell materializes at a time.
struct TableRow {
  const Table* table;
  size_t row;
  Result<Value> Get(int i) const {
    if (static_cast<size_t>(i) >= table->schema().num_columns()) {
      return Status::OutOfRange("column index out of range");
    }
    return table->column_data(i).GetValue(row);
  }
};

}  // namespace

template <typename RowT>
Result<Value> Expr::EvalImpl(const RowT& row) const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal;
    case ExprKind::kColumnRef: {
      if (column_index < 0) {
        return Status::Internal("unbound column '" + column_name + "'");
      }
      return row.Get(column_index);
    }
    case ExprKind::kUnary: {
      PB_ASSIGN_OR_RETURN(Value v, children[0]->EvalImpl(row));
      if (v.is_null()) return Value::Null();
      if (unary_op == UnaryOp::kNeg) {
        if (v.is_int()) return Value::Int(-v.AsInt());
        if (v.is_double()) return Value::Double(-v.AsDoubleExact());
        return Status::TypeError("unary minus requires a numeric operand");
      }
      // NOT
      if (!v.is_bool()) {
        return Status::TypeError("NOT requires a BOOL operand");
      }
      return Value::Bool(!v.AsBool());
    }
    case ExprKind::kBinary: {
      // Short-circuit-free evaluation is fine: expressions are pure.
      PB_ASSIGN_OR_RETURN(Value l, children[0]->EvalImpl(row));
      PB_ASSIGN_OR_RETURN(Value r, children[1]->EvalImpl(row));
      if (IsComparisonOp(binary_op)) return EvalComparison(binary_op, l, r);
      if (IsArithmeticOp(binary_op)) return EvalArithmetic(binary_op, l, r);
      return EvalLogical(binary_op, l, r);
    }
    case ExprKind::kBetween: {
      PB_ASSIGN_OR_RETURN(Value v, children[0]->EvalImpl(row));
      PB_ASSIGN_OR_RETURN(Value lo, children[1]->EvalImpl(row));
      PB_ASSIGN_OR_RETURN(Value hi, children[2]->EvalImpl(row));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Bool(negated ? !in : in);
    }
    case ExprKind::kIn: {
      PB_ASSIGN_OR_RETURN(Value v, children[0]->EvalImpl(row));
      if (v.is_null()) return Value::Null();
      bool found = false;
      for (const Value& item : in_list) {
        if (!item.is_null() && v.Compare(item) == 0) {
          found = true;
          break;
        }
      }
      return Value::Bool(negated ? !found : found);
    }
    case ExprKind::kIsNull: {
      PB_ASSIGN_OR_RETURN(Value v, children[0]->EvalImpl(row));
      bool isnull = v.is_null();
      return Value::Bool(negated ? !isnull : isnull);
    }
    case ExprKind::kLike: {
      PB_ASSIGN_OR_RETURN(Value v, children[0]->EvalImpl(row));
      if (v.is_null()) return Value::Null();
      if (!v.is_string()) {
        return Status::TypeError("LIKE requires a STRING operand");
      }
      bool m = LikeMatch(v.AsString(), like_pattern);
      return Value::Bool(negated ? !m : m);
    }
  }
  return Status::Internal("unknown expression kind");
}

Result<Value> Expr::Eval(const Tuple& tuple) const {
  return EvalImpl(TupleRow{&tuple});
}

Result<Value> Expr::Eval(const Table& table, size_t row) const {
  return EvalImpl(TableRow{&table, row});
}

namespace {

Result<bool> ToMatch(Result<Value> v) {
  PB_RETURN_IF_ERROR(v.status());
  if (v->is_null()) return false;
  if (!v->is_bool()) {
    return Status::TypeError("predicate must evaluate to BOOL, got " +
                             std::string(ValueTypeToString(v->type())));
  }
  return v->AsBool();
}

}  // namespace

Result<bool> Expr::Matches(const Tuple& tuple) const {
  return ToMatch(Eval(tuple));
}

Result<bool> Expr::Matches(const Table& table, size_t row) const {
  return ToMatch(Eval(table, row));
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return column_name;
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kNeg) return "-" + children[0]->ToString();
      return "NOT (" + children[0]->ToString() + ")";
    case ExprKind::kBinary: {
      std::string l = children[0]->ToString();
      std::string r = children[1]->ToString();
      if (IsLogicalOp(binary_op)) {
        return "(" + l + " " + BinaryOpToString(binary_op) + " " + r + ")";
      }
      return l + " " + BinaryOpToString(binary_op) + " " + r;
    }
    case ExprKind::kBetween:
      return children[0]->ToString() +
             (negated ? " NOT BETWEEN " : " BETWEEN ") +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kIn: {
      std::string out =
          children[0]->ToString() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < in_list.size(); ++i) {
        if (i > 0) out += ", ";
        out += in_list[i].ToSqlLiteral();
      }
      return out + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return children[0]->ToString() + (negated ? " NOT LIKE '" : " LIKE '") +
             like_pattern + "'";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_shared<Expr>(*this);
  out->children.clear();
  for (const auto& c : children) out->children.push_back(c->Clone());
  return out;
}

// ----- Factories -----------------------------------------------------------

ExprPtr Lit(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr LitInt(int64_t v) { return Lit(Value::Int(v)); }
ExprPtr LitDouble(double v) { return Lit(Value::Double(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr LitBool(bool v) { return Lit(Value::Bool(v)); }

ExprPtr Col(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->column_name = std::move(name);
  return e;
}

ExprPtr Unary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(child));
  return e;
}

ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Between(ExprPtr arg, ExprPtr lo, ExprPtr hi, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBetween;
  e->children = {std::move(arg), std::move(lo), std::move(hi)};
  e->negated = negated;
  return e;
}

ExprPtr In(ExprPtr arg, std::vector<Value> list, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIn;
  e->children.push_back(std::move(arg));
  e->in_list = std::move(list);
  e->negated = negated;
  return e;
}

ExprPtr IsNull(ExprPtr arg, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->children.push_back(std::move(arg));
  e->negated = negated;
  return e;
}

ExprPtr Like(ExprPtr arg, std::string pattern, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLike;
  e->children.push_back(std::move(arg));
  e->like_pattern = std::move(pattern);
  e->negated = negated;
  return e;
}

ExprPtr AndMaybe(ExprPtr a, ExprPtr b) {
  if (!a) return b;
  if (!b) return a;
  return Binary(BinaryOp::kAnd, std::move(a), std::move(b));
}

}  // namespace pb::db
