#include "db/value.h"

#include <cmath>

#include "common/strings.h"

namespace pb::db {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

Result<double> Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDoubleExact();
    default:
      return Status::TypeError(std::string("cannot convert ") +
                               ValueTypeToString(type()) + " to DOUBLE");
  }
}

int Value::Compare(const Value& other) const {
  // NULL sorts first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Cross-type numeric comparison.
  if (is_numeric() && other.is_numeric()) {
    double a = is_int() ? static_cast<double>(AsInt()) : AsDoubleExact();
    double b = other.is_int() ? static_cast<double>(other.AsInt())
                              : other.AsDoubleExact();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::kBool: {
      int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
      return a - b;
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // unreachable: numerics and nulls handled above
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble:
      return FormatDouble(AsDoubleExact());
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (is_string()) {
    std::string out = "'";
    for (char c : AsString()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

}  // namespace pb::db
