// Column: contiguous typed storage for one attribute of a relation.
//
// The engine's hot paths (ILP coefficient extraction, MIN/MAX pruning
// bounds, SketchRefine partitioning, column statistics) are memory-bound
// when every cell sits behind a std::variant in a row-store. A Column keeps
// the values of one attribute in a single typed vector (double / int64_t /
// bool / string) plus a word-packed null bitmap, so numeric consumers can
// run one tight pass over a contiguous span instead of dispatching per
// cell. Columns whose declared type is kNull ("untyped / any") fall back to
// per-cell Value storage, which is what heterogeneous outputs like GroupBy
// aggregates need.
//
// Out-of-core storage: a numeric column can be Spill()ed — its values are
// sealed into fixed-size zone-mapped blocks (storage/block.h), appended to
// a SegmentFile, and the RAM vectors freed. A spilled column is read-only;
// reads fault blocks through the BlockCache. The whole-column null bitmap
// and ColumnStats always stay resident, so IsNull / COUNT never touch
// disk. Resident numeric columns expose the same logical block structure
// (zone maps are built lazily at the same granularity), which keeps
// zone-map-consuming algorithms — and their skip counters — independent of
// where the bytes live.

#ifndef PB_DB_COLUMN_H_
#define PB_DB_COLUMN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/logging.h"
#include "common/status.h"
#include "db/value.h"
#include "storage/block.h"
#include "storage/block_cache.h"
#include "storage/segment_file.h"

namespace pb::db {

/// Aggregate statistics for one column, maintained incrementally on append.
struct ColumnStats {
  int64_t non_null_count = 0;
  int64_t null_count = 0;
  // Numeric-only accumulators; unset if the column has no numeric values.
  std::optional<double> min;
  std::optional<double> max;
  double sum = 0.0;

  double mean() const {
    return non_null_count > 0 ? sum / static_cast<double>(non_null_count) : 0.0;
  }
};

/// Word-packed bitmap marking NULL slots (bit set == NULL).
class NullBitmap {
 public:
  size_t size() const { return size_; }
  int64_t null_count() const { return null_count_; }
  bool any() const { return null_count_ > 0; }

  bool Test(size_t i) const {
    PB_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Append(bool is_null) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (is_null) {
      words_.back() |= uint64_t{1} << (size_ & 63);
      ++null_count_;
    }
    ++size_;
  }

  void Reserve(size_t n) { words_.reserve((n + 63) / 64); }

  /// Raw words for vectorized consumers; bit i of words()[i/64] == NULL.
  const uint64_t* words() const { return words_.data(); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  int64_t null_count_ = 0;
};

class Column;

/// Read-only view over a numeric column, resident or spilled.
///
/// Two access styles coexist:
///  - Flat spans: doubles()/ints() return the whole column when it is
///    resident, nullptr when it is spilled. Existing single-pass consumers
///    keep their tight loops and add a block-iterating branch for the
///    spilled case.
///  - Blocks: num_blocks()/block_size()/zone(b) describe the logical block
///    structure of BOTH layouts without any IO; block(b) returns the values
///    of one block, pinning it through the BlockCache when spilled. The
///    span returned by block(b) stays valid until the next block() call on
///    this view (one pin is cached), so iterate blocks in order and finish
///    with one before asking for the next.
///
/// Error handling: IO failures and storage-budget refusals set a sticky
/// status(); after that, block(b) returns an empty span and operator[]
/// returns 0.0. Consumers check status() once after their pass. A view is
/// a per-call-site value object and is not thread-safe; create one view
/// per thread.
class NumericColumnView {
 public:
  NumericColumnView() = default;

  // Copies share the column but not the cached pin or the sticky status.
  NumericColumnView(const NumericColumnView& other) { *this = other; }
  NumericColumnView& operator=(const NumericColumnView& other) {
    if (this != &other) {
      col_ = other.col_;
      dbl_ = other.dbl_;
      int_ = other.int_;
      nulls_ = other.nulls_;
      size_ = other.size_;
      zones_ = nullptr;
      cur_block_ = kNoBlock;
      cur_handle_ = storage::BlockHandle();
      status_ = Status::OK();
    }
    return *this;
  }
  NumericColumnView(NumericColumnView&&) = default;
  NumericColumnView& operator=(NumericColumnView&&) = default;

  size_t size() const { return size_; }
  bool valid() const { return col_ != nullptr; }
  bool has_nulls() const { return nulls_ && nulls_->any(); }
  int64_t null_count() const { return nulls_ ? nulls_->null_count() : 0; }

  /// Null test by global row index; always RAM-resident, never faults.
  bool IsNull(size_t i) const { return nulls_ && nulls_->Test(i); }

  /// True when the column's values live in a segment file.
  bool spilled() const;

  /// Value at i as double; meaningful only where !IsNull(i). O(1) for
  /// resident columns; for spilled columns, faults i's block through the
  /// cached pin (sequential access stays one pin per block).
  double operator[](size_t i) const {
    PB_DCHECK(i < size_);
    if (dbl_ != nullptr) return dbl_[i];
    if (int_ != nullptr) return static_cast<double>(int_[i]);
    return SpilledAt(i);
  }

  /// Whole-column contiguous spans; nullptr when the column is spilled or
  /// is the other storage type.
  const double* doubles() const { return dbl_; }
  const int64_t* ints() const { return int_; }
  const NullBitmap* null_mask() const { return nulls_; }

  // ----- Block structure (no IO) -------------------------------------------

  size_t block_size() const;
  size_t num_blocks() const {
    const size_t bs = block_size();
    return (size_ + bs - 1) / bs;
  }

  /// Zone map of block b — min/max/sum/null counts over the block's rows —
  /// served from metadata for spilled columns and from a lazily built (and
  /// cached) scan for resident ones. Never reads block data.
  const storage::ZoneMap& zone(size_t b) const;

  // ----- Block data ---------------------------------------------------------

  /// One block's values. `offset` is the global row index of slot 0; test
  /// nulls with IsNull(offset + k) on the view (the bitmap is global).
  struct BlockSpan {
    const double* dbl = nullptr;
    const int64_t* ints = nullptr;
    size_t offset = 0;
    size_t count = 0;

    bool valid() const { return dbl != nullptr || ints != nullptr; }
    /// Slot k (block-local) as double; meaningful only for non-null slots.
    double Value(size_t k) const {
      return dbl != nullptr ? dbl[k] : static_cast<double>(ints[k]);
    }
  };

  /// The values of block b, pinning it when spilled. Valid until the next
  /// block() call on this view. Empty (valid()==false) after an error —
  /// check status().
  BlockSpan block(size_t b) const;

  /// Sticky error channel: OK until a pin fails (IO error, checksum
  /// mismatch, storage budget exhausted). Once set, stays set.
  const Status& status() const { return status_; }

 private:
  friend class Column;
  static constexpr size_t kNoBlock = static_cast<size_t>(-1);

  explicit NumericColumnView(const Column* col);

  double SpilledAt(size_t i) const;

  const Column* col_ = nullptr;
  const double* dbl_ = nullptr;   // resident double storage only
  const int64_t* int_ = nullptr;  // resident int storage only
  const NullBitmap* nulls_ = nullptr;
  size_t size_ = 0;

  mutable const storage::ZoneMap* zones_ = nullptr;  // fetched on first use
  mutable size_t cur_block_ = kNoBlock;              // cached spilled pin
  mutable storage::BlockHandle cur_handle_;
  mutable Status status_;
};

/// Contiguous typed storage for one column, with incremental statistics.
class Column {
 public:
  Column() : Column(ValueType::kNull) {}
  explicit Column(ValueType storage) : storage_(storage) {}

  // Copyable (SelectColumns copies columns wholesale). Copies share the
  // segment file of a spilled column and drop nothing; the lazy zone-map
  // cache is copied under the source's lock.
  Column(const Column& other) { *this = other; }
  Column& operator=(const Column& other);
  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept;

  /// The storage layout: kInt/kDouble/kBool/kString are typed vectors;
  /// kNull is the per-cell Value fallback for untyped columns.
  ValueType storage_type() const { return storage_; }
  bool numeric_storage() const {
    return storage_ == ValueType::kInt || storage_ == ValueType::kDouble;
  }

  size_t size() const { return nulls_.size(); }
  bool IsNull(size_t i) const { return nulls_.Test(i); }
  const NullBitmap& nulls() const { return nulls_; }
  const ColumnStats& stats() const { return stats_; }

  /// Materializes the cell as a Value (copies strings). For spilled
  /// columns this faults the cell's block through the cache (uncounted by
  /// any StorageBudget: per-cell compat access is correctness, the budget
  /// polices the bulk gather paths).
  Value GetValue(size_t i) const;

  // ----- Typed appends (the column-wise hot path) --------------------------
  // Each appends one slot and updates the stats. AppendInt widens into
  // DOUBLE storage; the other typed appends require matching storage.
  // Appending to a spilled column is a programming error (DCHECK).

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Appends any Value. NULL fits anywhere; INT widens into DOUBLE storage.
  /// A value that does not fit the storage type is a programming error:
  /// asserted in debug builds, appended as NULL in release.
  void AppendValue(const Value& v);

  /// Appends slot `i` of `src` (same storage type), without a Value hop.
  void AppendFrom(const Column& src, size_t i);

  void Reserve(size_t n);

  // ----- Contiguous data access --------------------------------------------

  /// Typed spans; valid only for the matching storage type. NULL slots
  /// hold zero/empty placeholders. Empty after Spill() — check spilled()
  /// or go through NumericView().
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<Value>& values() const { return values_; }

  /// Span + null-mask + block view; requires numeric_storage().
  NumericColumnView NumericView() const {
    PB_DCHECK(numeric_storage());
    return NumericColumnView(this);
  }

  /// Three-way compare of two slots, matching Value::Compare semantics
  /// (NULL sorts before everything).
  int Compare(size_t a, size_t b) const;

  // ----- Out-of-core --------------------------------------------------------

  /// Seals this numeric column's values into zone-mapped blocks of
  /// `block_size` values, appends them to `file`, and frees the RAM
  /// vectors. The column becomes read-only (reads fault through `cache`).
  /// Non-numeric columns are left resident (Status OK, no-op): strings and
  /// untyped columns are out of scope for v1 (see the storage ADR).
  Status Spill(std::shared_ptr<storage::SegmentFile> file,
               storage::BlockCache* cache,
               size_t block_size = storage::kDefaultBlockSize);

  bool spilled() const { return file_ != nullptr; }

  /// Reads every block back into the RAM vector and clears the spill
  /// state, making the column appendable again — the inverse of Spill().
  /// Values round-trip bit-exactly (blocks store the raw vector slices,
  /// NULL placeholders included). The zone-map cache stays valid: same
  /// values, same block granularity. No-op when resident.
  Status Unspill();

  /// Logical block granularity: the spill block size, or the zone-map
  /// granularity of a resident column (kDefaultBlockSize unless overridden).
  size_t block_size() const { return block_size_; }
  size_t num_blocks() const {
    return size() == 0 ? 0 : (size() + block_size_ - 1) / block_size_;
  }

  /// Overrides the zone-map granularity of a RESIDENT column (test/bench
  /// hook so small datasets exercise multi-block paths and so a resident
  /// baseline reproduces a spilled run's zone counters). Resets the lazy
  /// zone cache.
  void SetBlockSize(size_t block_size);

  /// Zone maps for all blocks (num_blocks() entries), built lazily for
  /// resident numeric columns and served from spill metadata otherwise.
  /// Returns nullptr for non-numeric columns. The pointer stays valid
  /// until the column is appended to or destroyed.
  const storage::ZoneMap* ZoneMaps() const;

  /// The spill cache (nullptr when resident); stats live here.
  storage::BlockCache* cache() const { return cache_; }

 private:
  friend class NumericColumnView;

  /// Pins block b of a spilled column. `charge_budget` selects whether the
  /// calling thread's StorageBudget is charged (bulk view access) or not
  /// (per-cell compat access).
  Result<storage::BlockHandle> PinBlock(size_t b, bool charge_budget) const;

  ValueType storage_;
  NullBitmap nulls_;
  ColumnStats stats_;
  // Exactly one of these is populated, per storage_ (all empty once
  // spilled).
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;  // untyped fallback

  // Spill state; set once by Spill() and immutable afterwards.
  std::shared_ptr<storage::SegmentFile> file_;
  storage::BlockCache* cache_ = nullptr;
  std::vector<storage::BlockLocator> locators_;
  size_t block_size_ = storage::kDefaultBlockSize;

  // Zone maps: eager (spill metadata) for spilled columns, built lazily
  // for resident numeric ones; when the column has grown since the last
  // build, zones of still-complete blocks are kept and only the tail is
  // recomputed (appends never touch sealed blocks).
  mutable Mutex zone_mu_;
  mutable std::vector<storage::ZoneMap> zones_ PB_GUARDED_BY(zone_mu_);
  mutable bool zones_built_ PB_GUARDED_BY(zone_mu_) = false;
  mutable size_t zones_for_size_ PB_GUARDED_BY(zone_mu_) = 0;
};

inline NumericColumnView::NumericColumnView(const Column* col)
    : col_(col), nulls_(&col->nulls()), size_(col->size()) {
  if (!col->spilled()) {
    if (col->storage_type() == ValueType::kDouble) {
      dbl_ = col->doubles().data();
    } else {
      int_ = col->ints().data();
    }
  }
}

inline bool NumericColumnView::spilled() const {
  return col_ != nullptr && col_->spilled();
}

inline size_t NumericColumnView::block_size() const {
  return col_ != nullptr ? col_->block_size() : storage::kDefaultBlockSize;
}

}  // namespace pb::db

#endif  // PB_DB_COLUMN_H_
