// Column: contiguous typed storage for one attribute of a relation.
//
// The engine's hot paths (ILP coefficient extraction, MIN/MAX pruning
// bounds, SketchRefine partitioning, column statistics) are memory-bound
// when every cell sits behind a std::variant in a row-store. A Column keeps
// the values of one attribute in a single typed vector (double / int64_t /
// bool / string) plus a word-packed null bitmap, so numeric consumers can
// run one tight pass over a contiguous span instead of dispatching per
// cell. Columns whose declared type is kNull ("untyped / any") fall back to
// per-cell Value storage, which is what heterogeneous outputs like GroupBy
// aggregates need.

#ifndef PB_DB_COLUMN_H_
#define PB_DB_COLUMN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/logging.h"
#include "db/value.h"

namespace pb::db {

/// Aggregate statistics for one column, maintained incrementally on append.
struct ColumnStats {
  int64_t non_null_count = 0;
  int64_t null_count = 0;
  // Numeric-only accumulators; unset if the column has no numeric values.
  std::optional<double> min;
  std::optional<double> max;
  double sum = 0.0;

  double mean() const {
    return non_null_count > 0 ? sum / static_cast<double>(non_null_count) : 0.0;
  }
};

/// Word-packed bitmap marking NULL slots (bit set == NULL).
class NullBitmap {
 public:
  size_t size() const { return size_; }
  int64_t null_count() const { return null_count_; }
  bool any() const { return null_count_ > 0; }

  bool Test(size_t i) const {
    PB_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Append(bool is_null) {
    if ((size_ & 63) == 0) words_.push_back(0);
    if (is_null) {
      words_.back() |= uint64_t{1} << (size_ & 63);
      ++null_count_;
    }
    ++size_;
  }

  void Reserve(size_t n) { words_.reserve((n + 63) / 64); }

  /// Raw words for vectorized consumers; bit i of words()[i/64] == NULL.
  const uint64_t* words() const { return words_.data(); }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  int64_t null_count_ = 0;
};

/// Read-only view over a numeric column: a contiguous span of values plus
/// the null mask. Exactly one of doubles()/ints() is non-null; operator[]
/// coerces to double either way. Slots where IsNull(i) hold an unspecified
/// placeholder and must be masked by the consumer.
class NumericColumnView {
 public:
  NumericColumnView() = default;

  size_t size() const { return size_; }
  bool valid() const { return dbl_ != nullptr || int_ != nullptr; }
  bool has_nulls() const { return nulls_ && nulls_->any(); }
  int64_t null_count() const { return nulls_ ? nulls_->null_count() : 0; }

  bool IsNull(size_t i) const { return nulls_ && nulls_->Test(i); }

  /// Value at i as double; meaningful only where !IsNull(i).
  double operator[](size_t i) const {
    PB_DCHECK(i < size_);
    return dbl_ ? dbl_[i] : static_cast<double>(int_[i]);
  }

  /// Contiguous spans; nullptr for the storage type the column is not.
  const double* doubles() const { return dbl_; }
  const int64_t* ints() const { return int_; }
  const NullBitmap* null_mask() const { return nulls_; }

 private:
  friend class Column;
  NumericColumnView(const double* d, const int64_t* i, const NullBitmap* n,
                    size_t size)
      : dbl_(d), int_(i), nulls_(n), size_(size) {}

  const double* dbl_ = nullptr;
  const int64_t* int_ = nullptr;
  const NullBitmap* nulls_ = nullptr;
  size_t size_ = 0;
};

/// Contiguous typed storage for one column, with incremental statistics.
class Column {
 public:
  Column() : Column(ValueType::kNull) {}
  explicit Column(ValueType storage) : storage_(storage) {}

  /// The storage layout: kInt/kDouble/kBool/kString are typed vectors;
  /// kNull is the per-cell Value fallback for untyped columns.
  ValueType storage_type() const { return storage_; }
  bool numeric_storage() const {
    return storage_ == ValueType::kInt || storage_ == ValueType::kDouble;
  }

  size_t size() const { return nulls_.size(); }
  bool IsNull(size_t i) const { return nulls_.Test(i); }
  const NullBitmap& nulls() const { return nulls_; }
  const ColumnStats& stats() const { return stats_; }

  /// Materializes the cell as a Value (copies strings).
  Value GetValue(size_t i) const;

  // ----- Typed appends (the column-wise hot path) --------------------------
  // Each appends one slot and updates the stats. AppendInt widens into
  // DOUBLE storage; the other typed appends require matching storage.

  void AppendNull();
  void AppendInt(int64_t v);
  void AppendDouble(double v);
  void AppendBool(bool v);
  void AppendString(std::string v);

  /// Appends any Value. NULL fits anywhere; INT widens into DOUBLE storage.
  /// A value that does not fit the storage type is a programming error:
  /// asserted in debug builds, appended as NULL in release.
  void AppendValue(const Value& v);

  /// Appends slot `i` of `src` (same storage type), without a Value hop.
  void AppendFrom(const Column& src, size_t i);

  void Reserve(size_t n);

  // ----- Contiguous data access --------------------------------------------

  /// Typed spans; valid only for the matching storage type. NULL slots
  /// hold zero/empty placeholders.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<uint8_t>& bools() const { return bools_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<Value>& values() const { return values_; }

  /// Span + null-mask view; requires numeric_storage().
  NumericColumnView NumericView() const {
    PB_DCHECK(numeric_storage());
    return NumericColumnView(
        storage_ == ValueType::kDouble ? doubles_.data() : nullptr,
        storage_ == ValueType::kInt ? ints_.data() : nullptr, &nulls_, size());
  }

  /// Three-way compare of two slots, matching Value::Compare semantics
  /// (NULL sorts before everything).
  int Compare(size_t a, size_t b) const;

 private:
  ValueType storage_;
  NullBitmap nulls_;
  ColumnStats stats_;
  // Exactly one of these is populated, per storage_.
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;  // untyped fallback
};

}  // namespace pb::db

#endif  // PB_DB_COLUMN_H_
