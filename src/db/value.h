// Value: the dynamically-typed cell of the relational engine.
//
// Supported types: NULL, BOOL, INT64, DOUBLE, STRING. Numeric comparisons
// and arithmetic coerce INT64 and DOUBLE; NULL follows SQL three-valued
// semantics at the expression layer (db/expr.h) — a bare Value only knows
// whether it is null.

#ifndef PB_DB_VALUE_H_
#define PB_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace pb::db {

enum class ValueType { kNull = 0, kBool, kInt, kDouble, kString };

/// Returns "NULL", "BOOL", "INT", "DOUBLE", or "STRING".
const char* ValueTypeToString(ValueType t);

/// A single dynamically-typed value.
class Value {
 public:
  /// NULL value.
  Value() : var_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Var(b)); }
  static Value Int(int64_t i) { return Value(Var(i)); }
  static Value Double(double d) { return Value(Var(d)); }
  static Value String(std::string s) { return Value(Var(std::move(s))); }

  ValueType type() const {
    return static_cast<ValueType>(var_.index());
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  /// INT or DOUBLE.
  bool is_numeric() const { return is_int() || is_double(); }

  /// Requires the matching type.
  bool AsBool() const { return std::get<bool>(var_); }
  int64_t AsInt() const { return std::get<int64_t>(var_); }
  double AsDoubleExact() const { return std::get<double>(var_); }
  const std::string& AsString() const { return std::get<std::string>(var_); }

  /// Numeric coercion: INT and DOUBLE both convert; others are an error.
  Result<double> ToDouble() const;

  /// Three-way comparison for ORDER BY and predicate evaluation.
  /// NULL sorts before everything; numerics compare cross-type; mixed
  /// non-numeric types compare by type rank (stable but arbitrary).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Display form: NULL, true/false, numbers, raw string (no quotes).
  std::string ToString() const;

  /// SQL-literal form: strings quoted and escaped.
  std::string ToSqlLiteral() const;

 private:
  using Var = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Var v) : var_(std::move(v)) {}
  Var var_;
};

}  // namespace pb::db

#endif  // PB_DB_VALUE_H_
