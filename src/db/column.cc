#include "db/column.h"

namespace pb::db {

namespace {

/// Numeric stats update shared by the typed appends.
inline void AddNumeric(ColumnStats* s, double d) {
  ++s->non_null_count;
  s->sum += d;
  if (!s->min || d < *s->min) s->min = d;
  if (!s->max || d > *s->max) s->max = d;
}

}  // namespace

Value Column::GetValue(size_t i) const {
  PB_DCHECK(i < size());
  if (storage_ != ValueType::kNull && nulls_.Test(i)) return Value::Null();
  switch (storage_) {
    case ValueType::kInt:
      return Value::Int(ints_[i]);
    case ValueType::kDouble:
      return Value::Double(doubles_[i]);
    case ValueType::kBool:
      return Value::Bool(bools_[i] != 0);
    case ValueType::kString:
      return Value::String(strings_[i]);
    case ValueType::kNull:
      return values_[i];
  }
  return Value::Null();
}

void Column::AppendNull() {
  // The only place a null is recorded: stats_.null_count (the public stats
  // mirror) and the bitmap stay in sync by construction.
  nulls_.Append(true);
  ++stats_.null_count;
  switch (storage_) {
    case ValueType::kInt:    ints_.push_back(0); break;
    case ValueType::kDouble: doubles_.push_back(0.0); break;
    case ValueType::kBool:   bools_.push_back(0); break;
    case ValueType::kString: strings_.emplace_back(); break;
    case ValueType::kNull:   values_.emplace_back(); break;
  }
}

void Column::AppendInt(int64_t v) {
  if (storage_ == ValueType::kDouble) {  // INT widens into DOUBLE storage
    AppendDouble(static_cast<double>(v));
    return;
  }
  PB_DCHECK(storage_ == ValueType::kInt);
  nulls_.Append(false);
  ints_.push_back(v);
  AddNumeric(&stats_, static_cast<double>(v));
}

void Column::AppendDouble(double v) {
  PB_DCHECK(storage_ == ValueType::kDouble);
  nulls_.Append(false);
  doubles_.push_back(v);
  AddNumeric(&stats_, v);
}

void Column::AppendBool(bool v) {
  PB_DCHECK(storage_ == ValueType::kBool);
  nulls_.Append(false);
  bools_.push_back(v ? 1 : 0);
  ++stats_.non_null_count;
}

void Column::AppendString(std::string v) {
  PB_DCHECK(storage_ == ValueType::kString);
  nulls_.Append(false);
  strings_.push_back(std::move(v));
  ++stats_.non_null_count;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (storage_ == ValueType::kNull) {
    // Untyped fallback: store the Value, dispatch stats on its runtime type.
    nulls_.Append(false);
    values_.push_back(v);
    if (v.is_numeric()) {
      AddNumeric(&stats_, v.is_int() ? static_cast<double>(v.AsInt())
                                     : v.AsDoubleExact());
    } else {
      ++stats_.non_null_count;
    }
    return;
  }
  switch (v.type()) {
    case ValueType::kInt:
      if (storage_ == ValueType::kInt || storage_ == ValueType::kDouble) {
        AppendInt(v.AsInt());
        return;
      }
      break;
    case ValueType::kDouble:
      if (storage_ == ValueType::kDouble) {
        AppendDouble(v.AsDoubleExact());
        return;
      }
      break;
    case ValueType::kBool:
      if (storage_ == ValueType::kBool) {
        AppendBool(v.AsBool());
        return;
      }
      break;
    case ValueType::kString:
      if (storage_ == ValueType::kString) {
        AppendString(v.AsString());
        return;
      }
      break;
    default:
      break;
  }
  PB_DCHECK(false) << "value of type " << ValueTypeToString(v.type())
                   << " does not fit " << ValueTypeToString(storage_)
                   << " column storage";
  AppendNull();
}

void Column::AppendFrom(const Column& src, size_t i) {
  PB_DCHECK(i < src.size());
  if (src.storage_ == storage_) {
    if (src.nulls_.Test(i) && storage_ != ValueType::kNull) {
      AppendNull();
      return;
    }
    switch (storage_) {
      case ValueType::kInt:    AppendInt(src.ints_[i]); return;
      case ValueType::kDouble: AppendDouble(src.doubles_[i]); return;
      case ValueType::kBool:   AppendBool(src.bools_[i] != 0); return;
      case ValueType::kString: AppendString(src.strings_[i]); return;
      case ValueType::kNull:   AppendValue(src.values_[i]); return;
    }
  }
  AppendValue(src.GetValue(i));
}

void Column::Reserve(size_t n) {
  nulls_.Reserve(n);
  switch (storage_) {
    case ValueType::kInt:    ints_.reserve(n); break;
    case ValueType::kDouble: doubles_.reserve(n); break;
    case ValueType::kBool:   bools_.reserve(n); break;
    case ValueType::kString: strings_.reserve(n); break;
    case ValueType::kNull:   values_.reserve(n); break;
  }
}

int Column::Compare(size_t a, size_t b) const {
  PB_DCHECK(a < size() && b < size());
  if (storage_ == ValueType::kNull) return values_[a].Compare(values_[b]);
  bool an = nulls_.Test(a), bn = nulls_.Test(b);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);  // NULL sorts first
  switch (storage_) {
    case ValueType::kInt:
      return ints_[a] < ints_[b] ? -1 : (ints_[a] > ints_[b] ? 1 : 0);
    case ValueType::kDouble:
      return doubles_[a] < doubles_[b] ? -1
                                       : (doubles_[a] > doubles_[b] ? 1 : 0);
    case ValueType::kBool:
      return bools_[a] < bools_[b] ? -1 : (bools_[a] > bools_[b] ? 1 : 0);
    case ValueType::kString: {
      int c = strings_[a].compare(strings_[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

}  // namespace pb::db
