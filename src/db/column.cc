#include "db/column.h"

#include <algorithm>
#include <utility>

namespace pb::db {

namespace {

/// Numeric stats update shared by the typed appends.
inline void AddNumeric(ColumnStats* s, double d) {
  ++s->non_null_count;
  s->sum += d;
  if (!s->min || d < *s->min) s->min = d;
  if (!s->max || d > *s->max) s->max = d;
}

}  // namespace

// ----- Copy / move (manual because of the zone-cache mutex) ------------------

Column& Column::operator=(const Column& other) {
  if (this == &other) return *this;
  storage_ = other.storage_;
  nulls_ = other.nulls_;
  stats_ = other.stats_;
  ints_ = other.ints_;
  doubles_ = other.doubles_;
  bools_ = other.bools_;
  strings_ = other.strings_;
  values_ = other.values_;
  file_ = other.file_;
  cache_ = other.cache_;
  locators_ = other.locators_;
  block_size_ = other.block_size_;
  {
    MutexLock lock(&other.zone_mu_);
    zones_ = other.zones_;
    zones_built_ = other.zones_built_;
    zones_for_size_ = other.zones_for_size_;
  }
  return *this;
}

Column& Column::operator=(Column&& other) noexcept {
  if (this == &other) return *this;
  storage_ = other.storage_;
  nulls_ = std::move(other.nulls_);
  stats_ = other.stats_;
  ints_ = std::move(other.ints_);
  doubles_ = std::move(other.doubles_);
  bools_ = std::move(other.bools_);
  strings_ = std::move(other.strings_);
  values_ = std::move(other.values_);
  file_ = std::move(other.file_);
  cache_ = other.cache_;
  locators_ = std::move(other.locators_);
  block_size_ = other.block_size_;
  {
    MutexLock lock(&other.zone_mu_);
    zones_ = std::move(other.zones_);
    zones_built_ = other.zones_built_;
    zones_for_size_ = other.zones_for_size_;
  }
  return *this;
}

// ----- Cell access -----------------------------------------------------------

Value Column::GetValue(size_t i) const {
  PB_DCHECK(i < size());
  if (storage_ != ValueType::kNull && nulls_.Test(i)) return Value::Null();
  if (spilled()) {
    // Per-cell compat path: pin the cell's block without budget charging
    // (see header). Pin failures here mean IO corruption, which DCHECKs;
    // release builds degrade to NULL rather than crash.
    auto handle = PinBlock(i / block_size_, /*charge_budget=*/false);
    if (!handle.ok()) {
      PB_DCHECK(false) << "spilled block read failed: "
                       << handle.status().ToString();
      return Value::Null();
    }
    const size_t k = i % block_size_;
    return storage_ == ValueType::kInt ? Value::Int((*handle)->ints[k])
                                       : Value::Double((*handle)->doubles[k]);
  }
  switch (storage_) {
    case ValueType::kInt:
      return Value::Int(ints_[i]);
    case ValueType::kDouble:
      return Value::Double(doubles_[i]);
    case ValueType::kBool:
      return Value::Bool(bools_[i] != 0);
    case ValueType::kString:
      return Value::String(strings_[i]);
    case ValueType::kNull:
      return values_[i];
  }
  return Value::Null();
}

// ----- Appends ---------------------------------------------------------------

void Column::AppendNull() {
  PB_DCHECK(!spilled()) << "append to a spilled (read-only) column";
  // The only place a null is recorded: stats_.null_count (the public stats
  // mirror) and the bitmap stay in sync by construction.
  nulls_.Append(true);
  ++stats_.null_count;
  switch (storage_) {
    case ValueType::kInt:    ints_.push_back(0); break;
    case ValueType::kDouble: doubles_.push_back(0.0); break;
    case ValueType::kBool:   bools_.push_back(0); break;
    case ValueType::kString: strings_.emplace_back(); break;
    case ValueType::kNull:   values_.emplace_back(); break;
  }
}

void Column::AppendInt(int64_t v) {
  if (storage_ == ValueType::kDouble) {  // INT widens into DOUBLE storage
    AppendDouble(static_cast<double>(v));
    return;
  }
  PB_DCHECK(storage_ == ValueType::kInt);
  PB_DCHECK(!spilled()) << "append to a spilled (read-only) column";
  nulls_.Append(false);
  ints_.push_back(v);
  AddNumeric(&stats_, static_cast<double>(v));
}

void Column::AppendDouble(double v) {
  PB_DCHECK(storage_ == ValueType::kDouble);
  PB_DCHECK(!spilled()) << "append to a spilled (read-only) column";
  nulls_.Append(false);
  doubles_.push_back(v);
  AddNumeric(&stats_, v);
}

void Column::AppendBool(bool v) {
  PB_DCHECK(storage_ == ValueType::kBool);
  nulls_.Append(false);
  bools_.push_back(v ? 1 : 0);
  ++stats_.non_null_count;
}

void Column::AppendString(std::string v) {
  PB_DCHECK(storage_ == ValueType::kString);
  nulls_.Append(false);
  strings_.push_back(std::move(v));
  ++stats_.non_null_count;
}

void Column::AppendValue(const Value& v) {
  if (v.is_null()) {
    AppendNull();
    return;
  }
  if (storage_ == ValueType::kNull) {
    // Untyped fallback: store the Value, dispatch stats on its runtime type.
    nulls_.Append(false);
    values_.push_back(v);
    if (v.is_numeric()) {
      AddNumeric(&stats_, v.is_int() ? static_cast<double>(v.AsInt())
                                     : v.AsDoubleExact());
    } else {
      ++stats_.non_null_count;
    }
    return;
  }
  switch (v.type()) {
    case ValueType::kInt:
      if (storage_ == ValueType::kInt || storage_ == ValueType::kDouble) {
        AppendInt(v.AsInt());
        return;
      }
      break;
    case ValueType::kDouble:
      if (storage_ == ValueType::kDouble) {
        AppendDouble(v.AsDoubleExact());
        return;
      }
      break;
    case ValueType::kBool:
      if (storage_ == ValueType::kBool) {
        AppendBool(v.AsBool());
        return;
      }
      break;
    case ValueType::kString:
      if (storage_ == ValueType::kString) {
        AppendString(v.AsString());
        return;
      }
      break;
    default:
      break;
  }
  PB_DCHECK(false) << "value of type " << ValueTypeToString(v.type())
                   << " does not fit " << ValueTypeToString(storage_)
                   << " column storage";
  AppendNull();
}

void Column::AppendFrom(const Column& src, size_t i) {
  PB_DCHECK(i < src.size());
  if (src.storage_ == storage_ && !src.spilled()) {
    if (src.nulls_.Test(i) && storage_ != ValueType::kNull) {
      AppendNull();
      return;
    }
    switch (storage_) {
      case ValueType::kInt:    AppendInt(src.ints_[i]); return;
      case ValueType::kDouble: AppendDouble(src.doubles_[i]); return;
      case ValueType::kBool:   AppendBool(src.bools_[i] != 0); return;
      case ValueType::kString: AppendString(src.strings_[i]); return;
      case ValueType::kNull:   AppendValue(src.values_[i]); return;
    }
  }
  // Cross-type or spilled source: the Value hop is bit-exact for both
  // numeric storages (Value::Int / AsDoubleExact round-trip raw payloads).
  AppendValue(src.GetValue(i));
}

void Column::Reserve(size_t n) {
  nulls_.Reserve(n);
  switch (storage_) {
    case ValueType::kInt:    ints_.reserve(n); break;
    case ValueType::kDouble: doubles_.reserve(n); break;
    case ValueType::kBool:   bools_.reserve(n); break;
    case ValueType::kString: strings_.reserve(n); break;
    case ValueType::kNull:   values_.reserve(n); break;
  }
}

int Column::Compare(size_t a, size_t b) const {
  PB_DCHECK(a < size() && b < size());
  if (storage_ == ValueType::kNull) return values_[a].Compare(values_[b]);
  bool an = nulls_.Test(a), bn = nulls_.Test(b);
  if (an || bn) return an == bn ? 0 : (an ? -1 : 1);  // NULL sorts first
  if (spilled()) return GetValue(a).Compare(GetValue(b));
  switch (storage_) {
    case ValueType::kInt:
      return ints_[a] < ints_[b] ? -1 : (ints_[a] > ints_[b] ? 1 : 0);
    case ValueType::kDouble:
      return doubles_[a] < doubles_[b] ? -1
                                       : (doubles_[a] > doubles_[b] ? 1 : 0);
    case ValueType::kBool:
      return bools_[a] < bools_[b] ? -1 : (bools_[a] > bools_[b] ? 1 : 0);
    case ValueType::kString: {
      int c = strings_[a].compare(strings_[b]);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

// ----- Out-of-core -----------------------------------------------------------

Status Column::Spill(std::shared_ptr<storage::SegmentFile> file,
                     storage::BlockCache* cache, size_t block_size) {
  if (!numeric_storage()) return Status::OK();  // strings/untyped stay resident
  if (spilled()) {
    return Status::InvalidArgument("column is already spilled");
  }
  if (block_size == 0) {
    return Status::InvalidArgument("spill block size must be positive");
  }
  PB_DCHECK(cache != nullptr);

  const size_t n = size();
  const size_t blocks = n == 0 ? 0 : (n + block_size - 1) / block_size;
  std::vector<storage::BlockLocator> locators;
  std::vector<storage::ZoneMap> zones;
  locators.reserve(blocks);
  zones.reserve(blocks);

  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * block_size;
    const size_t count = std::min(block_size, n - begin);
    storage::NumericBlock block;
    block.count = count;
    if (storage_ == ValueType::kInt) {
      block.type = storage::BlockType::kInt64;
      block.ints.assign(ints_.begin() + begin, ints_.begin() + begin + count);
    } else {
      block.type = storage::BlockType::kFloat64;
      block.doubles.assign(doubles_.begin() + begin,
                           doubles_.begin() + begin + count);
    }
    // Repack the block's slice of the global bitmap. Bit-by-bit: block
    // boundaries need not align to 64-bit words.
    block.null_words.assign(storage::NullWordCount(count), 0);
    if (nulls_.any()) {
      for (size_t k = 0; k < count; ++k) {
        if (nulls_.Test(begin + k)) {
          block.null_words[k >> 6] |= uint64_t{1} << (k & 63);
        }
      }
    }
    block.zone = storage::ComputeZoneMap(
        count, [&](size_t k) { return block.ValueAt(k); },
        [&](size_t k) { return block.IsNull(k); });
    PB_ASSIGN_OR_RETURN(storage::BlockLocator loc, file->WriteBlock(block));
    locators.push_back(loc);
    zones.push_back(block.zone);
  }

  // Commit: free the vectors and flip to the spilled representation.
  std::vector<int64_t>().swap(ints_);
  std::vector<double>().swap(doubles_);
  file_ = std::move(file);
  cache_ = cache;
  locators_ = std::move(locators);
  block_size_ = block_size;
  {
    MutexLock lock(&zone_mu_);
    zones_ = std::move(zones);
    zones_built_ = true;
    zones_for_size_ = n;
  }
  return Status::OK();
}

Status Column::Unspill() {
  if (!spilled()) return Status::OK();
  const size_t n = size();
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  if (storage_ == ValueType::kInt) {
    ints.reserve(n);
  } else {
    doubles.reserve(n);
  }
  for (size_t b = 0; b < locators_.size(); ++b) {
    // Uncounted by any StorageBudget: unspill is a state transition, not a
    // query-path gather, and must not fail on policy.
    PB_ASSIGN_OR_RETURN(storage::BlockHandle handle,
                        PinBlock(b, /*charge_budget=*/false));
    const storage::NumericBlock& blk = *handle;
    if (storage_ == ValueType::kInt) {
      if (blk.type != storage::BlockType::kInt64) {
        return Status::Internal("unspill: block " + std::to_string(b) +
                                " is not int64 storage");
      }
      ints.insert(ints.end(), blk.ints.begin(), blk.ints.end());
    } else {
      if (blk.type != storage::BlockType::kFloat64) {
        return Status::Internal("unspill: block " + std::to_string(b) +
                                " is not float64 storage");
      }
      doubles.insert(doubles.end(), blk.doubles.begin(), blk.doubles.end());
    }
  }
  const size_t restored =
      storage_ == ValueType::kInt ? ints.size() : doubles.size();
  if (restored != n) {
    return Status::Internal("unspill restored " + std::to_string(restored) +
                            " of " + std::to_string(n) + " values");
  }
  // Commit: flip back to the resident representation. The zone cache is
  // untouched — the values and block granularity are unchanged, so the
  // zones built at spill time keep serving the resident column.
  ints_ = std::move(ints);
  doubles_ = std::move(doubles);
  file_.reset();
  cache_ = nullptr;
  locators_.clear();
  return Status::OK();
}

void Column::SetBlockSize(size_t block_size) {
  PB_DCHECK(!spilled()) << "block size of a spilled column is fixed at spill";
  PB_DCHECK(block_size > 0);
  block_size_ = block_size;
  MutexLock lock(&zone_mu_);
  zones_.clear();
  zones_built_ = false;
  zones_for_size_ = 0;
}

const storage::ZoneMap* Column::ZoneMaps() const {
  if (!numeric_storage()) return nullptr;
  MutexLock lock(&zone_mu_);
  if (!zones_built_ || zones_for_size_ != size()) {
    PB_DCHECK(!spilled());  // spill metadata never goes stale (read-only)
    const size_t n = size();
    const size_t blocks = n == 0 ? 0 : (n + block_size_ - 1) / block_size_;
    // Incremental extension: appends never touch sealed rows, so every
    // block that was already complete at the last build is unchanged. Keep
    // those zones and recompute only from the first block the growth
    // touched (the previously-partial tail, plus anything new).
    size_t keep = 0;
    if (zones_built_ && zones_for_size_ < n) {
      keep = std::min(zones_for_size_ / block_size_, zones_.size());
    }
    zones_.resize(keep);
    zones_.reserve(blocks);
    const bool is_int = storage_ == ValueType::kInt;
    for (size_t b = keep; b < blocks; ++b) {
      const size_t begin = b * block_size_;
      const size_t count = std::min(block_size_, n - begin);
      zones_.push_back(storage::ComputeZoneMap(
          count,
          [&](size_t k) {
            return is_int ? static_cast<double>(ints_[begin + k])
                          : doubles_[begin + k];
          },
          [&](size_t k) { return nulls_.Test(begin + k); }));
    }
    zones_built_ = true;
    zones_for_size_ = n;
  }
  return zones_.data();
}

Result<storage::BlockHandle> Column::PinBlock(size_t b,
                                              bool charge_budget) const {
  PB_DCHECK(spilled());
  PB_DCHECK(b < locators_.size());
  if (charge_budget) return cache_->Pin(file_, locators_[b]);
  // Compat access: pin under a detached budget so correctness paths never
  // fail on policy.
  storage::StorageBudgetScope detached{storage::StorageBudget()};
  return cache_->Pin(file_, locators_[b]);
}

// ----- NumericColumnView (spilled paths) -------------------------------------

const storage::ZoneMap& NumericColumnView::zone(size_t b) const {
  PB_DCHECK(col_ != nullptr && b < num_blocks());
  if (zones_ == nullptr) zones_ = col_->ZoneMaps();
  return zones_[b];
}

NumericColumnView::BlockSpan NumericColumnView::block(size_t b) const {
  PB_DCHECK(col_ != nullptr && b < num_blocks());
  const size_t bs = block_size();
  const size_t offset = b * bs;
  const size_t count = std::min(bs, size_ - offset);
  if (dbl_ != nullptr || int_ != nullptr) {
    return BlockSpan{dbl_ != nullptr ? dbl_ + offset : nullptr,
                     int_ != nullptr ? int_ + offset : nullptr, offset, count};
  }
  if (!status_.ok()) return BlockSpan{};
  if (cur_block_ != b) {
    auto handle = col_->PinBlock(b, /*charge_budget=*/true);
    if (!handle.ok()) {
      status_ = handle.status();
      cur_block_ = kNoBlock;
      cur_handle_ = storage::BlockHandle();
      return BlockSpan{};
    }
    cur_handle_ = std::move(handle).value();
    cur_block_ = b;
  }
  const storage::NumericBlock& blk = *cur_handle_;
  return BlockSpan{
      blk.type == storage::BlockType::kFloat64 ? blk.doubles.data() : nullptr,
      blk.type == storage::BlockType::kInt64 ? blk.ints.data() : nullptr,
      offset, count};
}

double NumericColumnView::SpilledAt(size_t i) const {
  const BlockSpan span = block(i / block_size());
  if (!span.valid()) return 0.0;  // status() carries the error
  return span.Value(i - span.offset);
}

}  // namespace pb::db
