// Unit tests for the PaQL language: lexer, parser, AST printing, and the
// semantic analyzer's linear-structure extraction.

#include <gtest/gtest.h>

#include "datagen/recipes.h"
#include "db/catalog.h"
#include "paql/analyzer.h"
#include "paql/lexer.h"
#include "paql/parser.h"

namespace pb::paql {
namespace {

// ----- Lexer -----------------------------------------------------------------

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto toks = Lex("select PACKAGE Such tHaT");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);  // incl. kEnd
  EXPECT_TRUE((*toks)[0].IsKeyword("SELECT"));
  EXPECT_TRUE((*toks)[1].IsKeyword("PACKAGE"));
  EXPECT_TRUE((*toks)[2].IsKeyword("SUCH"));
  EXPECT_TRUE((*toks)[3].IsKeyword("THAT"));
}

TEST(LexerTest, NumbersIntAndDouble) {
  auto toks = Lex("42 3.14 1e3 2.5E-2 .5");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*toks)[0].int_value, 42);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*toks)[1].double_value, 3.14);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*toks)[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*toks)[3].double_value, 0.025);
  EXPECT_DOUBLE_EQ((*toks)[4].double_value, 0.5);
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = Lex("'free' 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "free");
  EXPECT_EQ((*toks)[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Lex("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OperatorsIncludingTwoChar) {
  auto toks = Lex("<= >= <> != = < >");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kLe);
  EXPECT_EQ((*toks)[1].kind, TokenKind::kGe);
  EXPECT_EQ((*toks)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*toks)[3].kind, TokenKind::kNe);
  EXPECT_EQ((*toks)[4].kind, TokenKind::kEq);
  EXPECT_EQ((*toks)[5].kind, TokenKind::kLt);
  EXPECT_EQ((*toks)[6].kind, TokenKind::kGt);
}

TEST(LexerTest, CommentsSkipped) {
  auto toks = Lex("SELECT -- a comment\n PACKAGE");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_TRUE((*toks)[1].IsKeyword("PACKAGE"));
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_EQ(Lex("SELECT @").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, OverflowingDoubleLiteralFails) {
  // Would silently become inf with unchecked strtod.
  EXPECT_EQ(Lex("1e999").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("SUM(price) <= 1.5e400").status().code(),
            StatusCode::kParseError);
}

TEST(LexerTest, OverflowingIntegerLiteralFails) {
  // Would silently become LLONG_MAX with unchecked strtoll.
  EXPECT_EQ(Lex("99999999999999999999").status().code(),
            StatusCode::kParseError);
}

TEST(LexerTest, LargeButRepresentableLiteralsStillLex) {
  auto toks = Lex("9223372036854775807 1e308");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  EXPECT_EQ((*toks)[0].int_value, 9223372036854775807LL);
  EXPECT_DOUBLE_EQ((*toks)[1].double_value, 1e308);
}

TEST(LexerTest, UnderflowingDoubleLiteralRoundsTowardZero) {
  // strtod reports ERANGE for underflow too; that is not an error — the
  // literal just becomes the nearest representable value (possibly 0).
  auto toks = Lex("1e-400");
  ASSERT_TRUE(toks.ok()) << toks.status().ToString();
  EXPECT_EQ((*toks)[0].kind, TokenKind::kDoubleLiteral);
  EXPECT_GE((*toks)[0].double_value, 0.0);
  EXPECT_LT((*toks)[0].double_value, 1e-300);
}

// ----- Parser ----------------------------------------------------------------

TEST(ParserTest, MinimalQuery) {
  auto q = Parse("SELECT PACKAGE(R) FROM Recipes R");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->relation, "Recipes");
  EXPECT_EQ(q->relation_alias, "R");
  EXPECT_EQ(q->package_alias, "R");
  EXPECT_FALSE(q->repeat.has_value());
  EXPECT_EQ(q->where, nullptr);
  EXPECT_EQ(q->such_that, nullptr);
  EXPECT_FALSE(q->objective.has_value());
}

TEST(ParserTest, FullMealQuery) {
  auto q = Parse(
      "SELECT PACKAGE(R) AS P FROM Recipes R WHERE R.gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 "
      "MAXIMIZE SUM(P.protein)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->package_alias, "P");
  ASSERT_NE(q->where, nullptr);
  ASSERT_NE(q->such_that, nullptr);
  ASSERT_TRUE(q->objective.has_value());
  EXPECT_EQ(q->objective->sense, ObjectiveSense::kMaximize);
  // SUCH THAT is an AND of two comparisons.
  EXPECT_EQ(q->such_that->kind, GExprKind::kBool);
}

TEST(ParserTest, RepeatClause) {
  auto q = Parse("SELECT PACKAGE(R) FROM Recipes R REPEAT 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->repeat.value_or(-1), 3);
  EXPECT_FALSE(Parse("SELECT PACKAGE(R) FROM Recipes R REPEAT 0").ok());
}

TEST(ParserTest, PackageMustReferenceFromRelation) {
  EXPECT_FALSE(Parse("SELECT PACKAGE(X) FROM Recipes R").ok());
  EXPECT_TRUE(Parse("SELECT PACKAGE(Recipes) FROM Recipes R").ok());
}

TEST(ParserTest, LimitClause) {
  auto q = Parse("SELECT PACKAGE(R) FROM Recipes R LIMIT 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->limit.value_or(-1), 5);
}

TEST(ParserTest, TrailingInputFails) {
  EXPECT_FALSE(Parse("SELECT PACKAGE(R) FROM Recipes R garbage garbage").ok());
}

TEST(ParserTest, WhereSubLanguage) {
  auto e = ParseScalarExpr(
      "gluten = 'free' AND (calories < 500 OR protein >= 20) "
      "AND name LIKE 'ch%' AND cuisine IN ('thai', 'greek') "
      "AND sodium IS NOT NULL AND cost NOT BETWEEN 5 AND 10");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Pretty-print round-trips through the parser.
  auto again = ParseScalarExpr((*e)->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->ToString(), (*e)->ToString());
}

TEST(ParserTest, GlobalSubLanguage) {
  auto g = ParseGlobalExpr(
      "COUNT(*) = 3 AND SUM(calories) + 2 * SUM(fat) <= 100 AND "
      "(AVG(protein) >= 10 OR MIN(rating) > 2)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  auto again = ParseGlobalExpr((*g)->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->ToString(), (*g)->ToString());
}

TEST(ParserTest, BetweenBindsTighterThanAnd) {
  auto g = ParseGlobalExpr("SUM(a) BETWEEN 1 AND 2 AND COUNT(*) = 3");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->kind, GExprKind::kBool);
  EXPECT_EQ((*g)->children[0]->kind, GExprKind::kBetween);
  EXPECT_EQ((*g)->children[1]->kind, GExprKind::kCompare);
}

TEST(ParserTest, CountStarOnlyForCount) {
  EXPECT_FALSE(ParseGlobalExpr("SUM(*) > 0").ok());
  EXPECT_TRUE(ParseGlobalExpr("COUNT(*) > 0").ok());
}

TEST(ParserTest, ArithmeticInsideAggregates) {
  auto g = ParseGlobalExpr("SUM(price * quantity) <= 100");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
}

TEST(ParserTest, NotAndNestedBooleans) {
  auto g = ParseGlobalExpr("NOT (COUNT(*) = 0 OR SUM(x) < 1)");
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ((*g)->kind, GExprKind::kNot);
}

TEST(ParserTest, QueryToPaqlRoundTrips) {
  const char* text =
      "SELECT PACKAGE(R) AS P FROM Recipes R REPEAT 2 "
      "WHERE R.gluten = 'free' "
      "SUCH THAT COUNT(*) = 3 AND SUM(P.calories) BETWEEN 2000 AND 2500 "
      "MAXIMIZE SUM(P.protein) LIMIT 4";
  auto q = Parse(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto q2 = Parse(q->ToPaql());
  ASSERT_TRUE(q2.ok()) << q2.status().ToString() << "\n" << q->ToPaql();
  EXPECT_EQ(q2->ToPaql(), q->ToPaql());
}

TEST(ParserTest, ErrorsCarryOffsets) {
  auto r = Parse("SELECT BUNDLE(R) FROM Recipes R");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("offset"), std::string::npos);
}

// ----- Natural-language descriptions -----------------------------------------

TEST(DescribeTest, ConstraintDescriptions) {
  auto g = ParseGlobalExpr("SUM(calories) BETWEEN 2000 AND 2500");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(DescribeGlobalConstraint(**g),
            "the total calories must be between 2000 and 2500");
  auto c = ParseGlobalExpr("COUNT(*) = 3");
  EXPECT_EQ(DescribeGlobalConstraint(**c),
            "the number of tuples must be exactly 3");
  auto m = ParseGlobalExpr("MIN(rating) >= 4");
  EXPECT_EQ(DescribeGlobalConstraint(**m),
            "the smallest rating must be at least 4");
}

TEST(DescribeTest, ObjectiveDescription) {
  Objective o;
  o.sense = ObjectiveSense::kMinimize;
  auto expr = ParseAggregateExpr("SUM(fat)");
  ASSERT_TRUE(expr.ok()) << expr.status().ToString();
  o.expr = *expr;
  EXPECT_EQ(DescribeObjective(o), "minimize the total fat");
}

TEST(ParserTest, AggregateExprSubLanguage) {
  EXPECT_TRUE(ParseAggregateExpr("SUM(protein) - 2 * SUM(fat)").ok());
  EXPECT_FALSE(ParseAggregateExpr("SUM(protein) >= 3").ok());  // comparison
  EXPECT_FALSE(ParseAggregateExpr("").ok());
}

// ----- Analyzer --------------------------------------------------------------

class AnalyzerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_.RegisterOrReplace(datagen::GenerateRecipes(50, 1));
  }
  Result<AnalyzedQuery> Analyze(const std::string& text) {
    return ParseAndAnalyze(text, catalog_);
  }
  db::Catalog catalog_;
};

TEST_F(AnalyzerTest, UnknownTableFails) {
  EXPECT_EQ(Analyze("SELECT PACKAGE(X) FROM Nope X").status().code(),
            StatusCode::kNotFound);
}

TEST_F(AnalyzerTest, UnknownColumnInWhereFails) {
  EXPECT_FALSE(
      Analyze("SELECT PACKAGE(R) FROM recipes R WHERE R.nope = 1").ok());
}

TEST_F(AnalyzerTest, UnknownColumnInAggregateFails) {
  EXPECT_FALSE(
      Analyze("SELECT PACKAGE(R) FROM recipes R SUCH THAT SUM(nope) > 0")
          .ok());
}

TEST_F(AnalyzerTest, LinearExtractionMergesDuplicateAggregates) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT SUM(calories) <= 100 AND SUM(calories) >= 10 "
      "MAXIMIZE SUM(calories)");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  // One canonical SUM(calories) aggregate.
  EXPECT_EQ(aq->aggs.size(), 1u);
  EXPECT_EQ(aq->linear_constraints.size(), 2u);
  EXPECT_TRUE(aq->ilp_translatable);
}

TEST_F(AnalyzerTest, ArithmeticCombinationStaysLinear) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT 2 * SUM(protein) - SUM(fat) / 2 + 5 <= 100");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable) << aq->not_translatable_reason;
  ASSERT_EQ(aq->linear_constraints.size(), 1u);
  const LinearConstraint& lc = aq->linear_constraints[0];
  // 2*SUM(protein) - 0.5*SUM(fat) <= 95.
  ASSERT_EQ(lc.terms.size(), 2u);
  EXPECT_DOUBLE_EQ(lc.hi, 95.0);
}

TEST_F(AnalyzerTest, ProductOfAggregatesNotLinear) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT SUM(protein) * SUM(fat) <= 100");
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
  EXPECT_NE(aq->not_translatable_reason.find("not linear"),
            std::string::npos);
}

TEST_F(AnalyzerTest, OrIsDisjunctive) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT COUNT(*) = 2 OR COUNT(*) = 4");
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
}

TEST_F(AnalyzerTest, NotEqualIsDisjunctive) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) <> 3");
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
}

TEST_F(AnalyzerTest, AvgRewritesToSumMinusCount) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT AVG(calories) <= 500");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable) << aq->not_translatable_reason;
  EXPECT_TRUE(aq->requires_nonempty);
  // The rewritten row references SUM(calories) and COUNT(*).
  ASSERT_EQ(aq->linear_constraints.size(), 1u);
  EXPECT_EQ(aq->linear_constraints[0].terms.size(), 2u);
}

TEST_F(AnalyzerTest, AvgBetweenMakesTwoRows) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT AVG(calories) BETWEEN 300 AND 600");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable) << aq->not_translatable_reason;
  EXPECT_EQ(aq->linear_constraints.size(), 2u);
}

TEST_F(AnalyzerTest, AvgMixedWithSumNotLinear) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT AVG(calories) + SUM(fat) <= 100");
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
}

TEST_F(AnalyzerTest, MinMaxBecomeExtremeConstraints) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R "
      "SUCH THAT MIN(rating) >= 3 AND MAX(calories) <= 800");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable) << aq->not_translatable_reason;
  EXPECT_EQ(aq->extreme_constraints.size(), 2u);
  EXPECT_TRUE(aq->requires_nonempty);
}

TEST_F(AnalyzerTest, FlippedComparisonNormalizes) {
  // "800 >= MAX(calories)" == "MAX(calories) <= 800".
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT 800 >= MAX(calories)");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  ASSERT_EQ(aq->extreme_constraints.size(), 1u);
  EXPECT_EQ(aq->extreme_constraints[0].op, db::BinaryOp::kLe);
  EXPECT_DOUBLE_EQ(aq->extreme_constraints[0].bound, 800.0);
}

TEST_F(AnalyzerTest, MinInsideArithmeticNotLinear) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT MIN(rating) + 1 >= 3");
  ASSERT_TRUE(aq.ok());
  EXPECT_FALSE(aq->ilp_translatable);
}

TEST_F(AnalyzerTest, StrictInequalitiesBecomeNudgedBounds) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) > 2");
  ASSERT_TRUE(aq.ok());
  ASSERT_EQ(aq->linear_constraints.size(), 1u);
  EXPECT_GT(aq->linear_constraints[0].lo, 2.0);
  EXPECT_LT(aq->linear_constraints[0].lo, 2.1);
}

TEST_F(AnalyzerTest, AvgObjectiveIsNotLinear) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(*) = 3 "
      "MAXIMIZE AVG(protein)");
  ASSERT_TRUE(aq.ok());
  EXPECT_TRUE(aq->has_objective);
  EXPECT_FALSE(aq->objective_linear);
}

TEST_F(AnalyzerTest, CountExprAggregates) {
  auto aq = Analyze(
      "SELECT PACKAGE(R) FROM recipes R SUCH THAT COUNT(calories) >= 2");
  ASSERT_TRUE(aq.ok()) << aq.status().ToString();
  EXPECT_TRUE(aq->ilp_translatable);
  ASSERT_EQ(aq->aggs.size(), 1u);
  EXPECT_EQ(aq->aggs[0].func, db::AggFunc::kCount);
  EXPECT_NE(aq->aggs[0].arg, nullptr);
}

TEST_F(AnalyzerTest, RepeatSetsMaxMultiplicity) {
  auto aq = Analyze("SELECT PACKAGE(R) FROM recipes R REPEAT 4");
  ASSERT_TRUE(aq.ok());
  EXPECT_EQ(aq->max_multiplicity, 4);
}

}  // namespace
}  // namespace pb::paql
